"""Shim for legacy editable installs (``pip install -e .`` without the
``wheel`` package available).  All metadata lives in pyproject.toml."""

from setuptools import setup

setup()
