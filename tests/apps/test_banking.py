"""Banking app tests: invariants under every execution style."""

from __future__ import annotations

import pytest

from repro.apps.banking import BankApp
from repro.core.devices import DisplayWithUserIds
from repro.core.system import TPSystem

from tests.conftest import run_with_server


@pytest.fixture
def bank_system():
    system = TPSystem()
    bank = BankApp(system)
    bank.open_accounts({"alice": 100, "bob": 50, "carol": 25})
    return system, bank


class TestAccounts:
    def test_balances(self, bank_system):
        _, bank = bank_system
        assert bank.balance("alice") == 100
        assert bank.total_money() == 175

    def test_unknown_account_raises(self, bank_system):
        _, bank = bank_system
        with pytest.raises(KeyError):
            bank.balance("mallory")


class TestSingleTxnTransfers:
    def test_transfer_round_trip(self, bank_system):
        system, bank = bank_system
        display = DisplayWithUserIds(trace=system.trace)
        client = system.client(
            "c1", bank.transfer_work([("alice", "bob", 10), ("bob", "carol", 5)]),
            display,
        )
        server = system.server("s", bank.transfer_handler)
        run_with_server(system, server, client)
        assert bank.balance("alice") == 90
        assert bank.balance("bob") == 55
        assert bank.balance("carol") == 30
        assert bank.total_money() == 175
        system.checker().assert_ok()

    def test_insufficient_funds_is_failed_reply_not_retry(self, bank_system):
        system, bank = bank_system
        display = DisplayWithUserIds(trace=system.trace)
        client = system.client(
            "c1", bank.transfer_work([("carol", "alice", 1000)]), display
        )
        server = system.server("s", bank.transfer_handler)
        replies = run_with_server(system, server, client)
        assert len(replies) == 1
        assert not replies[0].ok
        assert bank.total_money() == 175
        assert server.stats.failed_replies == 1
        system.checker().assert_ok()

    def test_audit_log_written(self, bank_system):
        system, bank = bank_system
        display = DisplayWithUserIds(trace=system.trace)
        client = system.client("c1", bank.transfer_work([("alice", "bob", 7)]), display)
        server = system.server("s", bank.transfer_handler)
        run_with_server(system, server, client)
        entries = bank.audit_entries("c1#1")
        assert len(entries) == 1
        assert entries[0]["amount"] == 7

    def test_money_conserved_across_concurrent_clients(self, bank_system):
        import threading

        system, bank = bank_system
        pairs = [("alice", "bob", 3), ("bob", "carol", 2), ("carol", "alice", 1)]
        clients = [
            system.client(
                f"c{i}", bank.transfer_work([pair]), DisplayWithUserIds(trace=system.trace)
            )
            for i, pair in enumerate(pairs)
        ]
        servers = [system.server(f"s{i}", bank.transfer_handler) for i in range(2)]
        stop = threading.Event()
        server_threads = [
            threading.Thread(target=s.serve_until, args=(stop.is_set, 0.02), daemon=True)
            for s in servers
        ]
        for t in server_threads:
            t.start()
        client_threads = [threading.Thread(target=c.run, daemon=True) for c in clients]
        for t in client_threads:
            t.start()
        for t in client_threads:
            t.join(timeout=30)
        stop.set()
        for t in server_threads:
            t.join(timeout=5)
        assert bank.total_money() == 175
        system.checker().assert_ok()


class TestTransferCrash:
    def test_money_conserved_across_crash_mid_transfer(self, bank_system):
        system, bank = bank_system
        display = DisplayWithUserIds(trace=system.trace)
        client = system.client("c1", bank.transfer_work([("alice", "bob", 40)]), display)
        client.resynchronize()
        client.send_only(1)
        # Crash with the request still queued.
        system.crash()
        system2 = system.reopen()
        bank2 = BankApp(system2)
        assert bank2.total_money() == 175
        server = system2.server("s", bank2.transfer_handler)
        server.process_one()
        assert bank2.balance("alice") == 60
        assert bank2.total_money() == 175
