"""Order app tests."""

from __future__ import annotations

import pytest

from repro.apps.orders import OrderApp
from repro.core.system import TPSystem


@pytest.fixture
def orders_system():
    system = TPSystem()
    orders = OrderApp(system)
    orders.stock_items({"widget": (5, 10), "gizmo": (9, 3)})
    return system, orders


class TestStock:
    def test_stock_levels(self, orders_system):
        _, orders = orders_system
        assert orders.stock_of("widget") == 10
        assert orders.stock_of("nothing") == 0


class TestConversationalStep:
    def test_phase_0_greets_with_catalog(self, orders_system):
        system, orders = orders_system
        with system.request_repo.tm.transaction() as txn:
            scratch = {}
            output, done = orders.conversational_step(txn, 0, "carol", scratch)
        assert not done
        assert output["catalog"] == {"widget": 5, "gizmo": 9}
        assert scratch["customer"] == "carol"

    def test_phase_1_quotes(self, orders_system):
        system, orders = orders_system
        with system.request_repo.tm.transaction() as txn:
            scratch = {"customer": "carol"}
            output, done = orders.conversational_step(
                txn, 1, {"item": "gizmo", "qty": 2}, scratch
            )
        assert not done
        assert output == {"item": "gizmo", "qty": 2, "total": 18}

    def test_phase_1_out_of_stock(self, orders_system):
        system, orders = orders_system
        with system.request_repo.tm.transaction() as txn:
            output, _ = orders.conversational_step(
                txn, 1, {"item": "gizmo", "qty": 99}, {"customer": "c"}
            )
        assert "error" in output

    def test_phase_2_places_order(self, orders_system):
        system, orders = orders_system
        scratch = {"customer": "carol", "item": "widget", "qty": 4, "rid": "o1"}
        with system.request_repo.tm.transaction() as txn:
            output, done = orders.conversational_step(txn, 2, {"confirm": True}, scratch)
        assert done
        assert output["total"] == 20
        assert orders.stock_of("widget") == 6
        assert orders.orders_for("carol")[0]["qty"] == 4

    def test_phase_2_decline(self, orders_system):
        system, orders = orders_system
        scratch = {"customer": "carol", "item": "widget", "qty": 4}
        with system.request_repo.tm.transaction() as txn:
            output, done = orders.conversational_step(txn, 2, {"confirm": False}, scratch)
        assert done and output == {"cancelled": True}
        assert orders.stock_of("widget") == 10

    def test_unknown_phase_raises(self, orders_system):
        system, orders = orders_system
        with system.request_repo.tm.transaction() as txn:
            with pytest.raises(ValueError):
                orders.conversational_step(txn, 9, None, {})
