"""Inventory app tests: batch capture and burst buffering."""

from __future__ import annotations

import pytest

from repro.apps.inventory import InventoryApp
from repro.core.devices import DisplayWithUserIds
from repro.core.system import TPSystem

from tests.conftest import run_with_server


@pytest.fixture
def inv_system():
    system = TPSystem()
    inventory = InventoryApp(system)
    inventory.stock({"sku-a": 10, "sku-b": 0})
    return system, inventory


class TestHandler:
    def test_positive_delta(self, inv_system):
        system, inventory = inv_system
        display = DisplayWithUserIds(trace=system.trace)
        client = system.client("c1", [{"sku": "sku-a", "delta": 5}], display)
        server = system.server("s", inventory.update_handler)
        replies = run_with_server(system, server, client)
        assert replies[0].body == {"sku": "sku-a", "qty": 15, "shortfall": 0}
        assert inventory.quantity("sku-a") == 15

    def test_shortfall_floors_at_zero(self, inv_system):
        system, inventory = inv_system
        display = DisplayWithUserIds(trace=system.trace)
        client = system.client("c1", [{"sku": "sku-a", "delta": -25}], display)
        server = system.server("s", inventory.update_handler)
        replies = run_with_server(system, server, client)
        assert replies[0].body["shortfall"] == 15
        assert inventory.quantity("sku-a") == 0


class TestWorkloads:
    def test_steady_work_deterministic(self):
        a = InventoryApp.steady_work(10, ["x", "y"], seed=5)
        b = InventoryApp.steady_work(10, ["x", "y"], seed=5)
        assert a == b
        assert len(a) == 10

    def test_burst_shapes(self):
        bursts = InventoryApp.burst_work(3, 7, ["x"], seed=1)
        assert len(bursts) == 3
        assert all(len(b) == 7 for b in bursts)

    def test_batch_file_is_receipts_only(self):
        batch = InventoryApp.batch_file(50, ["x", "y"], seed=2)
        assert all(item["delta"] > 0 for item in batch)

    def test_batch_captured_then_processed(self, inv_system):
        # Section 1: "Requests can be captured reliably in a queue, and
        # processed later in a batch."
        system, inventory = inv_system
        batch = InventoryApp.batch_file(20, ["sku-a", "sku-b"], seed=3)
        clerk = system.clerk("batcher")
        clerk.connect()
        from repro.core.request import Request

        for i, item in enumerate(batch, start=1):
            # batch input: send-only, no reply waiting (one-at-a-time is
            # relaxed for batch capture; each item is its own request)
            clerk.send(
                Request(
                    rid=f"batcher#{i}", body=item, client_id="batcher",
                    reply_to=system.reply_queue_name("batcher"),
                ),
                f"batcher#{i}",
            )
        queue = system.request_repo.get_queue(system.request_queue)
        assert queue.depth() == 20  # captured before any processing
        server = system.server("night-batch", inventory.update_handler)
        processed = system.drain(server)
        assert processed == 20
        expected = 10 + sum(x["delta"] for x in batch if x["sku"] == "sku-a")
        assert inventory.quantity("sku-a") == expected
