"""The asyncio clerk gateway: async sessions over real shard processes,
and the two admission gates (in-flight cap, queue-depth watermark) that
turn overload into :class:`~repro.errors.Busy` pushback instead of
unbounded queue growth."""

import asyncio
import shutil
import tempfile

import pytest

from repro.core.system import TPSystem
from repro.errors import Busy
from repro.gateway import Gateway


@pytest.fixture
def tcp_system():
    data_dir = tempfile.mkdtemp(prefix="repro-test-gw-")
    system = TPSystem(deployment="tcp", shards=2, data_dir=data_dir)
    try:
        yield system
    finally:
        system.close()
        shutil.rmtree(data_dir, ignore_errors=True)


def endpoints(system):
    return [("127.0.0.1", s.port) for s in system.supervisor.shards]


def run(coro):
    return asyncio.run(coro)


async def process_in_thread(server):
    return await asyncio.get_event_loop().run_in_executor(
        None, server.process_one
    )


class TestGatewaySessions:
    def test_async_round_trip(self, tcp_system):
        server = tcp_system.server("s1", lambda txn, r: {"done": r.body})

        async def scenario():
            gateway = Gateway(
                endpoints(tcp_system),
                request_queue=tcp_system.request_queue,
            )
            await gateway.start()
            try:
                session = await gateway.session("g1")
                rid = await session.submit({"work": 1})
                assert rid == "g1#1"
                assert await process_in_thread(server) is True
                reply = await session.receive(timeout=10)
                assert reply["body"] == {"done": {"work": 1}}
                assert reply["rid"] == rid
                await session.close()
            finally:
                await gateway.close()
            assert gateway.admitted == 1
            assert gateway.refused == 0

        run(scenario())

    def test_many_sessions_one_gateway(self, tcp_system):
        """Several concurrent async clients multiplex the same few
        sockets; every session gets exactly its own replies."""
        server = tcp_system.server("s1", lambda txn, r: {"echo": r.body})

        async def client(gateway, cid):
            session = await gateway.session(cid)
            await session.submit({"from": cid})
            while await process_in_thread(server):
                pass
            reply = await session.receive(timeout=10)
            assert reply["body"] == {"echo": {"from": cid}}
            return cid

        async def scenario():
            gateway = Gateway(
                endpoints(tcp_system),
                request_queue=tcp_system.request_queue,
            )
            await gateway.start()
            try:
                done = await asyncio.gather(
                    *(client(gateway, f"g{i}") for i in range(4))
                )
                assert sorted(done) == [f"g{i}" for i in range(4)]
            finally:
                await gateway.close()

        run(scenario())


class TestAdmissionControl:
    def test_inflight_cap_pushes_back(self, tcp_system):
        async def scenario():
            gateway = Gateway(
                endpoints(tcp_system),
                request_queue=tcp_system.request_queue,
                max_inflight=2,
            )
            await gateway.start()
            try:
                session = await gateway.session("g1")
                await session.submit({"n": 1})
                await session.submit({"n": 2})
                with pytest.raises(Busy, match="max_inflight"):
                    await session.submit({"n": 3})
                assert gateway.admitted == 2
                assert gateway.refused == 1
            finally:
                await gateway.close()

        run(scenario())

    def test_depth_watermark_pushes_back(self, tcp_system):
        async def scenario():
            gateway = Gateway(
                endpoints(tcp_system),
                request_queue=tcp_system.request_queue,
                depth_limit=2,
            )
            await gateway.start()
            try:
                session = await gateway.session("g1")
                await session.submit({"n": 1})
                await session.submit({"n": 2})
                with pytest.raises(Busy, match="depth"):
                    await session.submit({"n": 3})
            finally:
                await gateway.close()
            # The refused request was never accepted: nothing durable.
            assert tcp_system.request_qm.depth(
                tcp_system.request_queue) == 2

        run(scenario())

    def test_backpressure_off_admits_past_watermark(self, tcp_system):
        async def scenario():
            gateway = Gateway(
                endpoints(tcp_system),
                request_queue=tcp_system.request_queue,
                depth_limit=1,
                backpressure=False,
            )
            await gateway.start()
            try:
                session = await gateway.session("g1")
                for n in range(4):
                    await session.submit({"n": n})
                assert gateway.admitted == 4
            finally:
                await gateway.close()

        run(scenario())

    def test_replies_release_admission_slots(self, tcp_system):
        """A consumed reply frees an in-flight slot and debits the depth
        estimate — sustained throughput under a tight cap."""
        server = tcp_system.server("s1", lambda txn, r: r.body)

        async def scenario():
            gateway = Gateway(
                endpoints(tcp_system),
                request_queue=tcp_system.request_queue,
                max_inflight=1,
            )
            await gateway.start()
            try:
                session = await gateway.session("g1")
                for n in range(3):
                    await session.submit({"n": n})
                    assert await process_in_thread(server) is True
                    reply = await session.receive(timeout=10)
                    assert reply["body"] == {"n": n}
                assert gateway.inflight == 0
                assert gateway.admitted == 3
                assert gateway.refused == 0
            finally:
                await gateway.close()

        run(scenario())

    def test_depth_estimate_reanchors_behind_external_consumers(
        self, tcp_system
    ):
        """A server draining the queue behind the gateway's back brings
        the estimate down via the periodic refresh, re-opening
        admission without any reply traffic through this gateway."""
        server = tcp_system.server("s1", lambda txn, r: r.body)

        async def scenario():
            gateway = Gateway(
                endpoints(tcp_system),
                request_queue=tcp_system.request_queue,
                depth_limit=2,
                depth_refresh=0.05,
            )
            await gateway.start()
            try:
                session = await gateway.session("g1")
                await session.submit({"n": 1})
                await session.submit({"n": 2})
                with pytest.raises(Busy):
                    await session.submit({"n": 3})
                # Drain externally; the refresher re-anchors the estimate.
                while await process_in_thread(server):
                    pass
                await asyncio.sleep(0.3)
                await session.submit({"n": 3})
                assert gateway.admitted == 3
            finally:
                await gateway.close()

        run(scenario())
