"""Failover: the durable promotion ledger, epoch fencing, and the
TPSystem-level promote-and-rebuild path."""

from __future__ import annotations

from repro.core.system import TPSystem
from repro.errors import WalFencedError
from repro.replication import FailoverController
from repro.storage.disk import MemDisk

import pytest


class TestFailoverController:
    def test_generations_start_at_zero(self):
        controller = FailoverController()
        assert controller.generation(0) == 0
        assert controller.history == []

    def test_record_promotion_increments_and_persists(self):
        disk = MemDisk()
        controller = FailoverController(disk)
        assert controller.record_promotion(0, lsn=100, reason="t") == 1
        assert controller.record_promotion(0, lsn=200, reason="t") == 2
        assert controller.record_promotion(1, lsn=50, reason="t") == 1
        # A controller restart reads the ledger: no generation amnesia,
        # so a deposed primary can never be re-adopted.
        reloaded = FailoverController(disk)
        assert reloaded.generation(0) == 2
        assert reloaded.generation(1) == 1
        assert [h["lsn"] for h in reloaded.history] == [100, 200, 50]


class TestTPSystemFailOver:
    def test_requires_replicate(self):
        system = TPSystem()
        with pytest.raises(ValueError):
            system.fail_over(0)

    def test_promoted_system_serves_the_old_state(self):
        system = TPSystem(replicate=True)
        table = system.table("t")
        with system.request_repo.tm.transaction() as txn:
            for i in range(5):
                table.put(txn, f"k{i}", i)
        promoted = system.fail_over(0, reason="test.kill")
        table2 = promoted.table("t")
        with promoted.request_repo.tm.transaction() as txn:
            assert [table2.get(txn, f"k{i}") for i in range(5)] == list(
                range(5)
            )
        assert promoted.failover_controller.generation(0) == 1

    def test_zombie_primary_is_fenced(self):
        system = TPSystem(replicate=True)
        table = system.table("t")
        with system.request_repo.tm.transaction() as txn:
            table.put(txn, "a", 1)
        zombie_log = system.request_repo.shards[0].log
        system.fail_over(0, reason="test.kill")
        with pytest.raises(WalFencedError):
            zombie_log.wal.append(b"late write")

    def test_sharded_failover_bumps_only_the_promoted_epoch(self):
        system = TPSystem(
            shard_disks=[MemDisk(), MemDisk()], replicate=True
        )
        table = system.table("t")
        with system.request_repo.tm.transaction() as txn:
            for i in range(4):
                table.put(txn, f"k{i}", i)
        promoted = system.fail_over(1, reason="test.kill")
        assert promoted.failover_controller.generation(1) == 1
        assert promoted.failover_controller.generation(0) == 0
        table2 = promoted.table("t")
        with promoted.request_repo.tm.transaction() as txn:
            assert [table2.get(txn, f"k{i}") for i in range(4)] == list(
                range(4)
            )
        # The new system replicates too: a second failover of the same
        # shard promotes generation 2 from the fresh standby.
        with promoted.request_repo.tm.transaction() as txn:
            table2.put(txn, "late", 99)
        second = promoted.fail_over(1, reason="test.kill")
        assert second.failover_controller.generation(1) == 2
        table3 = second.table("t")
        with second.request_repo.tm.transaction() as txn:
            assert table3.get(txn, "late") == 99

    def test_reopen_carries_standbys_and_controller(self):
        system = TPSystem(replicate=True)
        table = system.table("t")
        with system.request_repo.tm.transaction() as txn:
            table.put(txn, "a", 1)
        controller = system.failover_controller
        standby_disk = system.replicas.standby_disks()[0]
        system.crash()
        for disk in system.shard_disks:
            disk.recover()
        reopened = system.reopen()
        assert reopened.failover_controller is controller
        assert reopened.replicas.standby_disks()[0] is standby_disk
        assert reopened.replicas.lag_bytes() == [0]
