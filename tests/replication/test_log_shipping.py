"""Log shipping: the synchronous tee, attach-time catch-up, lag,
checkpoint mirroring, torn standby tails and partially-shipped batch
frames.

The standby's acknowledgement invariant under test everywhere: after a
drain the standby holds *every* byte the primary acknowledged and
*only* bytes the primary acknowledged — what makes promotion lossless
and replay-safe.
"""

from __future__ import annotations

from repro.errors import WalFencedError
from repro.queueing.sharded import ShardedRepository
from repro.replication import LogShipper, ReplicaSet, StandbyShard
from repro.storage.codec import encode
from repro.storage.disk import MemDisk
from repro.storage.wal import _BATCH_MAGIC

import pytest


def make_primary(disk: MemDisk | None = None):
    disk = disk if disk is not None else MemDisk()
    repo = ShardedRepository("prim", [disk])
    table = repo.create_table("t")
    return repo, table


def commit_n(repo, table, n: int, start: int = 0) -> None:
    for i in range(start, start + n):
        with repo.tm.transaction() as txn:
            table.put(txn, f"k{i}", i)


def boot_promoted(disk, count: int) -> list[int]:
    """Recover a repository from a promoted image; the keys present."""
    repo = ShardedRepository("prim", [disk])
    table = repo.create_table("t")
    with repo.tm.transaction() as txn:
        return [
            i for i in range(count) if table.get(txn, f"k{i}") is not None
        ]


class TestSynchronousTee:
    def test_every_acknowledged_byte_is_on_the_standby(self):
        repo, table = make_primary()
        replicas = ReplicaSet(repo)
        commit_n(repo, table, 10)
        # No pump needed: delivery rides along with the commit force.
        assert replicas.lag_bytes() == [0]
        wal = repo.shards[0].log.wal
        assert replicas.standbys[0].next_lsn == wal.flushed_lsn

    def test_promoted_image_holds_every_commit(self):
        repo, table = make_primary()
        replicas = ReplicaSet(repo)
        commit_n(repo, table, 12)
        promoted = replicas.fail_over(0, reason="test")
        assert boot_promoted(promoted, 12) == list(range(12))

    def test_attach_time_catch_up_ships_old_history(self):
        repo, table = make_primary()
        commit_n(repo, table, 8)  # before any standby exists
        replicas = ReplicaSet(repo)
        assert replicas.lag_bytes() == [0]
        commit_n(repo, table, 4, start=8)
        promoted = replicas.fail_over(0, reason="test")
        assert boot_promoted(promoted, 12) == list(range(12))

    def test_fenced_primary_refuses_late_writes(self):
        repo, table = make_primary()
        replicas = ReplicaSet(repo)
        commit_n(repo, table, 3)
        replicas.fail_over(0, reason="test")
        with pytest.raises(WalFencedError):
            commit_n(repo, table, 1, start=3)


class TestLag:
    def test_pause_buffers_and_resume_delivers(self):
        repo, table = make_primary()
        replicas = ReplicaSet(repo)
        replicas.pause(0)
        commit_n(repo, table, 6)
        assert replicas.lag_bytes()[0] > 0
        replicas.resume(0)
        assert replicas.lag_bytes() == [0]

    def test_promotion_drains_a_paused_shipper(self):
        # standby.lag delays the standby but never loses acknowledged
        # bytes: fail_over drains the tee buffer before promoting.
        repo, table = make_primary()
        replicas = ReplicaSet(repo)
        replicas.pause(0)
        commit_n(repo, table, 6)
        assert replicas.lag_bytes()[0] > 0
        promoted = replicas.fail_over(0, reason="test")
        assert boot_promoted(promoted, 6) == list(range(6))


class TestCheckpointMirroring:
    def test_poll_mirrors_the_blob_verbatim(self):
        repo, table = make_primary()
        replicas = ReplicaSet(repo)
        commit_n(repo, table, 4)
        log = repo.shards[0].log
        blob = encode({"v": 2, "recovery_lsn": 0, "next_txn_id": 99,
                       "rms": {}})
        log.disk.replace(log.checkpoint_area, blob)
        replicas.pump()
        standby = replicas.standbys[0]
        assert bytes(standby.disk.read(standby.checkpoint_area)) == blob


class TestTornStandbyTail:
    def test_durable_mid_frame_prefix_is_trimmed_and_reshipped(self):
        # A standby that crashed mid-ingest recovers with a torn live
        # tail; its WAL boot trims back to the last whole frame and the
        # shipper's resync re-ships the gap.
        repo, table = make_primary()
        commit_n(repo, table, 8)
        wal = repo.shards[0].log.wal
        stream = wal.read_stream(0)
        sdisk = MemDisk()
        first = StandbyShard("prim", sdisk)
        first.ingest(stream[: len(stream) - 3], 0)  # cut mid-frame
        recovered = StandbyShard("prim", sdisk)  # reboot trims the tear
        assert recovered.next_lsn < len(stream)
        shipper = LogShipper(repo.shards[0].log, recovered)
        assert shipper.poll()
        assert recovered.next_lsn == wal.flushed_lsn
        promoted = recovered.promote()
        assert boot_promoted(promoted, 8) == list(range(8))

    def test_unflushed_tail_lost_in_standby_crash_is_reshipped(self):
        repo, table = make_primary()
        commit_n(repo, table, 8)
        log = repo.shards[0].log
        stream = log.wal.read_stream(0)
        sdisk = MemDisk(torn_tail_bytes=48)
        first = StandbyShard("prim", sdisk)
        cut = len(stream) // 2
        first.ingest(stream[:cut], 0)  # durable prefix
        first.wal.ingest(stream[cut:], cut)  # buffered, never flushed
        sdisk.crash()  # the standby node dies mid-ship
        sdisk.recover()
        recovered = StandbyShard("prim", sdisk)
        shipper = LogShipper(log, recovered)
        assert shipper.poll()
        assert recovered.next_lsn == log.wal.flushed_lsn
        promoted = recovered.promote()
        assert boot_promoted(promoted, 8) == list(range(8))


class TestPartialBatchFrame:
    def test_partial_batch_is_dropped_whole_and_reshipped(self):
        repo, table = make_primary()
        wal = repo.shards[0].log.wal
        chunks: list[tuple[int, bytes]] = []
        wal.on_append.append(lambda lsn, data: chunks.append((lsn, data)))
        with repo.tm.transaction() as txn:  # one multi-record commit
            for i in range(6):
                table.put(txn, f"k{i}", i)
        batch_lsn, batch = max(chunks, key=lambda c: len(c[1]))
        assert batch[:2] == _BATCH_MAGIC  # per-txn batching framed it

        stream = wal.read_stream(0)
        sdisk = MemDisk()
        first = StandbyShard("prim", sdisk)
        # Ship everything up to a cut *inside* the batch frame's body.
        first.ingest(stream[: batch_lsn + len(batch) - 4], 0)
        recovered = StandbyShard("prim", sdisk)
        # Damage anywhere in a batch drops the *whole* batch — the
        # trimmed standby must sit exactly at the batch frame start,
        # never at a sub-record boundary inside it.
        assert recovered.next_lsn == batch_lsn

        shipper = LogShipper(repo.shards[0].log, recovered)
        assert shipper.poll()  # idempotent re-ship of the whole frame
        assert recovered.next_lsn == wal.flushed_lsn
        ours = [(r.lsn, bytes(r.payload)) for r in recovered.wal.scan(0)]
        theirs = [(r.lsn, bytes(r.payload)) for r in wal.scan(0)]
        assert ours == theirs
