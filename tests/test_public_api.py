"""Public API surface tests: everything the README advertises exists
and round-trips."""

from __future__ import annotations

import pytest

import repro


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} missing"

    def test_version(self):
        assert repro.__version__.count(".") == 2

    @pytest.mark.parametrize(
        "name",
        [
            "TPSystem",
            "Client",
            "Clerk",
            "Server",
            "QueueManager",
            "QueueRepository",
            "TransactionManager",
            "KVStore",
            "MemDisk",
            "FileDisk",
            "TicketPrinter",
            "CashDispenser",
            "DisplayWithUserIds",
            "GuaranteeChecker",
            "FaultInjector",
            "TraceRecorder",
            "UserCheckpoint",
            "crash_every_step",
        ],
    )
    def test_headline_classes_exported(self, name):
        assert name in repro.__all__

    def test_quickstart_docstring_flow(self):
        """The module docstring's quickstart must actually work."""
        from repro import TicketPrinter, TPSystem

        system = TPSystem()
        device = TicketPrinter(trace=system.trace)
        server = system.server("s1", lambda txn, req: {"echo": req.body})
        server.start()
        try:
            client = system.client("c1", ["hello"], device)
            replies = client.run()
        finally:
            server.stop()
        assert [r.body for r in replies] == [{"echo": "hello"}]
        system.checker().assert_ok()

    def test_subpackages_importable(self):
        import repro.apps
        import repro.comm
        import repro.core
        import repro.queueing
        import repro.sim
        import repro.storage
        import repro.transaction

        assert repro.core.TPSystem is repro.TPSystem
