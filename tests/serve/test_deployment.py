"""The TCP deployment end to end: shards as real OS processes, the
clerk/server protocol over actual sockets, and the conservation claim —
every accepted request executed exactly once — across a real SIGKILL
plus supervisor restart.

These tests spawn subprocesses (``repro.serve.shardd``) and are the
closest thing in the suite to the paper's deployment picture: the
front-end world talks to queue managers it can only reach through a
network that loses connections when a process dies.
"""

import shutil
import tempfile

import pytest

from repro.core.devices import DisplayWithUserIds
from repro.core.request import Request, make_rid
from repro.core.system import TPSystem


@pytest.fixture
def tcp_system():
    data_dir = tempfile.mkdtemp(prefix="repro-test-tcp-")
    system = TPSystem(deployment="tcp", shards=2, data_dir=data_dir)
    try:
        yield system
    finally:
        system.close()
        shutil.rmtree(data_dir, ignore_errors=True)


def send(system, clerk, client_id, seq, body):
    request = Request(
        rid=make_rid(client_id, seq),
        body=body,
        client_id=client_id,
        reply_to=system.reply_queue_name(client_id),
    )
    clerk.send(request, request.rid)


class TestTcpDeployment:
    def test_round_trip_over_real_sockets(self, tcp_system):
        clerk = tcp_system.clerk("c1")
        clerk.connect()
        send(tcp_system, clerk, "c1", 1, {"work": 1})
        server = tcp_system.server("s1", lambda txn, r: {"done": r.body})
        assert server.process_one() is True
        device = DisplayWithUserIds(trace=tcp_system.trace)
        reply = clerk.receive(ckpt=device.state(), timeout=10)
        assert reply.body == {"done": {"work": 1}}
        device.process(reply.rid, reply.body)
        tcp_system.checker().assert_ok()

    def test_invalid_mode_combinations_rejected(self):
        with pytest.raises(ValueError):
            TPSystem(deployment="bogus")
        with pytest.raises(ValueError):
            TPSystem(deployment="tcp", replicate=True)
        with pytest.raises(ValueError):
            TPSystem(deployment="tcp", separate_reply_node=True)

    def test_kill_shard_requires_tcp(self):
        system = TPSystem()
        with pytest.raises(ValueError):
            system.kill_shard(0)

    def test_sigkill_and_restart_conserves_every_request(self, tcp_system):
        """The acceptance bar: a mixed workload across two clients, the
        request-queue shard SIGKILLed mid-workload and restarted by the
        supervisor, and afterwards every accepted request has exactly
        one execution and exactly one reply."""
        clerks = {}
        for cid in ("c1", "c2"):
            clerks[cid] = tcp_system.clerk(cid)
            clerks[cid].connect()
        # Phase 1: accept work on both clients, process some of it.
        for seq in (1, 2, 3):
            send(tcp_system, clerks["c1"], "c1", seq, {"c": "c1", "n": seq})
        for seq in (1, 2):
            send(tcp_system, clerks["c2"], "c2", seq, {"c": "c2", "n": seq})
        server = tcp_system.server("s1", lambda txn, r: {"echo": r.body})
        for _ in range(2):
            assert server.process_one() is True

        # SIGKILL the shard that owns the request queue — the worst one
        # to lose — then let the supervisor restart it (log recovery).
        victim = tcp_system.request_repo.shard_of(tcp_system.request_queue)
        shard = tcp_system.supervisor.shards[victim]
        epoch_before = shard.epoch
        assert shard.alive
        tcp_system.kill_shard(victim)
        assert not shard.alive
        tcp_system.restart_shard(victim)
        assert shard.alive
        assert shard.epoch == epoch_before + 1

        # Phase 2: the surviving backlog is intact; drain it.
        processed = 2
        while server.process_one():
            processed += 1
        assert processed == 5

        # Every client gets every reply, exactly once each.
        device = DisplayWithUserIds(trace=tcp_system.trace)
        got = {"c1": set(), "c2": set()}
        for cid, clerk in clerks.items():
            for _ in range(3 if cid == "c1" else 2):
                reply = clerk.receive(ckpt=device.state(), timeout=10)
                device.process(reply.rid, reply.body)
                got[cid].add(reply.body["echo"]["n"])
        assert got == {"c1": {1, 2, 3}, "c2": {1, 2}}
        assert tcp_system.request_qm.depth(tcp_system.request_queue) == 0
        tcp_system.checker().assert_ok()

    def test_restart_recovers_durable_backlog(self, tcp_system):
        """Requests accepted before a SIGKILL survive it: Send's promise
        ("the client knows that the request was stably stored") holds
        across a real process death."""
        clerk = tcp_system.clerk("c1")
        clerk.connect()
        for seq in (1, 2, 3):
            send(tcp_system, clerk, "c1", seq, {"n": seq})
        victim = tcp_system.request_repo.shard_of(tcp_system.request_queue)
        tcp_system.kill_shard(victim)
        tcp_system.restart_shard(victim)
        assert tcp_system.request_qm.depth(tcp_system.request_queue) == 3

    def test_poison_request_moves_to_error_queue(self, tcp_system):
        """max_aborts dequeue-aborts move the element to the error queue
        over the wire exactly as in-proc (Section 5's termination)."""
        clerk = tcp_system.clerk("c1")
        clerk.connect()
        send(tcp_system, clerk, "c1", 1, {"poison": True})

        def handler(_txn, request):
            raise RuntimeError("handler rejects this request")

        server = tcp_system.server("s1", handler)
        for _ in range(3):  # max_aborts=3
            with pytest.raises(RuntimeError):
                server.process_one()
        assert tcp_system.request_qm.depth(tcp_system.request_queue) == 0
        assert tcp_system.request_qm.depth(tcp_system.error_queue) == 1

    def test_resync_after_client_restart(self, tcp_system):
        """Figure 2 over real sockets: a client that reconnects learns
        its last sent rid from the stable registration and does not
        double-send."""
        clerk = tcp_system.clerk("c1")
        clerk.connect()
        send(tcp_system, clerk, "c1", 1, {"n": 1})
        # A new clerk instance for the same client id (process restart).
        reborn = tcp_system.clerk("c1")
        s_rid, _r_rid, _ckpt = reborn.connect()
        assert s_rid == make_rid("c1", 1)
        assert tcp_system.request_qm.depth(tcp_system.request_queue) == 1
