"""ShardService unit tests: the wire-facing dispatcher over one
repository shard, exercised in-process (no sockets) so every branch of
the transaction table, the 2PC ops, and the restart fallbacks is
reachable deterministically."""

import pytest

from repro.comm.wire import unwrap
from repro.errors import TransactionAborted
from repro.queueing.repository import QueueRepository
from repro.serve.service import ShardService
from repro.storage.disk import MemDisk


def make_service(disk=None, epoch=0):
    repo = QueueRepository("s0", disk if disk is not None else MemDisk())
    return ShardService(repo, epoch=epoch)


def call(service, **payload):
    return unwrap(service.handle(payload))


def register(service, queue="q", registrant="r1"):
    result = call(service, op="register", queue=queue, registrant=registrant,
                  stable=True)
    return result["handle"]


class TestAdmin:
    def test_hello_reports_identity(self):
        service = make_service(epoch=3)
        call(service, op="create_queue", queue="q")
        hello = call(service, op="hello")
        assert hello["name"] == "s0"
        assert hello["epoch"] == 3
        assert hello["queues"] == ["q"]

    def test_create_queue_absorbs_duplicates(self):
        """A retried create_queue (lost reply) must not error."""
        service = make_service()
        call(service, op="create_queue", queue="q")
        call(service, op="create_queue", queue="q")
        assert call(service, op="queue_names") == ["q"]

    def test_depths(self):
        service = make_service()
        call(service, op="create_queue", queue="q")
        handle = register(service)
        call(service, op="enqueue", handle=handle, body={"n": 1})
        assert call(service, op="depths") == {"q": 1}


class TestBranchTable:
    def test_transactional_enqueue_commits(self):
        service = make_service()
        call(service, op="create_queue", queue="q")
        handle = register(service)
        txn = call(service, op="txn_begin")
        call(service, op="enqueue", handle=handle, body={"n": 1}, txn=txn)
        # Not visible until the branch commits.
        assert call(service, op="depth", queue="q") == 0
        call(service, op="txn_commit", txn=txn)
        assert call(service, op="depth", queue="q") == 1

    def test_abort_rolls_back(self):
        service = make_service()
        call(service, op="create_queue", queue="q")
        handle = register(service)
        txn = call(service, op="txn_begin")
        call(service, op="enqueue", handle=handle, body={"n": 1}, txn=txn)
        call(service, op="txn_abort", txn=txn)
        assert call(service, op="depth", queue="q") == 0

    def test_unknown_branch_is_presumed_abort(self):
        """An operation naming a branch the shard does not know (it
        restarted since txn_begin) must fail the caller's transaction,
        not silently auto-commit."""
        service = make_service()
        call(service, op="create_queue", queue="q")
        handle = register(service)
        with pytest.raises(TransactionAborted):
            call(service, op="enqueue", handle=handle, body={}, txn=999)

    def test_duplicate_commit_is_idempotent(self):
        service = make_service()
        call(service, op="create_queue", queue="q")
        handle = register(service)
        txn = call(service, op="txn_begin")
        call(service, op="enqueue", handle=handle, body={"n": 1}, txn=txn)
        call(service, op="txn_commit", txn=txn)
        call(service, op="txn_commit", txn=txn)  # retried outcome: no-op
        assert call(service, op="depth", queue="q") == 1

    def test_duplicate_abort_is_idempotent(self):
        service = make_service()
        txn = call(service, op="txn_begin")
        call(service, op="txn_abort", txn=txn)
        call(service, op="txn_abort", txn=txn)


class TestTwoPhase:
    def test_prepare_then_commit_prepared(self):
        service = make_service()
        call(service, op="create_queue", queue="q")
        handle = register(service)
        txn = call(service, op="txn_begin")
        call(service, op="enqueue", handle=handle, body={"n": 1}, txn=txn)
        call(service, op="txn_prepare", txn=txn, gid="g1")
        assert call(service, op="depth", queue="q") == 0
        call(service, op="txn_commit_prepared", txn=txn, gid="g1")
        assert call(service, op="depth", queue="q") == 1
        # The retried outcome call after the branch finished: idempotent.
        call(service, op="txn_commit_prepared", txn=txn, gid="g1")
        assert call(service, op="depth", queue="q") == 1

    def test_decide_is_write_once_idempotent(self):
        service = make_service()
        call(service, op="txn_decide", gid="g1", decision="commit")
        call(service, op="txn_decide", gid="g1", decision="commit")
        assert call(service, op="txn_decision", gid="g1") == "commit"

    def test_unknown_gid_is_presumed_abort(self):
        service = make_service()
        assert call(service, op="txn_decision", gid="never-seen") == "abort"

    def test_decision_survives_restart(self):
        """The decision is force-logged: a successor service over the
        same disk must answer the same way (the coordinator's client
        polls exactly this after a mid-decide crash)."""
        disk = MemDisk()
        service = make_service(disk)
        call(service, op="txn_decide", gid="g9", decision="commit")
        reborn = make_service(disk, epoch=1)
        assert call(reborn, op="txn_decision", gid="g9") == "commit"

    def test_in_doubt_branch_resolved_after_restart(self):
        """Prepare, crash (new service over the same disk), and the
        supervisor's resolution path: the branch surfaces as in doubt,
        txn_resolve applies the decision, the data commits."""
        disk = MemDisk()
        service = make_service(disk)
        call(service, op="create_queue", queue="q")
        handle = register(service)
        txn = call(service, op="txn_begin")
        call(service, op="enqueue", handle=handle, body={"n": 1}, txn=txn)
        call(service, op="txn_prepare", txn=txn, gid="g7")

        reborn = make_service(disk, epoch=1)
        in_doubt = call(reborn, op="in_doubt")
        assert [b["gid"] for b in in_doubt] == ["g7"]
        assert call(reborn, op="txn_resolve", gid="g7", decision="commit")
        assert call(reborn, op="depth", queue="q") == 1

    def test_outcome_for_restarted_branch_falls_back_to_gid(self):
        """txn_commit_prepared naming a branch id the restarted shard no
        longer has must resolve by gid instead (the decision was durable
        before phase 2 began, so this is always safe)."""
        disk = MemDisk()
        service = make_service(disk)
        call(service, op="create_queue", queue="q")
        handle = register(service)
        txn = call(service, op="txn_begin")
        call(service, op="enqueue", handle=handle, body={"n": 2}, txn=txn)
        call(service, op="txn_prepare", txn=txn, gid="g8")

        reborn = make_service(disk, epoch=1)
        call(reborn, op="txn_commit_prepared", txn=txn, gid="g8")
        assert call(reborn, op="depth", queue="q") == 1
