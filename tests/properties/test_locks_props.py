"""Property-based lock-manager tests.

Invariant after any sequence of try_acquire / release operations:
no two holders of the same resource have incompatible modes.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.transaction.locks import LockManager, LockMode

OWNERS = ["t1", "t2", "t3"]
RESOURCES = ["r1", "r2"]
MODES = list(LockMode)

ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("acquire"),
            st.sampled_from(OWNERS),
            st.sampled_from(RESOURCES),
            st.sampled_from(MODES),
        ),
        st.tuples(
            st.just("release"),
            st.sampled_from(OWNERS),
            st.just(""),
            st.just(LockMode.S),
        ),
    ),
    max_size=40,
)


@given(ops)
@settings(max_examples=200, deadline=None)
def test_no_incompatible_coholders(op_list):
    lm = LockManager(default_timeout=0.0)
    for op, owner, resource, mode in op_list:
        if op == "acquire":
            lm.try_acquire(owner, resource, mode)
        else:
            lm.release_all(owner)
        for res in RESOURCES:
            holders = lm.holders(res)
            items = list(holders.items())
            for i, (o1, m1) in enumerate(items):
                for o2, m2 in items[i + 1 :]:
                    assert m1.compatible(m2), (
                        f"{o1}:{m1.value} and {o2}:{m2.value} co-hold {res}"
                    )


@given(ops)
@settings(max_examples=100, deadline=None)
def test_held_by_matches_holders(op_list):
    lm = LockManager(default_timeout=0.0)
    for op, owner, resource, mode in op_list:
        if op == "acquire":
            lm.try_acquire(owner, resource, mode)
        else:
            lm.release_all(owner)
    for owner in OWNERS:
        for resource in lm.held_by(owner):
            assert owner in lm.holders(resource)
    for resource in RESOURCES:
        for owner in lm.holders(resource):
            assert resource in lm.held_by(owner)


@given(ops, st.sampled_from(OWNERS), st.sampled_from(OWNERS))
@settings(max_examples=100, deadline=None)
def test_transfer_preserves_compatibility(op_list, src, dst):
    lm = LockManager(default_timeout=0.0)
    for op, owner, resource, mode in op_list:
        if op == "acquire":
            lm.try_acquire(owner, resource, mode)
        else:
            lm.release_all(owner)
    lm.transfer(src, dst)
    for resource in RESOURCES:
        items = list(lm.holders(resource).items())
        for i, (o1, m1) in enumerate(items):
            for o2, m2 in items[i + 1 :]:
                assert m1.compatible(m2)
