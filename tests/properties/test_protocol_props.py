"""Property-based end-to-end protocol test: random work lists, random
crash points, random handler failure patterns — the Section 3
guarantees must hold on every generated execution."""

from __future__ import annotations

import threading

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.client import UserCheckpoint
from repro.core.devices import TicketPrinter
from repro.core.guarantees import GuaranteeChecker
from repro.core.system import TPSystem
from repro.errors import SimulatedCrash
from repro.sim.crash import FaultInjector
from repro.sim.trace import TraceRecorder

# Crash points known to appear in a single-txn request cycle.
CRASH_POINTS = st.sampled_from(
    [
        "clerk.send.before_enqueue",
        "clerk.send.after_enqueue",
        "server.after_dequeue",
        "server.after_process",
        "server.before_commit",
        "tm.commit.before_log",
        "tm.commit.after_log",
        "client.after_receive",
        "device.ticket.before_print",
        "device.ticket.after_print",
        "client.after_process",
    ]
)


@given(
    work=st.lists(st.integers(0, 9), min_size=1, max_size=4),
    crash_point=CRASH_POINTS,
    crash_hit=st.integers(1, 3),
    flaky_attempts=st.integers(0, 2),
)
@settings(max_examples=60, deadline=None)
def test_guarantees_under_random_crash_and_flaky_handler(
    work, crash_point, crash_hit, flaky_attempts
):
    trace = TraceRecorder()
    injector = FaultInjector(record=False)
    injector.arm(crash_point, hit=crash_hit)
    system = TPSystem(injector=injector, trace=trace, max_aborts=10)
    device = TicketPrinter(trace=trace, injector=injector)
    user_log = UserCheckpoint()

    failures = {"left": flaky_attempts}

    def handler(txn, request):
        if failures["left"] > 0:
            failures["left"] -= 1
            raise RuntimeError("transient handler failure")
        return {"echo": request.body}

    def cooperative_run(system):
        client = system.client(
            "c1", work, device, receive_timeout=None, user_log=user_log
        )
        if user_log.is_done():
            return
        seq = client.resynchronize()
        server = system.server("s", handler)
        while seq <= len(work):
            client.send_only(seq)
            while True:
                try:
                    if server.process_one():
                        break
                except RuntimeError:
                    continue
            reply = client.clerk.receive(ckpt=device.state(), timeout=1)
            device.process(reply.rid, reply.body)
            seq += 1
        user_log.mark_done()
        client.clerk.disconnect()

    try:
        cooperative_run(system)
        crashed = False
    except SimulatedCrash:
        crashed = True

    if crashed:
        system = system.reopen()
        # Finish with a threaded recovery server (no injector).
        client = system.client(
            "c1", work, device, receive_timeout=5, user_log=user_log
        )
        server = system.server("recovery", handler)
        done = threading.Event()
        from repro.errors import DeadlockError, TransactionAborted

        thread = threading.Thread(
            target=lambda: server.serve_until(
                done.is_set,
                0.02,
                retry_on=(RuntimeError, DeadlockError, TransactionAborted),
            ),
            daemon=True,
        )
        thread.start()
        try:
            client.run()
        finally:
            done.set()
            thread.join(timeout=10)

    GuaranteeChecker(trace).assert_ok()
    # Non-idempotent device: exactly one ticket per request.
    for seq in range(1, len(work) + 1):
        assert len(device.tickets_for(f"c1#{seq}")) == 1
