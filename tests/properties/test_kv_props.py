"""Property-based tests on the KV store: a random mix of committed and
aborted transactions plus crashes always equals the committed-only
history applied to a plain dict."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.disk import MemDisk
from repro.storage.kvstore import KVStore
from repro.transaction.locks import LockManager
from repro.transaction.log import LogManager
from repro.transaction.manager import TransactionManager
from repro.transaction.recovery import recover

keys = st.sampled_from(["a", "b", "c", "d"])

txn_ops = st.lists(
    st.one_of(
        st.tuples(st.just("put"), keys, st.integers(0, 99)),
        st.tuples(st.just("del"), keys, st.just(0)),
    ),
    min_size=1,
    max_size=4,
)

history = st.lists(
    st.tuples(txn_ops, st.sampled_from(["commit", "abort"])),
    max_size=12,
)


def run_history(h, *, crash_every=None):
    disk = MemDisk()
    log = LogManager(disk)
    tm = TransactionManager(log, LockManager(default_timeout=2.0))
    store = KVStore("m")
    model: dict[str, int] = {}
    for index, (ops, outcome) in enumerate(h):
        txn = tm.begin()
        staged = dict(model)
        for op, key, value in ops:
            if op == "put":
                store.put(txn, key, value)
                staged[key] = value
            else:
                store.delete(txn, key)
                staged.pop(key, None)
        if outcome == "commit":
            tm.commit(txn)
            model = staged
        else:
            tm.abort(txn)
        if crash_every and (index + 1) % crash_every == 0:
            disk.crash()
            disk.recover()
            log = LogManager(disk)
            tm = TransactionManager(log, LockManager(default_timeout=2.0))
            store = KVStore("m")
            recover(log, {store.rm_name: store}, tm)
    return disk, store, model


@given(history)
@settings(max_examples=150, deadline=None)
def test_store_equals_committed_model(h):
    _, store, model = run_history(h)
    assert store.snapshot() == model


@given(history)
@settings(max_examples=100, deadline=None)
def test_crash_recovery_equals_committed_model(h):
    disk, _, model = run_history(h)
    disk.crash()
    disk.recover()
    store2 = KVStore("m")
    recover(LogManager(disk), {store2.rm_name: store2})
    assert store2.snapshot() == model


@given(history, st.integers(1, 4))
@settings(max_examples=75, deadline=None)
def test_periodic_crashes_mid_history(h, crash_every):
    _, store, model = run_history(h, crash_every=crash_every)
    assert store.snapshot() == model
