"""Property-based tests on recoverable-queue invariants.

A random interleaving of enqueues, transactional dequeues, aborts,
kills, and crashes must preserve:

* conservation — every enqueued element is in exactly one place:
  still queued, consumed by a committed dequeue, killed, or moved to
  the error queue;
* priority/FIFO order among committed dequeues (in skip-locked mode,
  order is checked only between non-overlapping operations);
* recovery equivalence — a crash + replay yields exactly the committed
  state.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QueueEmpty
from repro.queueing.repository import QueueRepository
from repro.storage.disk import MemDisk

ops = st.lists(
    st.one_of(
        st.tuples(st.just("enq"), st.integers(0, 5)),        # priority
        st.tuples(st.just("deq_commit"), st.just(0)),
        st.tuples(st.just("deq_abort"), st.just(0)),
        st.tuples(st.just("kill_newest"), st.just(0)),
        st.tuples(st.just("crash"), st.just(0)),
    ),
    max_size=30,
)


@given(ops)
@settings(max_examples=120, deadline=None)
def test_conservation_and_recovery(op_list):
    disk = MemDisk()
    repo = QueueRepository("p", disk)
    repo.create_queue("err")
    queue = repo.create_queue("q", error_queue="err", max_aborts=3)

    enqueued: set[int] = set()
    consumed: set[int] = set()
    killed: set[int] = set()
    live_eids: list[int] = []
    body_counter = 0

    for op, arg in op_list:
        if op == "enq":
            with repo.tm.transaction() as txn:
                eid = queue.enqueue(txn, body_counter, priority=arg)
            enqueued.add(eid)
            live_eids.append(eid)
            body_counter += 1
        elif op == "deq_commit":
            try:
                with repo.tm.transaction() as txn:
                    element = queue.dequeue(txn)
                consumed.add(element.eid)
                live_eids.remove(element.eid)
            except QueueEmpty:
                pass
        elif op == "deq_abort":
            txn = repo.tm.begin()
            try:
                queue.dequeue(txn)
            except QueueEmpty:
                repo.tm.abort(txn)
            else:
                repo.tm.abort(txn)
        elif op == "kill_newest":
            if live_eids:
                eid = live_eids[-1]
                if queue.kill_element(eid):
                    killed.add(eid)
                    live_eids.remove(eid)
        elif op == "crash":
            disk.crash()
            disk.recover()
            repo = QueueRepository("p", disk)
            queue = repo.get_queue("q")

    # Conservation: every enqueued eid is in exactly one bucket.
    err_queue = repo.get_queue("err")
    in_queue = set(queue.eids())
    in_error = set(err_queue.eids())
    assert in_queue | in_error | consumed | killed == enqueued
    assert in_queue.isdisjoint(consumed)
    assert in_queue.isdisjoint(killed)
    assert in_error.isdisjoint(in_queue)

    # Recovery equivalence: one more crash must not change anything.
    disk.crash()
    disk.recover()
    repo2 = QueueRepository("p", disk)
    assert set(repo2.get_queue("q").eids()) == in_queue
    assert set(repo2.get_queue("err").eids()) == in_error


@given(st.lists(st.integers(0, 9), min_size=1, max_size=15))
@settings(max_examples=100, deadline=None)
def test_dequeue_order_matches_priority_then_fifo(priorities):
    repo = QueueRepository("p", MemDisk())
    queue = repo.create_queue("q")
    expected = []
    for i, priority in enumerate(priorities):
        with repo.tm.transaction() as txn:
            queue.enqueue(txn, i, priority=priority)
        expected.append((-priority, i))
    expected.sort()
    got = []
    for _ in priorities:
        with repo.tm.transaction() as txn:
            got.append(queue.dequeue(txn).body)
    assert got == [i for (_neg, i) in expected]


@given(st.lists(st.integers(0, 9), min_size=1, max_size=10), st.integers(1, 5))
@settings(max_examples=60, deadline=None)
def test_abort_bound_routes_to_error_queue_exactly_once(bodies, max_aborts):
    repo = QueueRepository("p", MemDisk())
    repo.create_queue("err")
    queue = repo.create_queue("q", error_queue="err", max_aborts=max_aborts)
    with repo.tm.transaction() as txn:
        for body in bodies:
            queue.enqueue(txn, body)
    # Abort every dequeue until the queue drains into the error queue.
    for _ in range(len(bodies) * max_aborts + 5):
        txn = repo.tm.begin()
        try:
            queue.dequeue(txn)
        except QueueEmpty:
            repo.tm.abort(txn)
            break
        repo.tm.abort(txn)
    assert queue.depth() == 0
    assert repo.get_queue("err").depth() == len(bodies)
