"""Property-based tests for :class:`repro.storage.faults.FaultyDisk`.

The decorator's contract is all-or-nothing per call: every operation
either raises (:class:`~repro.errors.DiskIOError` /
:class:`~repro.errors.DiskFullError`) with **no effect**, or behaves
exactly like the wrapped disk.  We drive a random operation sequence
with random planned faults and failure rates against a
``FaultyDisk(MemDisk())`` while mirroring every *acknowledged*
operation in a shadow model of the MemDisk semantics; at each readable
point the real disk must agree with the model bit-for-bit — in
particular the append-only areas only ever grow by acknowledged
appends, in order (the prefix contract).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DiskFullError, DiskIOError
from repro.storage.disk import MemDisk
from repro.storage.faults import (
    DISK_FULL,
    IO_ERROR,
    PERMANENT,
    DiskFault,
    FaultyDisk,
)

AREAS = ("log", "ckpt")

# corrupt faults intentionally violate read-back equality (they model
# silent media decay); the no-effect contract is about the other kinds
fault_strategy = st.builds(
    DiskFault,
    op=st.sampled_from(("append", "flush", "read", "replace")),
    hit=st.integers(min_value=1, max_value=12),
    kind=st.sampled_from((IO_ERROR, DISK_FULL, PERMANENT)),
    area=st.sampled_from(AREAS + (None,)),
    duration=st.integers(min_value=1, max_value=3),
)

op_strategy = st.one_of(
    st.tuples(st.just("append"), st.sampled_from(AREAS),
              st.binary(min_size=1, max_size=8)),
    st.tuples(st.just("flush"), st.sampled_from(AREAS), st.none()),
    st.tuples(st.just("read"), st.sampled_from(AREAS), st.none()),
    st.tuples(st.just("replace"), st.sampled_from(AREAS),
              st.binary(max_size=8)),
    st.tuples(st.just("crash"), st.none(), st.none()),
)


class ShadowDisk:
    """Reference model of MemDisk semantics (torn_tail_bytes=0)."""

    def __init__(self):
        self.durable: dict[str, bytes] = {}
        self.buffer: dict[str, bytes] = {}

    def append(self, area, data):
        self.buffer[area] = self.buffer.get(area, b"") + data
        self.durable.setdefault(area, b"")

    def flush(self, area):
        self.durable[area] = self.durable.get(area, b"") + self.buffer.get(area, b"")
        self.buffer[area] = b""

    def replace(self, area, data):
        self.durable[area] = data
        self.buffer[area] = b""

    def crash(self):
        self.buffer = {area: b"" for area in self.buffer}

    def read(self, area):
        return self.durable.get(area, b"") + self.buffer.get(area, b"")


@given(
    faults=st.lists(fault_strategy, max_size=4),
    rates=st.fixed_dictionaries(
        {},
        optional={
            "append": st.sampled_from((0.0, 0.3, 1.0)),
            "flush": st.sampled_from((0.0, 0.3, 1.0)),
        },
    ),
    seed=st.integers(min_value=0, max_value=2**16),
    ops=st.lists(op_strategy, max_size=30),
)
@settings(max_examples=200, deadline=None)
def test_every_op_raises_or_matches_the_model(faults, rates, seed, ops):
    inner = MemDisk()
    disk = FaultyDisk(inner, faults=faults, seed=seed, rates=rates)
    model = ShadowDisk()
    for op, area, data in ops:
        if op == "crash":
            disk.crash()
            disk.recover()
            disk.revive()  # restart protocol: replace a dead device
            model.crash()
            continue
        try:
            if op == "append":
                disk.append(area, data)
            elif op == "flush":
                disk.flush(area)
            elif op == "replace":
                disk.replace(area, data)
            else:
                observed = disk.read(area)
                assert observed == model.read(area)
                continue
        except (DiskIOError, DiskFullError):
            continue  # no effect: the model is not advanced
        # Acknowledged: mirror the operation in the model.
        getattr(model, op)(area, *([data] if data is not None else []))
    # Quiesce the fault plan and compare the final images directly.
    disk.heal()
    for area in AREAS:
        assert disk.read(area) == model.read(area)
        assert inner.durable_read(area) == model.durable.get(area, b"")


@given(
    faults=st.lists(fault_strategy, max_size=4),
    seed=st.integers(min_value=0, max_value=2**16),
    payloads=st.lists(st.binary(min_size=1, max_size=8), max_size=20),
)
@settings(max_examples=200, deadline=None)
def test_acknowledged_appends_form_the_exact_area_contents(
    faults, seed, payloads
):
    """The append-only prefix contract: an area's contents are exactly
    the concatenation of the acknowledged appends, in submission order —
    a failed append contributes nothing, anywhere."""
    disk = FaultyDisk(MemDisk(), faults=faults, seed=seed)
    acknowledged = []
    for payload in payloads:
        try:
            disk.append("log", payload)
        except (DiskIOError, DiskFullError):
            disk.revive()  # a PERMANENT fault would fail all the rest
            continue
        acknowledged.append(payload)
    disk.heal()
    assert disk.read("log") == b"".join(acknowledged)
