"""Property-based tests on persistent registration (Section 4.3).

Invariant: after any sequence of tagged operations, aborted
transactions, and crashes, re-Register returns exactly the tag/eid of
the registrant's last *committed* tagged operation.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QueueEmpty
from repro.queueing.manager import QueueManager
from repro.queueing.repository import QueueRepository
from repro.storage.disk import MemDisk

ops = st.lists(
    st.one_of(
        st.tuples(st.just("enq_commit"), st.integers(0, 99)),
        st.tuples(st.just("enq_abort"), st.integers(0, 99)),
        st.tuples(st.just("deq_commit"), st.just(0)),
        st.tuples(st.just("deq_abort"), st.just(0)),
        st.tuples(st.just("crash"), st.just(0)),
    ),
    max_size=20,
)


@given(ops)
@settings(max_examples=120, deadline=None)
def test_reregister_returns_last_committed_tagged_op(op_list):
    disk = MemDisk()
    repo = QueueRepository("rp", disk)
    qm = QueueManager(repo)
    qm.create_queue("q")
    handle, _, _ = qm.register("q", "alice")

    expected_tag = None
    tag_counter = 0

    for op, value in op_list:
        tag_counter += 1
        tag = f"t{tag_counter}"
        if op == "enq_commit":
            qm.enqueue(handle, value, tag=tag)
            expected_tag = tag
        elif op == "enq_abort":
            txn = repo.tm.begin()
            qm.enqueue(handle, value, tag=tag, txn=txn)
            repo.tm.abort(txn)
            # aborted: the tag must NOT move
        elif op == "deq_commit":
            try:
                qm.dequeue(handle, tag=tag)
                expected_tag = tag
            except QueueEmpty:
                pass
        elif op == "deq_abort":
            txn = repo.tm.begin()
            try:
                qm.dequeue(handle, tag=tag, txn=txn)
            except QueueEmpty:
                pass
            repo.tm.abort(txn)
        elif op == "crash":
            disk.crash()
            disk.recover()
            repo = QueueRepository("rp", disk)
            qm = QueueManager(repo)
            handle, observed_tag, _ = qm.register("q", "alice")
            assert observed_tag == expected_tag

    _, final_tag, _ = qm.register("q", "alice")
    assert final_tag == expected_tag


@given(st.lists(st.sampled_from(["a", "b", "c"]), min_size=1, max_size=10))
@settings(max_examples=60, deadline=None)
def test_registrants_isolated(registrant_sequence):
    """Interleaved operations by several registrants never leak tags."""
    repo = QueueRepository("rp", MemDisk())
    qm = QueueManager(repo)
    qm.create_queue("q")
    handles = {}
    last = {}
    for i, name in enumerate(registrant_sequence):
        if name not in handles:
            handles[name], _, _ = qm.register("q", name)
        tag = f"{name}-{i}"
        qm.enqueue(handles[name], i, tag=tag)
        last[name] = tag
    for name, expected in last.items():
        _, tag, _ = qm.register("q", name)
        assert tag == expected
