"""Property: crashing at *any* point inside the fuzzy-checkpoint
protocol leaves exactly the state a checkpoint-free crash would have —
the checkpoint is pure optimisation, never observable in outcomes."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos.schedule import CHECKPOINT_CRASH_POINTS
from repro.errors import SimulatedCrash
from repro.queueing.repository import QueueRepository
from repro.sim.crash import FaultInjector
from repro.storage.disk import MemDisk

# (committed enqueue payloads, committed table puts, leave a txn open?)
workloads = st.tuples(
    st.lists(st.integers(min_value=0, max_value=99), max_size=6),
    st.lists(
        st.tuples(st.sampled_from(["a", "b", "c"]), st.integers(0, 9)),
        max_size=4,
    ),
    st.booleans(),
)


def _run_workload(repo: QueueRepository, workload) -> None:
    payloads, puts, leave_open = workload
    q = repo.create_queue("q")
    table = repo.create_table("t")
    for payload in payloads:
        with repo.tm.transaction() as txn:
            q.enqueue(txn, payload)
    for key, value in puts:
        with repo.tm.transaction() as txn:
            table.put(txn, key, value)
    if leave_open:
        open_txn = repo.tm.begin()
        q.enqueue(open_txn, "never-committed")
        table.put(open_txn, "open", "never-committed")
        # deliberately neither committed nor aborted: the crash takes it


def _observe(disk: MemDisk) -> tuple:
    disk.recover()
    repo = QueueRepository("r", disk)
    q = repo.get_queue("q")
    bodies = []
    with repo.tm.transaction() as txn:
        while q.depth() > 0:
            bodies.append(q.dequeue(txn).body)
    table = repo.get_table("t")
    values = {key: table.peek(key) for key in ("a", "b", "c", "open")}
    return tuple(bodies), tuple(sorted(values.items(), key=lambda kv: kv[0]))


@given(st.sampled_from(CHECKPOINT_CRASH_POINTS), workloads)
@settings(max_examples=60, deadline=None)
def test_crash_at_any_ckpt_point_equals_no_checkpoint_recovery(
    point, workload
):
    # With a checkpoint that dies at `point` (the injector's on_crash
    # hook freezes the disk right there) ...
    crashed_disk = MemDisk()
    injector = FaultInjector(record=False)
    repo = QueueRepository("r", crashed_disk, injector=injector)
    _run_workload(repo, workload)
    injector.arm(point)
    with pytest.raises(SimulatedCrash):
        repo.checkpoint()

    # ... versus the identical workload, no checkpoint, plain crash.
    plain_disk = MemDisk()
    baseline = QueueRepository("r", plain_disk)
    _run_workload(baseline, workload)
    plain_disk.crash()

    assert _observe(crashed_disk) == _observe(plain_disk)
