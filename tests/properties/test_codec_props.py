"""Property-based tests for the codec: round-trip and determinism over
the full value domain."""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.codec import decode, encode

# The codec's value domain: None, bool, int, float, str, bytes,
# list, dict[str, value].
scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(),
    st.floats(allow_nan=False),  # NaN breaks == comparison, tested separately
    st.text(),
    st.binary(),
)

values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=6),
        st.dictionaries(st.text(), children, max_size=6),
    ),
    max_leaves=30,
)


@given(values)
@settings(max_examples=300)
def test_round_trip(value):
    assert decode(encode(value)) == value


@given(values)
@settings(max_examples=200)
def test_encoding_deterministic(value):
    assert encode(value) == encode(value)


@given(st.integers())
def test_int_round_trip_any_magnitude(n):
    assert decode(encode(n)) == n


@given(st.floats())
def test_float_round_trip_bitwise(x):
    result = decode(encode(x))
    if math.isnan(x):
        assert math.isnan(result)
    else:
        assert result == x or (result == 0.0 and x == 0.0)


@given(st.binary())
def test_bytes_round_trip(data):
    assert decode(encode(data)) == data


@given(values, st.binary(min_size=1, max_size=4))
@settings(max_examples=100)
def test_trailing_garbage_always_detected(value, garbage):
    import pytest

    from repro.storage.codec import CodecError

    with pytest.raises(CodecError):
        decode(encode(value) + garbage)


@given(st.lists(values, max_size=5))
@settings(max_examples=100)
def test_list_preserves_order_and_length(items):
    decoded = decode(encode(items))
    assert len(decoded) == len(items)
    assert decoded == items
