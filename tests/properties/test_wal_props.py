"""Property-based tests for the WAL: any prefix-truncation (torn write)
yields a valid prefix of the record sequence."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.disk import MemDisk
from repro.storage.wal import WriteAheadLog


@given(st.lists(st.binary(max_size=64), max_size=20))
@settings(max_examples=150)
def test_scan_returns_exactly_what_was_appended(payloads):
    wal = WriteAheadLog(MemDisk())
    for payload in payloads:
        wal.append(payload)
    wal.flush()
    assert [r.payload for r in wal.records()] == payloads


@given(
    st.lists(st.binary(min_size=1, max_size=32), min_size=1, max_size=10),
    st.integers(min_value=0, max_value=500),
)
@settings(max_examples=200)
def test_any_truncation_yields_a_prefix(payloads, cut):
    """Chop the live segment at an arbitrary byte: the scan must return
    a prefix of the appended records (the torn tail is silently
    dropped — a cut inside the segment header drops the whole segment),
    never garbage and never an out-of-order subset."""
    disk = MemDisk()
    wal = WriteAheadLog(disk)
    for payload in payloads:
        wal.append(payload)
    wal.flush()
    live = wal.live_area
    raw = disk.read(live)
    disk.replace(live, raw[: min(cut, len(raw))])
    recovered = [r.payload for r in WriteAheadLog(disk).scan()]
    assert recovered == payloads[: len(recovered)]


@given(st.lists(st.binary(max_size=32), min_size=1, max_size=10))
@settings(max_examples=100)
def test_lsns_strictly_increase(payloads):
    wal = WriteAheadLog(MemDisk())
    lsns = [wal.append(p) for p in payloads]
    assert lsns == sorted(set(lsns))
