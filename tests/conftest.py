"""Shared fixtures for the test suite."""

from __future__ import annotations

import threading

import pytest

from repro.core.devices import DisplayWithUserIds, TicketPrinter
from repro.core.system import TPSystem
from repro.queueing.manager import QueueManager
from repro.queueing.repository import QueueRepository
from repro.sim.crash import FaultInjector
from repro.sim.trace import TraceRecorder
from repro.storage.disk import MemDisk
from repro.transaction.locks import LockManager
from repro.transaction.log import LogManager
from repro.transaction.manager import TransactionManager


@pytest.fixture
def disk() -> MemDisk:
    return MemDisk()


@pytest.fixture
def log(disk: MemDisk) -> LogManager:
    return LogManager(disk)


@pytest.fixture
def locks() -> LockManager:
    return LockManager(default_timeout=2.0)


@pytest.fixture
def tm(log: LogManager, locks: LockManager) -> TransactionManager:
    return TransactionManager(log, locks)


@pytest.fixture
def repo(disk: MemDisk) -> QueueRepository:
    return QueueRepository("test", disk)


@pytest.fixture
def qm(repo: QueueRepository) -> QueueManager:
    return QueueManager(repo)


@pytest.fixture
def trace() -> TraceRecorder:
    return TraceRecorder()


@pytest.fixture
def injector() -> FaultInjector:
    return FaultInjector()


@pytest.fixture
def system() -> TPSystem:
    return TPSystem()


@pytest.fixture
def display(system: TPSystem) -> DisplayWithUserIds:
    return DisplayWithUserIds(trace=system.trace)


@pytest.fixture
def printer(system: TPSystem) -> TicketPrinter:
    return TicketPrinter(trace=system.trace)


def run_with_server(system: TPSystem, server, client):
    """Run ``client.run()`` with ``server`` serving in a thread."""
    done = threading.Event()
    thread = threading.Thread(
        target=lambda: server.serve_until(done.is_set, 0.02), daemon=True
    )
    thread.start()
    try:
        return client.run()
    finally:
        done.set()
        thread.join(timeout=10)


def echo_handler(txn, request):
    """The simplest server handler: echo the request body."""
    return {"echo": request.body}
