"""Streaming crash sweep (Section 11 extension): a windowed stream
crashed at every step; a fresh incarnation resumes per slot and the
stream still completes exactly once per request."""

from __future__ import annotations

import threading

from repro.core.guarantees import GuaranteeChecker
from repro.core.streaming import StreamingClient
from repro.core.system import TPSystem
from repro.sim.harness import crash_every_step
from repro.sim.trace import TraceRecorder

WORK = ["w0", "w1", "w2", "w3"]
WINDOW = 2


def _handler(txn, request):
    return {"echo": request.body}


def _scenario(injector):
    trace = TraceRecorder()
    system = TPSystem(injector=injector, trace=trace)
    _scenario.state = {"system": system}
    server = system.server("s", _handler)
    stream = StreamingClient(system, "st", WORK, window=WINDOW, receive_timeout=None)
    # Cooperative drive: send a window, serve, receive, refill.
    next_index = stream._connect_slots()
    outstanding = {}
    for slot in range(stream.window):
        index = next_index[slot]
        if index < len(WORK) and index not in stream.replies:
            stream._send(slot, index)
            outstanding[slot] = index
    while outstanding:
        while server.process_one():
            pass
        for slot in list(outstanding):
            index = outstanding.pop(slot)
            reply = stream.clerks[slot].receive(ckpt=None, timeout=1)
            stream._accept(index, reply)
            following = index + stream.window
            if following < len(WORK):
                stream._send(slot, following)
                outstanding[slot] = following
    for clerk in stream.clerks:
        clerk.disconnect()
    return _scenario.state


def _recover(state):
    system2 = state["system"].reopen()
    # The registrations may be gone for slots that disconnected before
    # the crash; the durable marker of overall completion is whether
    # every reply queue is empty AND every slot registration is gone.
    # Simpler: count executed work via trace witnesses and only re-run
    # if something is missing.
    executed = set(system2.trace.rids("request.executed")) | set(
        system2.trace.rids("reply.received")
    )
    if len(executed) < len(WORK):
        stream = StreamingClient(system2, "st", WORK, window=WINDOW,
                                 receive_timeout=5)
        server = system2.server("s-r", _handler)
        done = threading.Event()
        thread = threading.Thread(
            target=lambda: server.serve_until(done.is_set, 0.02), daemon=True
        )
        thread.start()
        try:
            stream.run()
        finally:
            done.set()
            thread.join(timeout=10)
    return system2


def _check(state, system2, plan):
    try:
        executed = system2.trace.rids("request.executed")
        assert len(executed) == len(set(executed)), f"duplicates: {executed}"
        checker = GuaranteeChecker(system2.trace)
        violations = checker.exactly_once(require_completion=False)
        violations += checker.request_reply_matching()
        assert not violations, violations
    except AssertionError as exc:
        raise AssertionError(f"crash at {plan}: {exc}") from exc
    return True


class TestStreamingCrashSweep:
    def test_stream_exactly_once_at_every_crash_point(self):
        results = crash_every_step(_scenario, _recover, _check)
        crashed = sum(1 for r in results if r.crashed)
        assert crashed >= 40
        assert all(r.check_result for r in results)
