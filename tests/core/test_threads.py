"""Concurrent client-thread tests (Section 5's extension)."""

from __future__ import annotations

import threading

import pytest

from repro.core.devices import DisplayWithUserIds, TicketPrinter
from repro.core.guarantees import GuaranteeChecker
from repro.core.threads import (
    ThreadedClient,
    connect_all_threads,
    thread_registrant,
)

from tests.conftest import echo_handler


def with_servers(system, fn, count=2):
    stop = threading.Event()
    servers = [system.server(f"s{i}", echo_handler) for i in range(count)]
    threads = [
        threading.Thread(target=s.serve_until, args=(stop.is_set, 0.01), daemon=True)
        for s in servers
    ]
    for t in threads:
        t.start()
    try:
        return fn()
    finally:
        stop.set()
        for t in threads:
            t.join(timeout=10)


class TestThreadedClient:
    def test_requires_a_processor(self, system):
        with pytest.raises(ValueError):
            ThreadedClient(system, "c", ["x"], processors=[])

    def test_work_partitioned_round_robin(self, system):
        displays = [DisplayWithUserIds(trace=system.trace) for _ in range(2)]
        client = ThreadedClient(system, "tc", list(range(6)), displays)
        assert client._partition(0) == [0, 2, 4]
        assert client._partition(1) == [1, 3, 5]

    def test_threads_run_concurrently_to_completion(self, system):
        displays = [DisplayWithUserIds(trace=system.trace) for _ in range(3)]
        client = ThreadedClient(system, "tc", list(range(9)), displays,
                                receive_timeout=10)
        results = with_servers(system, client.run, count=3)
        assert all(len(r) == 3 for r in results)
        GuaranteeChecker(system.trace).assert_ok()

    def test_tag_array_connect(self, system):
        # Run thread 0 partially, then read the whole per-thread array.
        displays = [TicketPrinter(trace=system.trace) for _ in range(2)]
        client = ThreadedClient(system, "tc", ["a", "b"], displays)
        t0 = client._client(0)
        t0.resynchronize()
        t0.send_only(1)
        rows = connect_all_threads(system, "tc", 2)
        assert rows[0].s_rid == f"{thread_registrant('tc', 0)}#1"
        assert rows[0].r_rid is None
        assert rows[1].s_rid is None  # thread 1 never sent

    def test_per_thread_recovery_independent(self, system):
        displays = [TicketPrinter(trace=system.trace) for _ in range(2)]
        client = ThreadedClient(system, "tc", ["a", "b", "c", "d"], displays,
                                receive_timeout=10)
        # Thread 0 sends its first request, then the client crashes.
        t0 = client._client(0)
        t0.resynchronize()
        t0.send_only(1)
        # Fresh incarnation: both threads finish their partitions.
        client2 = ThreadedClient(system, "tc", ["a", "b", "c", "d"], displays,
                                 receive_timeout=10)
        with_servers(system, client2.run)
        GuaranteeChecker(system.trace).assert_ok()
        # exactly one ticket per request, across both threads
        for printer in displays:
            rids = [rid for _t, rid in printer.printed]
            assert len(rids) == len(set(rids)) == 2
