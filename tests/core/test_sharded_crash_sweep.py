"""Crash-at-every-step sweep over a two-shard request.

The request queue lives on shard A and the client's reply queue on
shard B, so every processed request runs dequeue-on-A + enqueue-on-B
inside one routed transaction that is promoted to two-phase commit.
The sweep crashes the system once at *every* instrumented point the
protocol reaches — including the 2PC prepare/decision/branch-commit
points — restarts it (per-shard recovery + in-doubt resolution +
Figure-2 client resynchronization), and asserts that no request is
ever lost or executed twice.
"""

from __future__ import annotations

import threading

from repro.core.client import UserCheckpoint
from repro.core.devices import TicketPrinter
from repro.core.guarantees import GuaranteeChecker
from repro.core.system import TPSystem
from repro.queueing.placement import PinnedPlacement
from repro.sim.harness import crash_every_step
from repro.sim.trace import TraceRecorder

WORK = ["a", "b"]


def handler(txn, request):
    return {"echo": request.body}


def build_system(injector, trace):
    placement = PinnedPlacement({"req.q": 0, "req.err": 0, "reply.c1": 1})
    return TPSystem(
        injector=injector, trace=trace, shards=2, placement=placement
    )


def finish_with_threads(system, device, user_log):
    client = system.client(
        "c1", WORK, device, receive_timeout=5, user_log=user_log
    )
    server = system.server("recovery-server", handler)
    done = threading.Event()
    thread = threading.Thread(
        target=lambda: server.serve_until(done.is_set, 0.02), daemon=True
    )
    thread.start()
    try:
        client.run()
    finally:
        done.set()
        thread.join(timeout=10)
    return client


class TestTwoShardRequestSweep:
    def test_guarantees_hold_at_every_crash_point(self):
        def scenario(injector):
            trace = TraceRecorder()
            system = build_system(injector, trace)
            device = TicketPrinter(trace=trace, injector=injector)
            user_log = UserCheckpoint()
            scenario.state = {"system": system, "device": device, "log": user_log}
            client = system.client(
                "c1", WORK, device, receive_timeout=None, user_log=user_log
            )
            server = system.server("s1", handler)
            seq = client.resynchronize()
            while seq <= len(WORK):
                client.send_only(seq)
                server.process_one()
                reply = client.clerk.receive(ckpt=device.state(), timeout=1)
                device.process(reply.rid, reply.body)
                seq += 1
            user_log.mark_done()
            client.clerk.disconnect()
            return scenario.state

        def recover(state):
            system2 = state["system"].reopen()
            finish_with_threads(system2, state["device"], state["log"])
            return system2

        def check(state, system2, plan):
            try:
                GuaranteeChecker(system2.trace).assert_ok()
                device = state["device"]
                for seq in range(1, len(WORK) + 1):
                    rid = f"c1#{seq}"
                    count = len(device.tickets_for(rid))
                    assert count == 1, f"rid {rid} printed {count} tickets"
                # No request may be stranded: both shards drained.
                depths = system2.queue_depths(by_shard=True)
                assert depths["s0:req.q"] == 0
                assert depths["s0:req.err"] == 0
                assert depths["s1:reply.c1"] == 0
            except AssertionError as exc:
                raise AssertionError(f"crash at {plan}: {exc}") from exc
            return True

        results = crash_every_step(scenario, recover, check)
        crashed = [r for r in results if r.crashed]
        assert len(crashed) >= 40
        # The sweep must have exercised the promotion machinery itself.
        two_pc_points = {
            r.plan.point for r in crashed if r.plan.point.startswith("2pc.")
        }
        assert {"2pc.after_prepare", "2pc.after_decision"} <= two_pc_points
        assert all(r.check_result for r in results)
