"""Server tests (Figure 5 bottom): transactional processing, failure
replies, aborts, error-queue interplay, threading, 2PC variant."""

from __future__ import annotations

import threading

import pytest

from repro.core.request import REPLY_FAILED, Reply, Request
from repro.core.system import TPSystem


def send(system: TPSystem, client_id: str, seq: int, body="work"):
    clerk = system.clerk(client_id)
    if not clerk.connected:
        clerk.connect()
    request = Request(
        rid=f"{client_id}#{seq}",
        body=body,
        client_id=client_id,
        reply_to=system.reply_queue_name(client_id),
    )
    clerk.send(request, request.rid)
    return clerk


class TestProcessOne:
    def test_returns_false_on_empty_queue(self, system):
        server = system.server("s", lambda txn, r: "x")
        assert server.process_one() is False
        assert server.stats.empty_polls == 1

    def test_processes_and_replies(self, system):
        clerk = send(system, "c1", 1, {"n": 5})
        server = system.server("s", lambda txn, r: {"n2": r.body["n"] * 2})
        assert server.process_one() is True
        reply = clerk.receive(timeout=2)
        assert reply.body == {"n2": 10}
        assert reply.ok
        assert server.stats.processed == 1

    def test_handler_exception_aborts_and_requeues(self, system):
        send(system, "c1", 1)

        def failing(txn, request):
            raise RuntimeError("transient")

        server = system.server("s", failing)
        with pytest.raises(RuntimeError):
            server.process_one()
        assert system.request_repo.get_queue(system.request_queue).depth() == 1
        assert server.stats.aborts == 1
        assert system.trace.count("request.attempt_aborted", rid="c1#1") == 1

    def test_failed_reply_still_commits(self, system):
        # "unsuccessfully attempting to execute the request, and then
        # returning a reply that indicates that fact"
        clerk = send(system, "c1", 1)

        def refuse(txn, request):
            return Reply(rid=request.rid, body={"why": "no"}, status=REPLY_FAILED)

        server = system.server("s", refuse)
        server.process_one()
        reply = clerk.receive(timeout=2)
        assert not reply.ok
        assert server.stats.failed_replies == 1
        assert system.trace.count("request.executed", rid="c1#1") == 1

    def test_database_and_queues_atomic(self, system):
        table = system.table("data")
        send(system, "c1", 1)

        def write_then_die(txn, request):
            table.put(txn, "k", "poisoned write")
            raise RuntimeError("die after write")

        server = system.server("s", write_then_die)
        with pytest.raises(RuntimeError):
            server.process_one()
        assert table.peek("k") is None  # undone with the dequeue

    def test_poison_request_lands_in_error_queue_with_failure_reply(self):
        system = TPSystem(max_aborts=2)
        clerk = send(system, "c1", 1)

        def always_fails(txn, request):
            raise RuntimeError("poison")

        server = system.server("s", always_fails)
        for _ in range(2):
            with pytest.raises(RuntimeError):
                server.process_one()
        assert system.request_repo.get_queue(system.error_queue).depth() == 1
        # The error-reply server converts it into a failure reply.
        system.error_reply_server().process_one()
        reply = clerk.receive(timeout=2)
        assert not reply.ok
        assert "error" in reply.body
        # Exactly-once bookkeeping still holds.
        system.trace.record("reply.processed", reply.rid)  # simulate client
        system.checker().assert_ok()


class TestSelectorRouting:
    def test_server_selector_restricts(self, system):
        send(system, "c1", 1, {"kind": "a"})
        send(system, "c2", 1, {"kind": "b"})
        server_b = system.server(
            "sb", lambda txn, r: "b done", selector=lambda e: e.body["body"]["kind"] == "b"
        )
        assert server_b.process_one() is True
        assert server_b.process_one() is False  # only the "b" request
        assert system.request_repo.get_queue(system.request_queue).depth() == 1


class TestThreaded:
    def test_start_stop(self, system):
        clerk = send(system, "c1", 1)
        server = system.server("s", lambda txn, r: "threaded")
        server.start()
        try:
            reply = clerk.receive(timeout=5)
            assert reply.body == "threaded"
        finally:
            server.stop()

    def test_double_start_rejected(self, system):
        server = system.server("s", lambda txn, r: "x")
        server.start()
        try:
            with pytest.raises(RuntimeError):
                server.start()
        finally:
            server.stop()

    def test_load_sharing_multiple_servers_one_queue(self, system):
        # Section 1: "many processes can dequeue requests from a single
        # queue ... automatically shares the workload".
        for seq in range(1, 11):
            send(system, "c1", seq, seq)
        processed = {"s1": 0, "s2": 0, "s3": 0}
        servers = [
            system.server(name, lambda txn, r: r.body) for name in processed
        ]
        stop = threading.Event()
        threads = [
            threading.Thread(target=s.serve_until, args=(stop.is_set, 0.02), daemon=True)
            for s in servers
        ]
        for t in threads:
            t.start()
        clerk = system.clerk("c1")
        clerk.connect()
        got = []
        for _ in range(10):
            got.append(clerk.receive(timeout=10).body)
        stop.set()
        for t in threads:
            t.join(timeout=5)
        assert sorted(got) == list(range(1, 11))
        total = sum(s.stats.processed for s in servers)
        assert total == 10


class TestDistributed2PC:
    def test_request_and_reply_on_different_nodes(self):
        system = TPSystem(separate_reply_node=True)
        clerk = send(system, "c1", 1, "cross-node")
        server = system.server("s", lambda txn, r: {"did": r.body})
        assert server.process_one() is True
        reply = clerk.receive(timeout=2)
        assert reply.body == {"did": "cross-node"}
        # Both logs saw their side of the global transaction.
        assert system.request_repo.log.records()
        assert system.reply_repo.log.records()

    def test_2pc_abort_on_handler_failure(self):
        system = TPSystem(separate_reply_node=True)
        send(system, "c1", 1)

        def failing(txn, request):
            raise RuntimeError("fail across nodes")

        server = system.server("s", failing)
        with pytest.raises(RuntimeError):
            server.process_one()
        assert system.request_repo.get_queue(system.request_queue).depth() == 1

    def test_2pc_database_writes_land_on_request_node(self):
        # Regression: the handler's table writes must ride the REQUEST
        # node's branch — logged there, replayed there after a crash.
        system = TPSystem(separate_reply_node=True)
        table = system.table("books")
        clerk = send(system, "c1", 1, {"amount": 9})

        def handler(txn, request):
            table.put(txn, "total", request.body["amount"])
            return "booked"

        system.server("s", handler).process_one()
        system.crash()
        system2 = system.reopen()
        assert system2.table("books").peek("total") == 9
        clerk2 = system2.clerk("c1")
        clerk2.connect()
        assert clerk2.receive(timeout=2).body == "booked"

    def test_2pc_survives_whole_system_crash(self):
        system = TPSystem(separate_reply_node=True)
        clerk = send(system, "c1", 1, "durable")
        server = system.server("s", lambda txn, r: "saved")
        server.process_one()
        system.crash()
        system2 = system.reopen()
        clerk2 = system2.clerk("c1")
        clerk2.connect()
        reply = clerk2.receive(timeout=2)
        assert reply.body == "saved"
