"""Guarantee checker tests: each checker flags exactly the traces it
should."""

from __future__ import annotations

import pytest

from repro.core.guarantees import GuaranteeChecker
from repro.sim.trace import TraceRecorder


def checker_for(events):
    trace = TraceRecorder()
    for kind, rid, detail in events:
        trace.record(kind, rid, **detail)
    return GuaranteeChecker(trace)


CLIENT = {"client": "c"}


class TestExactlyOnce:
    def test_clean_trace_passes(self):
        checker = checker_for(
            [
                ("request.sent", "c#1", CLIENT),
                ("request.executed", "c#1", {}),
                ("reply.enqueued", "c#1", {}),
                ("reply.received", "c#1", CLIENT),
                ("reply.processed", "c#1", {}),
            ]
        )
        assert checker.check_all() == []

    def test_duplicate_execution_flagged(self):
        checker = checker_for(
            [
                ("request.sent", "c#1", CLIENT),
                ("request.executed", "c#1", {}),
                ("request.executed", "c#1", {}),
            ]
        )
        violations = checker.exactly_once(require_completion=False)
        assert any("2 times" in v.message for v in violations)

    def test_lost_request_flagged_at_completion(self):
        checker = checker_for([("request.sent", "c#1", CLIENT)])
        violations = checker.exactly_once(require_completion=True)
        assert len(violations) == 1
        assert "never executed" in violations[0].message

    def test_lost_request_tolerated_mid_flight(self):
        checker = checker_for([("request.sent", "c#1", CLIENT)])
        assert checker.exactly_once(require_completion=False) == []

    def test_cancelled_request_exempt(self):
        checker = checker_for(
            [
                ("request.sent", "c#1", CLIENT),
                ("request.cancelled", "c#1", {}),
            ]
        )
        assert checker.exactly_once() == []

    def test_cancelled_and_executed_flagged(self):
        checker = checker_for(
            [
                ("request.sent", "c#1", CLIENT),
                ("request.cancelled", "c#1", {}),
                ("request.executed", "c#1", {}),
            ]
        )
        violations = checker.exactly_once()
        assert any("both cancelled and executed" in v.message for v in violations)

    def test_reply_witness_counts_as_execution(self):
        # Crash between server commit and its trace hook: the durable
        # reply proves execution.
        checker = checker_for(
            [
                ("request.sent", "c#1", CLIENT),
                ("reply.received", "c#1", CLIENT),
                ("reply.processed", "c#1", {}),
            ]
        )
        assert checker.check_all() == []

    def test_aborted_attempts_are_free(self):
        checker = checker_for(
            [
                ("request.sent", "c#1", CLIENT),
                ("request.attempt_aborted", "c#1", {}),
                ("request.attempt_aborted", "c#1", {}),
                ("request.executed", "c#1", {}),
                ("reply.received", "c#1", CLIENT),
                ("reply.processed", "c#1", {}),
            ]
        )
        assert checker.check_all() == []


class TestStageExactlyOnce:
    def test_duplicate_stage_flagged(self):
        checker = checker_for(
            [
                ("request.stage_executed", "c#1", {"server": "p.s0"}),
                ("request.stage_executed", "c#1", {"server": "p.s0"}),
            ]
        )
        violations = checker.exactly_once_stages()
        assert len(violations) == 1

    def test_distinct_stages_fine(self):
        checker = checker_for(
            [
                ("request.stage_executed", "c#1", {"server": "p.s0"}),
                ("request.stage_executed", "c#1", {"server": "p.s1"}),
            ]
        )
        assert checker.exactly_once_stages() == []


class TestAtLeastOnceReply:
    def test_unprocessed_reply_flagged(self):
        checker = checker_for(
            [
                ("request.sent", "c#1", CLIENT),
                ("request.executed", "c#1", {}),
            ]
        )
        violations = checker.at_least_once_reply()
        assert len(violations) == 1

    def test_duplicate_processing_allowed(self):
        checker = checker_for(
            [
                ("request.sent", "c#1", CLIENT),
                ("request.executed", "c#1", {}),
                ("reply.received", "c#1", CLIENT),
                ("reply.processed", "c#1", {}),
                ("reply.processed", "c#1", {}),
            ]
        )
        assert checker.at_least_once_reply() == []

    def test_mid_flight_always_passes(self):
        checker = checker_for([("request.executed", "c#1", {})])
        assert checker.at_least_once_reply(require_completion=False) == []


class TestRequestReplyMatching:
    def test_unsent_reply_flagged(self):
        checker = checker_for([("reply.received", "ghost#1", CLIENT)])
        violations = checker.request_reply_matching()
        assert any("never sent" in v.message for v in violations)

    def test_out_of_order_replies_flagged(self):
        checker = checker_for(
            [
                ("request.sent", "c#1", CLIENT),
                ("request.sent", "c#2", CLIENT),
                ("reply.received", "c#2", CLIENT),
                ("reply.received", "c#1", CLIENT),
            ]
        )
        violations = checker.request_reply_matching()
        assert any("out of send order" in v.message for v in violations)

    def test_duplicate_receives_of_same_rid_allowed(self):
        checker = checker_for(
            [
                ("request.sent", "c#1", CLIENT),
                ("reply.received", "c#1", CLIENT),
                ("reply.received", "c#1", CLIENT),
                ("request.sent", "c#2", CLIENT),
                ("reply.received", "c#2", CLIENT),
            ]
        )
        assert checker.request_reply_matching() == []

    def test_independent_clients_not_confused(self):
        checker = checker_for(
            [
                ("request.sent", "a#1", {"client": "a"}),
                ("request.sent", "b#1", {"client": "b"}),
                ("reply.received", "b#1", {"client": "b"}),
                ("reply.received", "a#1", {"client": "a"}),
            ]
        )
        assert checker.request_reply_matching() == []


class TestAssertOk:
    def test_raises_with_summary(self):
        checker = checker_for(
            [
                ("request.sent", "c#1", CLIENT),
                ("request.executed", "c#1", {}),
                ("request.executed", "c#1", {}),
            ]
        )
        with pytest.raises(AssertionError) as excinfo:
            checker.assert_ok()
        assert "exactly-once" in str(excinfo.value)

    def test_passes_silently_on_clean_trace(self):
        checker = checker_for([])
        checker.assert_ok()

    def test_violation_str(self):
        from repro.core.guarantees import Violation

        v = Violation("exactly-once", "c#1", "boom")
        assert "exactly-once" in str(v) and "c#1" in str(v)
