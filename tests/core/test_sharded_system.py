"""TPSystem over N repository shards: wiring, aggregation, restart."""

from __future__ import annotations

import threading

import pytest

from repro.core.devices import TicketPrinter
from repro.core.system import TPSystem
from repro.queueing.placement import PinnedPlacement
from repro.queueing.sharded import ShardedRepository
from repro.transaction.manager import TransactionManager
from repro.transaction.routing import ShardedTransactionManager

from tests.conftest import echo_handler, run_with_server


def pinned_two_shard_system(**kwargs) -> TPSystem:
    """Request queue on shard 0, client c1's reply queue on shard 1 —
    every processed request is forced through the cross-shard path."""
    placement = PinnedPlacement(
        {"req.q": 0, "req.err": 0, "reply.c1": 1}
    )
    return TPSystem(shards=2, placement=placement, **kwargs)


class TestWiring:
    def test_default_system_is_single_shard_passthrough(self):
        system = TPSystem()
        assert isinstance(system.request_repo, ShardedRepository)
        assert system.request_repo.shard_count == 1
        assert isinstance(system.request_repo.tm, TransactionManager)

    def test_sharded_system_uses_routed_transactions(self):
        system = TPSystem(shards=4)
        assert system.request_repo.shard_count == 4
        assert isinstance(system.request_repo.tm, ShardedTransactionManager)
        assert len(system.request_repo.disks) == 4
        assert system.reply_repo is system.request_repo

    def test_separate_reply_node_incompatible_with_shards(self):
        with pytest.raises(ValueError):
            TPSystem(shards=2, separate_reply_node=True)


class TestEndToEnd:
    def test_worklist_round_trip_over_four_shards(self):
        system = TPSystem(shards=4)
        printer = TicketPrinter(trace=system.trace)
        client = system.client("c1", ["a", "b", "c"], printer)
        server = system.server("s", echo_handler)
        replies = run_with_server(system, server, client)
        assert [r.body for r in replies] == [
            {"echo": "a"}, {"echo": "b"}, {"echo": "c"},
        ]
        system.checker().assert_ok()

    def test_request_processing_promotes_to_2pc_when_queues_split(self):
        system = pinned_two_shard_system()
        printer = TicketPrinter(trace=system.trace)
        client = system.client("c1", ["x", "y"], printer)
        server = system.server("s", echo_handler)
        run_with_server(system, server, client)
        tm = system.request_repo.tm
        # Dequeue-on-A + reply-enqueue-on-B: each processed request is
        # one cross-shard transaction; the client's sends stay local.
        assert tm.cross_shard_commits == 2
        assert tm.single_shard_commits > 0
        system.checker().assert_ok()

    def test_colocated_queues_never_promote(self):
        placement = PinnedPlacement(
            {"req.q": 0, "req.err": 0, "reply.c1": 0}
        )
        system = TPSystem(shards=2, placement=placement)
        printer = TicketPrinter(trace=system.trace)
        client = system.client("c1", ["x", "y"], printer)
        server = system.server("s", echo_handler)
        run_with_server(system, server, client)
        assert system.request_repo.tm.cross_shard_commits == 0
        system.checker().assert_ok()

    def test_multiple_clients_spread_over_shards(self):
        system = TPSystem(shards=3)
        printers = {
            cid: TicketPrinter(trace=system.trace) for cid in ("a", "b", "c")
        }
        clients = [
            system.client(cid, [f"{cid}{i}" for i in range(2)], dev)
            for cid, dev in printers.items()
        ]
        server = system.server("s", echo_handler)
        stop = threading.Event()
        server_thread = threading.Thread(
            target=lambda: server.serve_until(stop.is_set, 0.02), daemon=True
        )
        server_thread.start()
        threads = [threading.Thread(target=c.run, daemon=True) for c in clients]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        stop.set()
        server_thread.join(timeout=5)
        assert all(c.finished for c in clients)
        system.checker().assert_ok()


class TestAggregation:
    def test_queue_depths_span_all_shards(self):
        system = pinned_two_shard_system()
        printer = TicketPrinter(trace=system.trace)
        client = system.client("c1", ["w"], printer)
        client.resynchronize()
        client.send_only(1)
        depths = system.queue_depths()
        assert depths["req.q"] == 1
        assert depths["req.err"] == 0
        assert "reply.c1" in depths
        by_shard = system.queue_depths(by_shard=True)
        assert by_shard["s0:req.q"] == 1
        assert by_shard["s1:reply.c1"] == 0

    def test_drain_accepts_multiple_servers(self):
        system = TPSystem(shards=2)
        printer = TicketPrinter(trace=system.trace)
        client = system.client("c1", ["a", "b", "c"], printer)
        client.resynchronize()
        for seq in (1, 2, 3):
            client.send_only(seq)
        servers = [system.server(f"s{i}", echo_handler) for i in (1, 2)]
        assert system.drain(servers) == 3
        assert system.queue_depths()["req.q"] == 0

    def test_dashboard_renders_with_shard_metrics(self):
        from repro.obs import Observability

        system = pinned_two_shard_system(obs=Observability())
        printer = TicketPrinter(trace=system.trace)
        client = system.client("c1", ["w"], printer)
        server = system.server("s", echo_handler)
        run_with_server(system, server, client)
        dashboard = system.metrics_dashboard()
        assert "sharded_txn_commits_total" in dashboard
        assert "reqnode.s0" in dashboard


class TestRestart:
    def test_crash_reopen_preserves_all_shards(self):
        system = pinned_two_shard_system()
        printer = TicketPrinter(trace=system.trace)
        client = system.client("c1", ["persist"], printer)
        client.resynchronize()
        client.send_only(1)
        system.crash()
        system2 = system.reopen()
        assert system2.request_repo.shard_count == 2
        assert len(system2.request_repo.recoveries) == 2
        assert system2.request_repo.get_queue("req.q").depth() == 1
        # Placement carries over: the reply queue reopens on shard 1.
        assert system2.queue_depths(by_shard=True)["s1:reply.c1"] == 0

    def test_full_cycle_across_restart(self):
        from repro.core.client import UserCheckpoint

        system = pinned_two_shard_system()
        printer = TicketPrinter(trace=system.trace)
        user_log = UserCheckpoint()
        client = system.client(
            "c1", ["before", "after"], printer, user_log=user_log
        )
        client.resynchronize()
        client.send_only(1)
        system.server("s", echo_handler).process_one()
        system.crash()
        system2 = system.reopen()
        client2 = system2.client(
            "c1", ["before", "after"], printer,
            receive_timeout=5, user_log=user_log,
        )
        server2 = system2.server("s2", echo_handler)
        run_with_server(system2, server2, client2)
        assert [rid for _t, rid in printer.printed] == ["c1#1", "c1#2"]
        system2.checker().assert_ok()

    def test_crash_single_shard_spares_the_rest(self):
        system = pinned_two_shard_system()
        printer = TicketPrinter(trace=system.trace)
        client = system.client("c1", ["w1", "w2"], printer)
        client.resynchronize()
        client.send_only(1)
        # Shard 1 (reply queues) dies; the request queue on shard 0
        # keeps accepting work.
        system.crash_shard(1)
        client.send_only(2)
        assert system.queue_depths(by_shard=True)["s0:req.q"] == 2
        system2 = system.reopen()
        assert system2.request_repo.get_queue("req.q").depth() == 2
