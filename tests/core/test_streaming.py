"""Streaming client tests (Section 11's Mercury-style extension)."""

from __future__ import annotations

import threading

import pytest

from repro.core.guarantees import GuaranteeChecker
from repro.core.streaming import StreamingClient, slot_registrant

from tests.conftest import echo_handler


def serve_while(system, fn, servers=1, handler=echo_handler):
    stop = threading.Event()
    server_objects = [system.server(f"s{i}", handler) for i in range(servers)]
    threads = [
        threading.Thread(target=s.serve_until, args=(stop.is_set, 0.01), daemon=True)
        for s in server_objects
    ]
    for t in threads:
        t.start()
    try:
        return fn()
    finally:
        stop.set()
        for t in threads:
            t.join(timeout=10)


class TestStreaming:
    def test_window_validation(self, system):
        with pytest.raises(ValueError):
            StreamingClient(system, "c", ["x"], window=0)

    def test_stream_returns_replies_in_work_order(self, system):
        work = list(range(10))
        stream = StreamingClient(system, "st", work, window=3, receive_timeout=10)
        replies = serve_while(system, stream.run, servers=2)
        assert [r.body["echo"] for r in replies] == work

    def test_window_of_one_equals_base_model(self, system):
        stream = StreamingClient(system, "st", ["a", "b"], window=1, receive_timeout=10)
        replies = serve_while(system, stream.run)
        assert [r.body["echo"] for r in replies] == ["a", "b"]

    def test_multiple_requests_in_flight(self, system):
        # With no server running, the stream should have `window`
        # requests durably captured.
        work = list(range(8))
        stream = StreamingClient(system, "st", work, window=4, receive_timeout=1)
        thread = threading.Thread(
            target=lambda: _swallow(stream.run), daemon=True
        )
        thread.start()
        import time

        queue = system.request_repo.get_queue(system.request_queue)
        deadline = time.monotonic() + 5
        while queue.depth() < 4 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert queue.depth() == 4  # a full window in flight
        thread.join(timeout=10)

    def test_exactly_once_across_stream(self, system):
        work = list(range(12))
        stream = StreamingClient(system, "st", work, window=4, receive_timeout=10)
        serve_while(system, stream.run, servers=3)
        GuaranteeChecker(system.trace).assert_ok()
        executed = system.trace.rids("request.executed")
        assert len(executed) == len(set(executed)) == 12

    def test_crash_mid_stream_resumes_per_slot(self, system):
        work = list(range(6))
        stream = StreamingClient(system, "st", work, window=2, receive_timeout=10)
        # Manually advance: connect, prime, let servers run a bit, then
        # "crash" (abandon the object) with some slots mid-flight.
        next_index = stream._connect_slots()
        for slot in range(stream.window):
            stream._send(slot, next_index[slot])
        server = system.server("s", echo_handler)
        server.process_one()  # only one of the two in-flight served
        # New incarnation: must not resend served/sent work.
        stream2 = StreamingClient(system, "st", work, window=2, receive_timeout=10)
        replies = serve_while(system, stream2.run, servers=2)
        assert [r.body["echo"] for r in replies] == work
        GuaranteeChecker(system.trace).assert_ok()
        executed = system.trace.rids("request.executed")
        assert len(executed) == len(set(executed)) == 6

    def test_slot_registrants_are_per_slot(self, system):
        stream = StreamingClient(system, "st", list(range(4)), window=2,
                                 receive_timeout=10)
        serve_while(system, stream.run)
        regs = system.request_repo.registration
        assert regs.is_registered(system.request_queue, slot_registrant("st", 0)) is False
        # (disconnect deregistered them; during the run they existed —
        # verify via the trace instead)
        clients = {e.detail.get("client") for e in system.trace.events("request.sent")}
        assert clients == {slot_registrant("st", 0), slot_registrant("st", 1)}


def _swallow(fn):
    try:
        fn()
    except Exception:
        pass
