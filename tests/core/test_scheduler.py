"""Request scheduler and server pool tests (Section 10)."""

from __future__ import annotations

import time

import pytest

from repro.core.request import Request
from repro.core.scheduler import (
    RequestScheduler,
    ServerPool,
    class_policy,
    fifo_policy,
    highest_amount_policy,
    priority_policy,
)

from tests.conftest import echo_handler


def scheduled_send(system, scheduler, client_id, seq, body):
    clerk = system.clerk(client_id)
    if not clerk.connected:
        clerk.connect()
    request = Request(
        rid=f"{client_id}#{seq}", body=body, client_id=client_id,
        reply_to=system.reply_queue_name(client_id),
    )
    scheduler.send(clerk, request, request.rid)
    return clerk


class TestPolicies:
    def test_fifo_policy_neutral(self):
        scheduler = RequestScheduler(fifo_policy())
        assert scheduler.priority_for({"amount": 999}) == 0
        assert scheduler.class_for({"amount": 999}) is None

    def test_priority_policy(self):
        scheduler = RequestScheduler(priority_policy(lambda b: b["p"]))
        assert scheduler.priority_for({"p": 7}) == 7

    def test_highest_amount_policy(self):
        scheduler = RequestScheduler(highest_amount_policy())
        assert scheduler.priority_for({"amount": 250}) == 250
        assert scheduler.priority_for("not-a-dict") == 0

    def test_class_policy(self):
        scheduler = RequestScheduler(class_policy(lambda b: b["kind"]))
        assert scheduler.class_for({"kind": "vip"}) == "vip"


class TestHighestAmountFirst:
    def test_big_transfers_served_first(self, system):
        scheduler = RequestScheduler(highest_amount_policy())
        for seq, amount in enumerate([10, 500, 50], start=1):
            scheduled_send(system, scheduler, "c1", seq, {"amount": amount})
        server = system.server("s", lambda txn, r: r.body["amount"])
        served = []
        while server.process_one():
            pass
        served = [e.rid for e in system.trace.events("request.executed")]
        # executed order follows amount: 500, 50, 10 -> seq 2, 3, 1
        assert served == ["c1#2", "c1#3", "c1#1"]


class TestClassRouting:
    def test_servers_serve_only_their_class(self, system):
        scheduler = RequestScheduler(class_policy(lambda b: b["kind"]))
        scheduled_send(system, scheduler, "c1", 1, {"kind": "vip", "n": 1})
        scheduled_send(system, scheduler, "c2", 1, {"kind": "bulk", "n": 2})
        vip_server = system.server(
            "vip", lambda txn, r: r.body,
            selector=RequestScheduler.class_selector("vip"),
        )
        assert vip_server.process_one() is True
        assert vip_server.process_one() is False  # bulk request untouched
        assert system.request_repo.get_queue(system.request_queue).depth() == 1


class TestServerPool:
    def test_bad_sizing_rejected(self, system):
        with pytest.raises(ValueError):
            ServerPool(system, echo_handler, min_servers=0)
        with pytest.raises(ValueError):
            ServerPool(system, echo_handler, min_servers=3, max_servers=2)

    def test_starts_with_min_servers(self, system):
        pool = ServerPool(system, echo_handler, min_servers=2, max_servers=4)
        pool.start()
        try:
            assert pool.size() == 2
        finally:
            pool.stop()
        assert pool.size() == 0

    def test_scales_up_under_backlog_and_drains(self, system):
        def slowish(txn, request):
            time.sleep(0.002)
            return request.body

        pool = ServerPool(
            system, slowish, min_servers=1, max_servers=4,
            scale_up_depth=5, poll_timeout=0.005,
        )
        clerk = system.clerk("load")
        clerk.connect()
        for seq in range(1, 41):
            clerk.send(
                Request(rid=f"load#{seq}", body=seq, client_id="load",
                        reply_to=system.reply_queue_name("load")),
                f"load#{seq}",
            )
        pool.start()
        try:
            queue = system.request_repo.get_queue(system.request_queue)
            deadline = time.monotonic() + 10
            while queue.depth() + queue.pending() > 0 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert queue.depth() == 0
            assert pool.scale_ups >= 1
            assert pool.total_processed() == 40
        finally:
            pool.stop()

    def test_scales_back_down_when_idle(self, system):
        def slowish(txn, request):
            time.sleep(0.005)  # keep a visible backlog until scale-up
            return request.body

        pool = ServerPool(
            system, slowish, min_servers=1, max_servers=3,
            scale_up_depth=2, idle_polls=3, poll_timeout=0.005,
        )
        clerk = system.clerk("burst")
        clerk.connect()
        for seq in range(1, 9):
            clerk.send(
                Request(rid=f"burst#{seq}", body=seq, client_id="burst",
                        reply_to=system.reply_queue_name("burst")),
                f"burst#{seq}",
            )
        pool.start()
        try:
            deadline = time.monotonic() + 10
            # scale_downs is the last thing _shrink_to_min updates, so
            # polling it avoids racing the shrink in progress.
            while time.monotonic() < deadline:
                if pool.scale_ups >= 1 and pool.scale_downs >= 1:
                    break
                time.sleep(0.01)
            assert pool.scale_ups >= 1
            assert pool.scale_downs >= 1
            assert pool.size() == 1  # shrank back to min
        finally:
            pool.stop()
