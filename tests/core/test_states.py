"""Client state machine tests (Figures 1 and 7)."""

from __future__ import annotations

import pytest

from repro.core.states import ClientOp, ClientState, ClientStateMachine
from repro.errors import ProtocolViolation


class TestNonInteractive:
    def test_initial_state(self):
        assert ClientStateMachine().state is ClientState.DISCONNECTED

    def test_normal_cycle(self):
        m = ClientStateMachine()
        m.apply(ClientOp.CONNECT)
        m.apply(ClientOp.SEND)
        m.apply(ClientOp.RECEIVE)
        m.apply(ClientOp.SEND)
        m.apply(ClientOp.RECEIVE)
        m.apply(ClientOp.DISCONNECT)
        assert m.state is ClientState.DISCONNECTED

    def test_connect_branches_to_receive(self):
        # Figure 1: after Connect the client may go straight to Receive
        # (a request was in flight at crash time).
        m = ClientStateMachine()
        m.apply(ClientOp.CONNECT)
        m.apply(ClientOp.RECEIVE)
        assert m.state is ClientState.REPLY_RECVD

    def test_connect_branches_to_rereceive(self):
        m = ClientStateMachine()
        m.apply(ClientOp.CONNECT)
        m.apply(ClientOp.RERECEIVE)
        assert m.state is ClientState.REPLY_RECVD

    def test_rereceive_after_receive(self):
        m = ClientStateMachine()
        m.apply(ClientOp.CONNECT)
        m.apply(ClientOp.SEND)
        m.apply(ClientOp.RECEIVE)
        m.apply(ClientOp.RERECEIVE)
        assert m.state is ClientState.REPLY_RECVD

    def test_one_request_at_a_time_enforced(self):
        m = ClientStateMachine()
        m.apply(ClientOp.CONNECT)
        m.apply(ClientOp.SEND)
        with pytest.raises(ProtocolViolation):
            m.apply(ClientOp.SEND)

    def test_receive_before_send_rejected_mid_session(self):
        m = ClientStateMachine()
        m.apply(ClientOp.CONNECT)
        m.apply(ClientOp.SEND)
        m.apply(ClientOp.RECEIVE)
        with pytest.raises(ProtocolViolation):
            m.apply(ClientOp.RECEIVE)

    def test_ops_while_disconnected_rejected(self):
        m = ClientStateMachine()
        for op in (ClientOp.SEND, ClientOp.RECEIVE, ClientOp.DISCONNECT):
            with pytest.raises(ProtocolViolation):
                m.apply(op)

    def test_disconnect_while_request_pending_rejected(self):
        m = ClientStateMachine()
        m.apply(ClientOp.CONNECT)
        m.apply(ClientOp.SEND)
        with pytest.raises(ProtocolViolation):
            m.apply(ClientOp.DISCONNECT)

    def test_intermediate_ops_rejected_in_non_interactive(self):
        m = ClientStateMachine(interactive=False)
        m.apply(ClientOp.CONNECT)
        m.apply(ClientOp.SEND)
        with pytest.raises(ProtocolViolation):
            m.apply(ClientOp.RECV_INTERMEDIATE)

    def test_history_recorded(self):
        m = ClientStateMachine()
        m.apply(ClientOp.CONNECT)
        m.apply(ClientOp.SEND)
        assert m.history == [
            (ClientState.DISCONNECTED, ClientOp.CONNECT, ClientState.CONNECTED),
            (ClientState.CONNECTED, ClientOp.SEND, ClientState.REQ_SENT),
        ]

    def test_crash_resets_to_disconnected(self):
        m = ClientStateMachine()
        m.apply(ClientOp.CONNECT)
        m.apply(ClientOp.SEND)
        m.crash()
        assert m.state is ClientState.DISCONNECTED
        m.apply(ClientOp.CONNECT)  # recovery reconnects

    def test_legal_ops_listing(self):
        m = ClientStateMachine()
        assert m.legal_ops() == [ClientOp.CONNECT]

    def test_can_predicate(self):
        m = ClientStateMachine()
        assert m.can(ClientOp.CONNECT)
        assert not m.can(ClientOp.SEND)


class TestInteractive:
    def test_intermediate_cycle(self):
        # Figure 7: Req-Sent <-> Intermediate-I/O cycling.
        m = ClientStateMachine(interactive=True)
        m.apply(ClientOp.CONNECT)
        m.apply(ClientOp.SEND)
        for _ in range(3):
            m.apply(ClientOp.RECV_INTERMEDIATE)
            m.apply(ClientOp.SEND_INTERMEDIATE)
        m.apply(ClientOp.RECEIVE)
        m.apply(ClientOp.DISCONNECT)
        assert m.state is ClientState.DISCONNECTED

    def test_final_receive_from_req_sent_only(self):
        m = ClientStateMachine(interactive=True)
        m.apply(ClientOp.CONNECT)
        m.apply(ClientOp.SEND)
        m.apply(ClientOp.RECV_INTERMEDIATE)
        with pytest.raises(ProtocolViolation):
            m.apply(ClientOp.RECEIVE)  # must answer the intermediate first

    def test_intermediate_send_needs_intermediate_state(self):
        m = ClientStateMachine(interactive=True)
        m.apply(ClientOp.CONNECT)
        m.apply(ClientOp.SEND)
        with pytest.raises(ProtocolViolation):
            m.apply(ClientOp.SEND_INTERMEDIATE)

    def test_all_states_listing(self):
        assert ClientState.INTERMEDIATE_IO in ClientStateMachine.all_states(
            interactive=True
        )
        assert ClientState.INTERMEDIATE_IO not in ClientStateMachine.all_states()


class TestExhaustiveEdges:
    def test_every_undeclared_edge_rejected(self):
        """Benchmark F1's core assertion: the transition table is the
        *complete* spec — every (state, op) pair not in it raises."""
        for interactive in (False, True):
            machine = ClientStateMachine(interactive=interactive)
            table = machine.transitions
            for state in ClientState:
                for op in ClientOp:
                    machine.state = state
                    if (state, op) in table:
                        machine.apply(op)
                    else:
                        with pytest.raises(ProtocolViolation):
                            machine.apply(op)
