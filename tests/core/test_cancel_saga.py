"""Cancellation and saga compensation tests (Section 7)."""

from __future__ import annotations

import pytest

from repro.apps.banking import BankApp
from repro.core.cancel import RequestCanceller
from repro.core.devices import DisplayWithUserIds
from repro.core.system import TPSystem
from repro.errors import CancelFailed


def setup_bank_pipeline(name="xfer"):
    system = TPSystem()
    bank = BankApp(system)
    bank.open_accounts({"alice": 100, "bob": 50})
    pipeline = bank.transfer_pipeline(name)
    saga = bank.transfer_saga(pipeline)
    return system, bank, pipeline, saga


def send_transfer(system, bank, client_id="c1", amount=30):
    display = DisplayWithUserIds(trace=system.trace)
    client = system.client(
        client_id, bank.transfer_work([("alice", "bob", amount)]), display
    )
    client.resynchronize()
    client.send_only(1)
    return client


class TestRequestCanceller:
    def test_cancel_queued_single_txn_request(self, system):
        display = DisplayWithUserIds(trace=system.trace)
        client = system.client("c1", ["work"], display)
        client.resynchronize()
        client.send_only(1)
        canceller = RequestCanceller(system)
        assert canceller.cancel("c1#1") is True
        assert system.request_repo.get_queue(system.request_queue).depth() == 0
        system.checker().assert_ok()  # cancelled exempts exactly-once

    def test_cancel_unknown_rid(self, system):
        assert RequestCanceller(system).cancel("ghost#1") is False

    def test_cancel_consumed_request_fails(self, system):
        display = DisplayWithUserIds(trace=system.trace)
        client = system.client("c1", ["work"], display)
        client.resynchronize()
        client.send_only(1)
        system.server("s", lambda txn, r: "done").process_one()
        assert RequestCanceller(system).cancel("c1#1") is False

    def test_cancel_aborts_in_flight_transaction(self, system):
        display = DisplayWithUserIds(trace=system.trace)
        client = system.client("c1", ["work"], display)
        client.resynchronize()
        client.send_only(1)
        # A server holds the request in an uncommitted transaction.
        txn = system.request_repo.tm.begin()
        queue = system.request_repo.get_queue(system.request_queue)
        queue.dequeue(txn)
        assert RequestCanceller(system).cancel("c1#1") is True
        from repro.transaction.ids import TxnStatus

        assert txn.status is TxnStatus.ABORTED


class TestSagaCancellation:
    def test_cancel_before_any_stage(self):
        system, bank, pipeline, saga = setup_bank_pipeline()
        send_transfer(system, bank)
        outcome = saga.cancel("c1#1")
        assert outcome.killed_in_queue
        assert outcome.compensated_stages == []
        assert bank.balance("alice") == 100
        assert bank.total_money() == 150

    def test_cancel_after_first_stage_compensates_debit(self):
        system, bank, pipeline, saga = setup_bank_pipeline()
        send_transfer(system, bank)
        pipeline.stage_server(0).process_one()  # debit committed
        assert bank.balance("alice") == 70
        outcome = saga.cancel("c1#1")
        assert outcome.killed_in_queue          # continuation element killed
        assert outcome.compensated_stages == [0]
        assert bank.balance("alice") == 100
        assert bank.total_money() == 150

    def test_cancel_after_two_stages_compensates_both(self):
        system, bank, pipeline, saga = setup_bank_pipeline()
        send_transfer(system, bank)
        pipeline.stage_server(0).process_one()
        pipeline.stage_server(1).process_one()  # credit committed
        outcome = saga.cancel("c1#1")
        assert outcome.compensated_stages == [1, 0]  # reverse order
        assert bank.balance("alice") == 100
        assert bank.balance("bob") == 50
        assert bank.total_money() == 150

    def test_cancel_after_completion_raises(self):
        system, bank, pipeline, saga = setup_bank_pipeline()
        client = send_transfer(system, bank)
        pipeline.drain()
        with pytest.raises(CancelFailed):
            saga.cancel("c1#1")
        # The transfer stands.
        assert bank.balance("alice") == 70

    def test_compensation_is_idempotent_on_resume(self):
        # A crash mid-compensation: re-running cancel must not
        # double-compensate (the compensation log gates each stage).
        system, bank, pipeline, saga = setup_bank_pipeline()
        send_transfer(system, bank)
        pipeline.stage_server(0).process_one()
        pipeline.stage_server(1).process_one()
        saga.cancel("c1#1")
        # "Crash" between cancel and the caller noticing: run it again.
        outcome2 = saga.cancel("c1#1")
        assert outcome2.compensated_stages == []
        assert bank.balance("alice") == 100
        assert bank.total_money() == 150

    def test_compensated_stage_listing(self):
        system, bank, pipeline, saga = setup_bank_pipeline()
        send_transfer(system, bank)
        pipeline.stage_server(0).process_one()
        saga.cancel("c1#1")
        assert saga.compensated_stages("c1#1") == [0]

    def test_saga_requires_one_compensation_per_stage(self):
        system, bank, pipeline, _ = setup_bank_pipeline()
        from repro.core.saga import Saga

        with pytest.raises(ValueError):
            Saga(pipeline, [lambda t, r: None])  # 1 comp, 3 stages

    def test_audit_entry_voided_when_log_stage_compensated(self):
        system, bank, pipeline, saga = setup_bank_pipeline()
        send_transfer(system, bank)
        # run debit + credit + log, but cheat: don't let stage 2 reply
        # reach the client; progress will show all 3 done -> CancelFailed
        pipeline.drain()
        with pytest.raises(CancelFailed):
            saga.cancel("c1#1")
