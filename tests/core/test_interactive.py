"""Interactive request tests (Section 8): pseudo-conversational and
single-transaction-with-replay."""

from __future__ import annotations

import threading

import pytest

from repro.apps.orders import OrderApp
from repro.core.interactive import (
    IntermediateIOLog,
    LoggedConversation,
    PseudoConversationalClient,
    conversational_handler,
    interactive_handler,
)
from repro.core.states import ClientState
from repro.core.system import TPSystem


def order_system():
    system = TPSystem()
    orders = OrderApp(system)
    orders.stock_items({"widget": (5, 10), "gizmo": (9, 3)})
    return system, orders


INPUTS = ["carol", {"item": "widget", "qty": 2}, {"confirm": True}]


def run_conversation(system, orders, inputs, client_id="c1"):
    server = system.server("conv", conversational_handler(orders.conversational_step))
    clerk = system.clerk(client_id)
    pc = PseudoConversationalClient(client_id, clerk, inputs, trace=system.trace)
    done = threading.Event()
    thread = threading.Thread(
        target=lambda: server.serve_until(done.is_set, 0.02), daemon=True
    )
    thread.start()
    try:
        final = pc.run()
    finally:
        done.set()
        thread.join(timeout=10)
    return pc, final


class TestPseudoConversational:
    def test_full_conversation_places_order(self):
        system, orders = order_system()
        pc, final = run_conversation(system, orders, INPUTS)
        assert final.body["kind"] == "final"
        assert final.body["output"]["item"] == "widget"
        assert orders.stock_of("widget") == 8
        assert len(pc.outputs) == 3
        assert pc.machine.state is ClientState.REPLY_RECVD

    def test_each_phase_is_its_own_request(self):
        system, orders = order_system()
        run_conversation(system, orders, INPUTS)
        sent = system.trace.rids("request.sent")
        assert sent == ["c1#1", "c1#2", "c1#3"]
        system.checker().assert_ok(require_completion=False)

    def test_decline_at_confirmation(self):
        system, orders = order_system()
        inputs = ["carol", {"item": "widget", "qty": 2}, {"confirm": False}]
        pc, final = run_conversation(system, orders, inputs)
        assert final.body["output"] == {"cancelled": True}
        assert orders.stock_of("widget") == 10

    def test_scratch_pad_carries_selection(self):
        system, orders = order_system()
        pc, final = run_conversation(system, orders, INPUTS)
        assert final.body["scratch"]["customer"] == "carol"
        assert final.body["scratch"]["item"] == "widget"

    def test_crash_between_phases_resumes(self):
        system, orders = order_system()
        server = system.server(
            "conv", conversational_handler(orders.conversational_step)
        )
        clerk = system.clerk("c1")
        pc = PseudoConversationalClient("c1", clerk, INPUTS, trace=system.trace)
        # Drive phase 0 by hand, then "crash" the client.
        phase = pc._resynchronize()
        pc._send_phase(phase)
        server.process_one()
        pc._receive_phase()
        # New incarnation resumes at phase 1.
        clerk2 = system.clerk("c1")
        pc2 = PseudoConversationalClient("c1", clerk2, INPUTS, trace=system.trace)
        done = threading.Event()
        thread = threading.Thread(
            target=lambda: server.serve_until(done.is_set, 0.02), daemon=True
        )
        thread.start()
        try:
            final = pc2.run()
        finally:
            done.set()
            thread.join(timeout=10)
        assert final.body["kind"] == "final"
        assert orders.stock_of("widget") == 8
        system.checker().assert_ok(require_completion=False)

    def test_crash_with_reply_in_flight_resumes(self):
        system, orders = order_system()
        server = system.server(
            "conv", conversational_handler(orders.conversational_step)
        )
        clerk = system.clerk("c1")
        pc = PseudoConversationalClient("c1", clerk, INPUTS, trace=system.trace)
        phase = pc._resynchronize()
        pc._send_phase(phase)
        server.process_one()  # reply produced, client crashed before receiving
        clerk2 = system.clerk("c1")
        pc2 = PseudoConversationalClient("c1", clerk2, INPUTS, trace=system.trace)
        next_phase = pc2._resynchronize()
        assert next_phase == 1  # resumed from the in-flight output

    def test_empty_inputs_rejected(self):
        system, _ = order_system()
        with pytest.raises(ValueError):
            PseudoConversationalClient("c1", system.clerk("c1"), [])


class TestLoggedConversation:
    def test_fresh_run_solicits_everything(self):
        log = IntermediateIOLog("r#1")
        conversation = LoggedConversation(log, lambda output: f"answer to {output}")
        conversation.begin_incarnation()
        assert conversation.ask("q1") == "answer to q1"
        assert conversation.ask("q2") == "answer to q2"
        assert log.fresh_solicitations == 2
        assert log.replays == 0

    def test_identical_rerun_replays_from_log(self):
        # Section 8.3: "as long as the client receives intermediate
        # output that is identical ... it can re-use the logged input".
        log = IntermediateIOLog("r#1")
        asked = []

        def source(output):
            asked.append(output)
            return f"in-{output}"

        conversation = LoggedConversation(log, source)
        conversation.begin_incarnation()
        conversation.ask("q1")
        conversation.ask("q2")
        # Transaction aborts; server re-runs with identical outputs.
        conversation.begin_incarnation()
        assert conversation.ask("q1") == "in-q1"
        assert conversation.ask("q2") == "in-q2"
        assert asked == ["q1", "q2"]  # user bothered only once
        assert log.replays == 2

    def test_divergent_rerun_truncates_and_resolicits(self):
        log = IntermediateIOLog("r#1")
        conversation = LoggedConversation(log, lambda output: f"in-{output}")
        conversation.begin_incarnation()
        conversation.ask("q1")
        conversation.ask("q2")
        conversation.begin_incarnation()
        conversation.ask("q1")              # replayed
        assert conversation.ask("DIFFERENT") == "in-DIFFERENT"
        assert log.truncations == 1
        assert [o for o, _ in log.entries] == ["q1", "DIFFERENT"]

    def test_longer_rerun_extends_log(self):
        log = IntermediateIOLog("r#1")
        conversation = LoggedConversation(log, lambda output: f"in-{output}")
        conversation.begin_incarnation()
        conversation.ask("q1")
        conversation.begin_incarnation()
        conversation.ask("q1")
        conversation.ask("q2")  # new question this run
        assert len(log.entries) == 2


class TestSingleTransactionInteractive:
    def test_abort_and_retry_replays_inputs(self):
        system, orders = order_system()
        log = IntermediateIOLog("c1#1")
        solicited = []

        def input_source(output):
            solicited.append(output)
            if "catalog" in output:
                return {"item": "widget", "qty": 2}
            return {"confirm": True}

        conversation = LoggedConversation(log, input_source)
        conversations = {"c1#1": conversation}
        attempts = []

        def body(txn, request, conv):
            attempts.append(1)
            result = orders.interactive_body(txn, request, conv)
            if len(attempts) == 1:
                raise RuntimeError("abort after soliciting inputs")
            return result

        server = system.server("one", interactive_handler(conversations, body))
        clerk = system.clerk("c1")
        clerk.connect()
        from repro.core.request import Request

        clerk.send(
            Request(
                rid="c1#1",
                body={"customer": "dave"},
                client_id="c1",
                reply_to=system.reply_queue_name("c1"),
            ),
            "c1#1",
        )
        with pytest.raises(RuntimeError):
            server.process_one()
        # Stock untouched after abort; inputs were captured in the log.
        assert orders.stock_of("widget") == 10
        assert len(solicited) == 2
        server.process_one()  # retry: replays inputs, commits
        assert len(solicited) == 2  # user NOT re-asked
        assert orders.stock_of("widget") == 8
        reply = clerk.receive(timeout=2)
        assert reply.body["item"] == "widget"

    def test_single_txn_keeps_serializability_and_allows_cancel(self):
        # Until the last input is sent, the request element can still be
        # cancelled by aborting the server's transaction (Section 8.3).
        system, orders = order_system()
        log = IntermediateIOLog("c1#1")
        conversation = LoggedConversation(log, lambda o: {"item": "widget", "qty": 1, "confirm": True})
        server_txn = {}

        def body(txn, request, conv):
            server_txn["txn"] = txn
            conv.ask({"catalog": True})
            # Mid-conversation: the client cancels.
            queue = system.request_repo.get_queue(system.request_queue)
            raise RuntimeError("client walked away")

        server = system.server(
            "one", interactive_handler({"c1#1": conversation}, body)
        )
        clerk = system.clerk("c1")
        clerk.connect()
        from repro.core.request import Request

        clerk.send(
            Request(rid="c1#1", body={"customer": "eve"}, client_id="c1",
                    reply_to=system.reply_queue_name("c1")),
            "c1#1",
        )
        with pytest.raises(RuntimeError):
            server.process_one()
        # The request is back in the queue; cancel it for good.
        assert clerk.cancel_last_request() is True
        assert orders.stock_of("widget") == 10
        system.checker().assert_ok()
