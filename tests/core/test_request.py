"""Request / Reply / rid tests."""

from __future__ import annotations

import pytest

from repro.core.request import (
    REPLY_FAILED,
    REPLY_OK,
    Reply,
    Request,
    make_rid,
    rid_client,
    rid_sequence,
)


class TestRids:
    def test_make_and_parse(self):
        rid = make_rid("client-1", 42)
        assert rid == "client-1#42"
        assert rid_sequence(rid) == 42
        assert rid_client(rid) == "client-1"

    def test_client_id_with_hash_rejected(self):
        with pytest.raises(ValueError):
            make_rid("bad#id", 1)

    def test_malformed_rid_rejected(self):
        with pytest.raises(ValueError):
            rid_sequence("no-separator")
        with pytest.raises(ValueError):
            rid_client("#5")

    def test_round_trip_with_hyphenated_client(self):
        rid = make_rid("multi-part-name", 7)
        assert rid_client(rid) == "multi-part-name"
        assert rid_sequence(rid) == 7


class TestRequest:
    def test_body_round_trip(self):
        request = Request(
            rid="c#1",
            body={"op": "x"},
            client_id="c",
            reply_to="reply.c",
            scratch={"stage": 2},
        )
        assert Request.from_body(request.to_body()) == request

    def test_scratch_defaults_empty(self):
        request = Request(rid="c#1", body=None, client_id="c", reply_to="r")
        assert request.scratch == {}
        assert Request.from_body(request.to_body()).scratch == {}


class TestReply:
    def test_body_round_trip(self):
        reply = Reply(rid="c#1", body=[1, 2], status=REPLY_FAILED)
        assert Reply.from_body(reply.to_body()) == reply

    def test_ok_predicate(self):
        assert Reply(rid="r", body=None).ok
        assert not Reply(rid="r", body=None, status=REPLY_FAILED).ok

    def test_default_status(self):
        assert Reply(rid="r", body=None).status == REPLY_OK
