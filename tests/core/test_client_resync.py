"""Client resynchronization tests (Figure 2 lines 2-11) — every branch.

The branches of Figure 2's connect-time logic:

A. ``s_rid is NIL``                            → fresh client, start at 1.
B. ``s_rid != r_rid``                          → Receive the in-flight
   reply, process it, continue after it.
C. ``s_rid == r_rid`` and reply NOT processed  → Rereceive, process.
D. ``s_rid == r_rid`` and reply processed      → continue with new work.
"""

from __future__ import annotations


from repro.core.client import UserCheckpoint
from repro.core.devices import TicketPrinter
from repro.core.system import TPSystem

from tests.conftest import echo_handler, run_with_server


def fresh_system():
    system = TPSystem()
    device = TicketPrinter(trace=system.trace)
    return system, device


class TestBranchA:
    def test_fresh_client_starts_at_one(self):
        system, device = fresh_system()
        client = system.client("c1", ["w1"], device)
        assert client.resynchronize() == 1


class TestBranchB:
    def test_reply_in_flight_is_received_and_processed(self):
        system, device = fresh_system()
        # Incarnation 1 sends and crashes before receiving.
        client1 = system.client("c1", ["w1", "w2"], device)
        client1.resynchronize()
        client1.send_only(1)
        # The server processes while the client is down.
        system.server("s", echo_handler).process_one()
        # Incarnation 2 resynchronizes: branch B.
        client2 = system.client("c1", ["w1", "w2"], device, receive_timeout=2)
        next_seq = client2.resynchronize()
        assert next_seq == 2
        assert device.tickets_for("c1#1") == [1]
        assert system.trace.count("client.resync_receive") == 1

    def test_reply_in_flight_not_yet_produced_blocks_then_arrives(self):
        import threading

        system, device = fresh_system()
        client1 = system.client("c1", ["w1"], device)
        client1.resynchronize()
        client1.send_only(1)
        server = system.server("s", echo_handler)
        client2 = system.client("c1", ["w1"], device, receive_timeout=5)
        timer = threading.Timer(0.1, server.process_one)
        timer.start()
        assert client2.resynchronize() == 2
        timer.cancel()


class TestBranchC:
    def test_received_but_unprocessed_reply_is_rereceived(self):
        system, device = fresh_system()
        client1 = system.client("c1", ["w1", "w2"], device)
        client1.resynchronize()
        client1.send_only(1)
        system.server("s", echo_handler).process_one()
        # Receive with the device state as ckpt, then crash BEFORE
        # processing (the device never printed).
        ckpt = device.state()
        client1.clerk.receive(ckpt=ckpt, timeout=2)
        # Incarnation 2: s_rid == r_rid, device state still == ckpt.
        client2 = system.client("c1", ["w1", "w2"], device)
        next_seq = client2.resynchronize()
        assert next_seq == 2
        assert device.tickets_for("c1#1") == [1]  # printed exactly once
        assert system.trace.count("client.resync_rereceive") == 1


class TestBranchD:
    def test_processed_reply_not_reprocessed(self):
        system, device = fresh_system()
        client1 = system.client("c1", ["w1", "w2"], device)
        client1.resynchronize()
        client1.send_only(1)
        system.server("s", echo_handler).process_one()
        ckpt = device.state()
        reply = client1.clerk.receive(ckpt=ckpt, timeout=2)
        device.process(reply.rid, reply.body)  # ticket printed
        # Crash after processing, before next send.
        client2 = system.client("c1", ["w1", "w2"], device)
        next_seq = client2.resynchronize()
        assert next_seq == 2
        assert device.tickets_for("c1#1") == [1]  # not duplicated


class TestFullRunAcrossCrash:
    def test_run_resumes_mid_worklist(self):
        system, device = fresh_system()
        work = ["a", "b", "c"]
        # First incarnation does item 1 fully, then "crashes".
        client1 = system.client("c1", work, device, receive_timeout=2)
        client1.resynchronize()
        client1.send_only(1)
        system.server("s", echo_handler).process_one()
        reply = client1.clerk.receive(ckpt=device.state(), timeout=2)
        device.process(reply.rid, reply.body)
        # Second incarnation finishes everything via run().
        user_log = UserCheckpoint()
        client2 = system.client("c1", work, device, receive_timeout=5, user_log=user_log)
        server = system.server("s2", echo_handler)
        run_with_server(system, server, client2)
        assert client2.finished
        assert [rid for _t, rid in device.printed] == ["c1#1", "c1#2", "c1#3"]
        system.checker().assert_ok()

    def test_user_checkpoint_prevents_amnesiac_rerun(self):
        system, device = fresh_system()
        user_log = UserCheckpoint()
        client1 = system.client("c1", ["only"], device, receive_timeout=5, user_log=user_log)
        server = system.server("s", echo_handler)
        run_with_server(system, server, client1)
        assert user_log.is_done()
        # A fresh incarnation after Disconnect: must not resubmit.
        client2 = system.client("c1", ["only"], device, user_log=user_log)
        assert client2.run() == []
        assert device.tickets_for("c1#1") == [1]
        system.checker().assert_ok()

    def test_empty_worklist(self):
        system, device = fresh_system()
        client = system.client("c1", [], device)
        assert client.run() == []
        assert client.finished
