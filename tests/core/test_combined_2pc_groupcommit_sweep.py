"""Crash-at-every-step over the *combined* hardest server path:
request and reply queues on separate nodes (distributed 2PC, Section 8)
with group commit enabled on both nodes' logs.

Every instrumented point — clerk, queue managers on both nodes, both
transaction managers, the 2PC coordinator, and both group-flush points
— is crashed once.  After each crash the whole system restarts, any
in-doubt 2PC branches are resolved against the coordinator's durable
decision (presumed abort), a fresh client incarnation resynchronizes,
and the paper's guarantees plus exactly-once device effects are
asserted.
"""

from __future__ import annotations

import threading

from repro.core.client import UserCheckpoint
from repro.core.devices import TicketPrinter
from repro.core.guarantees import GuaranteeChecker
from repro.core.system import TPSystem
from repro.sim.harness import crash_every_step
from repro.sim.trace import TraceRecorder
from repro.storage.groupcommit import GroupCommitConfig

WORK = ["a", "b"]


def _handler_for(system: TPSystem):
    table = system.table("ledger")

    def handler(txn, request):
        # A database write on the request node's branch plus the reply
        # enqueue on the reply node's branch: the full 2PC shape.
        table.put(txn, f"done:{request.rid}", request.body)
        return {"echo": request.body}

    return handler


def _resolve_in_doubt(system: TPSystem) -> int:
    """Resolve recovered in-doubt 2PC branches on both nodes against
    the coordinator's durable decision (presumed abort)."""
    resolved = 0
    coordinator = system.coordinator
    assert coordinator is not None
    repos = {id(system.request_repo): system.request_repo,
             id(system.reply_repo): system.reply_repo}.values()
    for repo in repos:
        for branch in repo.last_recovery.in_doubt:
            branch.resolve(coordinator.decision(branch.global_id))
            resolved += 1
    return resolved


def _finish(system: TPSystem, device, user_log) -> None:
    client = system.client("c1", WORK, device, receive_timeout=5,
                           user_log=user_log)
    server = system.server("recovery-server", _handler_for(system))
    done = threading.Event()
    thread = threading.Thread(
        target=lambda: server.serve_until(done.is_set, 0.02), daemon=True
    )
    thread.start()
    try:
        client.run()
    finally:
        done.set()
        thread.join(timeout=10)


class TestCombined2PCGroupCommitSweep:
    def test_guarantees_hold_at_every_crash_point(self):
        resolved_total = [0]

        def scenario(injector):
            trace = TraceRecorder()
            system = TPSystem(
                injector=injector,
                trace=trace,
                separate_reply_node=True,
                group_commit=GroupCommitConfig(enabled=True, max_wait=0.0),
            )
            device = TicketPrinter(trace=trace, injector=injector)
            user_log = UserCheckpoint()
            scenario.state = {"system": system, "device": device, "log": user_log}
            client = system.client("c1", WORK, device, receive_timeout=None,
                                   user_log=user_log)
            server = system.server("s1", _handler_for(system))
            seq = client.resynchronize()
            while seq <= len(WORK):
                client.send_only(seq)
                server.process_one()
                reply = client.clerk.receive(ckpt=device.state(), timeout=1)
                device.process(reply.rid, reply.body)
                seq += 1
            user_log.mark_done()
            client.clerk.disconnect()
            return scenario.state

        def recover(state):
            system2 = state["system"].reopen()
            resolved_total[0] += _resolve_in_doubt(system2)
            _finish(system2, state["device"], state["log"])
            return system2

        def check(state, system2, plan):
            try:
                GuaranteeChecker(system2.trace).assert_ok()
                device = state["device"]
                table = system2.table("ledger")
                for seq, body in enumerate(WORK, start=1):
                    rid = f"c1#{seq}"
                    count = len(device.tickets_for(rid))
                    assert count == 1, f"rid {rid} printed {count} tickets"
                    # The request-node database write committed with the
                    # reply — atomically across both nodes.
                    assert table.peek(f"done:{rid}") == body
            except AssertionError as exc:
                raise AssertionError(f"crash at {plan}: {exc}") from exc
            return True

        results = crash_every_step(scenario, recover, check)
        crashed = sum(1 for r in results if r.crashed)
        # The combined path has strictly more instrumented points than
        # the single-node sweep: prepare/decision/branch-commit for the
        # 2PC and the group-flush points on both nodes' logs.
        assert crashed >= 50
        points = {r.plan.point for r in results if r.crashed}
        assert any(p.startswith("tm.prepare.") for p in points)
        assert any(p.startswith("2pc.") for p in points)
        assert any("group_flush" in p for p in points)
        # At least some crash positions must actually have left a branch
        # in doubt (otherwise the resolution path went untested).
        assert resolved_total[0] > 0
        assert all(r.check_result for r in results)
