"""Multi-transaction request tests (Section 6, Figure 6)."""

from __future__ import annotations

import pytest

from repro.apps.banking import BankApp
from repro.core.applocks import AppLockTable
from repro.core.devices import DisplayWithUserIds
from repro.core.multitxn import MultiTransactionPipeline, Stage
from repro.core.system import TPSystem
from repro.sim.crash import FaultInjector


def send_transfer(system, bank, client_id="c1", amount=30):
    display = DisplayWithUserIds(trace=system.trace)
    client = system.client(
        client_id, bank.transfer_work([("alice", "bob", amount)]), display
    )
    client.resynchronize()
    client.send_only(1)
    return client, display


class TestPipelineTopology:
    def test_queues_created(self, system):
        pipeline = MultiTransactionPipeline(
            system, "p", [Stage("a", lambda *a: None), Stage("b", lambda *a: None)]
        )
        assert pipeline.input_queue(0) == system.request_queue
        assert pipeline.input_queue(1) == "p.q1"
        assert pipeline.output_queue(0) == "p.q1"
        assert pipeline.output_queue(1) is None
        assert "p.q1" in system.request_repo.queues

    def test_empty_pipeline_rejected(self, system):
        with pytest.raises(ValueError):
            MultiTransactionPipeline(system, "p", [])

    def test_bad_stage_index(self, system):
        pipeline = MultiTransactionPipeline(system, "p", [Stage("a", lambda *a: None)])
        with pytest.raises(IndexError):
            pipeline.stage_server(1)


class TestFundsTransfer:
    def test_three_transactions_complete_transfer(self):
        system = TPSystem()
        bank = BankApp(system)
        bank.open_accounts({"alice": 100, "bob": 50})
        pipeline = bank.transfer_pipeline()
        client, display = send_transfer(system, bank)
        executed = pipeline.drain()
        assert executed == 3
        reply = client.clerk.receive(ckpt=None, timeout=2)
        display.process(reply.rid, reply.body)
        client.clerk.disconnect()
        assert bank.balance("alice") == 70
        assert bank.balance("bob") == 80
        assert bank.total_money() == 150
        system.checker().assert_ok()

    def test_scratch_pad_flows_through_stages(self):
        system = TPSystem()
        bank = BankApp(system)
        bank.open_accounts({"alice": 100, "bob": 50})
        pipeline = bank.transfer_pipeline()
        client, display = send_transfer(system, bank)
        pipeline.drain()
        entry = bank.audit_entries("c1#1")[0]
        assert entry["scratch"] == {"debited": 30, "credited": 30}

    def test_progress_table_records_stages(self):
        system = TPSystem()
        bank = BankApp(system)
        bank.open_accounts({"alice": 100, "bob": 50})
        pipeline = bank.transfer_pipeline()
        send_transfer(system, bank)
        pipeline.drain()
        with system.request_repo.tm.transaction() as txn:
            assert pipeline.completed_stages(txn, "c1#1") == [0, 1, 2]

    def test_intermediate_crash_resumes_mid_pipeline(self):
        # Crash after stage 0 commits; recovery runs stages 1-2 only.
        trace_injector = FaultInjector()
        system = TPSystem(injector=trace_injector)
        bank = BankApp(system)
        bank.open_accounts({"alice": 100, "bob": 50})
        pipeline = bank.transfer_pipeline()
        client, display = send_transfer(system, bank)
        pipeline.stage_server(0).process_one()
        system.crash()
        system2 = system.reopen()
        bank2 = BankApp(system2)
        pipeline2 = bank2.transfer_pipeline()
        executed_after_recovery = pipeline2.drain()
        assert executed_after_recovery == 2  # stages 1 and 2 only
        assert bank2.balance("alice") == 70
        assert bank2.balance("bob") == 80
        assert bank2.total_money() == 150
        # exactly-once per stage across the crash
        system2.checker().exactly_once_stages() == []

    def test_stage_abort_retries_without_duplication(self):
        system = TPSystem()
        bank = BankApp(system)
        bank.open_accounts({"alice": 100, "bob": 50})
        pipeline = bank.transfer_pipeline()
        # Wrap stage 1 (credit) to fail on its first attempt.
        original = pipeline.stages[1].handler
        attempts = []

        def flaky_credit(txn, request, ctx):
            attempts.append(1)
            if len(attempts) == 1:
                raise RuntimeError("transient stage failure")
            return original(txn, request, ctx)

        pipeline.stages[1] = Stage("credit", flaky_credit)
        client, display = send_transfer(system, bank)
        pipeline.stage_server(0).process_one()
        stage1 = pipeline.stage_server(1)
        with pytest.raises(RuntimeError):
            stage1.process_one()
        stage1.process_one()  # retry succeeds
        pipeline.stage_server(2).process_one()
        assert bank.balance("bob") == 80
        assert bank.total_money() == 150


class TestRequestSerializability:
    def test_plain_multitxn_allows_interleaving_anomaly(self):
        """Section 6: without lock inheritance, a transaction of one
        request can run between two transactions of another."""
        system = TPSystem()
        bank = BankApp(system)
        bank.open_accounts({"alice": 100, "bob": 0, "carol": 0})
        pipeline = bank.transfer_pipeline()
        # Two transfers from alice: interleave their stages.
        d1 = DisplayWithUserIds(trace=system.trace)
        c1 = system.client("c1", bank.transfer_work([("alice", "bob", 60)]), d1)
        c1.resynchronize()
        c1.send_only(1)
        d2 = DisplayWithUserIds(trace=system.trace)
        c2 = system.client("c2", bank.transfer_work([("alice", "carol", 60)]), d2)
        c2.resynchronize()
        c2.send_only(1)
        from repro.apps.banking import InsufficientFunds

        s0 = pipeline.stage_server(0)
        observed = []
        s0.process_one()                        # c1 debit commits
        observed.append(bank.balance("alice"))  # c2 sees alice mid-request
        # The second request's debit runs BETWEEN c1's transactions and
        # observes (and is affected by) the intermediate state — request
        # executions are not serializable.
        with pytest.raises(InsufficientFunds):
            s0.process_one()
        assert observed == [40]

    def test_inherit_locks_blocks_interleaving(self):
        system = TPSystem()
        bank = BankApp(system)
        bank.open_accounts({"alice": 100, "bob": 50})
        pipeline = bank.transfer_pipeline("locked", inherit_locks=True)
        client, display = send_transfer(system, bank)
        pipeline.stage_server(0).process_one()  # debit commits, locks parked
        # Another transaction trying to touch alice must block.
        from repro.errors import LockTimeoutError

        txn = system.request_repo.tm.begin()
        with pytest.raises(LockTimeoutError):
            system.request_repo.locks.acquire(
                txn.id, "kv:accounts/acct/alice", __import__("repro.transaction.locks", fromlist=["LockMode"]).LockMode.X, timeout=0.1
            )
        system.request_repo.tm.abort(txn)
        # Finishing the pipeline releases the chain.
        pipeline.stage_server(1).process_one()
        pipeline.stage_server(2).process_one()
        txn2 = system.request_repo.tm.begin()
        system.request_repo.locks.acquire(
            txn2.id, "kv:accounts/acct/alice",
            __import__("repro.transaction.locks", fromlist=["LockMode"]).LockMode.X,
            timeout=1.0,
        )
        system.request_repo.tm.abort(txn2)

    def test_app_locks_block_second_request(self):
        from repro.core.applocks import AppLockConflict

        system = TPSystem()
        bank = BankApp(system)
        bank.open_accounts({"alice": 100, "bob": 50})
        lock_table = AppLockTable(system.table("applocks"))
        pipeline = bank.transfer_pipeline("al", lock_table=lock_table)
        d1 = DisplayWithUserIds(trace=system.trace)
        c1 = system.client("c1", bank.transfer_work([("alice", "bob", 10)]), d1)
        c1.resynchronize()
        c1.send_only(1)
        d2 = DisplayWithUserIds(trace=system.trace)
        c2 = system.client("c2", bank.transfer_work([("alice", "bob", 20)]), d2)
        c2.resynchronize()
        c2.send_only(1)
        s0 = pipeline.stage_server(0)
        s0.process_one()  # c1 acquires app locks on alice+bob
        with pytest.raises(AppLockConflict):
            s0.process_one()  # c2 conflicts
        assert lock_table.conflicts == 1
        # Finish c1; its final stage releases the app locks.
        pipeline.stage_server(1).process_one()
        pipeline.stage_server(2).process_one()
        s0.process_one()  # c2 can now proceed
        pipeline.stage_server(1).process_one()
        pipeline.stage_server(2).process_one()
        assert bank.balance("alice") == 70
        assert bank.total_money() == 150
