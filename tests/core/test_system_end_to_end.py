"""End-to-end System Model tests (Figure 4) under normal operation."""

from __future__ import annotations

import threading


from repro.core.client import UserCheckpoint
from repro.core.devices import CashDispenser, DisplayWithUserIds

from tests.conftest import echo_handler, run_with_server


class TestSingleClient:
    def test_worklist_round_trip(self, system, printer):
        client = system.client("c1", ["a", "b", "c"], printer)
        server = system.server("s", echo_handler)
        replies = run_with_server(system, server, client)
        assert [r.body for r in replies] == [
            {"echo": "a"},
            {"echo": "b"},
            {"echo": "c"},
        ]
        system.checker().assert_ok()

    def test_replies_in_send_order(self, system, printer):
        client = system.client("c1", list(range(10)), printer)
        server = system.server("s", echo_handler)
        run_with_server(system, server, client)
        received = system.trace.rids("reply.received")
        assert received == [f"c1#{i}" for i in range(1, 11)]

    def test_cash_dispenser_totals(self, system):
        atm = CashDispenser(trace=system.trace)
        client = system.client("c1", [{"amount": 20}, {"amount": 50}], atm)
        server = system.server("s", lambda txn, r: {"amount": r.body["amount"]})
        run_with_server(system, server, client)
        assert atm.state() == 70
        system.checker().assert_ok()


class TestMultipleClients:
    def test_private_reply_queues(self, system):
        # Section 5: "giving each client a private reply queue, and
        # passing that queue's name with the request".
        displays = {c: DisplayWithUserIds(trace=system.trace) for c in ("a", "b", "c")}
        clients = [
            system.client(cid, [f"{cid}-work-{i}" for i in range(3)], dev)
            for cid, dev in displays.items()
        ]
        server = system.server("s", echo_handler)
        stop = threading.Event()
        server_thread = threading.Thread(
            target=lambda: server.serve_until(stop.is_set, 0.02), daemon=True
        )
        server_thread.start()
        threads = [threading.Thread(target=c.run, daemon=True) for c in clients]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        stop.set()
        server_thread.join(timeout=5)
        for cid, device in displays.items():
            got = [body["echo"] for _rid, body in device.shown]
            assert got == [f"{cid}-work-{i}" for i in range(3)]
        system.checker().assert_ok()

    def test_client_ids_kept_apart_in_trace(self, system):
        d1 = DisplayWithUserIds(trace=system.trace)
        d2 = DisplayWithUserIds(trace=system.trace)
        c1 = system.client("alpha", ["x"], d1)
        c2 = system.client("beta", ["y"], d2)
        server = system.server("s", echo_handler)
        run_with_server(system, server, c1)
        run_with_server(system, server, c2)
        assert system.trace.rids("request.sent") == ["alpha#1", "beta#1"]
        system.checker().assert_ok()


class TestBatchAndBuffering:
    def test_requests_buffered_while_no_server_runs(self, system, printer):
        # Queues capture requests reliably even with no server up.
        client = system.client("c1", ["q1", "q2"], printer, receive_timeout=10)
        thread = threading.Thread(target=client.run, daemon=True)
        thread.start()
        # Give the client time to enqueue its first request.
        import time

        deadline = time.monotonic() + 5
        queue = system.request_repo.get_queue(system.request_queue)
        while queue.depth() == 0 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert queue.depth() == 1  # captured, unserved
        # A late-started server drains everything.
        server = system.server("late", echo_handler)
        stop = threading.Event()
        st = threading.Thread(target=lambda: server.serve_until(stop.is_set, 0.02), daemon=True)
        st.start()
        thread.join(timeout=30)
        stop.set()
        st.join(timeout=5)
        assert client.finished
        system.checker().assert_ok()

    def test_queue_depths_snapshot(self, system, printer):
        client = system.client("c1", ["w"], printer)
        client.resynchronize()
        client.send_only(1)
        depths = system.queue_depths()
        assert depths[system.request_queue] == 1
        assert depths[system.error_queue] == 0


class TestRestart:
    def test_reopen_preserves_queue_contents(self, system, printer):
        client = system.client("c1", ["persist me"], printer)
        client.resynchronize()
        client.send_only(1)
        system.crash()
        system2 = system.reopen()
        assert system2.request_repo.get_queue(system2.request_queue).depth() == 1

    def test_reopen_shares_trace(self, system, printer):
        client = system.client("c1", ["w"], printer)
        client.resynchronize()
        client.send_only(1)
        system2 = system.reopen()
        assert system2.trace is system.trace
        assert system2.trace.count("request.sent") == 1

    def test_full_cycle_across_restart(self, system, printer):
        user_log = UserCheckpoint()
        client = system.client("c1", ["before", "after"], printer, user_log=user_log)
        client.resynchronize()
        client.send_only(1)
        system.server("s", echo_handler).process_one()
        system.crash()
        system2 = system.reopen()
        client2 = system2.client(
            "c1", ["before", "after"], printer, receive_timeout=5, user_log=user_log
        )
        server2 = system2.server("s2", echo_handler)
        run_with_server(system2, server2, client2)
        assert [rid for _t, rid in printer.printed] == ["c1#1", "c1#2"]
        system2.checker().assert_ok()
