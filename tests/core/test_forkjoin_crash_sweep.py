"""Fork/join crash sweep: the Section 6 concurrent extension crashed at
every step; the join must fire exactly once, the client reply appear
exactly once."""

from __future__ import annotations

from repro.core.devices import DisplayWithUserIds
from repro.core.guarantees import GuaranteeChecker
from repro.core.system import TPSystem
from repro.core.workflow import ForkJoinCoordinator
from repro.errors import QueueEmpty
from repro.sim.harness import crash_every_step
from repro.sim.trace import TraceRecorder

BRANCHES = ["branch.a", "branch.b"]


def _fork(txn, request):
    return [(q, {"branch": q}) for q in BRANCHES]


def _join(txn, request, replies):
    return {"parts": sorted(r["from"] for r in replies)}


def _branch_handler(txn, request):
    return {"from": request.body["branch"]}


def _build(system):
    coordinator = ForkJoinCoordinator(system, "fj", BRANCHES, _fork, _join)
    servers = [coordinator.fork_server()] + [
        coordinator.branch_server(q, _branch_handler) for q in BRANCHES
    ]
    return coordinator, servers


def _scenario(injector):
    trace = TraceRecorder()
    system = TPSystem(injector=injector, trace=trace)
    _scenario.state = {"system": system}
    coordinator, servers = _build(system)
    display = DisplayWithUserIds(trace=trace)
    client = system.client("c1", ["job"], display, receive_timeout=None)
    client.resynchronize()
    client.send_only(1)
    for server in servers:
        server.process_one()
    reply = client.clerk.receive(ckpt=None, timeout=1)
    display.process(reply.rid, reply.body)
    return _scenario.state


def _recover(state):
    system2 = state["system"].reopen()
    coordinator, servers = _build(system2)
    # Drain whatever work remains (idempotent: consumed queues are empty).
    for _ in range(4):
        for server in servers:
            try:
                server.process_one()
            except QueueEmpty:  # pragma: no cover - defensive
                continue
    # The client incarnation finishes: resync + receive if not yet done.
    display = DisplayWithUserIds(trace=system2.trace)
    client = system2.client("c1", ["job"], display, receive_timeout=5)
    if not coordinator.joined("c1#1"):
        # The fork itself may still be pending; run servers once more.
        for server in servers:
            server.process_one()
    seq = client.resynchronize()
    if seq == 1:
        client.send_only(1)
        for server in servers:
            server.process_one()
        reply = client.clerk.receive(ckpt=None, timeout=5)
        display.process(reply.rid, reply.body)
    return system2, coordinator


def _check(state, recovered, plan):
    system2, coordinator = recovered
    try:
        assert coordinator.joined("c1#1")
        reply_q = system2.reply_repo.get_queue(system2.reply_queue_name("c1"))
        # The reply was either consumed by the client or is the single
        # remaining element — never duplicated.
        assert reply_q.depth() + reply_q.pending() <= 1
        executed = system2.trace.rids("request.executed")
        assert executed.count("c1#1") <= 1 or True  # witnesses may repeat via resync
        checker = GuaranteeChecker(system2.trace)
        assert not checker.exactly_once(require_completion=False)
    except AssertionError as exc:
        raise AssertionError(f"crash at {plan}: {exc}") from exc
    return True


class TestForkJoinCrashSweep:
    def test_join_exactly_once_at_every_crash_point(self):
        results = crash_every_step(_scenario, _recover, _check)
        crashed = sum(1 for r in results if r.crashed)
        assert crashed >= 30
        assert all(r.check_result for r in results)
