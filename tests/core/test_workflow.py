"""Fork/join workflow tests (Section 6 concurrent extension)."""

from __future__ import annotations

import pytest

from repro.core.devices import DisplayWithUserIds
from repro.core.system import TPSystem
from repro.core.workflow import ForkJoinCoordinator


def make_coordinator(system, branches=("branch.a", "branch.b")):
    def fork(txn, request):
        return [(qname, {"branch": qname, "payload": request.body}) for qname in branches]

    def join(txn, request, replies):
        return {"parts": sorted(r["from"] for r in replies)}

    return ForkJoinCoordinator(system, "fj", list(branches), fork, join)


def branch_handler(txn, request):
    return {"from": request.body["branch"]}


def send(system, client_id="c1", body="job"):
    display = DisplayWithUserIds(trace=system.trace)
    client = system.client(client_id, [body], display)
    client.resynchronize()
    client.send_only(1)
    return client, display


class TestForkJoin:
    def test_fork_creates_branch_requests(self, system):
        coordinator = make_coordinator(system)
        send(system)
        coordinator.fork_server().process_one()
        assert system.request_repo.get_queue("branch.a").depth() == 1
        assert system.request_repo.get_queue("branch.b").depth() == 1
        assert not coordinator.joined("c1#1")

    def test_join_fires_after_all_branches(self, system):
        coordinator = make_coordinator(system)
        client, display = send(system)
        coordinator.fork_server().process_one()
        sa = coordinator.branch_server("branch.a", branch_handler)
        sb = coordinator.branch_server("branch.b", branch_handler)
        sa.process_one()
        assert not coordinator.joined("c1#1")
        sb.process_one()
        assert coordinator.joined("c1#1")
        reply = client.clerk.receive(ckpt=None, timeout=2)
        assert reply.body == {"parts": ["branch.a", "branch.b"]}
        display.process(reply.rid, reply.body)
        client.clerk.disconnect()
        system.checker().assert_ok()

    def test_join_exactly_once_despite_restart(self, system):
        coordinator = make_coordinator(system)
        client, display = send(system)
        coordinator.fork_server().process_one()
        coordinator.branch_server("branch.a", branch_handler).process_one()
        coordinator.branch_server("branch.b", branch_handler).process_one()
        assert coordinator.joined("c1#1")
        # A recovering coordinator re-arms; the join must not re-fire.
        coordinator2 = make_coordinator(system)
        assert coordinator2.joined("c1#1")
        reply_q = system.reply_repo.get_queue(system.reply_queue_name("c1"))
        assert reply_q.depth() == 1  # exactly one client reply

    def test_coordinator_recovery_after_crash_completes_join(self):
        system = TPSystem()
        coordinator = make_coordinator(system)
        client, display = send(system)
        coordinator.fork_server().process_one()
        coordinator.branch_server("branch.a", branch_handler).process_one()
        # Crash before branch b runs.
        system.crash()
        system2 = system.reopen()
        coordinator2 = ForkJoinCoordinator(
            system2,
            "fj",
            ["branch.a", "branch.b"],
            lambda txn, r: [],
            lambda txn, r, replies: {"parts": sorted(x["from"] for x in replies)},
        )
        coordinator2.branch_server("branch.b", branch_handler).process_one()
        assert coordinator2.joined("c1#1")
        clerk = system2.clerk("c1")
        clerk.connect()
        reply = clerk.receive(ckpt=None, timeout=2)
        assert reply.body == {"parts": ["branch.a", "branch.b"]}

    def test_branch_failure_retries_then_join(self, system):
        coordinator = make_coordinator(system)
        client, display = send(system)
        coordinator.fork_server().process_one()
        attempts = []

        def flaky(txn, request):
            attempts.append(1)
            if len(attempts) == 1:
                raise RuntimeError("branch hiccup")
            return branch_handler(txn, request)

        sa = coordinator.branch_server("branch.a", flaky)
        with pytest.raises(RuntimeError):
            sa.process_one()
        sa.process_one()
        coordinator.branch_server("branch.b", branch_handler).process_one()
        assert coordinator.joined("c1#1")

    def test_empty_branches_rejected(self, system):
        with pytest.raises(ValueError):
            ForkJoinCoordinator(system, "x", [], lambda t, r: [], lambda t, r, x: None)
