"""Testable-device tests (Section 3)."""

from __future__ import annotations

from repro.core.devices import CashDispenser, DisplayWithUserIds, TicketPrinter
from repro.sim.trace import TraceRecorder


class TestTicketPrinter:
    def test_state_is_next_ticket(self):
        printer = TicketPrinter()
        assert printer.state() == 1
        printer.process("r1", {})
        assert printer.state() == 2

    def test_processing_is_observable(self):
        printer = TicketPrinter()
        printer.process("r1", {})
        printer.process("r2", {})
        assert printer.printed == [(1, "r1"), (2, "r2")]
        assert printer.tickets_for("r1") == [1]

    def test_trace_event_recorded(self):
        trace = TraceRecorder()
        printer = TicketPrinter(trace=trace)
        printer.process("r1", {})
        assert trace.count("reply.processed", rid="r1") == 1

    def test_state_comparison_detects_processing(self):
        # The exactly-once trick of Section 3: read state before
        # Receive; if it moved, the reply was processed.
        printer = TicketPrinter()
        ckpt = printer.state()
        assert printer.state() == ckpt  # not processed yet
        printer.process("r1", {})
        assert printer.state() != ckpt  # processed


class TestCashDispenser:
    def test_state_is_total_dispensed(self):
        atm = CashDispenser()
        assert atm.state() == 0
        atm.process("r1", {"amount": 50})
        assert atm.state() == 50
        atm.process("r2", {"amount": 20})
        assert atm.state() == 70

    def test_non_dict_reply_dispenses_nothing(self):
        atm = CashDispenser()
        atm.process("r1", "just text")
        assert atm.state() == 0

    def test_records_per_rid(self):
        atm = CashDispenser()
        atm.process("r1", {"amount": 10})
        assert atm.dispensed == [("r1", 10)]


class TestDisplay:
    def test_state_constant(self):
        display = DisplayWithUserIds()
        display.process("r1", "hello")
        assert display.state() == 0  # can never prove processing

    def test_duplicates_detected_by_rid(self):
        trace = TraceRecorder()
        display = DisplayWithUserIds(trace=trace)
        display.process("r1", "a")
        display.process("r1", "a")  # at-least-once duplicate
        events = trace.events("reply.processed", rid="r1")
        assert [e.detail["duplicate"] for e in events] == [False, True]
        assert display.distinct_rids() == 1
