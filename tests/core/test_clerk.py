"""Clerk tests (Figure 5 top): operation translation, tags, recovery."""

from __future__ import annotations

import pytest

from repro.core.request import Request
from repro.core.system import TPSystem
from repro.errors import CancelFailed, NotConnectedError, QueueEmpty


def make_request(system: TPSystem, client_id: str, seq: int, body="payload"):
    return Request(
        rid=f"{client_id}#{seq}",
        body=body,
        client_id=client_id,
        reply_to=system.reply_queue_name(client_id),
    )


class TestConnect:
    def test_fresh_connect_returns_nils(self, system):
        clerk = system.clerk("c1")
        assert clerk.connect() == (None, None, None)
        assert clerk.connected

    def test_operations_require_connection(self, system):
        clerk = system.clerk("c1")
        with pytest.raises(NotConnectedError):
            clerk.send(make_request(system, "c1", 1), "c1#1")
        with pytest.raises(NotConnectedError):
            clerk.receive()
        with pytest.raises(NotConnectedError):
            clerk.rereceive()
        with pytest.raises(NotConnectedError):
            clerk.disconnect()

    def test_reconnect_returns_send_state(self, system):
        clerk = system.clerk("c1")
        clerk.connect()
        clerk.send(make_request(system, "c1", 1), "c1#1")
        # New incarnation (crash): fresh clerk object.
        clerk2 = system.clerk("c1")
        s_rid, r_rid, ckpt = clerk2.connect()
        assert s_rid == "c1#1"
        assert r_rid is None

    def test_reconnect_returns_receive_state(self, system, display):
        clerk = system.clerk("c1")
        clerk.connect()
        clerk.send(make_request(system, "c1", 1), "c1#1")
        server = system.server("s", lambda txn, r: "done")
        server.process_one()
        clerk.receive(ckpt="my-ckpt", timeout=2)
        clerk2 = system.clerk("c1")
        s_rid, r_rid, ckpt = clerk2.connect()
        assert s_rid == "c1#1"
        assert r_rid == "c1#1"
        assert ckpt == "my-ckpt"

    def test_disconnect_clears_registration(self, system):
        clerk = system.clerk("c1")
        clerk.connect()
        clerk.send(make_request(system, "c1", 1), "c1#1")
        server = system.server("s", lambda txn, r: "ok")
        server.process_one()
        clerk.receive(timeout=2)
        clerk.disconnect()
        assert not clerk.connected
        clerk2 = system.clerk("c1")
        assert clerk2.connect() == (None, None, None)


class TestSendReceive:
    def test_send_is_durable_when_it_returns(self, system):
        clerk = system.clerk("c1")
        clerk.connect()
        clerk.send(make_request(system, "c1", 1), "c1#1")
        system.crash()
        system2 = system.reopen()
        assert system2.request_repo.get_queue(system2.request_queue).depth() == 1

    def test_receive_blocks_until_reply(self, system):
        import threading

        clerk = system.clerk("c1")
        clerk.connect()
        clerk.send(make_request(system, "c1", 1), "c1#1")
        server = system.server("s", lambda txn, r: "answer")
        timer = threading.Timer(0.1, server.process_one)
        timer.start()
        reply = clerk.receive(timeout=5)
        assert reply.body == "answer"
        timer.cancel()

    def test_receive_timeout_raises_queue_empty(self, system):
        clerk = system.clerk("c1")
        clerk.connect()
        with pytest.raises(QueueEmpty):
            clerk.receive(timeout=0.1)

    def test_rereceive_returns_last_reply(self, system):
        clerk = system.clerk("c1")
        clerk.connect()
        clerk.send(make_request(system, "c1", 1), "c1#1")
        system.server("s", lambda txn, r: "the reply").process_one()
        first = clerk.receive(timeout=2)
        again = clerk.rereceive()
        assert again.body == first.body == "the reply"

    def test_rereceive_after_reconnect(self, system):
        clerk = system.clerk("c1")
        clerk.connect()
        clerk.send(make_request(system, "c1", 1), "c1#1")
        system.server("s", lambda txn, r: "kept").process_one()
        clerk.receive(timeout=2)
        clerk2 = system.clerk("c1")
        clerk2.connect()
        assert clerk2.rereceive().body == "kept"

    def test_rereceive_without_any_receive_raises(self, system):
        clerk = system.clerk("c1")
        clerk.connect()
        with pytest.raises(NotConnectedError):
            clerk.rereceive()

    def test_transceive(self, system):
        import threading

        clerk = system.clerk("c1")
        clerk.connect()
        server = system.server("s", lambda txn, r: {"got": r.body})
        timer = threading.Timer(0.1, server.process_one)
        timer.start()
        reply = clerk.transceive(make_request(system, "c1", 1, "hi"), "c1#1", timeout=5)
        assert reply.body == {"got": "hi"}

    def test_trace_events(self, system):
        clerk = system.clerk("c1")
        clerk.connect()
        clerk.send(make_request(system, "c1", 1), "c1#1")
        system.server("s", lambda txn, r: "x").process_one()
        clerk.receive(timeout=2)
        assert system.trace.count("request.sent", rid="c1#1") == 1
        assert system.trace.count("reply.received", rid="c1#1") == 1


class TestCancel:
    def test_cancel_before_consumption(self, system):
        clerk = system.clerk("c1")
        clerk.connect()
        clerk.send(make_request(system, "c1", 1), "c1#1")
        assert clerk.cancel_last_request() is True
        assert system.request_repo.get_queue(system.request_queue).depth() == 0
        assert system.trace.count("request.cancelled", rid="c1#1") == 1

    def test_cancel_after_consumption_fails(self, system):
        clerk = system.clerk("c1")
        clerk.connect()
        clerk.send(make_request(system, "c1", 1), "c1#1")
        system.server("s", lambda txn, r: "done").process_one()
        assert clerk.cancel_last_request() is False
        assert system.trace.count("request.cancel_failed", rid="c1#1") == 1

    def test_cancel_without_send_raises(self, system):
        clerk = system.clerk("c1")
        clerk.connect()
        with pytest.raises(CancelFailed):
            clerk.cancel_last_request()

    def test_cancel_after_recovery_uses_registration_eid(self, system):
        from repro.core.cancel import cancel_last_request_after_recovery

        clerk = system.clerk("c1")
        clerk.connect()
        clerk.send(make_request(system, "c1", 1), "c1#1")
        # client crashes; new incarnation reconnects and cancels
        clerk2 = system.clerk("c1")
        clerk2.connect()
        assert cancel_last_request_after_recovery(clerk2) is True
        assert system.request_repo.get_queue(system.request_queue).depth() == 0
