"""Crash-at-every-step sweeps — experiment F5.

Every instrumented point of the clerk, queue manager, transaction
manager, server, and device is crashed once, in turn; after each crash
the system restarts, a fresh client incarnation resynchronizes
(Figure 2), and the paper's three guarantees plus application-level
effect counts are asserted.  Because the simulation is deterministic,
this enumerates every crash location the protocol can experience in
these scenarios, not a random sample.
"""

from __future__ import annotations

import threading


from repro.apps.banking import BankApp
from repro.core.client import UserCheckpoint
from repro.core.devices import CashDispenser, TicketPrinter
from repro.core.guarantees import GuaranteeChecker
from repro.core.system import TPSystem
from repro.sim.harness import crash_every_step
from repro.sim.trace import TraceRecorder


def finish_with_threads(system, device, work, user_log, handler):
    """Post-recovery driver: a fresh client incarnation finishes the
    work list with a threaded server."""
    client = system.client("c1", work, device, receive_timeout=5, user_log=user_log)
    server = system.server("recovery-server", handler)
    done = threading.Event()
    thread = threading.Thread(
        target=lambda: server.serve_until(done.is_set, 0.02), daemon=True
    )
    thread.start()
    try:
        client.run()
    finally:
        done.set()
        thread.join(timeout=10)
    return client


class TestSingleTransactionSweep:
    """The Figure 5 protocol, tickets printed exactly once per request."""

    WORK = ["a", "b"]

    def test_guarantees_hold_at_every_crash_point(self):
        work = self.WORK

        def handler(txn, request):
            return {"echo": request.body}

        def scenario(injector):
            trace = TraceRecorder()
            system = TPSystem(injector=injector, trace=trace)
            device = TicketPrinter(trace=trace, injector=injector)
            user_log = UserCheckpoint()
            scenario.state = {"system": system, "device": device, "log": user_log}
            client = system.client("c1", work, device, receive_timeout=None,
                                   user_log=user_log)
            server = system.server("s1", handler)
            seq = client.resynchronize()
            while seq <= len(work):
                client.send_only(seq)
                server.process_one()
                reply = client.clerk.receive(ckpt=device.state(), timeout=1)
                device.process(reply.rid, reply.body)
                seq += 1
            user_log.mark_done()
            client.clerk.disconnect()
            return scenario.state

        def recover(state):
            system2 = state["system"].reopen()
            finish_with_threads(
                system2, state["device"], work, state["log"], handler
            )
            return system2

        def check(state, system2, plan):
            try:
                GuaranteeChecker(system2.trace).assert_ok()
                device = state["device"]
                for seq in range(1, len(work) + 1):
                    rid = f"c1#{seq}"
                    count = len(device.tickets_for(rid))
                    assert count == 1, f"rid {rid} printed {count} tickets"
            except AssertionError as exc:
                raise AssertionError(f"crash at {plan}: {exc}") from exc
            return True

        results = crash_every_step(scenario, recover, check)
        crashed = sum(1 for r in results if r.crashed)
        assert crashed >= 40  # dozens of distinct crash points exercised
        assert all(r.check_result for r in results)


class TestCashDispenserSweep:
    """Exactly-once cash dispensing: the sum dispensed equals the sum
    requested, never more, at every crash point."""

    WORK = [{"amount": 40}, {"amount": 25}]

    def test_no_double_dispensing(self):
        work = self.WORK

        def handler(txn, request):
            return {"amount": request.body["amount"]}

        def scenario(injector):
            trace = TraceRecorder()
            system = TPSystem(injector=injector, trace=trace)
            device = CashDispenser(trace=trace, injector=injector)
            user_log = UserCheckpoint()
            scenario.state = {"system": system, "device": device, "log": user_log}
            client = system.client("c1", work, device, receive_timeout=None,
                                   user_log=user_log)
            server = system.server("s1", handler)
            seq = client.resynchronize()
            while seq <= len(work):
                client.send_only(seq)
                server.process_one()
                reply = client.clerk.receive(ckpt=device.state(), timeout=1)
                device.process(reply.rid, reply.body)
                seq += 1
            user_log.mark_done()
            client.clerk.disconnect()
            return scenario.state

        def recover(state):
            system2 = state["system"].reopen()
            finish_with_threads(system2, state["device"], work, state["log"], handler)
            return system2

        def check(state, system2, plan):
            device = state["device"]
            expected = sum(w["amount"] for w in work)
            assert device.state() == expected, (
                f"crash at {plan}: dispensed {device.state()}, expected {expected}"
            )
            GuaranteeChecker(system2.trace).assert_ok()
            return True

        results = crash_every_step(scenario, recover, check)
        assert all(r.check_result for r in results)


class TestMultiTransactionSweep:
    """Figure 6's three-transaction funds transfer: money conserved and
    every stage exactly-once at every crash point."""

    def test_transfer_survives_every_crash_point(self):
        def scenario(injector):
            trace = TraceRecorder()
            system = TPSystem(injector=injector, trace=trace)
            bank = BankApp(system)
            bank.open_accounts({"alice": 100, "bob": 50})
            pipeline = bank.transfer_pipeline()
            device = CashDispenser(trace=trace)
            user_log = UserCheckpoint()
            scenario.state = {"system": system, "device": device, "log": user_log}
            client = system.client(
                "c1", bank.transfer_work([("alice", "bob", 30)]), device,
                receive_timeout=None, user_log=user_log,
            )
            client.resynchronize()
            client.send_only(1)
            pipeline.drain()
            reply = client.clerk.receive(ckpt=device.state(), timeout=1)
            device.process(reply.rid, reply.body)
            user_log.mark_done()
            client.clerk.disconnect()
            return scenario.state

        def recover(state):
            system2 = state["system"].reopen()
            bank2 = BankApp(system2)
            pipeline2 = bank2.transfer_pipeline()
            pipeline2.drain()
            # A fresh client incarnation resynchronizes and finishes.
            client = system2.client(
                "c1", bank2.transfer_work([("alice", "bob", 30)]),
                state["device"], receive_timeout=5, user_log=state["log"],
            )
            server_done = threading.Event()
            drain_thread = threading.Thread(
                target=lambda: _drain_until(pipeline2, server_done), daemon=True
            )
            drain_thread.start()
            try:
                client.run()
            finally:
                server_done.set()
                drain_thread.join(timeout=10)
            return system2, bank2

        def _drain_until(pipeline, done):
            while not done.is_set():
                if pipeline.drain() == 0:
                    done.wait(0.02)

        def check(state, recovered, plan):
            system2, bank2 = recovered
            try:
                assert bank2.balance("alice") == 70
                assert bank2.balance("bob") == 80
                assert bank2.total_money() == 150
                GuaranteeChecker(system2.trace).assert_ok()
            except AssertionError as exc:
                raise AssertionError(f"crash at {plan}: {exc}") from exc
            return True

        results = crash_every_step(scenario, recover, check)
        crashed = sum(1 for r in results if r.crashed)
        assert crashed >= 50
        assert all(r.check_result for r in results)
