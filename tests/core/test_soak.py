"""Mixed-workload soak test: many clients, contended accounts, deadlock
retries, a checkpoint, and a crash — guarantees and money conservation
at the end.

This is the closest thing to "production traffic" in the suite: it
exercises the whole stack at once rather than one mechanism at a time.
"""

from __future__ import annotations

import threading

from repro.apps.banking import BankApp, InsufficientFunds
from repro.core.client import UserCheckpoint
from repro.core.devices import DisplayWithUserIds
from repro.core.system import TPSystem
from repro.errors import DeadlockError, TransactionAborted

ACCOUNTS = {"a0": 1000, "a1": 1000, "a2": 1000, "a3": 1000}
CLIENTS = 4
REQUESTS_PER_CLIENT = 6


def transfer_work(client_index: int) -> list[dict]:
    """Deliberately contended: everyone moves money around the same
    four accounts in a ring."""
    work = []
    for i in range(REQUESTS_PER_CLIENT):
        src = f"a{(client_index + i) % 4}"
        dst = f"a{(client_index + i + 1) % 4}"
        work.append({"from": src, "to": dst, "amount": 5 + i})
    return work


class TestSoak:
    def test_mixed_workload_with_crash_and_checkpoint(self):
        system = TPSystem(max_aborts=10)
        bank = BankApp(system)
        bank.open_accounts(ACCOUNTS)

        def handler(txn, request):
            return bank.transfer_handler(txn, request)

        # Phase 1: half the work, live, with 2 servers and 4 clients.
        user_logs = {i: UserCheckpoint() for i in range(CLIENTS)}
        displays = {
            i: DisplayWithUserIds(trace=system.trace) for i in range(CLIENTS)
        }
        stop = threading.Event()
        servers = [system.server(f"s{i}", handler) for i in range(2)]
        retry = (DeadlockError, TransactionAborted, InsufficientFunds)
        server_threads = [
            threading.Thread(
                target=s.serve_until, args=(stop.is_set, 0.01, retry), daemon=True
            )
            for s in servers
        ]
        for t in server_threads:
            t.start()

        clients = [
            system.client(
                f"c{i}", transfer_work(i), displays[i],
                receive_timeout=30, user_log=user_logs[i],
            )
            for i in range(CLIENTS)
        ]
        client_threads = [threading.Thread(target=c.run, daemon=True) for c in clients]
        for t in client_threads:
            t.start()
        for t in client_threads:
            t.join(timeout=60)
        stop.set()
        for t in server_threads:
            t.join(timeout=10)
        assert all(c.finished for c in clients)

        # Phase 2: checkpoint, crash, recover, verify.
        system.request_repo.checkpoint()
        system.crash()
        system2 = system.reopen()
        bank2 = BankApp(system2)
        assert bank2.total_money() == sum(ACCOUNTS.values())
        system2.checker().assert_ok()

        # Every client's replies arrived in its own send order.
        for i in range(CLIENTS):
            rids = [rid for rid, _ in displays[i].shown]
            assert rids == [f"c{i}#{k}" for k in range(1, REQUESTS_PER_CLIENT + 1)]

        # Phase 3: the recovered system still works.
        display = DisplayWithUserIds(trace=system2.trace)
        late_client = system2.client(
            "late", [{"from": "a0", "to": "a1", "amount": 1}], display,
            receive_timeout=30,
        )
        server = system2.server("s-late", bank2.transfer_handler)
        done = threading.Event()
        thread = threading.Thread(
            target=lambda: server.serve_until(done.is_set, 0.01, retry), daemon=True
        )
        thread.start()
        try:
            late_client.run()
        finally:
            done.set()
            thread.join(timeout=10)
        assert bank2.total_money() == sum(ACCOUNTS.values())
        system2.checker().assert_ok()
