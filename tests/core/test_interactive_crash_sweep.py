"""F7's crash sweep: the pseudo-conversational order entry crashed at
every step, resumed by a fresh client incarnation.

The interactive guarantees reduce to the base ones hop-by-hop
(Section 8.2), so the sweep asserts: the final order is placed exactly
once, stock is decremented exactly once, and every phase request
executed exactly once.
"""

from __future__ import annotations

import threading

from repro.apps.orders import OrderApp
from repro.core.guarantees import GuaranteeChecker
from repro.core.interactive import PseudoConversationalClient, conversational_handler
from repro.core.system import TPSystem
from repro.sim.harness import crash_every_step
from repro.sim.trace import TraceRecorder

INPUTS = ["carol", {"item": "widget", "qty": 2}, {"confirm": True}]


def _scenario(injector):
    trace = TraceRecorder()
    system = TPSystem(injector=injector, trace=trace)
    orders = OrderApp(system)
    orders.stock_items({"widget": (5, 10)})
    _scenario.state = {"system": system}
    server = system.server("conv", conversational_handler(orders.conversational_step))
    client = PseudoConversationalClient(
        "c1", system.clerk("c1"), INPUTS, trace=trace, injector=injector,
        receive_timeout=None,
    )
    phase = client._resynchronize()
    while client.final_reply is None:
        client._send_phase(phase)
        server.process_one()
        reply = client._receive_phase()
        phase = reply.body["phase"] + 1
    return _scenario.state


def _recover(state):
    system2 = state["system"].reopen()
    orders2 = OrderApp(system2)
    server = system2.server(
        "conv-r", conversational_handler(orders2.conversational_step)
    )
    client = PseudoConversationalClient(
        "c1", system2.clerk("c1"), INPUTS, trace=system2.trace, receive_timeout=5
    )
    if client_needs_running(system2):
        done = threading.Event()
        thread = threading.Thread(
            target=lambda: server.serve_until(done.is_set, 0.02), daemon=True
        )
        thread.start()
        try:
            client.run()
        finally:
            done.set()
            thread.join(timeout=10)
    return system2, orders2


def client_needs_running(system) -> bool:
    """The pre-crash incarnation may have finished the conversation
    (crash after the final receive); re-running would start a brand-new
    conversation.  The durable marker is the placed order."""
    orders = OrderApp(system)
    return not orders.orders_for("carol")


def _check(state, recovered, plan):
    system2, orders2 = recovered
    placed = orders2.orders_for("carol")
    try:
        assert len(placed) == 1, f"{len(placed)} orders placed"
        assert orders2.stock_of("widget") == 8, (
            f"stock {orders2.stock_of('widget')} (decremented != once)"
        )
        checker = GuaranteeChecker(system2.trace)
        violations = checker.exactly_once(require_completion=False)
        violations += checker.request_reply_matching()
        assert not violations, violations
    except AssertionError as exc:
        raise AssertionError(f"crash at {plan}: {exc}") from exc
    return True


class TestInteractiveCrashSweep:
    def test_order_placed_exactly_once_at_every_crash_point(self):
        results = crash_every_step(_scenario, _recover, _check)
        crashed = sum(1 for r in results if r.crashed)
        assert crashed >= 30
        assert all(r.check_result for r in results)
