"""TPSystem wiring tests: configuration knobs, restart plumbing,
file-backed persistence."""

from __future__ import annotations


from repro.core.devices import DisplayWithUserIds
from repro.core.system import TPSystem
from repro.queueing.queue import DequeueMode
from repro.storage.disk import FileDisk

from tests.conftest import echo_handler


class TestConfiguration:
    def test_default_queues_created(self):
        system = TPSystem()
        assert system.request_queue in system.request_repo.queues
        assert system.error_queue in system.request_repo.queues

    def test_queue_mode_propagates(self):
        system = TPSystem(queue_mode=DequeueMode.STRICT)
        queue = system.request_repo.get_queue(system.request_queue)
        assert queue.config.mode is DequeueMode.STRICT

    def test_max_aborts_propagates(self):
        system = TPSystem(max_aborts=7)
        queue = system.request_repo.get_queue(system.request_queue)
        assert queue.config.max_aborts == 7

    def test_count_crash_attempts_propagates(self):
        system = TPSystem(count_crash_attempts=True)
        queue = system.request_repo.get_queue(system.request_queue)
        assert queue.config.count_crash_attempts is True

    def test_custom_queue_names(self):
        system = TPSystem(request_queue="in.q", error_queue="dead.q")
        assert "in.q" in system.request_repo.queues
        assert "dead.q" in system.request_repo.queues

    def test_reply_queue_naming(self):
        system = TPSystem()
        assert system.reply_queue_name("c9") == "reply.c9"
        name = system.ensure_reply_queue("c9")
        assert name in system.reply_repo.queues
        # idempotent
        assert system.ensure_reply_queue("c9") == name

    def test_single_node_shares_repo(self):
        system = TPSystem()
        assert system.reply_repo is system.request_repo
        assert system.coordinator is None

    def test_separate_reply_node(self):
        system = TPSystem(separate_reply_node=True)
        assert system.reply_repo is not system.request_repo
        assert system.coordinator is not None

    def test_table_factory(self):
        system = TPSystem()
        table = system.table("t")
        assert system.table("t") is table


class TestReopen:
    def test_reopen_preserves_configuration(self):
        system = TPSystem(max_aborts=5, queue_mode=DequeueMode.STRICT)
        system2 = system.reopen()
        queue = system2.request_repo.get_queue(system2.request_queue)
        assert queue.config.max_aborts == 5
        assert queue.config.mode is DequeueMode.STRICT

    def test_reopen_separate_node(self):
        system = TPSystem(separate_reply_node=True)
        system.ensure_reply_queue("c1")
        system.crash()
        system2 = system.reopen()
        assert system2.reply_repo is not system2.request_repo
        assert "reply.c1" in system2.reply_repo.queues

    def test_drain_helper(self):
        system = TPSystem()
        display = DisplayWithUserIds(trace=system.trace)
        client = system.client("c1", ["x", "y"], display)
        client.resynchronize()
        client.send_only(1)
        server = system.server("s", echo_handler)
        assert system.drain(server) == 1


class TestFileBackedPersistence:
    def test_full_protocol_on_real_files(self, tmp_path):
        """End-to-end on FileDisk: the state survives a complete
        teardown and is recovered from actual files."""
        from repro.core.devices import TicketPrinter

        root = str(tmp_path / "node")
        disk = FileDisk(root)
        system = TPSystem(request_disk=disk)
        printer = TicketPrinter(trace=system.trace)
        client = system.client("c1", ["persist"], printer)
        client.resynchronize()
        client.send_only(1)
        disk.close()  # the "process" exits

        # A new "process" opens the same files.
        disk2 = FileDisk(root)
        system2 = TPSystem(request_disk=disk2)
        assert system2.request_repo.get_queue(system2.request_queue).depth() == 1
        server = system2.server("s", echo_handler)
        server.process_one()
        clerk = system2.clerk("c1")
        s_rid, r_rid, _ = clerk.connect()
        assert s_rid == "c1#1"
        reply = clerk.receive(timeout=2)
        assert reply.body == {"echo": "persist"}
        disk2.close()

    def test_checkpoint_on_files(self, tmp_path):
        root = str(tmp_path / "ckpt-node")
        disk = FileDisk(root)
        system = TPSystem(request_disk=disk)
        table = system.table("data")
        with system.request_repo.tm.transaction() as txn:
            table.put(txn, "k", [1, 2, 3])
        system.request_repo.checkpoint()
        disk.close()
        disk2 = FileDisk(root)
        system2 = TPSystem(request_disk=disk2)
        assert system2.request_repo.last_recovery.checkpoint_loaded
        assert system2.table("data").peek("k") == [1, 2, 3]
        disk2.close()
