"""Section 2's asynchrony claim, literally.

"a process that enqueues a request can communicate with one that
executes the request even if they are not both operational
simultaneously."

The test alternates strict availability phases — the client and server
are NEVER up at the same time — and the protocol still completes with
all guarantees.
"""

from __future__ import annotations

from repro.core.devices import TicketPrinter

from tests.conftest import echo_handler


class TestNeverSimultaneouslyUp:
    def test_request_reply_across_alternating_availability(self, system):
        device = TicketPrinter(trace=system.trace)

        # Phase 1: ONLY the client is up. It sends and then "goes down"
        # (we simply stop driving it; its state is all in the queues).
        client = system.client("c1", ["solo-work"], device)
        client.resynchronize()
        client.send_only(1)
        del client  # the client process is gone

        # Phase 2: ONLY the server is up.
        server = system.server("s", echo_handler)
        assert server.process_one() is True
        del server  # the server process is gone

        # Phase 3: ONLY the client (a new incarnation) is up.
        client2 = system.client("c1", ["solo-work"], device, receive_timeout=2)
        next_seq = client2.resynchronize()  # receives + processes the reply
        assert next_seq == 2
        assert device.tickets_for("c1#1") == [1]
        system.checker().assert_ok()

    def test_multi_request_ping_pong(self, system):
        """Three requests, six availability phases, zero overlap."""
        device = TicketPrinter(trace=system.trace)
        work = ["a", "b", "c"]
        for round_index in range(3):
            # client phase: resync (processes the previous reply) + send
            client = system.client("c1", work, device, receive_timeout=2)
            seq = client.resynchronize()
            assert seq == round_index + 1
            client.send_only(seq)
            del client
            # server phase
            server = system.server(f"s{round_index}", echo_handler)
            assert server.process_one() is True
            del server
        # Final client phase collects the last reply.
        client = system.client("c1", work, device, receive_timeout=2)
        assert client.resynchronize() == 4
        assert [rid for _t, rid in device.printed] == ["c1#1", "c1#2", "c1#3"]
        system.checker().assert_ok()

    def test_server_down_crash_between_phases(self, system):
        """Same alternation, but the whole node also crashes between
        every phase — the queues carry everything."""
        device = TicketPrinter(trace=system.trace)
        client = system.client("c1", ["x"], device)
        client.resynchronize()
        client.send_only(1)
        system.crash()
        system2 = system.reopen()
        server = system2.server("s", echo_handler)
        server.process_one()
        system2.crash()
        system3 = system2.reopen()
        client3 = system3.client("c1", ["x"], device, receive_timeout=2)
        assert client3.resynchronize() == 2
        assert device.tickets_for("c1#1") == [1]
        system3.checker().assert_ok()
