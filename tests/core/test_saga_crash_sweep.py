"""Saga cancellation crash sweep (Section 7).

A transfer runs its first two transactions, then the user cancels.
Crashes are injected at every step of the cancel path (kill, each
compensation transaction, the compensation-log writes); after recovery
the cancel is *re-issued* — the compensation log must make the resume
idempotent, so the books always balance at exactly the opening state.
"""

from __future__ import annotations

from repro.apps.banking import BankApp
from repro.core.devices import DisplayWithUserIds
from repro.core.system import TPSystem
from repro.errors import CancelFailed
from repro.sim.harness import crash_every_step
from repro.sim.trace import TraceRecorder


def _build(system):
    bank = BankApp(system)
    pipeline = bank.transfer_pipeline()
    saga = bank.transfer_saga(pipeline)
    return bank, pipeline, saga


def _scenario(injector):
    trace = TraceRecorder()
    system = TPSystem(injector=injector, trace=trace)
    bank, pipeline, saga = _build(system)
    bank.open_accounts({"alice": 100, "bob": 50})
    _scenario.state = {"system": system}
    display = DisplayWithUserIds(trace=trace)
    client = system.client("c1", bank.transfer_work([("alice", "bob", 30)]), display)
    client.resynchronize()
    client.send_only(1)
    pipeline.stage_server(0).process_one()
    pipeline.stage_server(1).process_one()
    saga.cancel("c1#1")
    return _scenario.state


def _recover(state):
    system2 = state["system"].reopen()
    bank2, pipeline2, saga2 = _build(system2)
    # Re-issue the cancel; the compensation log absorbs repeats.  The
    # pipeline may not even have started (crash before any stage): then
    # the element kill suffices and there is nothing to compensate.
    try:
        saga2.cancel("c1#1")
    except CancelFailed:  # pragma: no cover - cannot happen pre-completion
        raise
    return system2, bank2, saga2


def _check(state, recovered, plan):
    system2, bank2, saga2 = recovered
    try:
        assert bank2.balance("alice") == 100, f"alice={bank2.balance('alice')}"
        assert bank2.balance("bob") == 50, f"bob={bank2.balance('bob')}"
        assert bank2.total_money() == 150
        # The request must never complete after a successful cancel.
        executed = system2.trace.rids("request.executed")
        assert "c1#1" not in executed
    except AssertionError as exc:
        raise AssertionError(f"crash at {plan}: {exc}") from exc
    return True


class TestSagaCrashSweep:
    def test_books_balance_at_every_cancel_crash_point(self):
        results = crash_every_step(_scenario, _recover, _check)
        crashed = sum(1 for r in results if r.crashed)
        assert crashed >= 30
        assert all(r.check_result for r in results)
