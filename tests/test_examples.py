"""Every example script must run clean — the examples are part of the
public contract (deliverable b), so the suite guards them."""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    assert len(EXAMPLES) >= 5


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, (
        f"{script} failed:\nstdout:\n{result.stdout}\nstderr:\n{result.stderr}"
    )
    assert result.stdout.strip(), f"{script} printed nothing"


def test_quickstart_reports_guarantees():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert "guarantees: OK" in result.stdout


def test_atm_reports_exhaustive_coverage():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "crash_tolerant_atm.py")],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert "crash points exercised" in result.stdout
    count = int(result.stdout.split("crash points exercised :")[1].split()[0])
    assert count >= 40
