"""Exception hierarchy tests."""

from __future__ import annotations

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc_class",
        [
            errors.StorageError,
            errors.DiskCrashedError,
            errors.CorruptRecordError,
            errors.CheckpointError,
            errors.TransactionError,
            errors.DeadlockError,
            errors.LockTimeoutError,
            errors.InvalidTransactionState,
            errors.TwoPhaseCommitError,
            errors.QueueError,
            errors.NoSuchQueueError,
            errors.NoSuchRepositoryError,
            errors.QueueExistsError,
            errors.QueueStoppedError,
            errors.QueueEmpty,
            errors.NoSuchElementError,
            errors.ElementLockedError,
            errors.NotRegisteredError,
            errors.RegistrationExistsError,
            errors.KillFailedError,
            errors.ClientError,
            errors.NotConnectedError,
            errors.ProtocolViolation,
            errors.CancelFailed,
            errors.CommError,
            errors.MessageLost,
            errors.PartitionedError,
            errors.RpcTimeout,
        ],
    )
    def test_all_library_errors_are_repro_errors(self, exc_class):
        assert issubclass(exc_class, errors.ReproError)

    def test_transaction_aborted_carries_context(self):
        exc = errors.TransactionAborted(42, "deadlock victim")
        assert exc.txn_id == 42
        assert exc.reason == "deadlock victim"
        assert "42" in str(exc)

    def test_subsystem_grouping(self):
        assert issubclass(errors.DeadlockError, errors.TransactionError)
        assert issubclass(errors.QueueEmpty, errors.QueueError)
        assert issubclass(errors.NotConnectedError, errors.ClientError)
        assert issubclass(errors.MessageLost, errors.CommError)
        assert issubclass(errors.DiskCrashedError, errors.StorageError)

    def test_one_handler_catches_the_family(self):
        with pytest.raises(errors.ReproError):
            raise errors.QueueEmpty("nothing here")

    def test_simulated_crash_is_not_a_repro_error(self):
        # Deliberately uncatchable by `except ReproError` or even
        # `except Exception` — like a power failure.
        assert not issubclass(errors.SimulatedCrash, errors.ReproError)
        assert not issubclass(errors.SimulatedCrash, Exception)
        assert issubclass(errors.SimulatedCrash, BaseException)

    def test_simulated_crash_message(self):
        assert "my.point" in str(errors.SimulatedCrash("my.point"))
        assert str(errors.SimulatedCrash())  # no point given
