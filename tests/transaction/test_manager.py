"""Transaction manager tests: commit/abort, hooks, crash points."""

from __future__ import annotations

import pytest

from repro.errors import (
    InvalidTransactionState,
    SimulatedCrash,
    TransactionAborted,
)
from repro.sim.crash import FaultInjector
from repro.storage.disk import MemDisk
from repro.storage.kvstore import KVStore
from repro.transaction.ids import TxnStatus
from repro.transaction.locks import LockManager
from repro.transaction.log import LogManager
from repro.transaction.manager import TransactionManager
from repro.transaction.recovery import recover


def make_tm(disk=None, injector=None):
    disk = disk if disk is not None else MemDisk()
    log = LogManager(disk)
    tm = TransactionManager(log, LockManager(default_timeout=2.0), injector)
    return tm, log, disk


class TestLifecycle:
    def test_ids_are_unique_and_increasing(self):
        tm, _, _ = make_tm()
        t1, t2, t3 = tm.begin(), tm.begin(), tm.begin()
        assert t1.id < t2.id < t3.id

    def test_commit_sets_status(self):
        tm, _, _ = make_tm()
        txn = tm.begin()
        tm.commit(txn)
        assert txn.status is TxnStatus.COMMITTED
        assert tm.commits == 1

    def test_abort_sets_status(self):
        tm, _, _ = make_tm()
        txn = tm.begin()
        tm.abort(txn, "test")
        assert txn.status is TxnStatus.ABORTED
        assert tm.aborts == 1

    def test_double_abort_is_noop(self):
        tm, _, _ = make_tm()
        txn = tm.begin()
        tm.abort(txn)
        tm.abort(txn)
        assert tm.aborts == 1

    def test_commit_after_abort_rejected(self):
        tm, _, _ = make_tm()
        txn = tm.begin()
        tm.abort(txn)
        with pytest.raises(InvalidTransactionState):
            tm.commit(txn)

    def test_abort_after_commit_rejected(self):
        tm, _, _ = make_tm()
        txn = tm.begin()
        tm.commit(txn)
        with pytest.raises(InvalidTransactionState):
            tm.abort(txn)

    def test_operations_rejected_on_finished_txn(self):
        tm, _, _ = make_tm()
        txn = tm.begin()
        tm.commit(txn)
        with pytest.raises(InvalidTransactionState):
            txn.log_update("rm", {})
        with pytest.raises(InvalidTransactionState):
            txn.add_undo(lambda: None)


class TestUndoAndHooks:
    def test_undo_runs_in_reverse_on_abort(self):
        tm, _, _ = make_tm()
        order = []
        txn = tm.begin()
        txn.add_undo(lambda: order.append("first-registered"))
        txn.add_undo(lambda: order.append("second-registered"))
        tm.abort(txn)
        assert order == ["second-registered", "first-registered"]

    def test_undo_not_run_on_commit(self):
        tm, _, _ = make_tm()
        ran = []
        txn = tm.begin()
        txn.add_undo(lambda: ran.append(1))
        tm.commit(txn)
        assert ran == []

    def test_commit_hooks_fire_on_commit_only(self):
        tm, _, _ = make_tm()
        fired = []
        txn = tm.begin()
        txn.on_commit(lambda: fired.append("c"))
        txn.on_abort(lambda: fired.append("a"))
        tm.commit(txn)
        assert fired == ["c"]

    def test_abort_hooks_fire_on_abort_only(self):
        tm, _, _ = make_tm()
        fired = []
        txn = tm.begin()
        txn.on_commit(lambda: fired.append("c"))
        txn.on_abort(lambda: fired.append("a"))
        tm.abort(txn)
        assert fired == ["a"]

    def test_locks_released_after_commit(self):
        tm, _, _ = make_tm()
        from repro.transaction.locks import LockMode

        txn = tm.begin()
        txn.lock("r", LockMode.X)
        tm.commit(txn)
        assert tm.locks.holders("r") == {}

    def test_locks_released_after_abort(self):
        tm, _, _ = make_tm()
        from repro.transaction.locks import LockMode

        txn = tm.begin()
        txn.lock("r", LockMode.X)
        tm.abort(txn)
        assert tm.locks.holders("r") == {}


class TestContextManager:
    def test_commits_on_success(self):
        tm, _, _ = make_tm()
        with tm.transaction() as txn:
            pass
        assert txn.status is TxnStatus.COMMITTED

    def test_aborts_on_exception(self):
        tm, _, _ = make_tm()
        with pytest.raises(ValueError):
            with tm.transaction() as txn:
                raise ValueError("boom")
        assert txn.status is TxnStatus.ABORTED

    def test_simulated_crash_does_not_gracefully_abort(self):
        # A crash kills the process; there is nobody left to run undo.
        tm, _, _ = make_tm()
        with pytest.raises(SimulatedCrash):
            with tm.transaction() as txn:
                raise SimulatedCrash("mid-txn")
        assert txn.status is TxnStatus.ACTIVE

    def test_external_abort_surfaces_as_error(self):
        tm, _, _ = make_tm()
        with pytest.raises(TransactionAborted):
            with tm.transaction() as txn:
                tm.abort_by_id(txn.id, "killed from outside")

    def test_run_retries_deadlock(self):
        tm, _, _ = make_tm()
        from repro.errors import DeadlockError

        attempts = []

        def body(txn):
            attempts.append(1)
            if len(attempts) < 3:
                tm.abort(txn, "pretend deadlock")
                raise DeadlockError("pretend")
            return "done"

        assert tm.run(body) == "done"
        assert len(attempts) == 3

    def test_run_gives_up_after_attempts(self):
        tm, _, _ = make_tm()
        from repro.errors import DeadlockError

        def body(txn):
            tm.abort(txn, "always deadlocks")
            raise DeadlockError("always")

        with pytest.raises(TransactionAborted):
            tm.run(body, attempts=2)


class TestAbortById:
    def test_abort_active_txn(self):
        tm, _, _ = make_tm()
        txn = tm.begin()
        assert tm.abort_by_id(txn.id) is True
        assert txn.status is TxnStatus.ABORTED

    def test_abort_unknown_id(self):
        tm, _, _ = make_tm()
        assert tm.abort_by_id(9999) is False


class TestDurability:
    def test_commit_is_durable_at_crash(self):
        disk = MemDisk()
        tm, log, _ = make_tm(disk)
        store = KVStore("d")
        with tm.transaction() as txn:
            store.put(txn, "k", "v")
        disk.crash()
        disk.recover()
        store2 = KVStore("d")
        report = recover(LogManager(disk), {store2.rm_name: store2})
        assert store2.peek("k") == "v"
        assert report.replayed_updates == 1

    def test_crash_before_commit_log_loses_txn(self):
        disk = MemDisk()
        injector = FaultInjector()
        injector.arm("tm.commit.before_log")
        tm, log, _ = make_tm(disk, injector)
        store = KVStore("d")
        txn = tm.begin()
        store.put(txn, "k", "v")
        with pytest.raises(SimulatedCrash):
            tm.commit(txn)
        disk.crash()
        disk.recover()
        store2 = KVStore("d")
        recover(LogManager(disk), {store2.rm_name: store2})
        assert store2.peek("k") is None

    def test_crash_after_commit_log_keeps_txn(self):
        disk = MemDisk()
        injector = FaultInjector()
        injector.arm("tm.commit.after_log")
        tm, log, _ = make_tm(disk, injector)
        store = KVStore("d")
        txn = tm.begin()
        store.put(txn, "k", "v")
        with pytest.raises(SimulatedCrash):
            tm.commit(txn)
        disk.crash()
        disk.recover()
        store2 = KVStore("d")
        recover(LogManager(disk), {store2.rm_name: store2})
        assert store2.peek("k") == "v"

    def test_recovery_advances_txn_ids(self):
        disk = MemDisk()
        tm, _, _ = make_tm(disk)
        with tm.transaction() as txn:
            txn.log_update("x", {"noop": True})
        highest = txn.id
        disk.crash()
        disk.recover()
        tm2, _, _ = make_tm(disk)
        recover(LogManager(disk), {}, tm2)
        assert tm2.begin().id > highest
