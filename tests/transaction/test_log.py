"""LogManager unit tests (typed records, checkpoint area, analysis
helpers)."""

from __future__ import annotations

import pytest

from repro.errors import CheckpointError
from repro.storage.disk import MemDisk
from repro.transaction.log import (
    KIND_ABORT,
    KIND_AUTO,
    KIND_COMMIT,
    KIND_OUTCOME,
    KIND_PREPARE,
    KIND_UPDATE,
    LogManager,
)


class TestRecordKinds:
    def test_update_then_commit(self):
        log = LogManager(MemDisk())
        log.log_update(1, "rm-a", {"op": "x"})
        log.log_commit(1)
        records = log.records()
        assert [r.kind for r in records] == [KIND_UPDATE, KIND_COMMIT]
        assert records[0].rm == "rm-a"
        assert records[0].data == {"op": "x"}

    def test_abort_record(self):
        log = LogManager(MemDisk())
        log.log_abort(7, "deadlock")
        record = log.records()[0]
        assert record.kind == KIND_ABORT
        assert record.data["reason"] == "deadlock"

    def test_auto_is_immediately_durable(self):
        disk = MemDisk()
        log = LogManager(disk)
        log.log_auto("rm", {"n": 1})
        disk.crash()
        disk.recover()
        assert LogManager(disk).records()[0].kind == KIND_AUTO

    def test_update_is_not_durable_until_commit(self):
        disk = MemDisk()
        log = LogManager(disk)
        log.log_update(1, "rm", {})
        disk.crash()
        disk.recover()
        assert LogManager(disk).records() == []

    def test_commit_forces_everything_before_it(self):
        disk = MemDisk()
        log = LogManager(disk)
        log.log_update(1, "rm", {"n": 1})
        log.log_update(1, "rm", {"n": 2})
        log.log_commit(1)
        disk.crash()
        disk.recover()
        assert len(LogManager(disk).records()) == 3

    def test_prepare_and_outcome(self):
        log = LogManager(MemDisk())
        log.log_prepare(3, "gid-9", ["r1", "r2"])
        log.log_outcome(3, "commit")
        prepare, outcome = log.records()
        assert prepare.kind == KIND_PREPARE
        assert prepare.data == {"gid": "gid-9", "locks": ["r1", "r2"]}
        assert outcome.kind == KIND_OUTCOME

    def test_lsn_ordering(self):
        log = LogManager(MemDisk())
        lsns = [log.log_update(1, "rm", {"i": i}) for i in range(5)]
        assert lsns == sorted(lsns)

    def test_counters(self):
        log = LogManager(MemDisk())
        log.log_update(1, "rm", {})
        log.log_update(1, "rm", {})
        log.log_commit(1)
        assert log.update_records == 2
        assert log.commit_records == 1


class TestPerTxnBatching:
    def _log(self):
        from repro.obs import Observability

        return LogManager(MemDisk(), obs=Observability())

    def test_multi_update_commit_is_one_physical_append(self):
        # The batching acceptance gate: a transaction's updates are
        # buffered and published with its cmt as ONE wal_appends_total
        # physical append, while wal_records_total still counts every
        # record individually.
        log = self._log()
        for i in range(5):
            log.log_update(1, "rm", {"i": i})
        assert log.wal._m_appends.value == 0  # nothing hits disk yet
        log.log_commit(1)
        assert log.wal._m_appends.value == 1
        assert log.wal._m_records.value == 6  # 5 upd + 1 cmt
        assert [r.kind for r in log.records()] == [KIND_UPDATE] * 5 + [
            KIND_COMMIT
        ]

    def test_abort_discards_buffer_without_touching_disk(self):
        log = self._log()
        for i in range(4):
            log.log_update(2, "rm", {"i": i})
        log.log_abort(2)
        # Only the abt record itself is appended; the buffered updates
        # vanish (abort-by-omission made literal).
        assert log.wal._m_records.value == 1
        assert [r.kind for r in log.records()] == [KIND_ABORT]

    def test_prepare_publishes_buffer_as_one_append(self):
        log = self._log()
        log.log_update(3, "rm", {"n": 1})
        log.log_update(3, "rm", {"n": 2})
        log.log_prepare(3, "gid-1", ["r1"])
        assert log.wal._m_appends.value == 1
        assert log.wal._m_records.value == 3
        kinds = [r.kind for r in log.records()]
        assert kinds == [KIND_UPDATE, KIND_UPDATE, KIND_PREPARE]

    def test_interleaved_txns_keep_their_own_batches(self):
        log = self._log()
        log.log_update(1, "rm", {"t": 1})
        log.log_update(2, "rm", {"t": 2})
        log.log_update(1, "rm", {"t": 1})
        log.log_commit(2)
        log.log_commit(1)
        records = log.records()
        assert [(r.kind, r.txn_id) for r in records] == [
            (KIND_UPDATE, 2),
            (KIND_COMMIT, 2),
            (KIND_UPDATE, 1),
            (KIND_UPDATE, 1),
            (KIND_COMMIT, 1),
        ]
        assert log.wal._m_appends.value == 2


class TestEnvelopeBytes:
    def test_hand_rolled_envelope_matches_generic_codec(self):
        # _TxnBuffer.add writes the record envelope from precomputed
        # skeletons; the bytes must stay identical to the generic codec
        # encoding of the envelope dict (decode and replay depend on it).
        from repro.storage.codec import encode
        from repro.storage.wal import SUB_HEADER_SIZE
        from repro.transaction.log import _TxnBuffer

        cases = [
            ("upd", 1, "rm-a", {"op": "x"}),
            ("cmt", 200, None, {}),
            ("upd", 0, "a-much-longer-resource-manager-name", {"n": [1, 2]}),
            ("prep", 7, None, {"gid": "g", "locks": ["r1"]}),
            ("auto", None, "rm", {"deep": {"k": b"bytes", "f": 1.5}}),
        ]
        buf = _TxnBuffer()
        for kind, txn_id, rm, data in cases:
            buf.add(kind, txn_id, rm, data)
        for (kind, txn_id, rm, data), start in zip(cases, buf.offsets):
            end = start + SUB_HEADER_SIZE + int.from_bytes(
                buf.body[start : start + SUB_HEADER_SIZE], "big"
            )
            sub = bytes(buf.body[start + SUB_HEADER_SIZE : end])
            assert sub == encode(
                {"k": kind, "t": txn_id, "rm": rm, "d": data}
            )


class TestAnalysisHelpers:
    def test_committed_txns(self):
        log = LogManager(MemDisk())
        log.log_update(1, "rm", {})
        log.log_commit(1)
        log.log_update(2, "rm", {})
        log.log_abort(2)
        assert log.committed_txns() == {1}

    def test_outcome_decisions(self):
        log = LogManager(MemDisk())
        log.log_outcome(5, "commit")
        log.log_outcome(6, "abort")
        assert log.outcome_decisions() == {5: "commit", 6: "abort"}


class TestCheckpointArea:
    def test_round_trip(self):
        log = LogManager(MemDisk())
        log.write_checkpoint({"rm-a": {"k": 1}, "rm-b": [1, 2]})
        assert log.read_checkpoint() == {"rm-a": {"k": 1}, "rm-b": [1, 2]}

    def test_missing_checkpoint_is_none(self):
        assert LogManager(MemDisk()).read_checkpoint() is None

    def test_checkpoint_truncates_log(self):
        log = LogManager(MemDisk())
        log.log_auto("rm", {})
        log.write_checkpoint({})
        assert log.records() == []

    def test_corrupt_checkpoint_raises(self):
        disk = MemDisk()
        log = LogManager(disk)
        disk.replace(log.checkpoint_area, b"\xff\xffgarbage")
        with pytest.raises(CheckpointError):
            log.read_checkpoint()

    def test_checkpoint_area_name_derived(self):
        log = LogManager(MemDisk(), area="node7.log")
        assert log.checkpoint_area == "node7.log.ckpt"
