"""Crash safety of group commit: a crash between the batch append and
the batch flush must never surface a committed-but-lost transaction,
and recovery replays exactly the flushed prefix."""

from __future__ import annotations

import threading

import pytest

from repro.errors import DiskCrashedError, SimulatedCrash
from repro.queueing.repository import QueueRepository
from repro.sim.crash import FaultInjector
from repro.storage.disk import MemDisk
from repro.storage.groupcommit import GroupCommitConfig
from repro.storage.kvstore import KVStore
from repro.transaction.locks import LockManager
from repro.transaction.log import LogManager
from repro.transaction.manager import TransactionManager


def fresh(disk, injector=None, group_commit=None):
    log = LogManager(disk, injector=injector, group_commit=group_commit)
    tm = TransactionManager(log, LockManager(default_timeout=2.0), injector)
    return log, tm


class TestCrashAroundGroupFlush:
    def test_crash_before_flush_loses_the_commit(self):
        # The cmt record is appended but the group flush never ran: the
        # transaction must roll back at recovery — and its commit()
        # never returned, so nothing was promised.
        disk = MemDisk()
        injector = FaultInjector()
        injector.on_crash.append(lambda _point: disk.crash())
        injector.arm("wal.log.group_flush.before")
        log, tm = fresh(disk, injector)
        store = KVStore("t")
        txn = tm.begin()
        store.put(txn, "k", "v")
        with pytest.raises(SimulatedCrash):
            tm.commit(txn)
        disk.recover()
        store2 = KVStore("t")
        log2 = LogManager(disk)
        from repro.transaction.recovery import recover

        report = recover(log2, {store2.rm_name: store2})
        assert report.committed == set()
        assert store2.peek("k") is None

    def test_crash_after_flush_keeps_the_commit(self):
        disk = MemDisk()
        injector = FaultInjector()
        injector.on_crash.append(lambda _point: disk.crash())
        injector.arm("wal.log.group_flush.after")
        log, tm = fresh(disk, injector)
        store = KVStore("t")
        txn = tm.begin()
        store.put(txn, "k", "v")
        with pytest.raises(SimulatedCrash):
            tm.commit(txn)
        disk.recover()
        store2 = KVStore("t")
        from repro.transaction.recovery import recover

        report = recover(LogManager(disk), {store2.rm_name: store2})
        assert report.committed == {txn.id}
        assert store2.peek("k") == "v"

    def test_mid_batch_crash_never_loses_an_acknowledged_commit(self):
        # 8 committers share group flushes; the disk dies at the 5th
        # group flush.  Every transaction whose commit() RETURNED must
        # survive recovery; every one whose commit() raised must not be
        # half-visible as committed-without-effects or vice versa.
        disk = MemDisk()
        injector = FaultInjector(record=False)
        injector.on_crash.append(lambda _point: disk.crash())
        injector.arm("wal.repo.log.group_flush.before", hit=5)
        repo = QueueRepository(
            "repo", disk, injector,
            group_commit=GroupCommitConfig(max_wait=0.005, max_batch=8),
        )
        store = repo.create_table("t")
        acked: list[str] = []
        acked_lock = threading.Lock()

        def committer(tid: int) -> None:
            for i in range(40):
                key = f"k{tid}-{i}"
                try:
                    with repo.tm.transaction() as txn:
                        store.put(txn, key, tid)
                except (SimulatedCrash, DiskCrashedError):
                    return
                with acked_lock:
                    acked.append(key)

        threads = [
            threading.Thread(target=committer, args=(t,)) for t in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert disk.crashed, "the armed group flush was never reached"
        disk.recover()
        repo2 = QueueRepository("repo", disk)
        store2 = repo2.get_table("t")
        missing = [k for k in acked if store2.peek(k) is None]
        assert not missing, f"acknowledged commits lost: {missing}"

    def test_recovery_replays_exactly_the_flushed_prefix(self):
        # Whatever the log's durable prefix says committed is exactly
        # what recovery reports — no more, no less.
        disk = MemDisk()
        injector = FaultInjector(record=False)
        injector.on_crash.append(lambda _point: disk.crash())
        injector.arm("wal.repo.log.group_flush.before", hit=7)
        repo = QueueRepository(
            "repo", disk, injector,
            group_commit=GroupCommitConfig(max_wait=0.002, max_batch=4),
        )
        store = repo.create_table("t")

        def committer(tid: int) -> None:
            for i in range(30):
                try:
                    with repo.tm.transaction() as txn:
                        store.put(txn, f"k{tid}-{i}", i)
                except (SimulatedCrash, DiskCrashedError):
                    return

        threads = [
            threading.Thread(target=committer, args=(t,)) for t in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert disk.crashed
        disk.recover()
        log2 = LogManager(disk, area="repo.log")
        durable_commits = {
            r.txn_id for r in log2.records() if r.kind == "cmt"
        }
        repo2 = QueueRepository("repo", disk)
        assert repo2.last_recovery.committed == durable_commits


class TestPrepareForcedThroughGroupCommit:
    def test_prepare_is_durable_before_returning(self):
        disk = MemDisk()
        log, tm = fresh(disk)
        store = KVStore("t")
        txn = tm.begin()
        store.put(txn, "k", 1)
        tm.prepare(txn, "gid-1")
        disk.crash()
        disk.recover()
        store2 = KVStore("t")
        from repro.transaction.recovery import recover

        report = recover(LogManager(disk), {store2.rm_name: store2})
        assert [b.global_id for b in report.in_doubt] == ["gid-1"]
