"""2PC crash sweep: a global transaction over two nodes crashed at
every instrumented point; after recovery and in-doubt resolution both
nodes converge to the same outcome (all-or-nothing, globally)."""

from __future__ import annotations

from repro.sim.harness import crash_every_step
from repro.storage.disk import MemDisk
from repro.storage.kvstore import KVStore
from repro.transaction.locks import LockManager
from repro.transaction.log import LogManager
from repro.transaction.manager import TransactionManager
from repro.transaction.recovery import recover
from repro.transaction.twophase import TwoPhaseCoordinator


def _node(disk, injector=None):
    log = LogManager(disk)
    tm = TransactionManager(log, LockManager(default_timeout=2.0), injector)
    store = KVStore("db")
    return log, tm, store


def _scenario(injector):
    disk_a, disk_b = MemDisk(), MemDisk()
    _scenario.state = {"disk_a": disk_a, "disk_b": disk_b}
    log_a, tm_a, store_a = _node(disk_a, injector)
    log_b, tm_b, store_b = _node(disk_b, injector)
    coordinator = TwoPhaseCoordinator(log_a, name="co", injector=injector)
    txn_a, txn_b = tm_a.begin(), tm_b.begin()
    store_a.put(txn_a, "k", "A")
    store_b.put(txn_b, "k", "B")
    coordinator.commit([(tm_a, txn_a), (tm_b, txn_b)])
    return _scenario.state


def _recover(state):
    outcomes = {}
    # The coordinator lives on node A; recover it first so decisions
    # can be looked up.
    for name in ("disk_a", "disk_b"):
        disk = state[name]
        if disk.crashed:
            disk.recover()
    log_a = LogManager(state["disk_a"])
    coordinator = TwoPhaseCoordinator(log_a, name="co")
    for name in ("disk_a", "disk_b"):
        log = LogManager(state[name])
        store = KVStore("db")
        report = recover(log, {store.rm_name: store})
        for branch in report.in_doubt:
            branch.resolve(coordinator.decision(branch.global_id))
        outcomes[name] = store.peek("k")
    return outcomes


def _check(state, outcomes, plan):
    a, b = outcomes["disk_a"], outcomes["disk_b"]
    # Global atomicity: both applied, or neither.
    both = a == "A" and b == "B"
    neither = a is None and b is None
    assert both or neither, (
        f"crash at {plan}: node A={a!r}, node B={b!r} — split outcome!"
    )
    return "commit" if both else "abort"


class TestTwoPhaseCommitSweep:
    def test_global_atomicity_at_every_crash_point(self):
        results = crash_every_step(_scenario, _recover, _check)
        crashed = sum(1 for r in results if r.crashed)
        assert crashed >= 8
        outcomes = {r.check_result for r in results}
        # Some crash points roll the world back, some commit it — but
        # the no-crash baseline must commit, and every run is atomic.
        assert results[-1].check_result == "commit"
        assert outcomes <= {"commit", "abort"}
