"""A failed commit force must never yield an acknowledged-but-lost
transaction — including mid-group-commit.

The policy under test (see :mod:`repro.storage.wal`): the first failed
flush *panics* the log.  The committer gets the storage error (its
transaction is hard-aborted: volatile effects undone, locks released),
and every later append/flush raises :class:`~repro.errors.WalPanicError`
until restart — so a subsequent successful flush can never quietly
promote a commit record whose transaction was already reported failed.
After restart, recovery replays exactly the durable prefix: a commit
whose force failed either raised to its caller XOR is replayed, never
neither and never "acknowledged then lost".
"""

from __future__ import annotations

import threading

import pytest

from repro.errors import (
    DiskIOError,
    StorageError,
    TransactionAborted,
    WalPanicError,
)
from repro.queueing.repository import QueueRepository
from repro.storage.disk import MemDisk
from repro.storage.faults import DiskFault, FaultyDisk
from repro.storage.groupcommit import GroupCommitConfig
from repro.storage.kvstore import KVStore
from repro.storage.wal import WriteAheadLog
from repro.transaction.locks import LockManager
from repro.transaction.log import LogManager
from repro.transaction.manager import TransactionManager
from repro.transaction.recovery import recover


def _fresh(disk, group_commit=None):
    log = LogManager(disk, group_commit=group_commit)
    tm = TransactionManager(log, LockManager(default_timeout=0.2))
    return log, tm


def _restart(faulty):
    """Panic restart: the node is gone, so the disk's unflushed buffers
    are discarded (their durability was unknowable) and the device is
    brought back without its remaining fault plan."""
    faulty.heal()
    faulty.crash()
    faulty.recover()


class TestSingleCommitForceFailure:
    def test_committer_sees_the_error_and_nothing_is_acknowledged(self):
        faulty = FaultyDisk(MemDisk(), faults=[DiskFault(op="flush", hit=1)])
        log, tm = _fresh(faulty)
        store = KVStore("t")
        txn = tm.begin()
        store.put(txn, "k", "v")
        with pytest.raises(DiskIOError):
            tm.commit(txn)
        # Hard abort: volatile effects undone, the log is panicked.
        assert store.peek("k") is None
        assert log.wal.panicked
        assert tm.aborts == 1 and tm.commits == 0

    def test_recovery_does_not_replay_the_failed_commit(self):
        faulty = FaultyDisk(MemDisk(), faults=[DiskFault(op="flush", hit=1)])
        log, tm = _fresh(faulty)
        store = KVStore("t")
        txn = tm.begin()
        store.put(txn, "k", "v")
        with pytest.raises(DiskIOError):
            tm.commit(txn)
        _restart(faulty)
        store2 = KVStore("t")
        report = recover(LogManager(faulty), {store2.rm_name: store2})
        assert txn.id not in report.committed
        assert store2.peek("k") is None

    def test_hard_abort_releases_locks(self):
        faulty = FaultyDisk(MemDisk(), faults=[DiskFault(op="flush", hit=1)])
        log, tm = _fresh(faulty)
        store = KVStore("t")
        txn = tm.begin()
        store.put(txn, "k", "v")
        with pytest.raises(DiskIOError):
            tm.commit(txn)
        # The key's X lock is free again: another transaction acquires
        # it immediately instead of waiting out the (short) lock
        # timeout.  (The panicked log refuses redo records, so we probe
        # the lock directly rather than through a KVStore write.)
        from repro.transaction.locks import LockMode

        txn2 = tm.begin()
        txn2.lock("t/k", LockMode.X)  # would time out if still held
        tm.abort(txn2)

    def test_panic_blocks_later_promotion_of_the_commit_record(self):
        # The injected flush failure is transient (duration=1): a naive
        # retry of the flush WOULD succeed and make the commit record
        # durable after its transaction was reported failed.  The panic
        # forbids exactly that.
        faulty = FaultyDisk(MemDisk(), faults=[DiskFault(op="flush", hit=1)])
        wal = WriteAheadLog(faulty, area="log")
        wal.append(b"commit-record")
        with pytest.raises(DiskIOError):
            wal.flush()
        with pytest.raises(WalPanicError):
            wal.flush()  # the transient fault is gone, but no retry
        with pytest.raises(WalPanicError):
            wal.append(b"more")
        assert wal.panic_cause is not None
        _restart(faulty)
        assert WriteAheadLog(faulty, area="log").records() == []

    def test_next_transaction_fails_fast_on_the_panicked_log(self):
        faulty = FaultyDisk(MemDisk(), faults=[DiskFault(op="flush", hit=1)])
        log, tm = _fresh(faulty)
        store = KVStore("t")
        with pytest.raises(DiskIOError):
            with tm.transaction() as txn:
                store.put(txn, "a", 1)
        with pytest.raises(StorageError):
            with tm.transaction() as txn:
                store.put(txn, "b", 2)
        assert store.peek("a") is None and store.peek("b") is None


class TestGroupCommitForceFailure:
    def test_mid_group_flush_failure_never_loses_an_acknowledged_commit(self):
        # Concurrent committers share group flushes; one flush raises.
        # The leader gets the DiskIOError, parked followers get
        # WalPanicError — nobody's commit() returns without a durable
        # record, so recovery must cover exactly the acknowledged set.
        faulty = FaultyDisk(
            MemDisk(), faults=[DiskFault(op="flush", hit=10, area="repo.log.000001")]
        )
        repo = QueueRepository(
            "repo", faulty,
            group_commit=GroupCommitConfig(max_wait=0.005, max_batch=8),
        )
        store = repo.create_table("t")
        acked: list[str] = []
        errors: list[Exception] = []
        acked_lock = threading.Lock()

        def committer(tid: int) -> None:
            for i in range(30):
                key = f"k{tid}-{i}"
                try:
                    with repo.tm.transaction() as txn:
                        store.put(txn, key, tid)
                except (StorageError, TransactionAborted) as exc:
                    with acked_lock:
                        errors.append(exc)
                    return
                with acked_lock:
                    acked.append(key)

        threads = [threading.Thread(target=committer, args=(t,))
                   for t in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert repo.log.wal.panicked, "the armed flush fault never fired"
        assert errors, "no committer observed the flush failure"

        _restart(faulty)
        repo2 = QueueRepository("repo", faulty)
        store2 = repo2.get_table("t")
        missing = [k for k in acked if store2.peek(k) is None]
        assert not missing, f"acknowledged commits lost: {missing}"

    def test_followers_of_a_failed_group_are_not_acknowledged(self):
        # Two committers, one group flush, which fails: *both* commit()
        # calls must raise, and neither transaction may survive.
        faulty = FaultyDisk(
            MemDisk(), faults=[DiskFault(op="flush", hit=1, area="log.000001")]
        )
        log, tm = _fresh(
            faulty, group_commit=GroupCommitConfig(max_wait=0.05, max_batch=2)
        )
        store = KVStore("t")
        outcomes: dict[int, str] = {}
        barrier = threading.Barrier(2)

        def committer(tid: int) -> None:
            barrier.wait()
            try:
                with tm.transaction() as txn:
                    store.put(txn, f"k{tid}", tid)
                outcomes[tid] = "acked"
            except StorageError:
                outcomes[tid] = "failed"

        threads = [threading.Thread(target=committer, args=(t,))
                   for t in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert outcomes == {0: "failed", 1: "failed"}
        _restart(faulty)
        store2 = KVStore("t")
        report = recover(LogManager(faulty), {store2.rm_name: store2})
        assert report.committed == set()
        assert store2.peek("k0") is None and store2.peek("k1") is None
