"""Two-phase commit tests across two nodes."""

from __future__ import annotations

import pytest

from repro.errors import SimulatedCrash, TwoPhaseCommitError
from repro.sim.crash import FaultInjector
from repro.storage.disk import MemDisk
from repro.storage.kvstore import KVStore
from repro.transaction.locks import LockManager
from repro.transaction.log import LogManager
from repro.transaction.manager import TransactionManager
from repro.transaction.recovery import recover
from repro.transaction.twophase import TwoPhaseCoordinator


def make_node(disk=None, injector=None):
    disk = disk if disk is not None else MemDisk()
    log = LogManager(disk)
    tm = TransactionManager(log, LockManager(default_timeout=2.0), injector)
    store = KVStore("db")
    return disk, log, tm, store


class TestHappyPath:
    def test_commit_across_two_nodes(self):
        _, log_a, tm_a, store_a = make_node()
        _, _, tm_b, store_b = make_node()
        coordinator = TwoPhaseCoordinator(log_a)
        txn_a, txn_b = tm_a.begin(), tm_b.begin()
        store_a.put(txn_a, "k", "A")
        store_b.put(txn_b, "k", "B")
        assert coordinator.commit([(tm_a, txn_a), (tm_b, txn_b)]) == "commit"
        assert store_a.peek("k") == "A"
        assert store_b.peek("k") == "B"

    def test_global_ids_unique(self):
        _, log, tm, _ = make_node()
        coordinator = TwoPhaseCoordinator(log, name="c")
        assert coordinator.new_global_id() != coordinator.new_global_id()

    def test_empty_branches_rejected(self):
        _, log, _, _ = make_node()
        with pytest.raises(TwoPhaseCommitError):
            TwoPhaseCoordinator(log).commit([])

    def test_decision_lookup(self):
        _, log_a, tm_a, store_a = make_node()
        coordinator = TwoPhaseCoordinator(log_a, name="co")
        txn = tm_a.begin()
        store_a.put(txn, "x", 1)
        coordinator.commit([(tm_a, txn)])
        assert coordinator.decision("co:1") == "commit"
        assert coordinator.decision("co:999") == "abort"  # presumed abort


class TestVeto:
    def test_prepare_failure_aborts_all(self):
        _, log_a, tm_a, store_a = make_node()
        _, _, tm_b, store_b = make_node()
        coordinator = TwoPhaseCoordinator(log_a)
        txn_a, txn_b = tm_a.begin(), tm_b.begin()
        store_a.put(txn_a, "k", "A")
        store_b.put(txn_b, "k", "B")
        tm_b.abort(txn_b, "dies before prepare")  # prepare will fail
        assert coordinator.commit([(tm_a, txn_a), (tm_b, txn_b)]) == "abort"
        assert store_a.peek("k") is None
        assert store_b.peek("k") is None


class TestCrashRecovery:
    def test_participant_crash_after_prepare_resolves_commit(self):
        disk_b = MemDisk()
        _, log_a, tm_a, store_a = make_node()
        _, log_b, tm_b, store_b = make_node(disk_b)
        coordinator = TwoPhaseCoordinator(log_a, name="co")
        txn_a, txn_b = tm_a.begin(), tm_b.begin()
        store_a.put(txn_a, "k", "A")
        store_b.put(txn_b, "k", "B")
        # Run phase 1 manually, then "crash" node B before phase 2.
        gid = coordinator.new_global_id()
        tm_a.prepare(txn_a, gid)
        tm_b.prepare(txn_b, gid)
        coordinator._log_decision(gid, "commit")
        tm_a.commit_prepared(txn_a)
        disk_b.crash()
        disk_b.recover()
        # Node B restarts, finds the branch in doubt, asks the coordinator.
        store_b2 = KVStore("db")
        report = recover(LogManager(disk_b), {store_b2.rm_name: store_b2})
        assert len(report.in_doubt) == 1
        branch = report.in_doubt[0]
        branch.resolve(coordinator.decision(branch.global_id))
        assert store_b2.peek("k") == "B"

    def test_participant_crash_before_decision_presumed_abort(self):
        disk_b = MemDisk()
        _, log_a, tm_a, store_a = make_node()
        _, log_b, tm_b, store_b = make_node(disk_b)
        coordinator = TwoPhaseCoordinator(log_a, name="co")
        txn_b = tm_b.begin()
        store_b.put(txn_b, "k", "B")
        gid = coordinator.new_global_id()
        tm_b.prepare(txn_b, gid)
        # Coordinator never logged a decision: presumed abort.
        disk_b.crash()
        disk_b.recover()
        store_b2 = KVStore("db")
        report = recover(LogManager(disk_b), {store_b2.rm_name: store_b2})
        branch = report.in_doubt[0]
        branch.resolve(coordinator.decision(branch.global_id))
        assert store_b2.peek("k") is None

    def test_crash_after_decision_before_branch_commits(self):
        # The decision is durable at the coordinator; both branches are
        # in doubt after a whole-system crash and both resolve commit.
        shared_injector = FaultInjector()
        disk_a, disk_b = MemDisk(), MemDisk()
        _, log_a, tm_a, store_a = make_node(disk_a)
        _, log_b, tm_b, store_b = make_node(disk_b)
        coordinator = TwoPhaseCoordinator(log_a, name="co", injector=shared_injector)
        txn_a, txn_b = tm_a.begin(), tm_b.begin()
        store_a.put(txn_a, "k", "A")
        store_b.put(txn_b, "k", "B")
        shared_injector.arm("2pc.after_decision")
        with pytest.raises(SimulatedCrash):
            coordinator.commit([(tm_a, txn_a), (tm_b, txn_b)])
        for disk in (disk_a, disk_b):
            disk.crash()
            disk.recover()
        # Recover both nodes.
        store_a2, store_b2 = KVStore("db"), KVStore("db")
        log_a2 = LogManager(disk_a)
        report_a = recover(log_a2, {store_a2.rm_name: store_a2})
        report_b = recover(LogManager(disk_b), {store_b2.rm_name: store_b2})
        coordinator2 = TwoPhaseCoordinator(log_a2, name="co")
        for report, store in ((report_a, store_a2), (report_b, store_b2)):
            for branch in report.in_doubt:
                branch.resolve(coordinator2.decision(branch.global_id))
        assert store_a2.peek("k") == "A"
        assert store_b2.peek("k") == "B"

    def test_crash_after_prepare_before_decision_aborts_everywhere(self):
        shared_injector = FaultInjector()
        disk_a, disk_b = MemDisk(), MemDisk()
        _, log_a, tm_a, store_a = make_node(disk_a)
        _, log_b, tm_b, store_b = make_node(disk_b)
        coordinator = TwoPhaseCoordinator(log_a, name="co", injector=shared_injector)
        txn_a, txn_b = tm_a.begin(), tm_b.begin()
        store_a.put(txn_a, "k", "A")
        store_b.put(txn_b, "k", "B")
        shared_injector.arm("2pc.after_prepare")
        with pytest.raises(SimulatedCrash):
            coordinator.commit([(tm_a, txn_a), (tm_b, txn_b)])
        for disk in (disk_a, disk_b):
            disk.crash()
            disk.recover()
        store_a2, store_b2 = KVStore("db"), KVStore("db")
        log_a2 = LogManager(disk_a)
        report_a = recover(log_a2, {store_a2.rm_name: store_a2})
        report_b = recover(LogManager(disk_b), {store_b2.rm_name: store_b2})
        coordinator2 = TwoPhaseCoordinator(log_a2, name="co")
        for report, store in ((report_a, store_a2), (report_b, store_b2)):
            for branch in report.in_doubt:
                branch.resolve(coordinator2.decision(branch.global_id))
        assert store_a2.peek("k") is None
        assert store_b2.peek("k") is None
