"""Concurrency-control strategy tests: delegation, the no-lock
deterministic strategy, and metric ownership (the contention metrics
belong to the 2PL strategy, not to the lock table)."""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import DeadlockError, LockTimeoutError
from repro.obs import Observability
from repro.transaction.cc import (
    ConcurrencyControl,
    DeterministicCC,
    TwoPhaseLockingCC,
)
from repro.transaction.locks import LockManager, LockMode


def _counter(obs: Observability, name: str) -> float:
    family = obs.metrics.snapshot().get(name) or {}
    return sum(s.get("value", 0) for s in family.get("series", []))


def _histogram_count(obs: Observability, name: str) -> int:
    family = obs.metrics.snapshot().get(name) or {}
    return sum(int(s.get("count", 0)) for s in family.get("series", []))


class TestInterface:
    def test_base_class_is_abstract(self):
        cc = ConcurrencyControl()
        with pytest.raises(NotImplementedError):
            cc.acquire("t1", "r", LockMode.X)
        with pytest.raises(NotImplementedError):
            cc.release_all("t1")
        with pytest.raises(NotImplementedError):
            cc.wait_stats()
        assert cc.lane == "unknown"


class TestTwoPhaseLockingCC:
    def test_delegates_to_lock_manager(self):
        locks = LockManager()
        cc = TwoPhaseLockingCC(locks, obs=Observability.disabled())
        cc.acquire("t1", "r", LockMode.X)
        assert cc.held_by("t1") == {"r"}
        assert cc.holders("r") == {"t1": LockMode.X}
        assert locks.holders("r") == {"t1": LockMode.X}
        assert cc.would_block("t2", "r", LockMode.S)
        assert not cc.try_acquire("t2", "r", LockMode.S)
        cc.release_all("t1")
        assert cc.holders("r") == {}

    def test_builds_own_lock_manager_when_none_given(self):
        cc = TwoPhaseLockingCC(obs=Observability.disabled())
        cc.acquire("t1", "r", LockMode.S)
        assert cc.locks.holders("r") == {"t1": LockMode.S}

    def test_transfer_delegates(self):
        cc = TwoPhaseLockingCC(obs=Observability.disabled())
        cc.acquire("t1", "r", LockMode.X)
        assert cc.transfer("t1", "t2") == ["r"]
        assert cc.held_by("t2") == {"r"}

    def test_wait_stats_snapshot_shape(self):
        cc = TwoPhaseLockingCC(obs=Observability.disabled())
        cc.acquire("t1", "r", LockMode.X)
        stats = cc.wait_stats()
        assert stats["acquisitions"] == 1
        assert set(stats) == {
            "acquisitions", "waits", "wait_time", "deadlocks", "timeouts",
        }


class TestMetricOwnership:
    """The strategy — not the lock table — owns the contention metrics."""

    def test_deadlock_increments_strategy_counter(self):
        obs = Observability()
        cc = TwoPhaseLockingCC(LockManager(default_timeout=5.0), obs=obs)
        cc.acquire("t1", "a", LockMode.X)
        cc.acquire("t2", "b", LockMode.X)

        def t1_wants_b():
            try:
                cc.acquire("t1", "b", LockMode.X, timeout=5)
            except (DeadlockError, LockTimeoutError):
                pass

        thread = threading.Thread(target=t1_wants_b, daemon=True)
        thread.start()
        time.sleep(0.1)  # let t1 block on b
        with pytest.raises(DeadlockError):
            cc.acquire("t2", "a", LockMode.X, timeout=5)
        cc.release_all("t2")  # victim aborts; t1 proceeds
        thread.join(timeout=3)
        cc.release_all("t1")
        assert _counter(obs, "lock_deadlocks_total") >= 1

    def test_timeout_increments_counter_and_observes_wait(self):
        obs = Observability()
        cc = TwoPhaseLockingCC(obs=obs)
        cc.acquire("t1", "r", LockMode.X)
        with pytest.raises(LockTimeoutError):
            cc.acquire("t2", "r", LockMode.X, timeout=0.01)
        assert _counter(obs, "lock_timeouts_total") == 1
        assert _histogram_count(obs, "lock_wait_seconds") == 1

    def test_granted_wait_observed(self):
        obs = Observability()
        cc = TwoPhaseLockingCC(obs=obs)
        cc.acquire("t1", "r", LockMode.X)

        def releaser():
            cc.release_all("t1")

        timer = threading.Timer(0.02, releaser)
        timer.start()
        cc.acquire("t2", "r", LockMode.X, timeout=2.0)
        timer.join()
        assert _histogram_count(obs, "lock_wait_seconds") == 1

    def test_bare_lock_manager_emits_no_metrics(self):
        # A LockManager without a strategy still keeps LockStats for
        # benchmarks but has no sink and therefore no metric series.
        lm = LockManager()
        assert lm.sink is None
        lm.acquire("t1", "r", LockMode.X)
        with pytest.raises(LockTimeoutError):
            lm.acquire("t2", "r", LockMode.X, timeout=0.01)
        assert lm.stats.timeouts == 1


class TestDeterministicCC:
    def test_never_blocks_or_holds(self):
        cc = DeterministicCC()
        assert cc.lane == "deterministic"
        cc.acquire("t1", "r", LockMode.X)
        cc.acquire("t2", "r", LockMode.X)  # no conflict by construction
        assert cc.would_block("t2", "r", LockMode.X) is False
        assert cc.try_acquire("t3", "r", LockMode.X) is True
        assert cc.held_by("t1") == set()
        assert cc.holders("r") == {}
        cc.release_all("t1")

    def test_transfer_is_empty(self):
        cc = DeterministicCC()
        cc.acquire("t1", "r", LockMode.X)
        assert cc.transfer("t1", "t2") == []

    def test_wait_stats_structurally_zero(self):
        stats = DeterministicCC().wait_stats()
        assert set(stats) == {
            "acquisitions", "waits", "wait_time", "deadlocks", "timeouts",
        }
        assert all(v == 0 for v in stats.values())
