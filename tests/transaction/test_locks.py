"""Lock manager tests: modes, blocking, deadlock, inheritance."""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import DeadlockError, LockTimeoutError
from repro.transaction.locks import LockManager, LockMode


class TestModeAlgebra:
    @pytest.mark.parametrize(
        "a,b,compatible",
        [
            (LockMode.IS, LockMode.IS, True),
            (LockMode.IS, LockMode.IX, True),
            (LockMode.IS, LockMode.S, True),
            (LockMode.IS, LockMode.X, False),
            (LockMode.IX, LockMode.IX, True),
            (LockMode.IX, LockMode.S, False),
            (LockMode.IX, LockMode.X, False),
            (LockMode.S, LockMode.S, True),
            (LockMode.S, LockMode.X, False),
            (LockMode.X, LockMode.X, False),
        ],
    )
    def test_compatibility_matrix(self, a, b, compatible):
        assert a.compatible(b) is compatible
        assert b.compatible(a) is compatible

    def test_x_covers_everything(self):
        for mode in LockMode:
            assert LockMode.X.covers(mode)

    def test_join_of_s_and_ix_is_x(self):
        assert LockMode.S.join(LockMode.IX) is LockMode.X
        assert LockMode.IX.join(LockMode.S) is LockMode.X

    def test_join_is_idempotent(self):
        for mode in LockMode:
            assert mode.join(mode) is mode


class TestGrantRelease:
    def test_grant_and_release(self):
        lm = LockManager()
        lm.acquire("t1", "r", LockMode.X)
        assert lm.holders("r") == {"t1": LockMode.X}
        lm.release_all("t1")
        assert lm.holders("r") == {}

    def test_shared_lock_granted_to_many(self):
        lm = LockManager()
        lm.acquire("t1", "r", LockMode.S)
        lm.acquire("t2", "r", LockMode.S)
        assert set(lm.holders("r")) == {"t1", "t2"}

    def test_exclusive_blocks_until_timeout(self):
        lm = LockManager()
        lm.acquire("t1", "r", LockMode.X)
        with pytest.raises(LockTimeoutError):
            lm.acquire("t2", "r", LockMode.X, timeout=0.1)

    def test_reacquire_same_mode_is_noop(self):
        lm = LockManager()
        lm.acquire("t1", "r", LockMode.S)
        lm.acquire("t1", "r", LockMode.S)
        assert lm.stats.acquisitions == 1

    def test_upgrade_s_to_x_with_no_conflict(self):
        lm = LockManager()
        lm.acquire("t1", "r", LockMode.S)
        lm.acquire("t1", "r", LockMode.X)
        assert lm.holders("r") == {"t1": LockMode.X}

    def test_upgrade_blocked_by_other_reader(self):
        lm = LockManager()
        lm.acquire("t1", "r", LockMode.S)
        lm.acquire("t2", "r", LockMode.S)
        with pytest.raises(LockTimeoutError):
            lm.acquire("t1", "r", LockMode.X, timeout=0.1)

    def test_release_wakes_waiter(self):
        lm = LockManager()
        lm.acquire("t1", "r", LockMode.X)
        granted = threading.Event()

        def waiter():
            lm.acquire("t2", "r", LockMode.X, timeout=5)
            granted.set()

        thread = threading.Thread(target=waiter, daemon=True)
        thread.start()
        time.sleep(0.05)
        assert not granted.is_set()
        lm.release_all("t1")
        assert granted.wait(timeout=2)
        thread.join(timeout=2)

    def test_try_acquire(self):
        lm = LockManager()
        assert lm.try_acquire("t1", "r", LockMode.X)
        assert not lm.try_acquire("t2", "r", LockMode.S)
        assert lm.try_acquire("t1", "r", LockMode.X)

    def test_would_block(self):
        lm = LockManager()
        assert not lm.would_block("t2", "r", LockMode.S)
        lm.acquire("t1", "r", LockMode.X)
        assert lm.would_block("t2", "r", LockMode.S)
        assert not lm.would_block("t1", "r", LockMode.S)

    def test_held_by(self):
        lm = LockManager()
        lm.acquire("t1", "a", LockMode.S)
        lm.acquire("t1", "b", LockMode.X)
        assert lm.held_by("t1") == {"a", "b"}


class TestDeadlock:
    def test_two_party_deadlock_detected(self):
        lm = LockManager(default_timeout=5.0)
        lm.acquire("t1", "a", LockMode.X)
        lm.acquire("t2", "b", LockMode.X)
        errors = []

        def t1_wants_b():
            try:
                lm.acquire("t1", "b", LockMode.X, timeout=5)
            except (DeadlockError, LockTimeoutError) as exc:
                errors.append(exc)

        thread = threading.Thread(target=t1_wants_b, daemon=True)
        thread.start()
        time.sleep(0.1)  # let t1 block on b
        with pytest.raises(DeadlockError):
            lm.acquire("t2", "a", LockMode.X, timeout=5)
        lm.release_all("t2")  # victim aborts; t1 proceeds
        thread.join(timeout=3)
        assert not errors, f"t1 should have been granted: {errors}"

    def test_self_upgrade_deadlock_between_two_readers(self):
        lm = LockManager(default_timeout=5.0)
        lm.acquire("t1", "r", LockMode.S)
        lm.acquire("t2", "r", LockMode.S)
        failures = []

        def upgrade(owner):
            try:
                lm.acquire(owner, "r", LockMode.X, timeout=5)
            except DeadlockError:
                failures.append(owner)
                lm.release_all(owner)

        threads = [
            threading.Thread(target=upgrade, args=(o,), daemon=True)
            for o in ("t1", "t2")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5)
        # Exactly one of the two must die; the other gets the upgrade.
        assert len(failures) == 1
        assert lm.stats.deadlocks == 1

    def test_deadlock_stat_counted(self):
        lm = LockManager()
        lm.acquire("t1", "a", LockMode.X)
        lm.acquire("t2", "b", LockMode.X)

        def block_t1():
            try:
                lm.acquire("t1", "b", LockMode.X, timeout=2)
            except (DeadlockError, LockTimeoutError):
                pass

        thread = threading.Thread(target=block_t1, daemon=True)
        thread.start()
        time.sleep(0.1)
        with pytest.raises(DeadlockError):
            lm.acquire("t2", "a", LockMode.X, timeout=2)
        lm.release_all("t2")
        thread.join(timeout=3)
        assert lm.stats.deadlocks >= 1


class TestTransfer:
    def test_transfer_moves_ownership(self):
        lm = LockManager()
        lm.acquire("t1", "r", LockMode.X)
        moved = lm.transfer("t1", "chain")
        assert moved == ["r"]
        assert lm.holders("r") == {"chain": LockMode.X}
        assert lm.held_by("t1") == set()

    def test_transfer_merges_with_existing(self):
        lm = LockManager()
        lm.acquire("t1", "r", LockMode.S)
        lm.acquire("chain", "r", LockMode.S)
        lm.transfer("t1", "chain")
        assert lm.holders("r") == {"chain": LockMode.S}

    def test_transferred_lock_still_blocks_others(self):
        lm = LockManager()
        lm.acquire("t1", "r", LockMode.X)
        lm.transfer("t1", "chain")
        with pytest.raises(LockTimeoutError):
            lm.acquire("t2", "r", LockMode.X, timeout=0.1)
        lm.release_all("chain")
        lm.acquire("t2", "r", LockMode.X)

    def test_transfer_of_nothing(self):
        lm = LockManager()
        assert lm.transfer("ghost", "chain") == []

    def test_wait_stats_accumulate(self):
        lm = LockManager()
        lm.acquire("t1", "r", LockMode.X)
        with pytest.raises(LockTimeoutError):
            lm.acquire("t2", "r", LockMode.X, timeout=0.05)
        stats = lm.stats.snapshot()
        assert stats["waits"] == 1
        assert stats["timeouts"] == 1
        assert stats["wait_time"] > 0
