"""Restart recovery tests: replay classification, checkpoints, in-doubt
branches."""

from __future__ import annotations

import pytest

from repro.storage.disk import MemDisk
from repro.storage.kvstore import KVStore
from repro.transaction.locks import LockManager, LockMode
from repro.transaction.log import LogManager
from repro.transaction.manager import TransactionManager
from repro.transaction.recovery import recover


def fresh(disk):
    log = LogManager(disk)
    tm = TransactionManager(log, LockManager(default_timeout=2.0))
    return log, tm


class TestReplayClassification:
    def test_only_committed_updates_replayed(self):
        disk = MemDisk()
        log, tm = fresh(disk)
        store = KVStore("t")
        with tm.transaction() as txn:
            store.put(txn, "committed", 1)
        orphan = tm.begin()
        store.put(orphan, "orphan", 2)  # never commits
        log.wal.flush()  # even flushed update records don't count without cmt
        disk.crash()
        disk.recover()
        store2 = KVStore("t")
        report = recover(LogManager(disk), {store2.rm_name: store2})
        assert store2.peek("committed") == 1
        assert store2.peek("orphan") is None
        assert report.replayed_updates == 1

    def test_aborted_txn_not_replayed(self):
        disk = MemDisk()
        log, tm = fresh(disk)
        store = KVStore("t")
        txn = tm.begin()
        store.put(txn, "k", "bad")
        tm.abort(txn)
        log.wal.flush()
        disk.crash()
        disk.recover()
        store2 = KVStore("t")
        recover(LogManager(disk), {store2.rm_name: store2})
        assert store2.peek("k") is None

    def test_auto_records_always_replayed(self):
        disk = MemDisk()
        log, _ = fresh(disk)
        store = KVStore("t")
        log.log_auto(store.rm_name, {"op": "put", "key": "auto", "val": 7})
        disk.crash()
        disk.recover()
        store2 = KVStore("t")
        report = recover(LogManager(disk), {store2.rm_name: store2})
        assert store2.peek("auto") == 7
        assert report.replayed_autos == 1

    def test_replay_in_log_order_across_rms(self):
        disk = MemDisk()
        log, tm = fresh(disk)
        a, b = KVStore("a"), KVStore("b")
        with tm.transaction() as txn:
            a.put(txn, "k", "a1")
            b.put(txn, "k", "b1")
            a.put(txn, "k", "a2")
        disk.crash()
        disk.recover()
        a2, b2 = KVStore("a"), KVStore("b")
        recover(LogManager(disk), {a2.rm_name: a2, b2.rm_name: b2})
        assert a2.peek("k") == "a2"
        assert b2.peek("k") == "b1"

    def test_unknown_rm_records_skipped(self):
        disk = MemDisk()
        log, tm = fresh(disk)
        with tm.transaction() as txn:
            txn.log_update("ghost-rm", {"op": "whatever"})
        disk.crash()
        disk.recover()
        report = recover(LogManager(disk), {})
        assert report.replayed_updates == 0

    def test_report_committed_set(self):
        disk = MemDisk()
        log, tm = fresh(disk)
        with tm.transaction() as t1:
            t1.log_update("x", {})
        t2 = tm.begin()
        t2.log_update("x", {})
        log.wal.flush()
        disk.crash()
        disk.recover()
        report = recover(LogManager(disk), {})
        assert t1.id in report.committed
        assert t2.id not in report.committed


class TestCheckpoints:
    def test_checkpoint_then_recover(self):
        disk = MemDisk()
        log, tm = fresh(disk)
        store = KVStore("t")
        with tm.transaction() as txn:
            store.put(txn, "pre", 1)
        log.write_checkpoint({store.rm_name: store.snapshot()})
        with tm.transaction() as txn:
            store.put(txn, "post", 2)
        disk.crash()
        disk.recover()
        store2 = KVStore("t")
        report = recover(LogManager(disk), {store2.rm_name: store2})
        assert report.checkpoint_loaded
        assert store2.peek("pre") == 1
        assert store2.peek("post") == 2

    def test_checkpoint_truncates_log(self):
        disk = MemDisk()
        log, tm = fresh(disk)
        store = KVStore("t")
        with tm.transaction() as txn:
            store.put(txn, "k", 1)
        assert len(log.records()) > 0
        log.write_checkpoint({store.rm_name: store.snapshot()})
        assert log.records() == []

    def test_no_checkpoint_flag(self):
        disk = MemDisk()
        report = recover(LogManager(disk), {})
        assert not report.checkpoint_loaded

    def test_replay_on_top_of_checkpoint_is_idempotent(self):
        # Simulate a crash between checkpoint-write and log-truncate by
        # replaying the pre-checkpoint log over the checkpoint state.
        disk = MemDisk()
        log, tm = fresh(disk)
        store = KVStore("t")
        with tm.transaction() as txn:
            store.put(txn, "k", 1)
        # Write the checkpoint but *keep* the old log (manual surgery).
        disk.replace(
            log.checkpoint_area,
            __import__("repro.storage.codec", fromlist=["encode"]).encode(
                {"rms": {store.rm_name: store.snapshot()}}
            ),
        )
        disk.crash()
        disk.recover()
        store2 = KVStore("t")
        report = recover(LogManager(disk), {store2.rm_name: store2})
        assert report.checkpoint_loaded
        assert store2.peek("k") == 1  # replayed over snapshot: same value


class TestInDoubt:
    def test_prepared_without_outcome_is_in_doubt(self):
        disk = MemDisk()
        log, tm = fresh(disk)
        store = KVStore("t")
        txn = tm.begin()
        store.put(txn, "k", "maybe")
        tm.prepare(txn, "gid-1")
        disk.crash()
        disk.recover()
        store2 = KVStore("t")
        report = recover(LogManager(disk), {store2.rm_name: store2})
        assert len(report.in_doubt) == 1
        branch = report.in_doubt[0]
        assert branch.global_id == "gid-1"
        assert store2.peek("k") is None  # not applied until decided

    def test_in_doubt_commit_applies_updates(self):
        disk = MemDisk()
        log, tm = fresh(disk)
        store = KVStore("t")
        txn = tm.begin()
        store.put(txn, "k", "decided")
        tm.prepare(txn, "gid-2")
        disk.crash()
        disk.recover()
        store2 = KVStore("t")
        log2 = LogManager(disk)
        report = recover(log2, {store2.rm_name: store2})
        report.in_doubt[0].resolve("commit")
        assert store2.peek("k") == "decided"

    def test_in_doubt_abort_discards_updates(self):
        disk = MemDisk()
        log, tm = fresh(disk)
        store = KVStore("t")
        txn = tm.begin()
        store.put(txn, "k", "never")
        tm.prepare(txn, "gid-3")
        disk.crash()
        disk.recover()
        store2 = KVStore("t")
        log2 = LogManager(disk)
        report = recover(log2, {store2.rm_name: store2})
        report.in_doubt[0].resolve("abort")
        assert store2.peek("k") is None

    def test_resolution_is_durable(self):
        disk = MemDisk()
        log, tm = fresh(disk)
        store = KVStore("t")
        txn = tm.begin()
        store.put(txn, "k", "v")
        tm.prepare(txn, "gid-4")
        disk.crash()
        disk.recover()
        store2 = KVStore("t")
        log2 = LogManager(disk)
        report = recover(log2, {store2.rm_name: store2})
        report.in_doubt[0].resolve("commit")
        # Crash again after resolution: outcome record must persist.
        disk.crash()
        disk.recover()
        store3 = KVStore("t")
        report2 = recover(LogManager(disk), {store3.rm_name: store3})
        assert report2.in_doubt == []
        assert store3.peek("k") == "v"

    def test_in_doubt_locks_reacquired(self):
        disk = MemDisk()
        log, tm = fresh(disk)
        store = KVStore("t")
        txn = tm.begin()
        store.put(txn, "k", "v")
        tm.prepare(txn, "gid-5")
        disk.crash()
        disk.recover()
        store2 = KVStore("t")
        lm2 = LockManager(default_timeout=0.1)
        report = recover(LogManager(disk), {store2.rm_name: store2}, lock_manager=lm2)
        # The branch's X lock on the key is held by the in-doubt owner.
        from repro.errors import LockTimeoutError

        with pytest.raises(LockTimeoutError):
            lm2.acquire("someone", "kv:t/k", LockMode.X, timeout=0.05)
        report.in_doubt[0].resolve("commit")
        lm2.acquire("someone", "kv:t/k", LockMode.X)

    def test_resolve_rejects_garbage(self):
        disk = MemDisk()
        log, tm = fresh(disk)
        txn = tm.begin()
        txn.log_update("t", {"op": "noop"})
        tm.prepare(txn, "gid-6")
        disk.crash()
        disk.recover()
        report = recover(LogManager(disk), {})
        with pytest.raises(ValueError):
            report.in_doubt[0].resolve("maybe")

    def test_resolve_twice_is_noop(self):
        disk = MemDisk()
        log, tm = fresh(disk)
        store = KVStore("t")
        txn = tm.begin()
        store.put(txn, "k", 1)
        tm.prepare(txn, "gid-7")
        disk.crash()
        disk.recover()
        store2 = KVStore("t")
        report = recover(LogManager(disk), {store2.rm_name: store2})
        report.in_doubt[0].resolve("commit")
        report.in_doubt[0].resolve("commit")
        assert store2.peek("k") == 1
