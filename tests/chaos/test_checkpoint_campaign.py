"""Checkpointer-enabled chaos campaigns: the ``checkpoint_interval_bytes``
knob runs a byte-triggered fuzzy checkpointer inside every episode and
adds the ``ckpt.*`` crash points to the sampler, while the default
(``None``) keeps existing seeds byte-identical."""

from __future__ import annotations

from repro.chaos import ChaosConfig, run_episode, sample_schedule
from repro.chaos.engine import FAILING_OUTCOMES, OUTCOME_OK
from repro.chaos.schedule import (
    CHECKPOINT_CRASH_POINTS,
    CRASH_POINTS,
    KIND_CRASH,
)

#: seeds of the in-suite checkpointing acceptance campaign
CAMPAIGN_SEEDS = range(200)
CONFIG = ChaosConfig(checkpoint_interval_bytes=4096)


class TestScheduleCompatibility:
    def test_default_config_schedules_are_unchanged(self):
        # The checkpoint knob must not perturb existing seeds: replay
        # artifacts recorded before the knob existed stay valid.
        for seed in range(100):
            assert sample_schedule(seed) == sample_schedule(
                seed, ChaosConfig(checkpoint_interval_bytes=None)
            )

    def test_ckpt_points_cover_the_whole_protocol(self):
        assert set(CHECKPOINT_CRASH_POINTS) == {
            f"ckpt.{step}.{edge}"
            for step in ("begin", "snapshot", "install", "gc")
            for edge in ("before", "after")
        }
        assert not set(CHECKPOINT_CRASH_POINTS) & set(CRASH_POINTS)

    def test_campaign_schedules_arm_ckpt_points(self):
        points = set()
        for seed in CAMPAIGN_SEEDS:
            for fault in sample_schedule(seed, CONFIG).faults:
                if fault.kind == KIND_CRASH:
                    points.add(fault.point)
        assert points & set(CHECKPOINT_CRASH_POINTS)


class TestCheckpointDeterminism:
    def test_same_seed_same_interval_is_identical(self):
        for seed in (0, 7, 42):
            first = run_episode(seed, CONFIG)
            second = run_episode(seed, CONFIG)
            assert first.outcome == second.outcome
            assert first.fingerprint == second.fingerprint
            assert first.restarts == second.restarts


class TestCheckpointAcceptanceCampaign:
    def test_200_episodes_with_checkpointing_zero_violations(self):
        # The bounded-recovery acceptance gate: every episode runs the
        # fuzzy checkpointer mid-workload (polled every step, crashes
        # armable inside the protocol), and every guarantee holds.
        outcomes: dict[str, int] = {}
        failing = []
        restarts = 0
        for seed in CAMPAIGN_SEEDS:
            result = run_episode(seed, CONFIG)
            outcomes[result.outcome] = outcomes.get(result.outcome, 0) + 1
            restarts += result.restarts
            if result.failed:
                failing.append((seed, result.outcome, result.violations))
        assert not failing, f"failing episodes: {failing}"
        assert outcomes.get(OUTCOME_OK, 0) > 100
        assert all(o not in FAILING_OUTCOMES for o in outcomes)
        # The campaign must actually exercise restart recovery.
        assert restarts > 20
