"""Batched-commit chaos campaigns: the ``batch_crash_points`` knob adds
the ``wal.<area>.batch_append.{before,after}`` crash points — the
per-transaction batched publish of :class:`repro.transaction.log.LogManager`
— to the sampler, while the default (``False``) keeps existing seeds
byte-identical."""

from __future__ import annotations

from repro.chaos import ChaosConfig, run_episode, sample_schedule
from repro.chaos.engine import FAILING_OUTCOMES, OUTCOME_OK
from repro.chaos.schedule import (
    BATCH_APPEND_CRASH_POINTS,
    CRASH_POINTS,
    KIND_CRASH,
)

#: seeds of the in-suite batched-append acceptance campaign
CAMPAIGN_SEEDS = range(200)
CONFIG = ChaosConfig(batch_crash_points=True)


class TestScheduleCompatibility:
    def test_default_config_schedules_are_unchanged(self):
        # The knob must not perturb existing seeds: replay artifacts
        # recorded before it existed stay valid.
        for seed in range(100):
            assert sample_schedule(seed) == sample_schedule(
                seed, ChaosConfig(batch_crash_points=False)
            )

    def test_batch_points_bracket_the_publish(self):
        assert set(BATCH_APPEND_CRASH_POINTS) == {
            f"wal.reqnode.log.batch_append.{edge}"
            for edge in ("before", "after")
        }
        assert not set(BATCH_APPEND_CRASH_POINTS) & set(CRASH_POINTS)

    def test_campaign_schedules_arm_batch_points(self):
        points = set()
        for seed in CAMPAIGN_SEEDS:
            for fault in sample_schedule(seed, CONFIG).faults:
                if fault.kind == KIND_CRASH:
                    points.add(fault.point)
        assert points >= set(BATCH_APPEND_CRASH_POINTS)


class TestBatchPointsActuallyFire:
    def test_points_are_reached_by_a_normal_run(self):
        # Regression guard against schedule entries that never match an
        # instrumented reach() string (the injector matches exactly):
        # a plain committed request must traverse both points.
        from repro.core.client import UserCheckpoint
        from repro.core.devices import TicketPrinter
        from repro.core.system import TPSystem
        from repro.sim.crash import FaultInjector

        injector = FaultInjector()
        system = TPSystem(injector=injector)
        client = system.client(
            "c1", ["a"], TicketPrinter(), receive_timeout=None,
            user_log=UserCheckpoint(),
        )
        server = system.server("s1", lambda txn, req: {"echo": req.body})
        seq = client.resynchronize()
        client.send_only(seq)
        server.process_one()
        reached = {p for p, _hit in injector.schedule()}
        assert reached >= set(BATCH_APPEND_CRASH_POINTS)


class TestBatchDeterminism:
    def test_same_seed_is_identical(self):
        for seed in (5, 22, 34):  # seeds whose schedules arm batch points
            first = run_episode(seed, CONFIG)
            second = run_episode(seed, CONFIG)
            assert first.outcome == second.outcome
            assert first.fingerprint == second.fingerprint
            assert first.restarts == second.restarts


class TestBatchAcceptanceCampaign:
    def test_200_episodes_with_batch_points_zero_violations(self):
        # The batched-commit acceptance gate: crashes can land on either
        # side of the batch publish in any episode, and every
        # exactly-once guarantee still holds.
        outcomes: dict[str, int] = {}
        failing = []
        restarts = 0
        for seed in CAMPAIGN_SEEDS:
            result = run_episode(seed, CONFIG)
            outcomes[result.outcome] = outcomes.get(result.outcome, 0) + 1
            restarts += result.restarts
            if result.failed:
                failing.append((seed, result.outcome, result.violations))
        assert not failing, f"failing episodes: {failing}"
        assert outcomes.get(OUTCOME_OK, 0) > 100
        assert all(o not in FAILING_OUTCOMES for o in outcomes)
        # The campaign must actually exercise restart recovery.
        assert restarts > 20
