"""Chaos-campaign engine tests: determinism, schedule serialization,
and the fixed-seed acceptance campaign (no guarantee violations under
any sampled fault mix)."""

from __future__ import annotations

import json

from repro.chaos import (
    ChaosConfig,
    ChaosSchedule,
    run_episode,
    sample_schedule,
)
from repro.chaos.engine import (
    FAILING_OUTCOMES,
    OUTCOME_CORRUPTION_DATA_LOSS,
    OUTCOME_CORRUPTION_DETECTED,
    OUTCOME_OK,
)
from repro.chaos.schedule import (
    KIND_CLIENT_CRASH,
    KIND_CRASH,
    KIND_DISK,
    KIND_PARTITION,
    KIND_POISON,
)

#: seeds of the in-suite acceptance campaign; CI runs the same range
CAMPAIGN_SEEDS = range(200)


class TestDeterminism:
    def test_same_seed_is_bit_for_bit_identical(self):
        for seed in (0, 7, 37):
            first = run_episode(seed)
            second = run_episode(seed)
            assert first.outcome == second.outcome
            assert first.fingerprint == second.fingerprint
            assert first.steps == second.steps
            assert first.restarts == second.restarts

    def test_different_seeds_diverge(self):
        fingerprints = {run_episode(seed).fingerprint for seed in range(5)}
        assert len(fingerprints) == 5

    def test_schedule_sampling_is_pure(self):
        config = ChaosConfig()
        assert sample_schedule(42, config) == sample_schedule(42, config)

    def test_replay_from_json_schedule_matches(self):
        # A schedule that survived a JSON round trip (the regression-
        # artifact path) replays to the identical episode.
        seed = 11
        schedule = sample_schedule(seed)
        wire = json.dumps(schedule.to_record(), sort_keys=True)
        restored = ChaosSchedule.from_record(json.loads(wire))
        assert restored == schedule
        original = run_episode(seed, schedule=schedule)
        replayed = run_episode(seed, schedule=restored)
        assert replayed.fingerprint == original.fingerprint
        assert replayed.outcome == original.outcome


class TestScheduleSampling:
    def test_campaign_mixes_all_fault_kinds(self):
        kinds = set()
        for seed in CAMPAIGN_SEEDS:
            kinds |= {f.kind for f in sample_schedule(seed).faults}
        assert kinds == {KIND_CRASH, KIND_DISK, KIND_PARTITION,
                         KIND_POISON, KIND_CLIENT_CRASH}

    def test_fault_record_round_trip(self):
        for seed in range(30):
            schedule = sample_schedule(seed)
            assert ChaosSchedule.from_record(schedule.to_record()) == schedule

    def test_fault_count_respects_config_bounds(self):
        config = ChaosConfig(min_faults=2, max_faults=4)
        for seed in range(30):
            n = len(sample_schedule(seed, config).faults)
            assert 2 <= n <= 4


class TestAcceptanceCampaign:
    def test_200_episodes_zero_guarantee_violations(self):
        # The ISSUE's acceptance gate: a fixed-seed campaign mixing
        # crashes, disk faults, partitions, poison handlers, and client
        # crashes completes with no violation / stall / error outcome.
        outcomes: dict[str, int] = {}
        failing = []
        for seed in CAMPAIGN_SEEDS:
            result = run_episode(seed)
            outcomes[result.outcome] = outcomes.get(result.outcome, 0) + 1
            if result.failed:
                failing.append((seed, result.outcome, result.violations))
        assert not failing, f"failing episodes: {failing}"
        # The campaign must actually exercise recovery, not dodge it.
        assert outcomes.get(OUTCOME_OK, 0) > 100
        # Bit-flip corruption episodes are expected to surface as one of
        # the two corruption outcomes (documented data-loss model for
        # redo-only logging), never as an undetected violation.
        assert set(outcomes) <= {
            OUTCOME_OK, OUTCOME_CORRUPTION_DETECTED, OUTCOME_CORRUPTION_DATA_LOSS,
        }
        assert all(o not in FAILING_OUTCOMES for o in outcomes)


class TestEpisodeResult:
    def test_result_record_is_json_ready(self):
        result = run_episode(5)
        wire = json.dumps(result.to_record(), sort_keys=True)
        back = json.loads(wire)
        assert back["seed"] == 5
        assert back["outcome"] == result.outcome
        assert back["fingerprint"] == result.fingerprint

    def test_episode_restarts_after_crash_faults(self):
        # Find a seed whose schedule contains a crash fault that fires,
        # and confirm the engine actually restarted and still finished.
        for seed in CAMPAIGN_SEEDS:
            result = run_episode(seed)
            if result.restarts > 0 and result.outcome == OUTCOME_OK:
                return
        raise AssertionError("no episode restarted — campaign too tame")
