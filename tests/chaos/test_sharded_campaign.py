"""Sharded chaos campaigns: the ``shards`` knob targets disk faults at
individual repository shards and adds the cross-shard 2PC crash points,
while ``shards=1`` schedules stay byte-identical to the unsharded
sampler."""

from __future__ import annotations

from repro.chaos import ChaosConfig, run_episode, sample_schedule
from repro.chaos.engine import FAILING_OUTCOMES, OUTCOME_OK
from repro.chaos.schedule import (
    CRASH_POINTS,
    KIND_CRASH,
    KIND_DISK,
    SHARDED_CRASH_POINTS,
)

#: seeds of the in-suite sharded acceptance campaign
CAMPAIGN_SEEDS = range(200)


class TestScheduleCompatibility:
    def test_default_config_schedules_are_unchanged(self):
        # The shards knob must not perturb existing seeds: a shards=1
        # config samples the exact schedule the pre-sharding sampler
        # produced (regression artifacts stay replayable).
        for seed in range(100):
            assert sample_schedule(seed) == sample_schedule(
                seed, ChaosConfig(shards=1)
            )

    def test_sharded_points_are_a_superset(self):
        assert set(CRASH_POINTS) < set(SHARDED_CRASH_POINTS)
        extra = set(SHARDED_CRASH_POINTS) - set(CRASH_POINTS)
        assert extra == {
            "2pc.before_prepare",
            "2pc.after_prepare",
            "2pc.after_decision",
            "2pc.after_branch_commit",
        }

    def test_sharded_campaign_targets_every_shard_and_2pc(self):
        config = ChaosConfig(shards=3)
        targets = set()
        points = set()
        for seed in CAMPAIGN_SEEDS:
            for fault in sample_schedule(seed, config).faults:
                if fault.kind == KIND_DISK:
                    targets.add(fault.target)
                elif fault.kind == KIND_CRASH:
                    points.add(fault.point)
        assert targets == {0, 1, 2}
        assert any(p.startswith("2pc.") for p in points)

    def test_unsharded_disk_faults_keep_target_zero(self):
        for seed in CAMPAIGN_SEEDS:
            for fault in sample_schedule(seed).faults:
                assert fault.target == 0 or fault.kind != KIND_DISK


class TestShardedDeterminism:
    def test_same_seed_same_shards_is_identical(self):
        config = ChaosConfig(shards=2)
        for seed in (0, 5, 95):
            first = run_episode(seed, config)
            second = run_episode(seed, config)
            assert first.outcome == second.outcome
            assert first.fingerprint == second.fingerprint
            assert first.restarts == second.restarts


class TestShardedAcceptanceCampaign:
    def test_200_episodes_two_shards_zero_violations(self):
        # The sharded acceptance gate: disk faults now land on single
        # shards (partial failures) and crashes hit the 2PC promotion
        # path, yet every episode still upholds the guarantees.
        outcomes: dict[str, int] = {}
        failing = []
        restarts = 0
        for seed in CAMPAIGN_SEEDS:
            result = run_episode(seed, ChaosConfig(shards=2))
            outcomes[result.outcome] = outcomes.get(result.outcome, 0) + 1
            restarts += result.restarts
            if result.failed:
                failing.append((seed, result.outcome, result.violations))
        assert not failing, f"failing episodes: {failing}"
        assert outcomes.get(OUTCOME_OK, 0) > 100
        assert all(o not in FAILING_OUTCOMES for o in outcomes)
        # The campaign must actually exercise restart recovery.
        assert restarts > 20

    def test_in_doubt_branch_resolves_after_restart(self):
        # Regression: seed 95 at three shards hits a disk-full on the
        # branch's outcome record *after* the commit decision forced —
        # the branch is in doubt on a live node.  The engine must treat
        # that as node-fatal and let restart recovery finish phase 2
        # from the durable decision (it used to orphan the branch's
        # locks and wedge the workload).
        result = run_episode(95, ChaosConfig(shards=3))
        assert result.outcome == OUTCOME_OK
        assert result.restarts >= 1
