"""Deterministic-lane chaos campaigns: the ``cc`` knob routes the
auto-commit queue-shaped transaction class through the plan-queue lane
and adds the ``det.plan.batch.{before,after}`` crash points — the
plan-batch boundaries of
:class:`repro.transaction.deterministic.DeterministicLane` — to the
sampler, while the default (``"2pl"``) keeps existing seeds
byte-identical."""

from __future__ import annotations

from repro.chaos import ChaosConfig, run_episode, sample_schedule
from repro.chaos.engine import FAILING_OUTCOMES, OUTCOME_OK
from repro.chaos.schedule import CRASH_POINTS, KIND_CRASH
from repro.transaction.deterministic import DET_PLAN_CRASH_POINTS

#: seeds of the in-suite deterministic-lane acceptance campaign
CAMPAIGN_SEEDS = range(200)
CONFIG = ChaosConfig(cc="deterministic")


def _seeds_arming_det_points(count: int) -> list[int]:
    seeds = []
    for seed in CAMPAIGN_SEEDS:
        points = {
            f.point for f in sample_schedule(seed, CONFIG).faults
            if f.kind == KIND_CRASH
        }
        if points & set(DET_PLAN_CRASH_POINTS):
            seeds.append(seed)
            if len(seeds) == count:
                break
    return seeds


class TestScheduleCompatibility:
    def test_default_config_schedules_are_unchanged(self):
        # The knob must not perturb existing seeds: replay artifacts
        # recorded before it existed stay valid.
        for seed in range(100):
            assert sample_schedule(seed) == sample_schedule(
                seed, ChaosConfig(cc="2pl")
            )

    def test_det_points_bracket_the_plan_batch(self):
        assert set(DET_PLAN_CRASH_POINTS) == {
            f"det.plan.batch.{edge}" for edge in ("before", "after")
        }
        assert not set(DET_PLAN_CRASH_POINTS) & set(CRASH_POINTS)

    def test_campaign_schedules_arm_det_points(self):
        points = set()
        for seed in CAMPAIGN_SEEDS:
            for fault in sample_schedule(seed, CONFIG).faults:
                if fault.kind == KIND_CRASH:
                    points.add(fault.point)
        assert points >= set(DET_PLAN_CRASH_POINTS)

    def test_auto_also_arms_det_points(self):
        auto = ChaosConfig(cc="auto")
        points = set()
        for seed in range(50):
            for fault in sample_schedule(seed, auto).faults:
                if fault.kind == KIND_CRASH:
                    points.add(fault.point)
        assert points >= set(DET_PLAN_CRASH_POINTS)


class TestDetPointsActuallyFire:
    def test_points_are_reached_by_a_normal_run(self):
        # Regression guard against schedule entries that never match an
        # instrumented reach() string (the injector matches exactly):
        # a plain committed request must traverse both plan-batch
        # boundaries, because the clerk's auto-commit send is routed
        # through the lane.
        from repro.core.client import UserCheckpoint
        from repro.core.devices import TicketPrinter
        from repro.core.system import TPSystem
        from repro.sim.crash import FaultInjector

        injector = FaultInjector()
        system = TPSystem(injector=injector, cc="deterministic")
        client = system.client(
            "c1", ["a"], TicketPrinter(), receive_timeout=None,
            user_log=UserCheckpoint(),
        )
        server = system.server("s1", lambda txn, req: {"echo": req.body})
        seq = client.resynchronize()
        client.send_only(seq)
        server.process_one()
        reached = {p for p, _hit in injector.schedule()}
        assert reached >= set(DET_PLAN_CRASH_POINTS)


class TestDetDeterminism:
    def test_same_seed_is_identical(self):
        seeds = _seeds_arming_det_points(3)
        assert len(seeds) == 3  # the sampler must arm det points early
        for seed in seeds:
            first = run_episode(seed, CONFIG)
            second = run_episode(seed, CONFIG)
            assert first.outcome == second.outcome
            assert first.fingerprint == second.fingerprint
            assert first.restarts == second.restarts


class TestDetAcceptanceCampaign:
    def test_200_episodes_with_det_lane_zero_violations(self):
        # The deterministic-lane acceptance gate: crashes can land at
        # plan-batch boundaries in any episode, and every exactly-once
        # guarantee still holds.
        outcomes: dict[str, int] = {}
        failing = []
        restarts = 0
        for seed in CAMPAIGN_SEEDS:
            result = run_episode(seed, CONFIG)
            outcomes[result.outcome] = outcomes.get(result.outcome, 0) + 1
            restarts += result.restarts
            if result.failed:
                failing.append((seed, result.outcome, result.violations))
        assert not failing, f"failing episodes: {failing}"
        assert outcomes.get(OUTCOME_OK, 0) > 100
        assert all(o not in FAILING_OUTCOMES for o in outcomes)
        # The campaign must actually exercise restart recovery.
        assert restarts > 20
