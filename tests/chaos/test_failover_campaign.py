"""Replication-enabled chaos campaigns: ``ChaosConfig.replicate``
attaches a warm standby + log shipper to every shard and adds the
``node_kill`` / ``failover`` / ``standby_lag`` fault family, while the
default (``False``) keeps existing seeds byte-identical."""

from __future__ import annotations

from repro.chaos import ChaosConfig, run_episode, sample_schedule
from repro.chaos.engine import FAILING_OUTCOMES, OUTCOME_OK
from repro.chaos.schedule import (
    KIND_FAILOVER,
    KIND_NODE_KILL,
    KIND_STANDBY_LAG,
    REPLICATION_WEIGHTS,
)

#: seeds of the in-suite failover acceptance campaign
CAMPAIGN_SEEDS = range(200)
CONFIG = ChaosConfig(replicate=True)
SHARDED_CONFIG = ChaosConfig(replicate=True, shards=2)

REPLICATION_KINDS = (KIND_NODE_KILL, KIND_FAILOVER, KIND_STANDBY_LAG)


class TestScheduleCompatibility:
    def test_default_config_schedules_are_unchanged(self):
        # The replicate knob must not perturb existing seeds: replay
        # artifacts recorded before the knob existed stay valid.
        for seed in range(100):
            assert sample_schedule(seed) == sample_schedule(
                seed, ChaosConfig(replicate=False)
            )

    def test_unreplicated_schedules_never_sample_the_family(self):
        for seed in range(100):
            for fault in sample_schedule(seed).faults:
                assert fault.kind not in REPLICATION_KINDS

    def test_campaign_schedules_sample_the_family(self):
        kinds = set()
        for seed in CAMPAIGN_SEEDS:
            for fault in sample_schedule(seed, CONFIG).faults:
                kinds.add(fault.kind)
        assert kinds >= set(REPLICATION_WEIGHTS)


class TestFailoverDeterminism:
    def test_same_seed_is_identical(self):
        for seed in (0, 7, 42):
            first = run_episode(seed, CONFIG)
            second = run_episode(seed, CONFIG)
            assert first.outcome == second.outcome
            assert first.fingerprint == second.fingerprint
            assert first.restarts == second.restarts


class TestFailoverAcceptanceCampaign:
    def _run(self, config: ChaosConfig, seeds, min_promotions: int) -> None:
        outcomes: dict[str, int] = {}
        failing = []
        restarts = 0
        promotions = 0
        for seed in seeds:
            result = run_episode(seed, config)
            outcomes[result.outcome] = outcomes.get(result.outcome, 0) + 1
            restarts += result.restarts
            promotions += sum(
                1 for f in result.schedule.faults
                if f.kind in (KIND_NODE_KILL, KIND_FAILOVER)
                and f.step <= result.steps
            )
            if result.failed:
                failing.append((seed, result.outcome, result.violations))
        assert not failing, f"failing episodes: {failing}"
        assert outcomes.get(OUTCOME_OK, 0) > len(list(seeds)) // 2
        assert all(o not in FAILING_OUTCOMES for o in outcomes)
        # The campaign must actually depose primaries mid-2PC, not just
        # sample the faults: every restart after a kill runs promotion,
        # epoch fencing and the Figure-2 client resync.
        assert promotions >= min_promotions
        assert restarts > promotions

    def test_200_episodes_with_failovers_zero_violations(self):
        # The acceptance gate: primaries are killed and deposed
        # mid-workload, standbys promote, and no request is ever lost
        # or double-processed across a promotion (the checker's
        # promotion_safety rule runs inside every episode's check_all).
        self._run(CONFIG, CAMPAIGN_SEEDS, min_promotions=25)

    def test_sharded_failovers_with_2pc_zero_violations(self):
        # Cross-shard 2PC plus per-shard failover: the promoted shard's
        # epoch bump must fence the deposed coordinator's gids.
        self._run(SHARDED_CONFIG, range(100), min_promotions=12)
