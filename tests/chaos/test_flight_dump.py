"""A chaos-found violation must leave a flight-recorder dump behind,
referenced from the episode's counterexample record, and the recorded
event stream must be deterministic under the seeded schedule."""

from __future__ import annotations

import os

import pytest

from repro.chaos.engine import run_episode
from repro.chaos.schedule import ChaosConfig
from repro.obs.flight import read_flight_dump

#: commit acknowledges before its record is forced — the planted
#: recovery bug the campaign exists to catch
_BUGGY = dict(planted_bug="ack-no-force")


def _first_failure(flight_dir: str, limit: int = 40):
    config = ChaosConfig(flight_dir=flight_dir, **_BUGGY)
    for seed in range(limit):
        result = run_episode(seed, config)
        if result.failed:
            return seed, result
    pytest.fail(f"planted bug not detected in {limit} seeds")


class TestViolationDump:
    def test_failing_episode_writes_and_references_a_dump(self, tmp_path):
        seed, result = _first_failure(str(tmp_path))
        assert result.flight_dump is not None
        assert os.path.exists(result.flight_dump)
        assert result.to_record()["flight_dump"] == result.flight_dump
        header, events = read_flight_dump(result.flight_dump)
        assert header["reason"] == result.outcome
        kinds = [e["kind"] for e in events]
        assert "episode.end" in kinds
        end = [e for e in events if e["kind"] == "episode.end"][-1]
        assert end["outcome"] == result.outcome
        if result.violations:
            assert "guarantee.violation" in kinds
        # black-box context from inside the stack, not just the engine
        assert "wal.force" in kinds

    def test_passing_episode_writes_no_dump(self, tmp_path):
        config = ChaosConfig(flight_dir=str(tmp_path))
        for seed in range(40):
            result = run_episode(seed, config)
            if not result.failed:
                assert result.flight_dump is None
                return
        pytest.fail("no passing episode in 40 seeds")

    def test_event_stream_is_deterministic(self, tmp_path):
        (tmp_path / "a").mkdir()
        (tmp_path / "b").mkdir()
        seed, result = _first_failure(str(tmp_path / "a"))
        replay = run_episode(
            seed, ChaosConfig(flight_dir=str(tmp_path / "b"), **_BUGGY)
        )
        _, first = read_flight_dump(result.flight_dump)
        _, second = read_flight_dump(replay.flight_dump)
        strip = lambda events: [  # noqa: E731 - local shorthand
            {k: v for k, v in e.items() if k != "ts"} for e in events
        ]
        assert strip(first) == strip(second)

    def test_crash_points_reach_the_box(self, tmp_path):
        config = ChaosConfig(flight_dir=str(tmp_path), **_BUGGY)
        for seed in range(60):
            result = run_episode(seed, config)
            if result.failed and result.restarts:
                _, events = read_flight_dump(result.flight_dump)
                kinds = {e["kind"] for e in events}
                assert "node.restart" in kinds
                return
        pytest.fail("no failing episode with a restart in 60 seeds")
