"""Shrinking tests: a planted test-only bug is found by the campaign
and reduced to a minimal (<= 3 fault) counterexample that survives a
JSON round trip."""

from __future__ import annotations

import json

import pytest

from repro.chaos import ChaosConfig, ChaosSchedule, run_episode, shrink

#: the planted bug: commit appends its record but never forces it, so a
#: crash can lose an acknowledged commit — exactly-once then breaks
BUGGY = ChaosConfig(planted_bug="ack-no-force")


def _first_failing_seed(limit: int = 40):
    for seed in range(limit):
        result = run_episode(seed, BUGGY)
        if result.failed:
            return seed, result
    raise AssertionError(
        f"planted bug not detected in {limit} seeds — campaign too weak"
    )


class TestPlantedBugDetection:
    def test_campaign_finds_the_planted_bug(self):
        seed, result = _first_failing_seed()
        assert result.failed
        assert result.violations, "failure without a violation message"

    def test_planted_bug_failures_are_deterministic(self):
        seed, result = _first_failing_seed()
        replay = run_episode(seed, BUGGY)
        assert replay.outcome == result.outcome
        assert replay.fingerprint == result.fingerprint


class TestShrinking:
    def test_shrinks_to_a_minimal_counterexample(self):
        seed, result = _first_failing_seed()
        shrunk = shrink(result.schedule, BUGGY, failed=result)
        # The acceptance bar: a <= 3-fault minimal schedule.
        assert len(shrunk.minimal.faults) <= 3
        assert len(shrunk.minimal.faults) <= len(result.schedule.faults)
        assert shrunk.result.failed
        assert shrunk.result.outcome == result.outcome
        assert shrunk.replays >= 1

    def test_minimal_schedule_survives_json_and_still_fails(self):
        seed, result = _first_failing_seed()
        shrunk = shrink(result.schedule, BUGGY, failed=result)
        wire = json.dumps(shrunk.to_record(), sort_keys=True)
        restored = ChaosSchedule.from_record(
            json.loads(wire)["minimal_schedule"]
        )
        assert restored == shrunk.minimal
        replay = run_episode(restored.seed, BUGGY, schedule=restored)
        assert replay.outcome == result.outcome

    def test_shrink_rejects_a_passing_schedule(self):
        result = run_episode(1)  # healthy stack, seed 1 passes
        assert not result.failed
        with pytest.raises(ValueError):
            shrink(result.schedule, failed=result)

    def test_shrink_report_counts_removals(self):
        seed, result = _first_failing_seed()
        shrunk = shrink(result.schedule, BUGGY, failed=result)
        assert shrunk.removed == (
            len(result.schedule.faults) - len(shrunk.minimal.faults)
        )
        record = shrunk.to_record()
        assert record["original_faults"] == len(result.schedule.faults)
        assert record["minimal_faults"] == len(shrunk.minimal.faults)
