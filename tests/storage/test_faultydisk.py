"""Unit tests for :class:`repro.storage.faults.FaultyDisk`."""

from __future__ import annotations

import pytest

from repro.errors import DiskFullError, DiskIOError
from repro.storage.disk import MemDisk
from repro.storage.faults import (
    CORRUPT,
    DISK_FULL,
    IO_ERROR,
    PERMANENT,
    DiskFault,
    FaultyDisk,
)


class TestDiskFaultValidation:
    def test_rejects_unknown_op(self):
        with pytest.raises(ValueError):
            DiskFault(op="format")

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            DiskFault(op="append", kind="gremlins")

    def test_rejects_nonpositive_hit_and_duration(self):
        with pytest.raises(ValueError):
            DiskFault(op="append", hit=0)
        with pytest.raises(ValueError):
            DiskFault(op="append", duration=0)

    def test_record_round_trip(self):
        fault = DiskFault(op="flush", hit=3, kind=DISK_FULL,
                          area="log", duration=2)
        assert DiskFault.from_record(fault.to_record()) == fault

    def test_record_omits_defaults(self):
        assert DiskFault(op="read").to_record() == {
            "op": "read", "hit": 1, "kind": IO_ERROR,
        }


class TestPlannedFaults:
    def test_nth_call_raises_and_has_no_effect(self):
        disk = FaultyDisk(MemDisk(), faults=[DiskFault(op="append", hit=2)])
        disk.append("a", b"one")
        with pytest.raises(DiskIOError):
            disk.append("a", b"never lands")
        disk.append("a", b"three")
        assert disk.read("a") == b"one" + b"three"

    def test_area_restricted_hit_counts_only_that_area(self):
        disk = FaultyDisk(
            MemDisk(), faults=[DiskFault(op="append", hit=2, area="b")]
        )
        disk.append("a", b"x")   # does not count towards area "b"
        disk.append("b", b"1")
        disk.append("a", b"y")
        with pytest.raises(DiskIOError):
            disk.append("b", b"2")  # 2nd append on area "b"
        assert disk.read("b") == b"1"

    def test_duration_extends_over_consecutive_calls(self):
        disk = FaultyDisk(
            MemDisk(), faults=[DiskFault(op="flush", hit=1, duration=3)]
        )
        disk.append("a", b"x")
        for _ in range(3):
            with pytest.raises(DiskIOError):
                disk.flush("a")
        disk.flush("a")  # 4th call succeeds
        assert disk.durable_read("a") == b"x"

    def test_disk_full_on_write_path(self):
        disk = FaultyDisk(
            MemDisk(), faults=[DiskFault(op="append", kind=DISK_FULL)]
        )
        with pytest.raises(DiskFullError):
            disk.append("a", b"x")
        assert disk.read("a") == b""

    def test_injected_history_records_firings(self):
        disk = FaultyDisk(MemDisk(), faults=[DiskFault(op="append", hit=1)])
        with pytest.raises(DiskIOError):
            disk.append("a", b"x")
        assert len(disk.injected) == 1
        assert disk.injected[0].op == "append"
        assert disk.injected[0].area == "a"


class TestPermanentFaults:
    def test_everything_fails_until_heal(self):
        disk = FaultyDisk(
            MemDisk(), faults=[DiskFault(op="flush", hit=2, kind=PERMANENT)]
        )
        disk.append("a", b"x")
        disk.flush("a")
        with pytest.raises(DiskIOError):
            disk.flush("a")  # device dies here
        assert disk.dead
        with pytest.raises(DiskIOError):
            disk.read("a")   # every op now fails, not just flush
        with pytest.raises(DiskIOError):
            disk.append("a", b"y")
        disk.heal()
        assert not disk.dead
        assert disk.read("a") == b"x"

    def test_heal_clears_remaining_plan(self):
        disk = FaultyDisk(MemDisk(), faults=[DiskFault(op="append", hit=5)])
        disk.heal()
        for i in range(8):
            disk.append("a", bytes([i]))  # hit 5 never fires

    def test_revive_clears_only_the_permanent_failure(self):
        # The chaos engine's restart protocol: replacing the failed
        # device brings the node back, but not-yet-fired planned faults
        # still lie ahead.
        disk = FaultyDisk(MemDisk(), faults=[
            DiskFault(op="append", hit=1, kind=PERMANENT),
            DiskFault(op="flush", hit=2),
        ])
        with pytest.raises(DiskIOError):
            disk.append("a", b"x")
        assert disk.dead
        disk.revive()
        assert not disk.dead
        disk.append("a", b"x")
        disk.flush("a")
        with pytest.raises(DiskIOError):
            disk.flush("a")  # the planned flush fault survived revive()


class TestCorruptFaults:
    def test_corrupt_flips_a_durable_bit_and_call_proceeds(self):
        inner = MemDisk()
        disk = FaultyDisk(
            inner, faults=[DiskFault(op="flush", hit=2, kind=CORRUPT)], seed=1
        )
        disk.append("a", b"A" * 64)
        disk.flush("a")
        before = inner.durable_read("a")
        disk.append("a", b"B" * 64)
        disk.flush("a")  # corrupts one durable byte, then flushes
        after = inner.durable_read("a")
        assert len(after) == 128
        damage = [i for i in range(64) if after[i] != before[i]]
        assert len(damage) == 1  # exactly one byte, in the old image


class TestRates:
    def test_rate_one_always_fails(self):
        disk = FaultyDisk(MemDisk(), rates={"append": 1.0}, seed=3)
        for _ in range(5):
            with pytest.raises(DiskIOError):
                disk.append("a", b"x")

    def test_rate_faults_are_seed_deterministic(self):
        def failure_pattern(seed: int) -> list[bool]:
            disk = FaultyDisk(MemDisk(), rates={"append": 0.5}, seed=seed)
            pattern = []
            for i in range(40):
                try:
                    disk.append("a", bytes([i]))
                    pattern.append(False)
                except DiskIOError:
                    pattern.append(True)
            return pattern

        assert failure_pattern(7) == failure_pattern(7)
        assert failure_pattern(7) != failure_pattern(8)


class TestDelegation:
    def test_crash_semantics_pass_through(self):
        inner = MemDisk()
        disk = FaultyDisk(inner)
        disk.append("a", b"buffered")
        assert disk.crashed is False
        disk.crash()
        assert disk.crashed is True
        disk.recover()
        assert disk.read("a") == b""  # unflushed data gone

    def test_size_and_areas_delegate(self):
        disk = FaultyDisk(MemDisk())
        disk.append("a", b"xyz")
        assert disk.areas() == ["a"]
        assert disk.size("a") == 3
