"""Group-commit coordinator tests: batching, piggybacking, error
propagation, knobs, and metrics."""

from __future__ import annotations

import threading

import pytest

from repro.errors import DiskCrashedError
from repro.obs import Observability
from repro.storage.disk import MemDisk
from repro.storage.groupcommit import GroupCommitConfig, GroupCommitter
from repro.storage.wal import WriteAheadLog


class TestSingleThreaded:
    def test_append_sync_makes_record_durable(self):
        disk = MemDisk()
        gc = GroupCommitter(WriteAheadLog(disk))
        gc.append_sync(b"cmt-1")
        disk.crash()
        disk.recover()
        assert [r.payload for r in WriteAheadLog(disk).records()] == [b"cmt-1"]

    def test_sync_is_noop_when_already_durable(self):
        disk = MemDisk()
        wal = WriteAheadLog(disk)
        gc = GroupCommitter(wal)
        lsn = wal.append(b"rec")
        wal.flush()
        flushes = disk.flush_count
        gc.sync(lsn)  # piggybacks on the earlier flush
        assert disk.flush_count == flushes

    def test_sequential_syncs_flush_each(self):
        # Without concurrency the sync semantics match append_flush.
        disk = MemDisk()
        gc = GroupCommitter(WriteAheadLog(disk))
        for i in range(5):
            gc.append_sync(f"r{i}".encode())
        assert disk.flush_count == 5

    def test_config_validation(self):
        with pytest.raises(ValueError):
            GroupCommitConfig(max_wait=-1)
        with pytest.raises(ValueError):
            GroupCommitConfig(max_batch=0)


class TestBatching:
    def test_concurrent_commits_share_flushes(self):
        disk = MemDisk()
        wal = WriteAheadLog(disk)
        gc = GroupCommitter(
            wal, GroupCommitConfig(max_wait=0.1, max_batch=8)
        )
        threads_n, txns_n = 8, 25
        errors: list[BaseException] = []

        def committer(tid: int) -> None:
            try:
                for i in range(txns_n):
                    gc.append_sync(f"t{tid}-{i}".encode())
            except BaseException as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [
            threading.Thread(target=committer, args=(t,)) for t in range(threads_n)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors
        commits = threads_n * txns_n
        assert len(wal.records()) == commits
        # The acceptance bar: flushes grow sublinearly — at least 4x
        # fewer flushes than commits at 8 threads.
        assert disk.flush_count * 4 <= commits, (
            f"{disk.flush_count} flushes for {commits} commits"
        )

    def test_full_batch_releases_waiting_leader_early(self):
        # With a long window but max_batch=2, the second committer must
        # trigger the flush long before the window expires.
        disk = MemDisk()
        gc = GroupCommitter(
            WriteAheadLog(disk), GroupCommitConfig(max_wait=30.0, max_batch=2)
        )
        done = threading.Barrier(3, timeout=10)

        def committer(i: int) -> None:
            gc.append_sync(f"c{i}".encode())
            done.wait()

        for i in range(2):
            threading.Thread(target=committer, args=(i,), daemon=True).start()
        done.wait()  # would time out if the leader slept the full window
        assert disk.flush_count >= 1

    def test_metrics_recorded(self):
        obs = Observability()
        disk = MemDisk()
        wal = WriteAheadLog(disk, obs=obs)
        gc = GroupCommitter(wal, obs=obs)
        lsn = gc.append_sync(b"one")
        gc.sync(lsn)  # already durable -> piggybacked
        snap = obs.metrics.snapshot()
        groups = snap["wal_group_commits_total"]["series"][0]["value"]
        piggy = snap["wal_group_commit_piggybacked_total"]["series"][0]["value"]
        batch = snap["wal_group_commit_batch_size"]["series"][0]
        assert groups == 1
        assert piggy == 1
        assert batch["count"] == 1


class TestErrors:
    def test_flush_failure_propagates_to_all_committers(self):
        disk = MemDisk()
        wal = WriteAheadLog(disk)
        gc = GroupCommitter(wal, GroupCommitConfig(max_wait=0.05, max_batch=64))
        lsn = wal.append(b"doomed")
        disk.crash()  # every flush from now on raises
        with pytest.raises(DiskCrashedError):
            gc.sync(lsn)
        # The coordinator must not be wedged: after recovery new commits
        # work again.
        disk.recover()
        gc.append_sync(b"alive")
        assert wal.flushed_lsn == wal.next_lsn
