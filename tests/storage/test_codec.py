"""Codec unit tests: round trips, determinism, and error handling."""

from __future__ import annotations

import math

import pytest

from repro.storage.codec import CodecError, decode, encode


class TestRoundTrips:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            1,
            -1,
            127,
            128,
            -128,
            2**40,
            -(2**40),
            2**100,
            -(2**100),
            0.0,
            3.5,
            -2.25,
            1e300,
            "",
            "hello",
            "unicode: héllo ✓ 漢字",
            b"",
            b"\x00\xff\xc4\x51",
            [],
            [1, 2, 3],
            ["a", b"b", None, True],
            {},
            {"k": "v"},
            {"nested": {"list": [1, {"deep": b"bytes"}]}},
        ],
    )
    def test_round_trip(self, value):
        assert decode(encode(value)) == value

    def test_tuple_decodes_as_list(self):
        assert decode(encode((1, 2))) == [1, 2]

    def test_float_nan(self):
        result = decode(encode(float("nan")))
        assert math.isnan(result)

    def test_float_inf(self):
        assert decode(encode(float("inf"))) == float("inf")
        assert decode(encode(float("-inf"))) == float("-inf")

    def test_bool_not_confused_with_int(self):
        assert decode(encode(True)) is True
        assert decode(encode(1)) == 1
        assert decode(encode(1)) is not True or decode(encode(1)) == 1

    def test_bytearray_and_memoryview(self):
        assert decode(encode(bytearray(b"abc"))) == b"abc"
        assert decode(encode(memoryview(b"abc"))) == b"abc"

    def test_dict_preserves_insertion_order(self):
        value = {"z": 1, "a": 2, "m": 3}
        assert list(decode(encode(value)).keys()) == ["z", "a", "m"]

    def test_deeply_nested(self):
        value: object = 0
        for _ in range(50):
            value = [value]
        assert decode(encode(value)) == value


class TestDeterminism:
    def test_same_value_same_bytes(self):
        value = {"a": [1, 2.5, "x"], "b": b"\x01"}
        assert encode(value) == encode(value)

    def test_int_encoding_is_compact(self):
        # small ints are 2 bytes (tag + one varint byte)
        assert len(encode(0)) == 2
        assert len(encode(63)) == 2
        assert len(encode(2**40)) < 10


class TestErrors:
    def test_unsupported_type(self):
        with pytest.raises(CodecError):
            encode(object())

    def test_unsupported_set(self):
        with pytest.raises(CodecError):
            encode({1, 2})

    def test_non_string_dict_key(self):
        with pytest.raises(CodecError):
            encode({1: "x"})

    def test_trailing_garbage(self):
        with pytest.raises(CodecError):
            decode(encode(1) + b"junk")

    def test_truncated_string(self):
        data = encode("hello")
        with pytest.raises(CodecError):
            decode(data[:-1])

    def test_truncated_varint(self):
        with pytest.raises(CodecError):
            decode(b"I\xff")

    def test_empty_input(self):
        with pytest.raises(CodecError):
            decode(b"")

    def test_unknown_tag(self):
        with pytest.raises(CodecError):
            decode(b"Zjunk")

    def test_truncated_float(self):
        with pytest.raises(CodecError):
            decode(b"D\x00\x00")

    def test_truncated_list(self):
        data = encode([1, 2, 3])
        with pytest.raises(CodecError):
            decode(data[:-1])

    def test_truncated_dict_key(self):
        data = encode({"key": 1})
        with pytest.raises(CodecError):
            decode(data[:3])
