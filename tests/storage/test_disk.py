"""MemDisk / FileDisk tests, especially crash semantics."""

from __future__ import annotations

import pytest

from repro.errors import DiskCrashedError
from repro.storage.disk import FileDisk, MemDisk


class TestMemDiskBasics:
    def test_missing_area_reads_empty(self):
        assert MemDisk().read("nope") == b""

    def test_append_returns_offsets(self):
        disk = MemDisk()
        assert disk.append("a", b"xxx") == 0
        assert disk.append("a", b"yy") == 3
        assert disk.append("a", b"z") == 5

    def test_read_sees_buffered_data(self):
        disk = MemDisk()
        disk.append("a", b"live")
        assert disk.read("a") == b"live"

    def test_areas_listing(self):
        disk = MemDisk()
        disk.append("b", b"1")
        disk.append("a", b"1")
        assert disk.areas() == ["a", "b"]

    def test_size(self):
        disk = MemDisk()
        disk.append("a", b"12345")
        assert disk.size("a") == 5

    def test_size_counts_durable_and_buffered(self):
        disk = MemDisk()
        disk.append("a", b"123")
        disk.flush("a")
        disk.append("a", b"45")
        assert disk.size("a") == 5
        assert disk.size("missing") == 0

    def test_delete_removes_area(self):
        disk = MemDisk()
        disk.append("a", b"bye")
        disk.flush("a")
        disk.delete("a")
        assert "a" not in disk.areas()
        assert disk.read("a") == b""
        assert disk.delete_count == 1

    def test_delete_is_durable(self):
        disk = MemDisk()
        disk.append("a", b"seg")
        disk.flush("a")
        disk.delete("a")
        disk.crash()
        disk.recover()
        assert "a" not in disk.areas()

    def test_delete_missing_is_noop(self):
        disk = MemDisk()
        disk.delete("ghost")
        assert disk.areas() == []

    def test_replace_is_durable(self):
        disk = MemDisk()
        disk.append("a", b"old")
        disk.replace("a", b"new")
        disk.crash()
        disk.recover()
        assert disk.read("a") == b"new"

    def test_truncate(self):
        disk = MemDisk()
        disk.append("a", b"data")
        disk.flush("a")
        disk.truncate("a")
        assert disk.read("a") == b""


class TestMemDiskCrash:
    def test_unflushed_data_lost_on_crash(self):
        disk = MemDisk()
        disk.append("a", b"durable")
        disk.flush("a")
        disk.append("a", b"volatile")
        disk.crash()
        disk.recover()
        assert disk.read("a") == b"durable"

    def test_flushed_data_survives_crash(self):
        disk = MemDisk()
        disk.append("a", b"keep me")
        disk.flush("a")
        disk.crash()
        disk.recover()
        assert disk.read("a") == b"keep me"

    def test_io_rejected_while_crashed(self):
        disk = MemDisk()
        disk.crash()
        with pytest.raises(DiskCrashedError):
            disk.append("a", b"x")
        with pytest.raises(DiskCrashedError):
            disk.read("a")
        with pytest.raises(DiskCrashedError):
            disk.flush("a")

    def test_torn_tail_keeps_prefix_of_unflushed(self):
        disk = MemDisk(torn_tail_bytes=3)
        disk.append("a", b"ok")
        disk.flush("a")
        disk.append("a", b"abcdef")
        disk.crash()
        disk.recover()
        assert disk.read("a") == b"okabc"

    def test_crash_is_idempotent_per_area(self):
        disk = MemDisk()
        disk.append("a", b"x")
        disk.flush("a")
        disk.crash()
        disk.recover()
        disk.crash()
        disk.recover()
        assert disk.read("a") == b"x"

    def test_crashed_flag(self):
        disk = MemDisk()
        assert not disk.crashed
        disk.crash()
        assert disk.crashed
        disk.recover()
        assert not disk.crashed

    def test_durable_read_excludes_buffer(self):
        disk = MemDisk()
        disk.append("a", b"flushed")
        disk.flush("a")
        disk.append("a", b"buffered")
        assert disk.durable_read("a") == b"flushed"
        assert disk.read("a") == b"flushedbuffered"

    def test_counters(self):
        disk = MemDisk()
        disk.append("a", b"12")
        disk.append("a", b"3")
        disk.flush("a")
        assert disk.append_count == 2
        assert disk.flush_count == 1
        assert disk.bytes_written == 3


class TestFileDisk:
    def test_append_read_round_trip(self, tmp_path):
        disk = FileDisk(str(tmp_path / "d"))
        disk.append("a", b"hello ")
        disk.append("a", b"world")
        disk.flush("a")
        assert disk.read("a") == b"hello world"
        disk.close()

    def test_replace_atomic(self, tmp_path):
        disk = FileDisk(str(tmp_path / "d"))
        disk.append("a", b"old")
        disk.flush("a")
        disk.replace("a", b"new contents")
        assert disk.read("a") == b"new contents"
        disk.close()

    def test_reopen_sees_data(self, tmp_path):
        root = str(tmp_path / "d")
        disk = FileDisk(root)
        disk.append("a", b"persisted")
        disk.flush("a")
        disk.close()
        disk2 = FileDisk(root)
        assert disk2.read("a") == b"persisted"
        disk2.close()

    def test_missing_area_reads_empty(self, tmp_path):
        disk = FileDisk(str(tmp_path / "d"))
        assert disk.read("missing") == b""
        disk.close()

    def test_areas(self, tmp_path):
        disk = FileDisk(str(tmp_path / "d"))
        disk.append("x", b"1")
        disk.append("y", b"1")
        disk.flush("x")
        disk.flush("y")
        assert sorted(disk.areas()) == ["x", "y"]
        disk.close()

    def test_append_offsets_continue_after_reopen(self, tmp_path):
        root = str(tmp_path / "d")
        disk = FileDisk(root)
        disk.append("a", b"12345")
        disk.flush("a")
        disk.close()
        disk2 = FileDisk(root)
        assert disk2.append("a", b"6") == 5
        disk2.close()

    def test_delete_removes_file(self, tmp_path):
        disk = FileDisk(str(tmp_path / "d"))
        disk.append("seg", b"data")
        disk.flush("seg")
        disk.delete("seg")
        assert "seg" not in disk.areas()
        assert disk.size("seg") == 0
        disk.delete("seg")  # idempotent
        disk.close()

    def test_delete_fsyncs_parent_directory(self, tmp_path):
        # Regression guard: the unlink lives in the directory entry, so
        # segment GC is durable only once the parent is fsynced — a
        # crash right after delete() must not "undelete" a reclaimed
        # segment (its records are below the checkpoint's recovery LSN
        # and would re-apply stale state).
        disk = FileDisk(str(tmp_path / "d"))
        disk.append("seg", b"data")
        disk.flush("seg")
        calls = []
        original = disk._fsync_dir
        disk._fsync_dir = lambda: calls.append(1) or original()
        disk.delete("seg")
        assert calls, "delete() must fsync the parent directory"
        calls.clear()
        disk.delete("missing")  # nothing unlinked -> nothing to sync
        assert not calls
        disk.close()

    def test_size_is_tracked_without_reads(self, tmp_path):
        disk = FileDisk(str(tmp_path / "d"))
        disk.append("a", b"123")
        # Unflushed bytes still count: size() reflects the logical
        # length, served from the incremental cache (no stat/read).
        assert disk.size("a") == 3
        disk.append("a", b"45")
        assert disk.size("a") == 5
        disk.replace("a", b"x")
        assert disk.size("a") == 1
        disk.close()

    def test_size_of_untouched_area_comes_from_stat(self, tmp_path):
        root = str(tmp_path / "d")
        disk = FileDisk(root)
        disk.append("a", b"12345678")
        disk.flush("a")
        disk.close()
        disk2 = FileDisk(root)
        assert disk2.size("a") == 8
        assert disk2.size("missing") == 0
        disk2.close()

    def test_replace_fsyncs_the_parent_directory(self, tmp_path, monkeypatch):
        # The rename of the write-temp/fsync/rename idiom lives in the
        # *directory*: without fsyncing it, a power failure can revert
        # the checkpoint to the old name after the log was truncated.
        import os
        import stat

        real_fsync = os.fsync
        synced: list[bool] = []  # True when the fsynced fd is a directory

        def recording_fsync(fd):
            synced.append(stat.S_ISDIR(os.fstat(fd).st_mode))
            real_fsync(fd)

        root = str(tmp_path / "d")
        disk = FileDisk(root)
        monkeypatch.setattr(os, "fsync", recording_fsync)
        disk.replace("ckpt", b"snapshot")
        # One file fsync (the temp file) and one directory fsync, in
        # that order: data durable before the rename is.
        assert synced == [False, True]
        disk.close()
