"""Recoverable KV store tests: transactional semantics, locking,
redo/undo, snapshots."""

from __future__ import annotations

import pytest

from repro.storage.disk import MemDisk
from repro.storage.kvstore import KVStore
from repro.transaction.locks import LockManager, LockMode
from repro.transaction.log import LogManager
from repro.transaction.manager import TransactionManager
from repro.transaction.recovery import recover


@pytest.fixture
def store_and_tm():
    disk = MemDisk()
    log = LogManager(disk)
    tm = TransactionManager(log, LockManager(default_timeout=2.0))
    return KVStore("t"), tm, log, disk


class TestBasicOps:
    def test_get_missing_returns_default(self, store_and_tm):
        store, tm, _, _ = store_and_tm
        with tm.transaction() as txn:
            assert store.get(txn, "nope") is None
            assert store.get(txn, "nope", default=42) == 42

    def test_put_get_round_trip(self, store_and_tm):
        store, tm, _, _ = store_and_tm
        with tm.transaction() as txn:
            store.put(txn, "k", {"v": 1})
        with tm.transaction() as txn:
            assert store.get(txn, "k") == {"v": 1}

    def test_delete(self, store_and_tm):
        store, tm, _, _ = store_and_tm
        with tm.transaction() as txn:
            store.put(txn, "k", 1)
        with tm.transaction() as txn:
            assert store.delete(txn, "k") is True
            assert store.delete(txn, "k") is False
        with tm.transaction() as txn:
            assert not store.exists(txn, "k")

    def test_update_read_modify_write(self, store_and_tm):
        store, tm, _, _ = store_and_tm
        with tm.transaction() as txn:
            store.put(txn, "n", 10)
        with tm.transaction() as txn:
            assert store.update(txn, "n", lambda v: v + 5) == 15
        assert store.peek("n") == 15

    def test_scan_prefix_and_order(self, store_and_tm):
        store, tm, _, _ = store_and_tm
        with tm.transaction() as txn:
            store.put(txn, "b/2", 2)
            store.put(txn, "a/1", 1)
            store.put(txn, "b/1", 3)
        with tm.transaction() as txn:
            assert list(store.scan(txn, prefix="b/")) == [("b/1", 3), ("b/2", 2)]

    def test_count(self, store_and_tm):
        store, tm, _, _ = store_and_tm
        with tm.transaction() as txn:
            store.put(txn, "x", 1)
            store.put(txn, "y", 2)
        with tm.transaction() as txn:
            assert store.count(txn) == 2


class TestAbortUndo:
    def test_abort_reverts_put(self, store_and_tm):
        store, tm, _, _ = store_and_tm
        with tm.transaction() as txn:
            store.put(txn, "k", "original")
        with pytest.raises(RuntimeError):
            with tm.transaction() as txn:
                store.put(txn, "k", "overwritten")
                raise RuntimeError("boom")
        assert store.peek("k") == "original"

    def test_abort_reverts_insert(self, store_and_tm):
        store, tm, _, _ = store_and_tm
        with pytest.raises(RuntimeError):
            with tm.transaction() as txn:
                store.put(txn, "new", 1)
                raise RuntimeError("boom")
        assert store.peek("new") is None

    def test_abort_reverts_delete(self, store_and_tm):
        store, tm, _, _ = store_and_tm
        with tm.transaction() as txn:
            store.put(txn, "k", "keep")
        with pytest.raises(RuntimeError):
            with tm.transaction() as txn:
                store.delete(txn, "k")
                raise RuntimeError("boom")
        assert store.peek("k") == "keep"

    def test_abort_reverts_multiple_ops_in_reverse(self, store_and_tm):
        store, tm, _, _ = store_and_tm
        with tm.transaction() as txn:
            store.put(txn, "a", 1)
        with pytest.raises(RuntimeError):
            with tm.transaction() as txn:
                store.put(txn, "a", 2)
                store.put(txn, "a", 3)
                store.delete(txn, "a")
                raise RuntimeError("boom")
        assert store.peek("a") == 1


class TestLocking:
    def test_write_blocks_conflicting_read(self, store_and_tm):
        store, tm, _, _ = store_and_tm
        from repro.errors import LockTimeoutError

        txn1 = tm.begin()
        store.put(txn1, "hot", 1)
        txn2 = tm.begin()
        with pytest.raises(LockTimeoutError):
            tm.locks.acquire(txn2.id, "kv:t/hot", LockMode.S, timeout=0.1)
        tm.abort(txn1)
        tm.abort(txn2)

    def test_readers_share(self, store_and_tm):
        store, tm, _, _ = store_and_tm
        with tm.transaction() as setup:
            store.put(setup, "k", 1)
        txn1 = tm.begin()
        txn2 = tm.begin()
        assert store.get(txn1, "k") == 1
        assert store.get(txn2, "k") == 1
        tm.commit(txn1)
        tm.commit(txn2)

    def test_scan_blocks_writer(self, store_and_tm):
        store, tm, _, _ = store_and_tm
        from repro.errors import LockTimeoutError

        with tm.transaction() as setup:
            store.put(setup, "k", 1)
        reader = tm.begin()
        list(store.scan(reader))
        writer = tm.begin()
        with pytest.raises(LockTimeoutError):
            tm.locks.acquire(writer.id, "kv:t", LockMode.IX, timeout=0.1)
        tm.commit(reader)
        tm.abort(writer)


class TestRecovery:
    def test_committed_data_survives_crash(self, store_and_tm):
        store, tm, log, disk = store_and_tm
        with tm.transaction() as txn:
            store.put(txn, "k", "durable")
        disk.crash()
        disk.recover()
        store2 = KVStore("t")
        log2 = LogManager(disk)
        recover(log2, {store2.rm_name: store2})
        assert store2.peek("k") == "durable"

    def test_uncommitted_data_lost_at_crash(self, store_and_tm):
        store, tm, log, disk = store_and_tm
        txn = tm.begin()
        store.put(txn, "k", "uncommitted")
        disk.crash()
        disk.recover()
        store2 = KVStore("t")
        recover(LogManager(disk), {store2.rm_name: store2})
        assert store2.peek("k") is None

    def test_deletes_replay(self, store_and_tm):
        store, tm, log, disk = store_and_tm
        with tm.transaction() as txn:
            store.put(txn, "k", 1)
        with tm.transaction() as txn:
            store.delete(txn, "k")
        disk.crash()
        disk.recover()
        store2 = KVStore("t")
        recover(LogManager(disk), {store2.rm_name: store2})
        assert store2.peek("k") is None

    def test_redo_is_idempotent(self, store_and_tm):
        store, _, _, _ = store_and_tm
        record = {"op": "put", "key": "k", "val": 9}
        store.redo(record)
        store.redo(record)
        assert store.peek("k") == 9
        store.redo({"op": "del", "key": "k"})
        store.redo({"op": "del", "key": "k"})
        assert store.peek("k") is None

    def test_snapshot_restore(self, store_and_tm):
        store, tm, _, _ = store_and_tm
        with tm.transaction() as txn:
            store.put(txn, "a", 1)
            store.put(txn, "b", [2, 3])
        snap = store.snapshot()
        store2 = KVStore("t")
        store2.restore(snap)
        assert store2.peek("a") == 1
        assert store2.peek("b") == [2, 3]
        # snapshot is a copy, not a view
        with tm.transaction() as txn:
            store.put(txn, "a", 99)
        assert store2.peek("a") == 1
