"""Write-ahead log tests: framing, torn-write recovery, corruption."""

from __future__ import annotations

import pytest

from repro.errors import CorruptRecordError
from repro.storage.disk import MemDisk
from repro.storage.wal import HEADER_SIZE, WalRecord, WriteAheadLog


class TestAppendScan:
    def test_empty_log_scans_nothing(self):
        wal = WriteAheadLog(MemDisk())
        assert wal.records() == []

    def test_single_record_round_trip(self):
        wal = WriteAheadLog(MemDisk())
        lsn = wal.append(b"payload")
        wal.flush()
        records = wal.records()
        assert records == [WalRecord(lsn, b"payload")]

    def test_lsns_are_byte_offsets(self):
        wal = WriteAheadLog(MemDisk())
        lsn1 = wal.append(b"abc")
        lsn2 = wal.append(b"d")
        assert lsn1 == 0
        assert lsn2 == HEADER_SIZE + 3

    def test_many_records_in_order(self):
        wal = WriteAheadLog(MemDisk())
        payloads = [f"rec-{i}".encode() for i in range(100)]
        for p in payloads:
            wal.append(p)
        wal.flush()
        assert [r.payload for r in wal.records()] == payloads

    def test_empty_payload(self):
        wal = WriteAheadLog(MemDisk())
        wal.append(b"")
        wal.flush()
        assert wal.records()[0].payload == b""

    def test_scan_from_lsn(self):
        wal = WriteAheadLog(MemDisk())
        wal.append(b"first")
        lsn2 = wal.append(b"second")
        wal.flush()
        assert [r.payload for r in wal.scan(from_lsn=lsn2)] == [b"second"]

    def test_next_lsn_property(self):
        wal = WriteAheadLog(MemDisk())
        assert wal.next_lsn == 0
        wal.append(b"xy")
        assert wal.next_lsn == HEADER_SIZE + 2

    def test_append_flush_combo(self):
        disk = MemDisk()
        wal = WriteAheadLog(disk)
        wal.append_flush(b"forced")
        disk.crash()
        disk.recover()
        assert [r.payload for r in WriteAheadLog(disk).records()] == [b"forced"]

    def test_flush_skipped_when_nothing_new(self):
        disk = MemDisk()
        wal = WriteAheadLog(disk)
        wal.append(b"a")
        wal.flush()
        flushes = disk.flush_count
        wal.flush()  # no new data
        assert disk.flush_count == flushes


class TestAppendMany:
    def test_round_trip_and_lsns(self):
        disk = MemDisk()
        wal = WriteAheadLog(disk)
        payloads = [f"batch-{i}".encode() for i in range(10)]
        lsns = wal.append_many(payloads)
        wal.flush()
        records = wal.records()
        assert [r.payload for r in records] == payloads
        assert [r.lsn for r in records] == lsns
        assert wal.next_lsn == records[-1].next_lsn

    def test_single_disk_write(self):
        disk = MemDisk()
        wal = WriteAheadLog(disk)
        writes = disk.append_count
        wal.append_many([b"a", b"b", b"c"])
        assert disk.append_count == writes + 1

    def test_empty_batch(self):
        wal = WriteAheadLog(MemDisk())
        assert wal.append_many([]) == []
        assert wal.next_lsn == 0

    def test_interleaves_with_single_appends(self):
        wal = WriteAheadLog(MemDisk())
        first = wal.append(b"one")
        batch = wal.append_many([b"two", b"three"])
        last = wal.append(b"four")
        wal.flush()
        assert [r.lsn for r in wal.records()] == [first, *batch, last]

    def test_torn_tail_loses_batch_suffix_only(self):
        # A tear inside a batch behaves like a tear between appends:
        # the intact prefix of the batch survives.
        disk = MemDisk(torn_tail_bytes=HEADER_SIZE + 2 + 3)  # "r0" + 3 bytes
        wal = WriteAheadLog(disk)
        wal.append_many([b"r0", b"r1", b"r2"])
        disk.crash()
        disk.recover()
        assert [r.payload for r in WriteAheadLog(disk).records()] == [b"r0"]


class TestFlushUntil:
    def test_flushes_record_and_everything_before(self):
        disk = MemDisk()
        wal = WriteAheadLog(disk)
        wal.append(b"first")
        lsn = wal.append(b"second")
        flushed = wal.flush_until(lsn)
        assert flushed == wal.next_lsn
        disk.crash()
        disk.recover()
        assert [r.payload for r in WriteAheadLog(disk).records()] == [
            b"first", b"second"
        ]

    def test_noop_when_already_durable(self):
        disk = MemDisk()
        wal = WriteAheadLog(disk)
        lsn = wal.append(b"rec")
        wal.flush()
        flushes = disk.flush_count
        assert wal.flush_until(lsn) == wal.flushed_lsn
        assert disk.flush_count == flushes

    def test_covers_later_appends_too(self):
        # One flush advances past everything appended so far — the
        # property group commit relies on.
        disk = MemDisk()
        wal = WriteAheadLog(disk)
        lsn = wal.append(b"mine")
        wal.append(b"someone elses")
        wal.flush_until(lsn)
        assert wal.flushed_lsn == wal.next_lsn


class TestCrashRecovery:
    def test_unflushed_records_lost(self):
        disk = MemDisk()
        wal = WriteAheadLog(disk)
        wal.append(b"durable")
        wal.flush()
        wal.append(b"lost")
        disk.crash()
        disk.recover()
        assert [r.payload for r in WriteAheadLog(disk).records()] == [b"durable"]

    def test_torn_tail_is_discarded(self):
        disk = MemDisk(torn_tail_bytes=5)
        wal = WriteAheadLog(disk)
        wal.append(b"good record")
        wal.flush()
        wal.append(b"this record is torn at crash")
        disk.crash()
        disk.recover()
        records = WriteAheadLog(disk).records()
        assert [r.payload for r in records] == [b"good record"]

    def test_torn_tail_mid_header(self):
        disk = MemDisk(torn_tail_bytes=HEADER_SIZE - 2)
        wal = WriteAheadLog(disk)
        wal.append(b"ok")
        wal.flush()
        wal.append(b"doomed")
        disk.crash()
        disk.recover()
        assert [r.payload for r in WriteAheadLog(disk).records()] == [b"ok"]

    def test_new_wal_resumes_lsn_after_restart(self):
        disk = MemDisk()
        wal = WriteAheadLog(disk)
        wal.append(b"abc")
        wal.flush()
        end = wal.next_lsn
        wal2 = WriteAheadLog(disk)
        assert wal2.next_lsn == end
        lsn = wal2.append(b"more")
        assert lsn == end

    def test_append_after_torn_tail_recovers_cleanly(self):
        # A restarted WAL durably trims the torn tail before appending;
        # leaving the garbage in place and appending after it would turn
        # an expected torn write into mid-log corruption on later scans.
        disk = MemDisk(torn_tail_bytes=3)
        wal = WriteAheadLog(disk)
        wal.append(b"solid")
        wal.flush()
        wal.append(b"torn away")
        disk.crash()
        disk.recover()
        wal2 = WriteAheadLog(disk)
        records = wal2.records()
        assert [r.payload for r in records] == [b"solid"]

    def test_restart_trims_torn_tail_so_new_appends_scan_clean(self):
        # Regression found by the chaos campaign (seed 0): with the
        # torn tail left on disk, a record appended after restart sat
        # beyond the damage, and the next full scan raised
        # CorruptRecordError ("valid data after corruption") on a log
        # that was actually healthy.
        disk = MemDisk(torn_tail_bytes=7)
        wal = WriteAheadLog(disk)
        wal.append(b"keep me")
        wal.flush()
        end = wal.next_lsn
        wal.append(b"this one tears")
        disk.crash()
        disk.recover()
        assert len(disk.read("wal")) > end  # the tear is really there
        wal2 = WriteAheadLog(disk)
        assert wal2.next_lsn == end          # trimmed, not skipped over
        assert len(disk.read("wal")) == end  # and durably so
        wal2.append(b"after restart")
        wal2.flush()
        # Survives any number of restarts with no corruption report.
        payloads = [r.payload for r in WriteAheadLog(disk).records()]
        assert payloads == [b"keep me", b"after restart"]

    def test_restart_trim_tolerates_repeated_crashes(self):
        disk = MemDisk(torn_tail_bytes=5)
        expect = []
        for i in range(4):
            wal = WriteAheadLog(disk)
            durable = f"gen{i}".encode()
            wal.append(durable)
            wal.flush()
            expect.append(durable)
            wal.append(b"doomed" * 3)
            disk.crash()
            disk.recover()
        assert [r.payload for r in WriteAheadLog(disk).records()] == expect

    def test_restart_still_raises_on_mid_log_corruption(self):
        # The trim must never truncate at damage that has valid records
        # after it — that is real corruption, not a torn tail.
        disk = MemDisk()
        wal = WriteAheadLog(disk)
        wal.append(b"first")
        wal.append(b"second")
        wal.flush()
        raw = bytearray(disk.read("wal"))
        raw[HEADER_SIZE] ^= 0xFF  # damage the first record's payload
        disk.replace("wal", bytes(raw))
        with pytest.raises(CorruptRecordError):
            WriteAheadLog(disk)


class TestCorruption:
    def test_mid_log_corruption_raises(self):
        disk = MemDisk()
        wal = WriteAheadLog(disk)
        wal.append(b"first")
        wal.append(b"second")
        wal.flush()
        # Corrupt the first record's payload in place.
        raw = bytearray(disk.read("wal"))
        raw[HEADER_SIZE] ^= 0xFF
        disk.replace("wal", bytes(raw))
        with pytest.raises(CorruptRecordError):
            list(WriteAheadLog(disk).scan())

    def test_tail_corruption_is_silent(self):
        disk = MemDisk()
        wal = WriteAheadLog(disk)
        wal.append(b"first")
        wal.append(b"last")
        wal.flush()
        raw = bytearray(disk.read("wal"))
        raw[-1] ^= 0xFF  # flip a bit in the final record's payload
        disk.replace("wal", bytes(raw))
        assert [r.payload for r in WriteAheadLog(disk).scan()] == [b"first"]

    def test_reset_truncates(self):
        disk = MemDisk()
        wal = WriteAheadLog(disk)
        wal.append(b"gone soon")
        wal.flush()
        wal.reset()
        assert wal.records() == []
        assert wal.next_lsn == 0
