"""Write-ahead log tests: framing, torn-write recovery, corruption."""

from __future__ import annotations

import pytest

from repro.errors import CorruptRecordError
from repro.storage.disk import MemDisk
from repro.storage.wal import HEADER_SIZE, WalRecord, WriteAheadLog


class TestAppendScan:
    def test_empty_log_scans_nothing(self):
        wal = WriteAheadLog(MemDisk())
        assert wal.records() == []

    def test_single_record_round_trip(self):
        wal = WriteAheadLog(MemDisk())
        lsn = wal.append(b"payload")
        wal.flush()
        records = wal.records()
        assert records == [WalRecord(lsn, b"payload")]

    def test_lsns_are_byte_offsets(self):
        wal = WriteAheadLog(MemDisk())
        lsn1 = wal.append(b"abc")
        lsn2 = wal.append(b"d")
        assert lsn1 == 0
        assert lsn2 == HEADER_SIZE + 3

    def test_many_records_in_order(self):
        wal = WriteAheadLog(MemDisk())
        payloads = [f"rec-{i}".encode() for i in range(100)]
        for p in payloads:
            wal.append(p)
        wal.flush()
        assert [r.payload for r in wal.records()] == payloads

    def test_empty_payload(self):
        wal = WriteAheadLog(MemDisk())
        wal.append(b"")
        wal.flush()
        assert wal.records()[0].payload == b""

    def test_scan_from_lsn(self):
        wal = WriteAheadLog(MemDisk())
        wal.append(b"first")
        lsn2 = wal.append(b"second")
        wal.flush()
        assert [r.payload for r in wal.scan(from_lsn=lsn2)] == [b"second"]

    def test_next_lsn_property(self):
        wal = WriteAheadLog(MemDisk())
        assert wal.next_lsn == 0
        wal.append(b"xy")
        assert wal.next_lsn == HEADER_SIZE + 2

    def test_append_flush_combo(self):
        disk = MemDisk()
        wal = WriteAheadLog(disk)
        wal.append_flush(b"forced")
        disk.crash()
        disk.recover()
        assert [r.payload for r in WriteAheadLog(disk).records()] == [b"forced"]

    def test_flush_skipped_when_nothing_new(self):
        disk = MemDisk()
        wal = WriteAheadLog(disk)
        wal.append(b"a")
        wal.flush()
        flushes = disk.flush_count
        wal.flush()  # no new data
        assert disk.flush_count == flushes


class TestCrashRecovery:
    def test_unflushed_records_lost(self):
        disk = MemDisk()
        wal = WriteAheadLog(disk)
        wal.append(b"durable")
        wal.flush()
        wal.append(b"lost")
        disk.crash()
        disk.recover()
        assert [r.payload for r in WriteAheadLog(disk).records()] == [b"durable"]

    def test_torn_tail_is_discarded(self):
        disk = MemDisk(torn_tail_bytes=5)
        wal = WriteAheadLog(disk)
        wal.append(b"good record")
        wal.flush()
        wal.append(b"this record is torn at crash")
        disk.crash()
        disk.recover()
        records = WriteAheadLog(disk).records()
        assert [r.payload for r in records] == [b"good record"]

    def test_torn_tail_mid_header(self):
        disk = MemDisk(torn_tail_bytes=HEADER_SIZE - 2)
        wal = WriteAheadLog(disk)
        wal.append(b"ok")
        wal.flush()
        wal.append(b"doomed")
        disk.crash()
        disk.recover()
        assert [r.payload for r in WriteAheadLog(disk).records()] == [b"ok"]

    def test_new_wal_resumes_lsn_after_restart(self):
        disk = MemDisk()
        wal = WriteAheadLog(disk)
        wal.append(b"abc")
        wal.flush()
        end = wal.next_lsn
        wal2 = WriteAheadLog(disk)
        assert wal2.next_lsn == end
        lsn = wal2.append(b"more")
        assert lsn == end

    def test_append_after_torn_tail_recovers_cleanly(self):
        # After a torn tail, a restarted WAL appends after the garbage;
        # the scan must still stop at the tear (garbage never parses).
        disk = MemDisk(torn_tail_bytes=3)
        wal = WriteAheadLog(disk)
        wal.append(b"solid")
        wal.flush()
        wal.append(b"torn away")
        disk.crash()
        disk.recover()
        wal2 = WriteAheadLog(disk)
        records = wal2.records()
        assert [r.payload for r in records] == [b"solid"]


class TestCorruption:
    def test_mid_log_corruption_raises(self):
        disk = MemDisk()
        wal = WriteAheadLog(disk)
        wal.append(b"first")
        wal.append(b"second")
        wal.flush()
        # Corrupt the first record's payload in place.
        raw = bytearray(disk.read("wal"))
        raw[HEADER_SIZE] ^= 0xFF
        disk.replace("wal", bytes(raw))
        with pytest.raises(CorruptRecordError):
            list(WriteAheadLog(disk).scan())

    def test_tail_corruption_is_silent(self):
        disk = MemDisk()
        wal = WriteAheadLog(disk)
        wal.append(b"first")
        wal.append(b"last")
        wal.flush()
        raw = bytearray(disk.read("wal"))
        raw[-1] ^= 0xFF  # flip a bit in the final record's payload
        disk.replace("wal", bytes(raw))
        assert [r.payload for r in WriteAheadLog(disk).scan()] == [b"first"]

    def test_reset_truncates(self):
        disk = MemDisk()
        wal = WriteAheadLog(disk)
        wal.append(b"gone soon")
        wal.flush()
        wal.reset()
        assert wal.records() == []
        assert wal.next_lsn == 0
