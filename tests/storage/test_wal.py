"""Write-ahead log tests: framing, torn-write recovery, corruption."""

from __future__ import annotations

import pytest

from repro.errors import CorruptRecordError
from repro.storage.disk import MemDisk
from repro.storage.wal import (
    HEADER_SIZE,
    SEGMENT_HEADER_SIZE,
    SUB_HEADER_SIZE,
    WalRecord,
    WriteAheadLog,
)


class TestAppendScan:
    def test_empty_log_scans_nothing(self):
        wal = WriteAheadLog(MemDisk())
        assert wal.records() == []

    def test_single_record_round_trip(self):
        wal = WriteAheadLog(MemDisk())
        lsn = wal.append(b"payload")
        wal.flush()
        records = wal.records()
        assert records == [WalRecord(lsn, b"payload")]

    def test_lsns_are_byte_offsets(self):
        wal = WriteAheadLog(MemDisk())
        lsn1 = wal.append(b"abc")
        lsn2 = wal.append(b"d")
        assert lsn1 == 0
        assert lsn2 == HEADER_SIZE + 3

    def test_many_records_in_order(self):
        wal = WriteAheadLog(MemDisk())
        payloads = [f"rec-{i}".encode() for i in range(100)]
        for p in payloads:
            wal.append(p)
        wal.flush()
        assert [r.payload for r in wal.records()] == payloads

    def test_empty_payload(self):
        wal = WriteAheadLog(MemDisk())
        wal.append(b"")
        wal.flush()
        assert wal.records()[0].payload == b""

    def test_scan_from_lsn(self):
        wal = WriteAheadLog(MemDisk())
        wal.append(b"first")
        lsn2 = wal.append(b"second")
        wal.flush()
        assert [r.payload for r in wal.scan(from_lsn=lsn2)] == [b"second"]

    def test_next_lsn_property(self):
        wal = WriteAheadLog(MemDisk())
        assert wal.next_lsn == 0
        wal.append(b"xy")
        assert wal.next_lsn == HEADER_SIZE + 2

    def test_append_flush_combo(self):
        disk = MemDisk()
        wal = WriteAheadLog(disk)
        wal.append_flush(b"forced")
        disk.crash()
        disk.recover()
        assert [r.payload for r in WriteAheadLog(disk).records()] == [b"forced"]

    def test_flush_skipped_when_nothing_new(self):
        disk = MemDisk()
        wal = WriteAheadLog(disk)
        wal.append(b"a")
        wal.flush()
        flushes = disk.flush_count
        wal.flush()  # no new data
        assert disk.flush_count == flushes


class TestAppendMany:
    def test_round_trip_and_lsns(self):
        disk = MemDisk()
        wal = WriteAheadLog(disk)
        payloads = [f"batch-{i}".encode() for i in range(10)]
        lsns = wal.append_many(payloads)
        wal.flush()
        records = wal.records()
        assert [r.payload for r in records] == payloads
        assert [r.lsn for r in records] == lsns
        assert wal.next_lsn == records[-1].next_lsn

    def test_single_disk_write(self):
        disk = MemDisk()
        wal = WriteAheadLog(disk)
        writes = disk.append_count
        wal.append_many([b"a", b"b", b"c"])
        assert disk.append_count == writes + 1

    def test_empty_batch(self):
        wal = WriteAheadLog(MemDisk())
        assert wal.append_many([]) == []
        assert wal.next_lsn == 0

    def test_interleaves_with_single_appends(self):
        wal = WriteAheadLog(MemDisk())
        first = wal.append(b"one")
        batch = wal.append_many([b"two", b"three"])
        last = wal.append(b"four")
        wal.flush()
        assert [r.lsn for r in wal.records()] == [first, *batch, last]

    def test_torn_tail_drops_whole_batch(self):
        # A tear anywhere inside a batch frame drops the whole batch:
        # the single batch CRC cannot vouch for a prefix.  That is the
        # contract batched commits rely on — the batch is one
        # transaction's records ending in its commit record, so an
        # acknowledged (flushed) commit implies the whole batch is
        # durable, and a torn batch was never acknowledged.  The live
        # segment's buffer starts with its 16-byte header (buffered at
        # creation), so the tear offset counts that too.
        disk = MemDisk(
            torn_tail_bytes=SEGMENT_HEADER_SIZE + HEADER_SIZE
            + SUB_HEADER_SIZE + 2 + 3
        )  # seg header + batch header + sub-framed "r0" + 3 bytes of r1
        wal = WriteAheadLog(disk)
        wal.append_many([b"r0", b"r1", b"r2"])
        disk.crash()
        disk.recover()
        assert WriteAheadLog(disk).records() == []

    def test_flushed_batch_survives_crash_whole(self):
        disk = MemDisk()
        wal = WriteAheadLog(disk)
        wal.append_many([b"r0", b"r1", b"r2"])
        wal.flush()
        disk.crash()
        disk.recover()
        payloads = [r.payload for r in WriteAheadLog(disk).records()]
        assert payloads == [b"r0", b"r1", b"r2"]

    def test_batch_is_one_frame_with_one_crc(self):
        # Physical layout: one batch magic, no per-record classic magic.
        disk = MemDisk()
        wal = WriteAheadLog(disk)
        wal.append_many([b"aaa", b"bbb"])
        raw = disk.read(wal.live_area)
        body = raw[SEGMENT_HEADER_SIZE:]
        assert body[:2] == b"\xC4\x52"
        assert body.count(b"\xC4\x51") == 0

    def test_single_record_batch_uses_classic_frame(self):
        # Records that travel alone keep their own CRC frame.
        disk = MemDisk()
        wal = WriteAheadLog(disk)
        (lsn,) = wal.append_many([b"solo"])
        wal.flush()
        raw = disk.read(wal.live_area)
        assert raw[SEGMENT_HEADER_SIZE:SEGMENT_HEADER_SIZE + 2] == b"\xC4\x51"
        assert wal.records() == [WalRecord(lsn, b"solo")]

    def test_scan_from_mid_batch_sub_record(self):
        wal = WriteAheadLog(MemDisk())
        lsns = wal.append_many([b"zero", b"one", b"two"])
        wal.flush()
        assert [r.payload for r in wal.scan(from_lsn=lsns[1])] == [
            b"one", b"two"
        ]
        assert [r.payload for r in wal.scan(from_lsn=lsns[2])] == [b"two"]

    def test_scan_from_lsn_after_batch(self):
        wal = WriteAheadLog(MemDisk())
        wal.append_many([b"a", b"b"])
        lsn = wal.append(b"after")
        wal.flush()
        assert [r.payload for r in wal.scan(from_lsn=lsn)] == [b"after"]

    def test_empty_payloads_in_batch(self):
        wal = WriteAheadLog(MemDisk())
        lsns = wal.append_many([b"", b"x", b""])
        wal.flush()
        records = wal.records()
        assert [r.payload for r in records] == [b"", b"x", b""]
        assert [r.lsn for r in records] == lsns

    def test_restart_resumes_after_batch(self):
        disk = MemDisk()
        wal = WriteAheadLog(disk)
        wal.append_many([b"b0", b"b1"])
        wal.flush()
        end = wal.next_lsn
        wal2 = WriteAheadLog(disk)
        assert wal2.next_lsn == end
        lsn = wal2.append(b"post")
        wal2.flush()
        assert lsn == end
        assert [r.payload for r in wal2.records()] == [b"b0", b"b1", b"post"]

    def test_corrupt_batch_followed_by_valid_data_raises(self):
        disk = MemDisk()
        wal = WriteAheadLog(disk)
        wal.append_many([b"victim-0", b"victim-1"])
        wal.append(b"valid after")
        wal.flush()
        raw = bytearray(disk.read(wal.live_area))
        raw[SEGMENT_HEADER_SIZE + HEADER_SIZE + SUB_HEADER_SIZE] ^= 0xFF
        disk.replace(wal.live_area, bytes(raw))
        with pytest.raises(CorruptRecordError):
            list(WriteAheadLog(disk).scan())


class TestAppendBatch:
    def test_preframed_body_round_trip(self):
        import struct

        wal = WriteAheadLog(MemDisk())
        payloads = [b"alpha", b"bz", b"gamma-3"]
        body = bytearray()
        offsets = []
        for payload in payloads:
            offsets.append(len(body))
            body += struct.pack(">I", len(payload))
            body += payload
        seen: list[list[int]] = []
        lsns = wal.append_batch(body, offsets, on_lsns=seen.append)
        wal.flush()
        assert seen == [lsns]
        records = wal.records()
        assert [r.payload for r in records] == payloads
        assert [r.lsn for r in records] == lsns
        assert wal.next_lsn == records[-1].next_lsn

    def test_empty_batch_is_noop(self):
        wal = WriteAheadLog(MemDisk())
        assert wal.append_batch(b"", []) == []
        assert wal.next_lsn == 0

    def test_on_lsns_ordered_before_later_appends(self):
        # The hook runs under the log lock: the LSNs it publishes are
        # strictly below anything appended afterwards.
        wal = WriteAheadLog(MemDisk())
        captured: list[int] = []
        wal.append_many([b"a", b"b"])  # no hook: just occupy LSN space
        import struct

        body = struct.pack(">I", 1) + b"x" + struct.pack(">I", 1) + b"y"
        wal.append_batch(body, [0, 5], on_lsns=captured.extend)
        after = wal.append(b"later")
        assert captured and max(captured) < after


class TestFlushUntil:
    def test_flushes_record_and_everything_before(self):
        disk = MemDisk()
        wal = WriteAheadLog(disk)
        wal.append(b"first")
        lsn = wal.append(b"second")
        flushed = wal.flush_until(lsn)
        assert flushed == wal.next_lsn
        disk.crash()
        disk.recover()
        assert [r.payload for r in WriteAheadLog(disk).records()] == [
            b"first", b"second"
        ]

    def test_noop_when_already_durable(self):
        disk = MemDisk()
        wal = WriteAheadLog(disk)
        lsn = wal.append(b"rec")
        wal.flush()
        flushes = disk.flush_count
        assert wal.flush_until(lsn) == wal.flushed_lsn
        assert disk.flush_count == flushes

    def test_covers_later_appends_too(self):
        # One flush advances past everything appended so far — the
        # property group commit relies on.
        disk = MemDisk()
        wal = WriteAheadLog(disk)
        lsn = wal.append(b"mine")
        wal.append(b"someone elses")
        wal.flush_until(lsn)
        assert wal.flushed_lsn == wal.next_lsn


class TestCrashRecovery:
    def test_unflushed_records_lost(self):
        disk = MemDisk()
        wal = WriteAheadLog(disk)
        wal.append(b"durable")
        wal.flush()
        wal.append(b"lost")
        disk.crash()
        disk.recover()
        assert [r.payload for r in WriteAheadLog(disk).records()] == [b"durable"]

    def test_torn_tail_is_discarded(self):
        disk = MemDisk(torn_tail_bytes=5)
        wal = WriteAheadLog(disk)
        wal.append(b"good record")
        wal.flush()
        wal.append(b"this record is torn at crash")
        disk.crash()
        disk.recover()
        records = WriteAheadLog(disk).records()
        assert [r.payload for r in records] == [b"good record"]

    def test_torn_tail_mid_header(self):
        disk = MemDisk(torn_tail_bytes=HEADER_SIZE - 2)
        wal = WriteAheadLog(disk)
        wal.append(b"ok")
        wal.flush()
        wal.append(b"doomed")
        disk.crash()
        disk.recover()
        assert [r.payload for r in WriteAheadLog(disk).records()] == [b"ok"]

    def test_new_wal_resumes_lsn_after_restart(self):
        disk = MemDisk()
        wal = WriteAheadLog(disk)
        wal.append(b"abc")
        wal.flush()
        end = wal.next_lsn
        wal2 = WriteAheadLog(disk)
        assert wal2.next_lsn == end
        lsn = wal2.append(b"more")
        assert lsn == end

    def test_append_after_torn_tail_recovers_cleanly(self):
        # A restarted WAL durably trims the torn tail before appending;
        # leaving the garbage in place and appending after it would turn
        # an expected torn write into mid-log corruption on later scans.
        disk = MemDisk(torn_tail_bytes=3)
        wal = WriteAheadLog(disk)
        wal.append(b"solid")
        wal.flush()
        wal.append(b"torn away")
        disk.crash()
        disk.recover()
        wal2 = WriteAheadLog(disk)
        records = wal2.records()
        assert [r.payload for r in records] == [b"solid"]

    def test_restart_trims_torn_tail_so_new_appends_scan_clean(self):
        # Regression found by the chaos campaign (seed 0): with the
        # torn tail left on disk, a record appended after restart sat
        # beyond the damage, and the next full scan raised
        # CorruptRecordError ("valid data after corruption") on a log
        # that was actually healthy.
        disk = MemDisk(torn_tail_bytes=7)
        wal = WriteAheadLog(disk)
        wal.append(b"keep me")
        wal.flush()
        end = wal.next_lsn
        wal.append(b"this one tears")
        disk.crash()
        disk.recover()
        live = "wal.000001"
        assert len(disk.read(live)) > SEGMENT_HEADER_SIZE + end  # tear is there
        wal2 = WriteAheadLog(disk)
        assert wal2.next_lsn == end          # trimmed, not skipped over
        assert len(disk.read(live)) == SEGMENT_HEADER_SIZE + end  # durably so
        wal2.append(b"after restart")
        wal2.flush()
        # Survives any number of restarts with no corruption report.
        payloads = [r.payload for r in WriteAheadLog(disk).records()]
        assert payloads == [b"keep me", b"after restart"]

    def test_restart_trim_tolerates_repeated_crashes(self):
        disk = MemDisk(torn_tail_bytes=5)
        expect = []
        for i in range(4):
            wal = WriteAheadLog(disk)
            durable = f"gen{i}".encode()
            wal.append(durable)
            wal.flush()
            expect.append(durable)
            wal.append(b"doomed" * 3)
            disk.crash()
            disk.recover()
        assert [r.payload for r in WriteAheadLog(disk).records()] == expect

    def test_restart_still_raises_on_mid_log_corruption(self):
        # The trim must never truncate at damage that has valid records
        # after it — that is real corruption, not a torn tail.
        disk = MemDisk()
        wal = WriteAheadLog(disk)
        wal.append(b"first")
        wal.append(b"second")
        wal.flush()
        raw = bytearray(disk.read(wal.live_area))
        # damage the first record's payload
        raw[SEGMENT_HEADER_SIZE + HEADER_SIZE] ^= 0xFF
        disk.replace(wal.live_area, bytes(raw))
        with pytest.raises(CorruptRecordError):
            WriteAheadLog(disk)


class TestCorruption:
    def test_mid_log_corruption_raises(self):
        disk = MemDisk()
        wal = WriteAheadLog(disk)
        wal.append(b"first")
        wal.append(b"second")
        wal.flush()
        # Corrupt the first record's payload in place.
        raw = bytearray(disk.read(wal.live_area))
        raw[SEGMENT_HEADER_SIZE + HEADER_SIZE] ^= 0xFF
        disk.replace(wal.live_area, bytes(raw))
        with pytest.raises(CorruptRecordError):
            list(WriteAheadLog(disk).scan())

    def test_tail_corruption_is_silent(self):
        disk = MemDisk()
        wal = WriteAheadLog(disk)
        wal.append(b"first")
        wal.append(b"last")
        wal.flush()
        raw = bytearray(disk.read(wal.live_area))
        raw[-1] ^= 0xFF  # flip a bit in the final record's payload
        disk.replace(wal.live_area, bytes(raw))
        assert [r.payload for r in WriteAheadLog(disk).scan()] == [b"first"]

    def test_reset_truncates(self):
        disk = MemDisk()
        wal = WriteAheadLog(disk)
        wal.append(b"gone soon")
        wal.flush()
        wal.reset()
        assert wal.records() == []
        assert wal.next_lsn == 0


class TestSegments:
    def test_fresh_log_opens_segment_one(self):
        wal = WriteAheadLog(MemDisk())
        assert wal.live_area == "wal.000001"
        assert wal.segments() == ["wal.000001"]
        assert wal.oldest_lsn() == 0

    def test_roll_seals_and_opens_next_segment(self):
        disk = MemDisk()
        wal = WriteAheadLog(disk)
        wal.append(b"in-seg-1")
        wal.roll()
        assert wal.live_area == "wal.000002"
        assert wal.segments() == ["wal.000001", "wal.000002"]
        # Sealing flushed the old segment even without an explicit flush.
        disk.crash()
        disk.recover()
        assert [r.payload for r in WriteAheadLog(disk).records()] == [b"in-seg-1"]

    def test_roll_on_empty_live_segment_is_noop(self):
        wal = WriteAheadLog(MemDisk())
        wal.append(b"x")
        wal.roll()
        before = wal.segments()
        wal.roll()
        assert wal.segments() == before

    def test_lsns_are_monotonic_across_rolls(self):
        wal = WriteAheadLog(MemDisk())
        lsn1 = wal.append(b"abc")
        wal.roll()
        lsn2 = wal.append(b"d")
        assert lsn1 == 0
        assert lsn2 == HEADER_SIZE + 3  # segment headers excluded
        assert wal.oldest_lsn() == 0

    def test_scan_spans_segments(self):
        wal = WriteAheadLog(MemDisk())
        payloads = []
        for i in range(9):
            payload = f"rec-{i}".encode()
            wal.append(payload)
            payloads.append(payload)
            if i % 3 == 2:
                wal.roll()
        wal.flush()
        assert [r.payload for r in wal.records()] == payloads

    def test_scan_from_lsn_seeks_into_segment(self):
        wal = WriteAheadLog(MemDisk())
        wal.append(b"first")
        wal.roll()
        lsn = wal.append(b"second")
        wal.append(b"third")
        wal.flush()
        assert [r.payload for r in wal.scan(from_lsn=lsn)] == [
            b"second", b"third"
        ]

    def test_automatic_roll_at_size_bound(self):
        wal = WriteAheadLog(MemDisk(), segment_bytes=64)
        for i in range(20):
            wal.append(f"payload-{i:02d}".encode())
        wal.flush()
        assert wal.segment_count() > 1
        assert len(wal.records()) == 20

    def test_restart_across_segments(self):
        disk = MemDisk()
        wal = WriteAheadLog(disk)
        wal.append(b"one")
        wal.roll()
        wal.append(b"two")
        wal.flush()
        end = wal.next_lsn
        wal2 = WriteAheadLog(disk)
        assert wal2.next_lsn == end
        assert [r.payload for r in wal2.records()] == [b"one", b"two"]

    def test_gc_reclaims_sealed_segments(self):
        disk = MemDisk()
        wal = WriteAheadLog(disk)
        wal.append(b"old")
        wal.roll()
        keep_from = wal.append(b"new")
        wal.flush()
        assert wal.gc(keep_from) == 1
        assert wal.segments() == ["wal.000002"]
        assert wal.oldest_lsn() == keep_from
        assert "wal.000001" not in disk.areas()
        assert [r.payload for r in wal.scan(keep_from)] == [b"new"]

    def test_gc_never_deletes_live_segment(self):
        wal = WriteAheadLog(MemDisk())
        wal.append(b"only")
        wal.flush()
        assert wal.gc(wal.next_lsn) == 0
        assert wal.segment_count() == 1

    def test_gc_respects_keep_from_lsn(self):
        wal = WriteAheadLog(MemDisk())
        keep = wal.append(b"still needed")
        wal.roll()
        wal.append(b"later")
        wal.flush()
        # The oldest segment contains `keep`, so it must survive.
        assert wal.gc(keep) == 0
        assert wal.segment_count() == 2

    def test_restart_after_gc(self):
        disk = MemDisk()
        wal = WriteAheadLog(disk)
        wal.append(b"gone")
        wal.roll()
        keep_from = wal.append(b"kept")
        wal.flush()
        wal.gc(keep_from)
        wal2 = WriteAheadLog(disk)
        assert wal2.oldest_lsn() == keep_from
        assert [r.payload for r in wal2.scan(keep_from)] == [b"kept"]

    def test_torn_roll_falls_back_to_predecessor(self):
        # Crash right after a roll: the new segment's header was
        # buffered but never flushed, so the durable image has an
        # empty/torn area.  Reopen must resume on the sealed segment.
        disk = MemDisk()
        wal = WriteAheadLog(disk)
        wal.append(b"sealed")
        wal.roll()
        end = wal.next_lsn
        disk.crash()
        disk.recover()
        wal2 = WriteAheadLog(disk)
        assert wal2.next_lsn == end
        assert wal2.live_area == "wal.000001"
        assert [r.payload for r in wal2.records()] == [b"sealed"]
        assert "wal.000002" not in disk.areas()

    def test_corrupt_sealed_segment_raises(self):
        disk = MemDisk()
        wal = WriteAheadLog(disk)
        wal.append(b"victim")
        wal.roll()
        wal.append(b"live")
        wal.flush()
        raw = bytearray(disk.read("wal.000001"))
        raw[SEGMENT_HEADER_SIZE + HEADER_SIZE] ^= 0xFF
        disk.replace("wal.000001", bytes(raw))
        with pytest.raises(CorruptRecordError):
            WriteAheadLog(disk)

    def test_corrupt_live_header_with_records_raises(self):
        # A damaged live-segment header is only a "torn roll" when the
        # segment has no parseable records; with records behind it the
        # damage is corruption and must not be silently deleted.
        disk = MemDisk()
        wal = WriteAheadLog(disk)
        wal.append(b"valuable")
        wal.flush()
        disk.corrupt_byte(wal.live_area, 5, 0xFF)
        with pytest.raises(CorruptRecordError):
            WriteAheadLog(disk)

    def test_live_bytes_tracks_disk(self):
        disk = MemDisk()
        wal = WriteAheadLog(disk)
        wal.append(b"abc")
        wal.roll()
        wal.append(b"defgh")
        expected = sum(disk.size(a) for a in wal.segments())
        assert wal.live_bytes() == expected
        assert wal.live_bytes() > 2 * SEGMENT_HEADER_SIZE

    def test_reset_deletes_all_segments(self):
        disk = MemDisk()
        wal = WriteAheadLog(disk)
        wal.append(b"a")
        wal.roll()
        wal.append(b"b")
        wal.flush()
        wal.reset()
        assert wal.segments() == ["wal.000001"]
        assert wal.next_lsn == 0
        assert "wal.000002" not in disk.areas()

    def test_flush_until_works_across_a_roll(self):
        disk = MemDisk()
        wal = WriteAheadLog(disk)
        lsn = wal.append(b"pre-roll")
        wal.roll()
        lsn2 = wal.append(b"post-roll")
        # The roll sealed (and flushed) the first segment, so the
        # pre-roll record is already durable; the second call forces
        # the live segment and advances to the append point.
        assert wal.flush_until(lsn) > lsn
        assert wal.flush_until(lsn2) == wal.next_lsn
        disk.crash()
        disk.recover()
        assert [r.payload for r in WriteAheadLog(disk).records()] == [
            b"pre-roll", b"post-roll"
        ]
