"""QueueManager facade tests (Figure 3 operation surface)."""

from __future__ import annotations

import pytest

from repro.errors import (
    NoSuchElementError,
    NoSuchQueueError,
    QueueEmpty,
    QueueStoppedError,
)
from repro.queueing.manager import QueueHandle, QueueManager
from repro.queueing.repository import QueueRepository
from repro.storage.disk import MemDisk


@pytest.fixture
def qm():
    repo = QueueRepository("r", MemDisk())
    manager = QueueManager(repo)
    manager.create_queue("q")
    return manager


class TestRegisterSurface:
    def test_register_unknown_queue_raises(self, qm):
        with pytest.raises(NoSuchQueueError):
            qm.register("ghost", "alice")

    def test_handle_fields(self, qm):
        handle, _, _ = qm.register("q", "alice")
        assert handle == QueueHandle("r", "q", "alice")


class TestEnqueueDequeue:
    def test_non_transactional_enqueue_visible_immediately(self, qm):
        h, _, _ = qm.register("q", "alice")
        qm.enqueue(h, "now")
        assert qm.depth("q") == 1

    def test_non_transactional_enqueue_durable(self, qm):
        disk = qm.repo.disk
        h, _, _ = qm.register("q", "alice")
        qm.enqueue(h, "stable")
        disk.crash()
        disk.recover()
        qm2 = QueueManager(QueueRepository("r", disk))
        assert qm2.depth("q") == 1

    def test_transactional_ops_honour_caller_txn(self, qm):
        h, _, _ = qm.register("q", "alice")
        txn = qm.repo.tm.begin()
        qm.enqueue(h, "maybe", txn=txn)
        assert qm.depth("q") == 0
        qm.repo.tm.abort(txn)
        assert qm.depth("q") == 0

    def test_dequeue_returns_element(self, qm):
        h, _, _ = qm.register("q", "alice")
        eid = qm.enqueue(h, {"n": 1}, headers={"h": "v"}, priority=4)
        element = qm.dequeue(h)
        assert element.eid == eid
        assert element.body == {"n": 1}
        assert element.headers == {"h": "v"}
        assert element.priority == 4

    def test_dequeue_empty(self, qm):
        h, _, _ = qm.register("q", "alice")
        with pytest.raises(QueueEmpty):
            qm.dequeue(h)

    def test_dequeue_with_selector(self, qm):
        h, _, _ = qm.register("q", "alice")
        qm.enqueue(h, {"k": "a"})
        qm.enqueue(h, {"k": "b"})
        element = qm.dequeue(h, selector=lambda e: e.body["k"] == "b")
        assert element.body["k"] == "b"

    def test_read_unknown_raises(self, qm):
        h, _, _ = qm.register("q", "alice")
        with pytest.raises(NoSuchElementError):
            qm.read(h, 31337)

    def test_kill_element_surface(self, qm):
        h, _, _ = qm.register("q", "alice")
        eid = qm.enqueue(h, "victim")
        assert qm.kill_element(h, eid) is True
        assert qm.kill_element(h, eid) is False


class TestDataDefinitionSurface:
    def test_stop_start(self, qm):
        h, _, _ = qm.register("q", "alice")
        qm.stop_queue("q")
        with pytest.raises(QueueStoppedError):
            qm.enqueue(h, "x")
        qm.start_queue("q")
        qm.enqueue(h, "x")

    def test_destroy(self, qm):
        qm.create_queue("temp")
        qm.destroy_queue("temp")
        with pytest.raises(NoSuchQueueError):
            qm.depth("temp")
