"""Header index + browse tests (Section 10 content-based retrieval)."""

from __future__ import annotations

import pytest

from repro.queueing.repository import QueueRepository
from repro.storage.disk import MemDisk


@pytest.fixture
def repo():
    return QueueRepository("ix", MemDisk())


@pytest.fixture
def q(repo):
    return repo.create_queue("q", index_headers=("rid", "kind"))


def enq(repo, q, body, headers):
    with repo.tm.transaction() as txn:
        return q.enqueue(txn, body, headers=headers)


class TestHeaderIndex:
    def test_find_by_indexed_header(self, repo, q):
        eid = enq(repo, q, "x", {"rid": "c#1"})
        enq(repo, q, "y", {"rid": "c#2"})
        assert q.find_by_header("rid", "c#1") == [eid]
        assert q.find_by_header("rid", "c#3") == []

    def test_find_by_unindexed_header_falls_back_to_scan(self, repo, q):
        eid = enq(repo, q, "x", {"other": "v"})
        assert q.find_by_header("other", "v") == [eid]

    def test_index_tracks_dequeue(self, repo, q):
        enq(repo, q, "x", {"rid": "c#1"})
        with repo.tm.transaction() as txn:
            q.dequeue(txn)
        assert q.find_by_header("rid", "c#1") == []

    def test_index_tracks_enqueue_abort(self, repo, q):
        txn = repo.tm.begin()
        q.enqueue(txn, "x", headers={"rid": "c#1"})
        repo.tm.abort(txn)
        assert q.find_by_header("rid", "c#1") == []

    def test_index_tracks_dequeue_abort(self, repo, q):
        eid = enq(repo, q, "x", {"rid": "c#1"})
        txn = repo.tm.begin()
        q.dequeue(txn)
        repo.tm.abort(txn)
        assert q.find_by_header("rid", "c#1") == [eid]

    def test_index_tracks_kill(self, repo, q):
        eid = enq(repo, q, "x", {"rid": "c#1"})
        q.kill_element(eid)
        assert q.find_by_header("rid", "c#1") == []

    def test_index_rebuilt_by_recovery(self, repo, q):
        disk = repo.disk
        eid = enq(repo, q, "x", {"rid": "c#1"})
        disk.crash()
        disk.recover()
        repo2 = QueueRepository("ix", disk)
        q2 = repo2.get_queue("q")
        assert q2.config.index_headers == ("rid",) + ("kind",)
        assert q2.find_by_header("rid", "c#1") == [eid]

    def test_index_survives_checkpoint(self, repo, q):
        disk = repo.disk
        eid = enq(repo, q, "x", {"rid": "c#1"})
        repo.checkpoint()
        disk.crash()
        disk.recover()
        repo2 = QueueRepository("ix", disk)
        assert repo2.get_queue("q").find_by_header("rid", "c#1") == [eid]

    def test_multiple_eids_per_value(self, repo, q):
        e1 = enq(repo, q, "x", {"kind": "vip"})
        e2 = enq(repo, q, "y", {"kind": "vip"})
        assert q.find_by_header("kind", "vip") == sorted([e1, e2])

    def test_unhashable_header_value_tolerated(self, repo, q):
        enq(repo, q, "x", {"rid": ["not", "hashable"]})
        # Falls back gracefully: indexed lookup misses, no crash.
        assert q.find_by_header("rid", "anything") == []


class TestBrowse:
    def test_browse_in_dequeue_order_without_consuming(self, repo, q):
        enq(repo, q, "low", {"rid": "a"})
        with repo.tm.transaction() as txn:
            q.enqueue(txn, "high", priority=9, headers={"rid": "b"})
        snapshot = q.browse()
        assert [e.body for e in snapshot] == ["high", "low"]
        assert q.depth() == 2  # untouched

    def test_browse_excludes_uncommitted(self, repo, q):
        enq(repo, q, "visible", {})
        txn = repo.tm.begin()
        q.enqueue(txn, "invisible", headers={})
        assert [e.body for e in q.browse()] == ["visible"]
        repo.tm.abort(txn)

    def test_browse_excludes_pending_dequeues(self, repo, q):
        enq(repo, q, "taken", {})
        txn = repo.tm.begin()
        q.dequeue(txn)
        assert q.browse() == []
        repo.tm.abort(txn)

    def test_browse_returns_copies(self, repo, q):
        enq(repo, q, "x", {"h": 1})
        snapshot = q.browse()
        snapshot[0].headers["h"] = 999
        assert q.browse()[0].headers["h"] == 1
