"""Repository tests: data definition, eid allocation, checkpointing."""

from __future__ import annotations

import pytest

from repro.errors import NoSuchQueueError, QueueExistsError
from repro.queueing.repository import QueueRepository
from repro.storage.disk import MemDisk


class TestDataDefinition:
    def test_create_and_get(self):
        repo = QueueRepository("r", MemDisk())
        q = repo.create_queue("q1")
        assert repo.get_queue("q1") is q
        assert repo.queue_names() == ["q1"]

    def test_duplicate_create_rejected(self):
        repo = QueueRepository("r", MemDisk())
        repo.create_queue("q1")
        with pytest.raises(QueueExistsError):
            repo.create_queue("q1")

    def test_get_missing_raises(self):
        repo = QueueRepository("r", MemDisk())
        with pytest.raises(NoSuchQueueError):
            repo.get_queue("nope")

    def test_destroy_queue(self):
        repo = QueueRepository("r", MemDisk())
        repo.create_queue("q1")
        repo.destroy_queue("q1")
        with pytest.raises(NoSuchQueueError):
            repo.get_queue("q1")

    def test_destroy_missing_raises(self):
        repo = QueueRepository("r", MemDisk())
        with pytest.raises(NoSuchQueueError):
            repo.destroy_queue("ghost")

    def test_queue_creation_durable(self):
        disk = MemDisk()
        repo = QueueRepository("r", disk)
        repo.create_queue("q1", max_aborts=7)
        disk.crash()
        disk.recover()
        repo2 = QueueRepository("r", disk)
        assert repo2.get_queue("q1").config.max_aborts == 7

    def test_queue_destruction_durable(self):
        disk = MemDisk()
        repo = QueueRepository("r", disk)
        repo.create_queue("q1")
        repo.destroy_queue("q1")
        disk.crash()
        disk.recover()
        repo2 = QueueRepository("r", disk)
        assert "q1" not in repo2.queues

    def test_tables_durable(self):
        disk = MemDisk()
        repo = QueueRepository("r", disk)
        table = repo.create_table("accounts")
        with repo.tm.transaction() as txn:
            table.put(txn, "k", 1)
        disk.crash()
        disk.recover()
        repo2 = QueueRepository("r", disk)
        assert repo2.get_table("accounts").peek("k") == 1

    def test_create_table_idempotent(self):
        repo = QueueRepository("r", MemDisk())
        t1 = repo.create_table("t")
        t2 = repo.create_table("t")
        assert t1 is t2


class TestEidAllocation:
    def test_eids_unique_and_increasing(self):
        repo = QueueRepository("r", MemDisk())
        eids = [repo.alloc_eid() for _ in range(200)]
        assert eids == sorted(set(eids))

    def test_eids_never_reused_after_crash(self):
        disk = MemDisk()
        repo = QueueRepository("r", disk)
        allocated = [repo.alloc_eid() for _ in range(10)]
        disk.crash()
        disk.recover()
        repo2 = QueueRepository("r", disk)
        fresh = repo2.alloc_eid()
        assert fresh > max(allocated)

    def test_eid_unique_across_queues(self):
        repo = QueueRepository("r", MemDisk())
        q1 = repo.create_queue("q1")
        q2 = repo.create_queue("q2")
        eids = set()
        for q in (q1, q2):
            for _ in range(5):
                with repo.tm.transaction() as txn:
                    eids.add(q.enqueue(txn, "x"))
        assert len(eids) == 10


class TestCheckpoint:
    def test_checkpoint_and_recover(self):
        disk = MemDisk()
        repo = QueueRepository("r", disk)
        q = repo.create_queue("q")
        table = repo.create_table("t")
        with repo.tm.transaction() as txn:
            q.enqueue(txn, "kept")
            table.put(txn, "k", "v")
        repo.checkpoint()
        # post-checkpoint activity
        with repo.tm.transaction() as txn:
            q.enqueue(txn, "after-ckpt")
        disk.crash()
        disk.recover()
        repo2 = QueueRepository("r", disk)
        assert repo2.last_recovery.checkpoint_loaded
        assert repo2.get_queue("q").depth() == 2
        assert repo2.get_table("t").peek("k") == "v"

    def test_checkpoint_shrinks_log(self):
        disk = MemDisk()
        repo = QueueRepository("r", disk)
        q = repo.create_queue("q")
        for i in range(20):
            with repo.tm.transaction() as txn:
                q.enqueue(txn, i)
        before = len(repo.log.records())
        repo.checkpoint()
        assert len(repo.log.records()) == 0
        assert before > 0

    def test_registration_survives_checkpoint(self):
        disk = MemDisk()
        repo = QueueRepository("r", disk)
        repo.create_queue("q")
        from repro.queueing.manager import QueueManager

        qm = QueueManager(repo)
        h, _, _ = qm.register("q", "alice")
        qm.enqueue(h, "x", tag="t9")
        repo.checkpoint()
        disk.crash()
        disk.recover()
        qm2 = QueueManager(QueueRepository("r", disk))
        _, tag, _ = qm2.register("q", "alice")
        assert tag == "t9"

    def test_double_crash_recovery(self):
        disk = MemDisk()
        repo = QueueRepository("r", disk)
        q = repo.create_queue("q")
        with repo.tm.transaction() as txn:
            q.enqueue(txn, "x")
        disk.crash()
        disk.recover()
        repo2 = QueueRepository("r", disk)
        with repo2.tm.transaction() as txn:
            repo2.get_queue("q").enqueue(txn, "y")
        disk.crash()
        disk.recover()
        repo3 = QueueRepository("r", disk)
        assert repo3.get_queue("q").depth() == 2


class TestPoisonSweep:
    def test_crash_attempt_counting_bounds_crashing_requests(self):
        disk = MemDisk()
        repo = QueueRepository("r", disk)
        repo.create_queue("err")
        q = repo.create_queue(
            "q", error_queue="err", max_aborts=2, count_crash_attempts=True
        )
        with repo.tm.transaction() as txn:
            q.enqueue(txn, "always-crashes")
        # Two attempts that "crash" (dequeue, then node dies mid-txn).
        for _ in range(2):
            txn = repo.tm.begin()
            q.dequeue(txn)
            disk.crash()
            disk.recover()
            repo = QueueRepository("r", disk)
            q = repo.get_queue("q")
        # Recovery swept the poisoned element to the error queue.
        assert repo.get_queue("err").depth() == 1
        assert q.depth() == 0


class TestDurableStopStart:
    def test_stop_survives_crash(self):
        from repro.errors import QueueStoppedError
        import pytest as _pytest

        disk = MemDisk()
        repo = QueueRepository("r", disk)
        repo.create_queue("q")
        repo.stop_queue("q")
        disk.crash()
        disk.recover()
        repo2 = QueueRepository("r", disk)
        queue = repo2.get_queue("q")
        txn = repo2.tm.begin()
        with _pytest.raises(QueueStoppedError):
            queue.enqueue(txn, "x")
        repo2.tm.abort(txn)

    def test_start_survives_crash(self):
        disk = MemDisk()
        repo = QueueRepository("r", disk)
        repo.create_queue("q")
        repo.stop_queue("q")
        repo.start_queue("q")
        disk.crash()
        disk.recover()
        repo2 = QueueRepository("r", disk)
        with repo2.tm.transaction() as txn:
            repo2.get_queue("q").enqueue(txn, "works")
        assert repo2.get_queue("q").depth() == 1

    def test_stop_survives_checkpoint(self):
        from repro.errors import QueueStoppedError
        import pytest as _pytest

        disk = MemDisk()
        repo = QueueRepository("r", disk)
        repo.create_queue("q")
        repo.stop_queue("q")
        repo.checkpoint()
        disk.crash()
        disk.recover()
        repo2 = QueueRepository("r", disk)
        txn = repo2.tm.begin()
        with _pytest.raises(QueueStoppedError):
            repo2.get_queue("q").enqueue(txn, "x")
        repo2.tm.abort(txn)
