"""The O(1) depth()/pending() counters must track the slot map exactly
through every lifecycle path, and blocking dequeues must wake on
notify, not by polling."""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import QueueEmpty, QueueStoppedError
from repro.queueing.element import ElementState
from repro.queueing.queue import RecoverableQueue
from repro.queueing.repository import QueueRepository
from repro.storage.disk import MemDisk


@pytest.fixture
def repo() -> QueueRepository:
    return QueueRepository("test", MemDisk())


def assert_counts_consistent(queue: RecoverableQueue) -> None:
    """The maintained counters must equal a fresh scan."""
    with queue._mutex:
        available = sum(
            1 for s in queue._slots.values() if s.state is ElementState.AVAILABLE
        )
        pending = len(queue._slots) - available
    assert queue.depth() == available
    assert queue.pending() == pending


class TestCounters:
    def test_enqueue_commit_abort(self, repo):
        q = repo.create_queue("q")
        txn = repo.tm.begin()
        q.enqueue(txn, "a")
        assert (q.depth(), q.pending()) == (0, 1)
        assert_counts_consistent(q)
        txn.commit()
        assert (q.depth(), q.pending()) == (1, 0)
        assert_counts_consistent(q)
        txn2 = repo.tm.begin()
        q.enqueue(txn2, "b")
        txn2.abort()
        assert (q.depth(), q.pending()) == (1, 0)
        assert_counts_consistent(q)

    def test_dequeue_commit_and_abort(self, repo):
        q = repo.create_queue("q")
        with repo.tm.transaction() as txn:
            q.enqueue(txn, "a")
            q.enqueue(txn, "b")
        txn = repo.tm.begin()
        q.dequeue(txn)
        assert (q.depth(), q.pending()) == (1, 1)
        assert_counts_consistent(q)
        txn.abort()
        assert (q.depth(), q.pending()) == (2, 0)
        assert_counts_consistent(q)
        with repo.tm.transaction() as txn:
            q.dequeue(txn)
        assert (q.depth(), q.pending()) == (1, 0)
        assert_counts_consistent(q)

    def test_kill_element(self, repo):
        q = repo.create_queue("q")
        with repo.tm.transaction() as txn:
            eid = q.enqueue(txn, "victim")
        assert q.kill_element(eid)
        assert (q.depth(), q.pending()) == (0, 0)
        assert_counts_consistent(q)

    def test_error_queue_move(self, repo):
        q = repo.create_queue("q", max_aborts=1, error_queue="err")
        err = repo.create_queue("err")
        with repo.tm.transaction() as txn:
            q.enqueue(txn, "poison")
        txn = repo.tm.begin()
        q.dequeue(txn)
        txn.abort()  # 1st abort >= max_aborts -> moved to error queue
        assert (q.depth(), q.pending()) == (0, 0)
        assert (err.depth(), err.pending()) == (1, 0)
        assert_counts_consistent(q)
        assert_counts_consistent(err)

    def test_survive_crash_recovery(self, repo):
        q = repo.create_queue("q")
        with repo.tm.transaction() as txn:
            q.enqueue(txn, "durable-1")
            q.enqueue(txn, "durable-2")
        orphan = repo.tm.begin()
        q.enqueue(orphan, "uncommitted")
        disk = repo.disk
        disk.crash()
        disk.recover()
        repo2 = QueueRepository("test", disk)
        q2 = repo2.get_queue("q")
        assert (q2.depth(), q2.pending()) == (2, 0)
        assert_counts_consistent(q2)

    def test_survive_checkpoint_restore(self, repo):
        q = repo.create_queue("q")
        with repo.tm.transaction() as txn:
            q.enqueue(txn, "x")
        repo.checkpoint()
        disk = repo.disk
        disk.crash()
        disk.recover()
        repo2 = QueueRepository("test", disk)
        q2 = repo2.get_queue("q")
        assert (q2.depth(), q2.pending()) == (1, 0)
        assert_counts_consistent(q2)

    def test_mixed_workload_stays_consistent(self, repo):
        q = repo.create_queue("q", max_aborts=2, error_queue="err")
        repo.create_queue("err")
        for i in range(10):
            with repo.tm.transaction() as txn:
                q.enqueue(txn, f"e{i}", priority=i % 3)
            assert_counts_consistent(q)
        for _ in range(4):
            txn = repo.tm.begin()
            q.dequeue(txn)
            assert_counts_consistent(q)
            txn.abort()
            assert_counts_consistent(q)
        for _ in range(3):
            with repo.tm.transaction() as txn:
                q.dequeue(txn)
            assert_counts_consistent(q)


class TestBlockingDequeue:
    def test_waiter_wakes_promptly_on_commit(self, repo):
        q = repo.create_queue("q")
        got: list = []
        latency: list[float] = []
        started = threading.Event()

        def waiter() -> None:
            txn = repo.tm.begin()
            started.set()
            t0 = time.monotonic()
            element = q.dequeue(txn, block=True, timeout=10.0)
            latency.append(time.monotonic() - t0)
            got.append(element.body)
            txn.commit()

        thread = threading.Thread(target=waiter)
        thread.start()
        started.wait(5)
        time.sleep(0.05)  # let the waiter actually park
        with repo.tm.transaction() as txn:
            q.enqueue(txn, "wake-up")
        thread.join(timeout=10)
        assert got == ["wake-up"]
        # Condition-notify wake: the waiter must not be sitting out a
        # poll interval on top of the enqueue (50ms poll would show up
        # as ~100ms+ here; notify wakes in well under a second even on
        # a loaded CI box).
        assert latency[0] < 1.0

    def test_stop_wakes_blocked_waiter(self, repo):
        q = repo.create_queue("q")
        outcome: list = []
        started = threading.Event()

        def waiter() -> None:
            txn = repo.tm.begin()
            started.set()
            try:
                q.dequeue(txn, block=True, timeout=30.0)
            except QueueStoppedError:
                outcome.append("stopped")
            finally:
                txn.abort()

        thread = threading.Thread(target=waiter)
        thread.start()
        started.wait(5)
        time.sleep(0.05)
        t0 = time.monotonic()
        q.stop()
        thread.join(timeout=10)
        assert outcome == ["stopped"]
        assert time.monotonic() - t0 < 5.0

    def test_timeout_still_raises_queue_empty(self, repo):
        q = repo.create_queue("q")
        txn = repo.tm.begin()
        t0 = time.monotonic()
        with pytest.raises(QueueEmpty):
            q.dequeue(txn, block=True, timeout=0.1)
        elapsed = time.monotonic() - t0
        assert 0.05 <= elapsed < 5.0
        txn.abort()
