"""Edge-case coverage for the recoverable queue and eid allocator."""

from __future__ import annotations

import pytest

from repro.errors import QueueEmpty
from repro.queueing.repository import QueueRepository
from repro.storage.disk import MemDisk


class TestSweepEdges:
    def test_sweep_without_error_queue_is_noop(self):
        repo = QueueRepository("r", MemDisk())
        q = repo.create_queue("q", max_aborts=1)
        with repo.tm.transaction() as txn:
            q.enqueue(txn, "x")
        txn = repo.tm.begin()
        q.dequeue(txn)
        repo.tm.abort(txn)
        assert q.sweep_poisoned() == 0
        assert q.depth() == 1  # still here: nowhere to move it

    def test_sweep_ignores_healthy_elements(self):
        repo = QueueRepository("r", MemDisk())
        repo.create_queue("err")
        q = repo.create_queue("q", error_queue="err", max_aborts=5)
        with repo.tm.transaction() as txn:
            q.enqueue(txn, "fine")
        assert q.sweep_poisoned() == 0


class TestEidBatchBoundary:
    def test_allocation_crosses_reservation_batches(self):
        disk = MemDisk()
        repo = QueueRepository("r", disk)
        # The allocator reserves in batches of 64; cross two boundaries.
        eids = [repo.alloc_eid() for _ in range(130)]
        assert eids == list(range(1, 131))
        # A crash right after the last allocation skips at most one batch.
        disk.crash()
        disk.recover()
        repo2 = QueueRepository("r", disk)
        fresh = repo2.alloc_eid()
        assert 130 < fresh <= 130 + 2 * 64


class TestDequeueMiscellany:
    def test_same_txn_enqueue_invisible_to_own_dequeue(self):
        # Documented behaviour: uncommitted enqueues are invisible even
        # to the enqueuing transaction.
        repo = QueueRepository("r", MemDisk())
        q = repo.create_queue("q")
        txn = repo.tm.begin()
        q.enqueue(txn, "own")
        with pytest.raises(QueueEmpty):
            q.dequeue(txn)
        repo.tm.abort(txn)

    def test_counters_track_operations(self):
        repo = QueueRepository("r", MemDisk())
        q = repo.create_queue("q")
        with repo.tm.transaction() as txn:
            q.enqueue(txn, 1)
        with repo.tm.transaction() as txn:
            q.dequeue(txn)
        txn = repo.tm.begin()
        with pytest.raises(QueueEmpty):
            q.dequeue(txn)
        repo.tm.abort(txn)
        assert q.enqueues == 1
        assert q.dequeues == 1

    def test_max_eid_covers_archive(self):
        repo = QueueRepository("r", MemDisk())
        q = repo.create_queue("q")
        with repo.tm.transaction() as txn:
            eid = q.enqueue(txn, "soon gone")
        with repo.tm.transaction() as txn:
            q.dequeue(txn)
        assert q.max_eid() == eid  # removed but archived
