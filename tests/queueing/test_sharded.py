"""ShardedRepository: placement, routing, 2PC promotion, recovery."""

from __future__ import annotations

import pytest

from repro.errors import QueueEmpty, TransactionAborted
from repro.obs import Observability
from repro.queueing.manager import QueueManager
from repro.queueing.placement import ConsistentHashPlacement, PinnedPlacement
from repro.queueing.queue import RecoverableQueue
from repro.queueing.repository import QueueRepository
from repro.queueing.sharded import ShardedRepository
from repro.sim.crash import CrashPlan, FaultInjector
from repro.storage.disk import MemDisk
from repro.transaction.log import KIND_AUTO
from repro.transaction.manager import TransactionManager


def decision_records(repo: ShardedRepository) -> list[dict]:
    """All 2PC decision records across every shard's log."""
    found = []
    for log in repo.logs:
        for record in log.records():
            if record.kind == KIND_AUTO and record.rm == "_2pc":
                found.append(record.data)
    return found


class TestConsistentHashPlacement:
    def test_deterministic_and_in_range(self):
        policy = ConsistentHashPlacement()
        for name in ("req.q", "reply.c1", "tbl", ""):
            shard = policy.shard_for(name, 4)
            assert 0 <= shard < 4
            assert shard == ConsistentHashPlacement().shard_for(name, 4)

    def test_single_shard_is_zero(self):
        policy = ConsistentHashPlacement()
        assert all(policy.shard_for(f"q{i}", 1) == 0 for i in range(20))

    def test_covers_every_shard(self):
        policy = ConsistentHashPlacement()
        hit = {policy.shard_for(f"queue-{i}", 4) for i in range(200)}
        assert hit == {0, 1, 2, 3}

    def test_growth_moves_a_minority_of_names(self):
        # The point of the ring: adding a shard re-homes ~1/N of the
        # names, not all of them.
        policy = ConsistentHashPlacement()
        names = [f"queue-{i}" for i in range(400)]
        moved = sum(
            1 for n in names if policy.shard_for(n, 4) != policy.shard_for(n, 5)
        )
        assert 0 < moved < len(names) // 2


class TestPinnedPlacement:
    def test_pin_overrides_fallback(self):
        policy = PinnedPlacement({"req.q": 3})
        assert policy.shard_for("req.q", 4) == 3
        assert 0 <= policy.shard_for("other", 4) < 4

    def test_out_of_range_pin_rejected(self):
        with pytest.raises(ValueError):
            PinnedPlacement({"req.q": 7}).shard_for("req.q", 4)

    def test_pin_after_construction(self):
        policy = PinnedPlacement().pin("a", 1)
        assert policy.shard_for("a", 2) == 1


class TestSingleShardPassthrough:
    """N=1 must be behaviour-compatible with a bare QueueRepository."""

    def test_components_are_the_shard_objects(self):
        repo = ShardedRepository("node", [MemDisk()])
        shard = repo.shards[0]
        assert isinstance(repo.tm, TransactionManager)
        assert repo.tm is shard.tm
        assert repo.log is shard.log
        assert repo.locks is shard.locks
        assert repo.registration is shard.registration
        assert repo.queues is shard.queues
        assert shard.name == "node"

    def test_get_queue_returns_real_queue(self):
        repo = ShardedRepository("node", [MemDisk()])
        repo.create_queue("q")
        assert isinstance(repo.get_queue("q"), RecoverableQueue)

    def test_log_layout_matches_unsharded(self):
        # Byte-identical logs: an unsharded repository and a 1-shard
        # facade over the same operations produce the same WAL.
        d1, d2 = MemDisk(), MemDisk()
        plain = QueueRepository("node", d1)
        facade = ShardedRepository("node", [d2])
        for repo in (plain, facade):
            repo.create_queue("q")
            qm = QueueManager(repo)
            handle, _, _ = qm.register("q", "c", stable=True)
            qm.enqueue(handle, {"n": 1}, tag="t1")
        live = "node.log.000001"
        assert d1.read(live) == d2.read(live)
        assert d1.read(live) != b""  # the compare is not vacuous


@pytest.fixture
def sharded():
    """A 2-shard repository with queues pinned to known shards."""
    placement = PinnedPlacement({"qa": 0, "qb": 1, "qa.err": 0})
    repo = ShardedRepository(
        "node", [MemDisk(), MemDisk()], placement=placement,
        obs=Observability(),
    )
    repo.create_queue("qa", error_queue="qa.err", max_aborts=1)
    repo.create_queue("qa.err")
    repo.create_queue("qb")
    return repo


class TestRouting:
    def test_queues_land_on_their_pinned_shards(self, sharded):
        assert sharded._locate_queue("qa") == 0
        assert sharded._locate_queue("qb") == 1
        assert sorted(sharded.queues) == ["qa", "qa.err", "qb"]
        assert len(sharded.queues) == 3
        assert "qa" in sharded.queues and "nope" not in sharded.queues

    def test_single_shard_txn_stays_one_branch(self, sharded):
        qm = QueueManager(sharded)
        handle, _, _ = qm.register("qa", "c", stable=True)
        before = sharded.tm.single_shard_commits
        with sharded.tm.transaction() as txn:
            qm.enqueue(handle, {"n": 1}, txn=txn)
            assert sorted(txn.branches) == [0]
        assert sharded.tm.single_shard_commits == before + 1
        assert sharded.tm.cross_shard_commits == 0
        assert decision_records(sharded) == []

    def test_cross_shard_txn_promoted_to_2pc(self, sharded):
        qm = QueueManager(sharded)
        ha, _, _ = qm.register("qa", "c", stable=True)
        hb, _, _ = qm.register("qb", "c", stable=True)
        with sharded.tm.transaction() as txn:
            qm.enqueue(ha, {"to": "a"}, txn=txn)
            qm.enqueue(hb, {"to": "b"}, txn=txn)
            assert sorted(txn.branches) == [0, 1]
        assert sharded.tm.cross_shard_commits == 1
        decisions = decision_records(sharded)
        assert len(decisions) == 1 and decisions[0]["decision"] == "commit"
        assert sharded.get_queue("qa").depth() == 1
        assert sharded.get_queue("qb").depth() == 1

    def test_cross_shard_abort_is_atomic(self, sharded):
        qm = QueueManager(sharded)
        ha, _, _ = qm.register("qa", "c", stable=True)
        hb, _, _ = qm.register("qb", "c", stable=True)
        with pytest.raises(RuntimeError):
            with sharded.tm.transaction() as txn:
                qm.enqueue(ha, {"to": "a"}, txn=txn)
                qm.enqueue(hb, {"to": "b"}, txn=txn)
                raise RuntimeError("boom")
        assert sharded.get_queue("qa").depth() == 0
        assert sharded.get_queue("qb").depth() == 0

    def test_registration_rides_the_queue_shard(self, sharded):
        qm = QueueManager(sharded)
        handle, tag, eid = qm.register("qb", "c", stable=True)
        assert (tag, eid) == (None, None)
        first = qm.enqueue(handle, {"n": 1}, tag="t1")
        # Duplicate tagged enqueue (lost-ack retry) is absorbed.
        assert qm.enqueue(handle, {"n": 1}, tag="t1") == first
        assert sharded.get_queue("qb").depth() == 1
        # The registration lives on qb's shard, not shard 0.
        assert sharded.shards[1].registration.is_registered("qb", "c")
        assert not sharded.shards[0].registration.is_registered("qb", "c")

    def test_tables_route_by_name(self, sharded):
        table = sharded.create_table("counters")
        with sharded.tm.transaction() as txn:
            table.put(txn, "k", 41)
            table.update(txn, "k", lambda v: (v or 0) + 1)
        with sharded.tm.transaction() as txn:
            assert table.get(txn, "k") == 42
        assert "counters" in sharded.tables

    def test_kill_element_routes_to_owner(self, sharded):
        qm = QueueManager(sharded)
        handle, _, _ = qm.register("qb", "c", stable=True)
        eid = qm.enqueue(handle, {"n": 1})
        assert qm.kill_element(handle, eid)
        assert sharded.get_queue("qb").depth() == 0


class TestErrorQueueColocation:
    def test_error_queue_created_after_source(self, sharded):
        # "qa.err" was pinned to qa's shard at create_queue("qa") time.
        assert sharded._locate_queue("qa.err") == sharded._locate_queue("qa")

    def test_queue_follows_existing_error_queue(self):
        placement = PinnedPlacement({"shared.err": 1, "consumer": 0})
        repo = ShardedRepository(
            "node", [MemDisk(), MemDisk()], placement=placement
        )
        repo.create_queue("shared.err")
        # Despite the policy placing "consumer" on shard 0, its error
        # queue already lives on shard 1 — co-location wins.
        repo.create_queue("consumer", error_queue="shared.err")
        assert repo._locate_queue("consumer") == 1

    def test_poisoned_element_moves_within_one_shard(self, sharded):
        qm = QueueManager(sharded)
        handle, _, _ = qm.register("qa", "c", stable=True)
        qm.enqueue(handle, {"poison": True})
        with pytest.raises(RuntimeError):
            with sharded.tm.transaction() as txn:
                qm.dequeue(handle, txn=txn)
                raise RuntimeError("handler blew up")
        # max_aborts=1: the element moved to the co-located error queue.
        assert sharded.get_queue("qa").depth() == 0
        assert sharded.get_queue("qa.err").depth() == 1
        with pytest.raises(QueueEmpty):
            with sharded.tm.transaction() as txn:
                qm.dequeue(handle, txn=txn)


class TestShardedRecovery:
    def _populate(self, disks, placement):
        repo = ShardedRepository("node", disks, placement=placement)
        repo.create_queue("qa")
        repo.create_queue("qb")
        qm = QueueManager(repo)
        ha, _, _ = qm.register("qa", "c", stable=True)
        hb, _, _ = qm.register("qb", "c", stable=True)
        qm.enqueue(ha, {"n": "a"})
        with repo.tm.transaction() as txn:
            qm.enqueue(ha, {"n": "a2"}, txn=txn)
            qm.enqueue(hb, {"n": "b"}, txn=txn)
        return repo

    def test_restart_recovers_every_shard(self):
        disks = [MemDisk(), MemDisk()]
        placement = PinnedPlacement({"qa": 0, "qb": 1})
        self._populate(disks, placement)
        again = ShardedRepository("node", disks, placement=placement)
        assert again.get_queue("qa").depth() == 2
        assert again.get_queue("qb").depth() == 1
        assert len(again.recoveries) == 2
        # Routing still finds the queues where their logs rebuilt them.
        assert again._locate_queue("qa") == 0
        assert again._locate_queue("qb") == 1

    def _crash_cross_shard_commit(self, crash_point):
        disks = [MemDisk(), MemDisk()]
        placement = PinnedPlacement({"qa": 0, "qb": 1})
        injector = FaultInjector(plans=[CrashPlan(crash_point, 1)], record=False)
        repo = ShardedRepository(
            "node", disks, injector=injector, placement=placement
        )
        repo.create_queue("qa")
        repo.create_queue("qb")
        qm = QueueManager(repo)
        ha, _, _ = qm.register("qa", "c", stable=True)
        hb, _, _ = qm.register("qb", "c", stable=True)
        from repro.errors import SimulatedCrash

        with pytest.raises(SimulatedCrash):
            with repo.tm.transaction() as txn:
                qm.enqueue(ha, {"n": "a"}, txn=txn)
                qm.enqueue(hb, {"n": "b"}, txn=txn)
        for disk in disks:
            disk.recover()
        return ShardedRepository("node", disks, placement=placement)

    def test_crash_before_decision_presumes_abort(self):
        repo = self._crash_cross_shard_commit("2pc.after_prepare")
        assert repo.get_queue("qa").depth() == 0
        assert repo.get_queue("qb").depth() == 0
        resolved = [
            b.resolved for r in repo.recoveries for b in r.in_doubt
        ]
        assert resolved and all(r == "abort" for r in resolved)

    def test_crash_after_decision_commits_both(self):
        repo = self._crash_cross_shard_commit("2pc.after_decision")
        assert repo.get_queue("qa").depth() == 1
        assert repo.get_queue("qb").depth() == 1
        resolved = [
            b.resolved for r in repo.recoveries for b in r.in_doubt
        ]
        assert resolved and all(r == "commit" for r in resolved)

    def test_coordinator_epochs_advance_across_restarts(self):
        disks = [MemDisk(), MemDisk()]
        first = ShardedRepository("node", disks)
        assert all(c.name.endswith(".e1") for c in first.coordinators)
        second = ShardedRepository("node", disks)
        assert all(c.name.endswith(".e2") for c in second.coordinators)
        # Fresh epochs mean fresh global ids: no collision with any
        # decision record logged before the restart.
        gids = {c.new_global_id() for c in first.coordinators}
        gids |= {c.new_global_id() for c in second.coordinators}
        assert len(gids) == 4


class TestRoutedTransactionSurface:
    def test_direct_log_and_lock_are_rejected(self, sharded):
        from repro.errors import InvalidTransactionState

        with sharded.tm.transaction() as txn:
            with pytest.raises(InvalidTransactionState):
                txn.log_update("rm", {})
            with pytest.raises(InvalidTransactionState):
                txn.lock("r", None)
            with pytest.raises(InvalidTransactionState):
                txn.add_undo(lambda: None)

    def test_hooks_fire_on_global_outcome(self, sharded):
        qm = QueueManager(sharded)
        ha, _, _ = qm.register("qa", "c", stable=True)
        hb, _, _ = qm.register("qb", "c", stable=True)
        fired: list[str] = []
        with sharded.tm.transaction() as txn:
            qm.enqueue(ha, {"n": 1}, txn=txn)
            qm.enqueue(hb, {"n": 2}, txn=txn)
            txn.on_commit(lambda: fired.append("commit"))
            txn.on_abort(lambda: fired.append("abort"))
        assert fired == ["commit"]

    def test_externally_aborted_branch_aborts_the_routed_txn(self, sharded):
        qm = QueueManager(sharded)
        ha, _, _ = qm.register("qa", "c", stable=True)
        with pytest.raises(TransactionAborted):
            with sharded.tm.transaction() as txn:
                qm.enqueue(ha, {"n": 1}, txn=txn)
                branch = txn.branches[0]
                sharded.tm.shard_tm(0).abort(branch, "killed externally")
                qm.enqueue(ha, {"n": 2}, txn=txn)
        assert sharded.get_queue("qa").depth() == 0

    def test_empty_transaction_commits_without_touching_any_log(self, sharded):
        before = [log.wal.flushed_lsn for log in sharded.logs]
        with sharded.tm.transaction():
            pass
        assert [log.wal.flushed_lsn for log in sharded.logs] == before
        assert sharded.tm.empty_commits == 1
