"""Replicated queue tests (Section 10's one-copy queue)."""

from __future__ import annotations

import pytest

from repro.errors import SimulatedCrash
from repro.queueing.replicated import ReplicatedQueue
from repro.queueing.repository import QueueRepository
from repro.sim.crash import FaultInjector
from repro.storage.disk import MemDisk
from repro.transaction.twophase import TwoPhaseCoordinator


def make_pair(injector=None):
    disk_a, disk_b = MemDisk(), MemDisk()
    repo_a = QueueRepository("ra", disk_a, injector)
    repo_b = QueueRepository("rb", disk_b, injector)
    coordinator = TwoPhaseCoordinator(repo_a.log, name="qrep", injector=injector)
    rq = ReplicatedQueue("q", repo_a, repo_b, coordinator)
    return disk_a, disk_b, repo_a, repo_b, coordinator, rq


class TestReplication:
    def test_enqueue_lands_on_both(self):
        *_rest, rq = make_pair()
        rq.enqueue({"pay": 1})
        assert rq.replica_depths() == (1, 1)
        assert rq.consistent()

    def test_dequeue_removes_from_both(self):
        *_rest, rq = make_pair()
        rq.enqueue("a")
        rq.enqueue("b")
        element = rq.dequeue()
        assert element.body == "a"
        assert rq.replica_depths() == (1, 1)
        assert rq.consistent()

    def test_selector_dequeue_stays_consistent(self):
        *_rest, rq = make_pair()
        rq.enqueue({"k": "x"})
        rq.enqueue({"k": "y"})
        element = rq.dequeue(selector=lambda e: e.body["k"] == "y")
        assert element.body == {"k": "y"}
        assert rq.consistent()

    def test_failed_write_leaves_both_untouched(self):
        *_rest, repo_b, _coord, rq = make_pair()
        rq.enqueue("keep")
        # Force the secondary's branch to fail by stopping its queue.
        repo_b.get_queue("q").stop()
        with pytest.raises(Exception):
            rq.enqueue("never")
        repo_b.get_queue("q").start()
        assert rq.replica_depths() == (1, 1)
        assert rq.consistent()


class TestCrashConvergence:
    def test_in_doubt_branches_resolve_via_coordinator(self):
        disk_a, disk_b, repo_a, repo_b, coordinator, rq = make_pair()
        rq.enqueue("committed-everywhere")
        # Crash both nodes between the coordinator's decision and the
        # secondary's branch commit.
        injector = FaultInjector()
        injector.arm("2pc.after_branch_commit")  # after primary commits
        coordinator.injector = injector
        with pytest.raises(SimulatedCrash):
            rq.enqueue("in-doubt")
        # Node B restarts: its branch is in doubt; resolve via the
        # coordinator's durable decision.
        disk_b.crash()
        disk_b.recover()
        repo_b2 = QueueRepository("rb", disk_b)
        report = repo_b2.last_recovery
        assert len(report.in_doubt) == 1
        branch = report.in_doubt[0]
        branch._rms = repo_b2.rms  # resolved against the fresh node
        branch.resolve(coordinator.decision(branch.global_id))
        rq2 = ReplicatedQueue("q", repo_a, repo_b2, coordinator)
        assert rq2.consistent()
        assert repo_b2.get_queue("q").depth() == 2


class TestFailover:
    def test_failover_and_resync(self):
        disk_a, disk_b, repo_a, repo_b, coordinator, rq = make_pair()
        rq.enqueue("r1")
        rq.enqueue("r2")
        # The primary node dies.
        disk_a.crash()
        rq.failover()
        assert rq.degraded
        # Degraded writes hit the survivor only.
        rq.enqueue("r3")
        assert rq.dequeue().body == "r1"
        # The old primary comes back; resync copies the delta.
        disk_a.recover()
        repo_a2 = QueueRepository("ra", disk_a)
        copied = rq.resync(repo_a2)
        assert copied == 1  # "r3" was missing on the recovered node
        assert not rq.degraded
        assert rq.consistent()
        # Replication is live again.
        rq.enqueue("r4")
        assert rq.consistent()
