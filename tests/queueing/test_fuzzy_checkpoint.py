"""Online (fuzzy) checkpoints: no quiescence, bounded-time recovery.

These tests pin the three hard guarantees of the segmented-WAL +
fuzzy-checkpoint design:

* a checkpoint taken *while transactions are in flight* never loses a
  committed effect and never persists an uncommitted one (committed-view
  snapshots + the floor-before-snapshot ordering);
* a crash anywhere inside the checkpoint protocol — including between
  snapshot install and segment GC — recovers to exactly the state a
  checkpoint-free log replay would produce;
* an unreadable checkpoint blob falls back to full-log replay while the
  full log still exists, and only becomes fatal once GC has reclaimed
  segments the fallback would need.
"""

from __future__ import annotations

import pytest

from repro.errors import CheckpointError, SimulatedCrash
from repro.queueing.repository import CheckpointStats, QueueRepository
from repro.queueing.sharded import ShardedRepository
from repro.sim.crash import FaultInjector
from repro.storage.disk import MemDisk


def _reopen(disk: MemDisk, name: str = "r") -> QueueRepository:
    disk.crash()
    disk.recover()
    return QueueRepository(name, disk)


class TestFuzzyCheckpoint:
    def test_checkpoint_with_active_txn_that_later_commits(self):
        # The txn is active at checkpoint time, so its uncommitted write
        # must not be in the snapshot.  With per-transaction batching
        # the in-flight update is still parked in the txn's buffer, so
        # its batch lands *above* the checkpoint-begin marker and the
        # recovery LSN need not dip below it; replay from the floor
        # still re-applies the update once the txn commits.
        disk = MemDisk()
        repo = QueueRepository("r", disk)
        q = repo.create_queue("q")
        with repo.tm.transaction() as txn:
            q.enqueue(txn, "committed-before")
        open_txn = repo.tm.begin()
        q.enqueue(open_txn, "in-flight")

        stats = repo.checkpoint()
        assert isinstance(stats, CheckpointStats)
        assert stats.active_txns == 1
        assert stats.recovery_lsn <= stats.begin_lsn

        repo.tm.commit(open_txn)
        repo2 = _reopen(disk)
        assert repo2.last_recovery.checkpoint_loaded
        assert repo2.last_recovery.recovery_lsn == stats.recovery_lsn
        got = []
        with repo2.tm.transaction() as txn:
            q2 = repo2.get_queue("q")
            while q2.depth() > 0:
                got.append(q2.dequeue(txn).body)
        assert got == ["committed-before", "in-flight"]

    def test_checkpoint_with_active_txn_that_later_aborts(self):
        disk = MemDisk()
        repo = QueueRepository("r", disk)
        q = repo.create_queue("q")
        open_txn = repo.tm.begin()
        q.enqueue(open_txn, "never-lands")
        repo.checkpoint()
        repo.tm.abort(open_txn)
        repo2 = _reopen(disk)
        assert repo2.get_queue("q").depth() == 0

    def test_snapshot_is_committed_view_of_table(self):
        # An uncommitted overwrite must not leak into the snapshot: the
        # checkpoint image holds the committed pre-image and replay of
        # the update record (the txn commits later) produces the final
        # value.  Without the committed-view revert, a crash *after* the
        # checkpoint but *before* the commit would surface "dirty".
        disk = MemDisk()
        repo = QueueRepository("r", disk)
        table = repo.create_table("t")
        with repo.tm.transaction() as txn:
            table.put(txn, "k", "clean")
        open_txn = repo.tm.begin()
        table.put(open_txn, "k", "dirty")
        repo.checkpoint()
        repo.tm.abort(open_txn)
        repo2 = _reopen(disk)
        assert repo2.get_table("t").peek("k") == "clean"

    def test_no_quiescence_commits_proceed_during_checkpoint_window(self):
        # Back-to-back checkpoints interleaved with commits: every
        # committed payload survives every restart.  (The stronger
        # interleaving — a commit racing the protocol's internal steps —
        # is covered by the ckpt.* crash-equivalence property test.)
        disk = MemDisk()
        repo = QueueRepository("r", disk)
        q = repo.create_queue("q")
        for i in range(10):
            with repo.tm.transaction() as txn:
                q.enqueue(txn, f"item-{i}")
            if i % 3 == 0:
                repo.checkpoint()
        repo2 = _reopen(disk)
        assert repo2.get_queue("q").depth() == 10


    def test_eids_are_never_reused_across_checkpoint_restart(self):
        # Regression: the eid allocator's snapshot holds a fuzzy
        # mid-batch ``next``, but allocations inside the reserved batch
        # are volatile (no log record).  Restoring ``next`` verbatim
        # made a restarted node reissue the eid of an element enqueued
        # *after* the checkpoint — and the same-eid enqueue clobbered
        # that committed element.  Restore must resume at the batch
        # limit (skip at most one batch), like reserve-record replay.
        disk = MemDisk()
        repo = QueueRepository("r", disk)
        q = repo.create_queue("q")
        with repo.tm.transaction() as txn:
            q.enqueue(txn, "pre-checkpoint")
        repo.checkpoint()
        with repo.tm.transaction() as txn:
            q.enqueue(txn, "post-checkpoint")
        repo2 = _reopen(disk)
        q2 = repo2.get_queue("q")
        with repo2.tm.transaction() as txn:
            q2.enqueue(txn, "post-restart")
        assert q2.depth() == 3
        got = []
        with repo2.tm.transaction() as txn:
            while q2.depth() > 0:
                got.append(q2.dequeue(txn).body)
        assert got == ["pre-checkpoint", "post-checkpoint", "post-restart"]


class TestCheckpointCrashWindows:
    def _workload(self, repo: QueueRepository) -> None:
        q = repo.create_queue("q")
        for i in range(30):
            with repo.tm.transaction() as txn:
                q.enqueue(txn, f"payload-{i:03d}-" + "x" * 200)

    def test_crash_between_install_and_gc(self):
        # The checkpoint is installed but its segments were never
        # reclaimed: recovery must use the new checkpoint (short replay)
        # and the *next* checkpoint must complete the deferred GC.
        disk = MemDisk()
        injector = FaultInjector()
        repo = QueueRepository(
            "r", disk, injector=injector, checkpoint_interval_bytes=4096
        )
        self._workload(repo)
        sealed = repo.log.wal.segment_count() - 1
        assert sealed >= 1, "workload must span multiple segments"
        injector.arm("ckpt.gc.before")
        with pytest.raises(SimulatedCrash):
            repo.checkpoint()

        disk.recover()
        repo2 = QueueRepository("r", disk, checkpoint_interval_bytes=4096)
        repo2.close()
        assert repo2.last_recovery.checkpoint_loaded
        assert repo2.last_recovery.recovery_lsn > 0
        assert repo2.get_queue("q").depth() == 30
        # Deferred GC: the next checkpoint reclaims the old segments.
        assert repo2.log.wal.oldest_lsn() == 0
        stats = repo2.checkpoint()
        assert stats.segments_removed >= 1
        assert repo2.log.wal.oldest_lsn() > 0

    def test_unreadable_checkpoint_falls_back_to_full_replay(self):
        # Crash before GC, then corrupt the installed blob: the full
        # log is still on disk, so recovery must quietly replay it all.
        disk = MemDisk()
        injector = FaultInjector()
        repo = QueueRepository(
            "r", disk, injector=injector, checkpoint_interval_bytes=4096
        )
        self._workload(repo)
        injector.arm("ckpt.gc.before")
        with pytest.raises(SimulatedCrash):
            repo.checkpoint()

        disk.recover()
        disk.replace(repo.log.checkpoint_area, b"\x00not a checkpoint")
        repo2 = QueueRepository("r", disk)
        assert not repo2.last_recovery.checkpoint_loaded
        assert repo2.last_recovery.recovery_lsn == 0
        assert repo2.get_queue("q").depth() == 30

    def test_unreadable_checkpoint_after_gc_is_fatal(self):
        # Once GC has reclaimed segments, full-log replay is impossible:
        # a corrupt blob must raise rather than silently lose history.
        disk = MemDisk()
        repo = QueueRepository("r", disk, checkpoint_interval_bytes=4096)
        repo.close()
        self._workload(repo)
        stats = repo.checkpoint()
        assert stats.segments_removed >= 1
        assert repo.log.wal.oldest_lsn() > 0
        disk.crash()
        disk.recover()
        disk.replace(repo.log.checkpoint_area, b"\x00not a checkpoint")
        with pytest.raises(CheckpointError):
            QueueRepository("r", disk)


class TestBoundedRecovery:
    def test_10k_commits_replay_only_above_recovery_lsn(self):
        # The acceptance workload: ten thousand committed transactions
        # against a byte-triggered checkpointer.  The live WAL stays
        # bounded near the interval and a restart replays only the thin
        # suffix above the last checkpoint's recovery LSN — not the
        # whole history.
        interval = 16_384
        disk = MemDisk()
        injector = FaultInjector(record=False)  # passive checkpointer
        repo = QueueRepository(
            "r", disk, injector=injector, checkpoint_interval_bytes=interval
        )
        assert repo.checkpointer is not None
        q = repo.create_queue("q")
        commits = 10_000
        for i in range(commits // 2):
            with repo.tm.transaction() as txn:
                q.enqueue(txn, i)
            with repo.tm.transaction() as txn:
                q.dequeue(txn)
            repo.checkpointer.poll()
        taken = repo.checkpointer.checkpoints_taken
        assert taken >= 10
        # Live WAL bytes bounded near the interval: at most the trigger
        # threshold plus one polling granule (a single commit's records)
        # and the segment holding the recovery floor.
        live = repo.log.wal.live_bytes()
        assert live < interval * 3, f"live WAL grew to {live} bytes"

        disk.crash()
        disk.recover()
        repo2 = QueueRepository("r", disk)
        report = repo2.last_recovery
        assert report.checkpoint_loaded
        assert report.recovery_lsn > 0
        # Replay is proportional to the checkpoint interval, not to the
        # ten-thousand-commit history.
        assert report.replayed_records < commits // 10
        assert repo2.get_queue("q").depth() == 0
        # The node keeps absorbing work after the bounded recovery.
        with repo2.tm.transaction() as txn:
            repo2.get_queue("q").enqueue(txn, "post-restart")
        assert repo2.get_queue("q").depth() == 1


class TestShardedCheckpoint:
    def test_parallel_checkpoint_across_shards(self):
        repo = ShardedRepository("node", [MemDisk() for _ in range(3)])
        queues = [repo.create_queue(f"q{i}") for i in range(6)]
        for i, q in enumerate(queues * 10):
            with repo.tm.transaction() as txn:
                q.enqueue(txn, f"item-{i}")
        before = [len(s.log.records()) for s in repo.shards]
        assert sum(before) > 0
        repo.checkpoint()
        assert all(len(s.log.records()) == 0 for s in repo.shards)
        assert sum(q.depth() for q in queues) == 60

    def test_sharded_checkpoint_survives_restart(self):
        disks = [MemDisk() for _ in range(2)]
        repo = ShardedRepository(
            "node", disks, checkpoint_interval_bytes=8192
        )
        repo.close()
        queues = [repo.create_queue(f"q{i}") for i in range(4)]
        for i, q in enumerate(queues * 10):
            with repo.tm.transaction() as txn:
                q.enqueue(txn, i)
        repo.checkpoint()
        for i, q in enumerate(queues):
            with repo.tm.transaction() as txn:
                q.enqueue(txn, f"post-{i}")
        for disk in disks:
            disk.crash()
            disk.recover()
        repo2 = ShardedRepository(
            "node", disks, checkpoint_interval_bytes=8192
        )
        repo2.close()
        assert any(s.last_recovery.checkpoint_loaded for s in repo2.shards)
        assert sum(
            repo2.get_queue(f"q{i}").depth() for i in range(4)
        ) == 44
