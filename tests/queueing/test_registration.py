"""Persistent registration tests (Section 4.3)."""

from __future__ import annotations

import pytest

from repro.errors import NotRegisteredError
from repro.queueing.manager import QueueManager
from repro.queueing.repository import QueueRepository
from repro.storage.disk import MemDisk


@pytest.fixture
def setup():
    disk = MemDisk()
    repo = QueueRepository("r", disk)
    qm = QueueManager(repo)
    qm.create_queue("q")
    return disk, repo, qm


class TestRegisterDeregister:
    def test_first_register_returns_nils(self, setup):
        _, _, qm = setup
        handle, tag, eid = qm.register("q", "alice")
        assert tag is None and eid is None
        assert handle.queue == "q" and handle.registrant == "alice"

    def test_reregister_returns_last_operation(self, setup):
        _, _, qm = setup
        h, _, _ = qm.register("q", "alice")
        eid = qm.enqueue(h, "payload", tag="my-tag")
        h2, tag2, eid2 = qm.register("q", "alice")
        assert tag2 == "my-tag"
        assert eid2 == eid

    def test_registration_survives_registrant_failure(self, setup):
        # "the failure of a registrant does not implicitly deregister it"
        disk, _, qm = setup
        h, _, _ = qm.register("q", "alice")
        qm.enqueue(h, "x", tag="t1")
        disk.crash()
        disk.recover()
        repo2 = QueueRepository("r", disk)
        qm2 = QueueManager(repo2)
        _, tag, _ = qm2.register("q", "alice")
        assert tag == "t1"

    def test_deregister_destroys_info(self, setup):
        _, _, qm = setup
        h, _, _ = qm.register("q", "alice")
        qm.enqueue(h, "x", tag="t1")
        qm.deregister(h)
        _, tag, eid = qm.register("q", "alice")
        assert tag is None and eid is None

    def test_deregister_unregistered_raises(self, setup):
        _, _, qm = setup
        h, _, _ = qm.register("q", "alice")
        qm.deregister(h)
        with pytest.raises(NotRegisteredError):
            qm.deregister(h)

    def test_deregister_durable(self, setup):
        disk, _, qm = setup
        h, _, _ = qm.register("q", "alice")
        qm.enqueue(h, "x", tag="t")
        qm.deregister(h)
        disk.crash()
        disk.recover()
        qm2 = QueueManager(QueueRepository("r", disk))
        _, tag, _ = qm2.register("q", "alice")
        assert tag is None

    def test_register_is_immediately_durable(self, setup):
        disk, _, qm = setup
        qm.register("q", "alice")
        disk.crash()
        disk.recover()
        repo2 = QueueRepository("r", disk)
        assert repo2.registration.is_registered("q", "alice")

    def test_independent_registrants(self, setup):
        _, _, qm = setup
        ha, _, _ = qm.register("q", "alice")
        hb, _, _ = qm.register("q", "bob")
        qm.enqueue(ha, "from alice", tag="a1")
        qm.enqueue(hb, "from bob", tag="b1")
        _, tag_a, _ = qm.register("q", "alice")
        _, tag_b, _ = qm.register("q", "bob")
        assert tag_a == "a1" and tag_b == "b1"


class TestTags:
    def test_dequeue_tag_recorded(self, setup):
        _, repo, qm = setup
        h, _, _ = qm.register("q", "alice")
        eid = qm.enqueue(h, "payload", tag="send-tag")
        hb, _, _ = qm.register("q", "bob")
        element = qm.dequeue(hb, tag=["rid-1", "ckpt-1"])
        assert element.eid == eid
        _, tag, eid_b = qm.register("q", "bob")
        assert tag == ["rid-1", "ckpt-1"]
        assert eid_b == eid

    def test_stable_false_keeps_no_tags(self, setup):
        _, _, qm = setup
        h, _, _ = qm.register("q", "server", stable=False)
        qm.enqueue(h, "x", tag="ignored")
        _, tag, eid = qm.register("q", "server", stable=False)
        assert tag is None and eid is None

    def test_tag_update_atomic_with_operation(self, setup):
        # If the enqueue transaction aborts, the tag must not move.
        _, repo, qm = setup
        h, _, _ = qm.register("q", "alice")
        qm.enqueue(h, "first", tag="t1")
        txn = repo.tm.begin()
        qm.enqueue(h, "second", tag="t2", txn=txn)
        repo.tm.abort(txn)
        _, tag, _ = qm.register("q", "alice")
        assert tag == "t1"

    def test_registration_info_has_op_type(self, setup):
        _, _, qm = setup
        h, _, _ = qm.register("q", "alice")
        qm.enqueue(h, "x", tag="t")
        info = qm.registration_info(h)
        assert info.last_op == "enq"
        hb, _, _ = qm.register("q", "bob")
        qm.dequeue(hb, tag="d")
        info_b = qm.registration_info(hb)
        assert info_b.last_op == "deq"

    def test_element_copy_stored(self, setup):
        _, _, qm = setup
        h, _, _ = qm.register("q", "alice")
        qm.enqueue(h, {"data": 42}, tag="t")
        info = qm.registration_info(h)
        assert info.last_element["body"] == {"data": 42}

    def test_read_from_registration_copy_after_archive_eviction(self, setup):
        # Section 4.3: Read works even if the element was dequeued by
        # another registrant — served from the stable registration copy.
        _, repo, qm = setup
        qm.create_queue("tiny", archive_limit=1)
        h, _, _ = qm.register("tiny", "alice")
        eid = qm.enqueue(h, "mine", tag="t")
        hb, _, _ = qm.register("tiny", "bob")
        qm.dequeue(hb)
        # Other traffic (a different registrant) evicts the archive entry;
        # alice's registration copy still covers her last operation.
        hc, _, _ = qm.register("tiny", "carol")
        for i in range(3):
            qm.enqueue(hc, f"filler-{i}")
            qm.dequeue(hb)
        element = qm.read(h, eid)
        assert element.body == "mine"


class TestOperationsRequireRegistration:
    def test_enqueue_requires_registration(self, setup):
        _, _, qm = setup
        h, _, _ = qm.register("q", "alice")
        qm.deregister(h)
        with pytest.raises(NotRegisteredError):
            qm.enqueue(h, "x")

    def test_dequeue_requires_registration(self, setup):
        _, _, qm = setup
        h, _, _ = qm.register("q", "alice")
        qm.deregister(h)
        with pytest.raises(NotRegisteredError):
            qm.dequeue(h)
