"""RecoverableQueue tests: transactional visibility, ordering, error
queues, strict vs skip-locked, kill, archive, recovery."""

from __future__ import annotations

import pytest

from repro.errors import (
    ElementLockedError,
    KillFailedError,
    NoSuchElementError,
    QueueEmpty,
    QueueStoppedError,
)
from repro.queueing.queue import DequeueMode
from repro.queueing.repository import QueueRepository
from repro.storage.disk import MemDisk


@pytest.fixture
def repo():
    return QueueRepository("r", MemDisk())


@pytest.fixture
def q(repo):
    repo.create_queue("err")
    return repo.create_queue("q", error_queue="err", max_aborts=2)


class TestVisibility:
    def test_enqueue_invisible_until_commit(self, repo, q):
        txn = repo.tm.begin()
        q.enqueue(txn, "payload")
        assert q.depth() == 0
        repo.tm.commit(txn)
        assert q.depth() == 1

    def test_enqueue_abort_discards(self, repo, q):
        txn = repo.tm.begin()
        q.enqueue(txn, "payload")
        repo.tm.abort(txn)
        assert q.depth() == 0
        assert q.pending() == 0

    def test_uncommitted_enqueue_not_dequeueable(self, repo, q):
        txn1 = repo.tm.begin()
        q.enqueue(txn1, "hidden")
        txn2 = repo.tm.begin()
        with pytest.raises(QueueEmpty):
            q.dequeue(txn2)
        repo.tm.abort(txn1)
        repo.tm.abort(txn2)

    def test_dequeue_removes_at_commit(self, repo, q):
        with repo.tm.transaction() as txn:
            q.enqueue(txn, "x")
        with repo.tm.transaction() as txn:
            element = q.dequeue(txn)
        assert element.body == "x"
        assert q.depth() == 0

    def test_dequeue_abort_returns_element(self, repo, q):
        with repo.tm.transaction() as txn:
            q.enqueue(txn, "x")
        txn = repo.tm.begin()
        q.dequeue(txn)
        assert q.depth() == 0  # pending
        repo.tm.abort(txn)
        assert q.depth() == 1  # back

    def test_dequeue_empty_raises(self, repo, q):
        with pytest.raises(QueueEmpty):
            with repo.tm.transaction() as txn:
                q.dequeue(txn)

    def test_dequeue_with_timeout_raises_after_wait(self, repo, q):
        txn = repo.tm.begin()
        with pytest.raises(QueueEmpty):
            q.dequeue(txn, block=True, timeout=0.1)
        repo.tm.abort(txn)


class TestOrdering:
    def test_fifo_within_priority(self, repo, q):
        with repo.tm.transaction() as txn:
            for i in range(5):
                q.enqueue(txn, f"m{i}")
        got = []
        for _ in range(5):
            with repo.tm.transaction() as txn:
                got.append(q.dequeue(txn).body)
        assert got == ["m0", "m1", "m2", "m3", "m4"]

    def test_priority_order(self, repo, q):
        with repo.tm.transaction() as txn:
            q.enqueue(txn, "low", priority=1)
            q.enqueue(txn, "high", priority=10)
            q.enqueue(txn, "mid", priority=5)
        got = []
        for _ in range(3):
            with repo.tm.transaction() as txn:
                got.append(q.dequeue(txn).body)
        assert got == ["high", "mid", "low"]

    def test_selector_content_based(self, repo, q):
        with repo.tm.transaction() as txn:
            q.enqueue(txn, {"amount": 10})
            q.enqueue(txn, {"amount": 500})
        with repo.tm.transaction() as txn:
            rich = q.dequeue(txn, selector=lambda e: e.body["amount"] >= 100)
        assert rich.body["amount"] == 500
        assert q.depth() == 1

    def test_selector_no_match_raises_empty(self, repo, q):
        with repo.tm.transaction() as txn:
            q.enqueue(txn, {"amount": 1})
        with pytest.raises(QueueEmpty):
            with repo.tm.transaction() as txn:
                q.dequeue(txn, selector=lambda e: e.body["amount"] > 100)


class TestSkipLockedVsStrict:
    def test_skip_locked_passes_pending_head(self, repo, q):
        with repo.tm.transaction() as txn:
            q.enqueue(txn, "head")
            q.enqueue(txn, "second")
        holder = repo.tm.begin()
        assert q.dequeue(holder).body == "head"
        with repo.tm.transaction() as txn:
            assert q.dequeue(txn).body == "second"
        repo.tm.abort(holder)
        assert q.skipped_locked >= 1

    def test_strict_mode_refuses_pending_head(self, repo):
        repo.create_queue("errs")
        strict = repo.create_queue(
            "sq", error_queue="errs", mode=DequeueMode.STRICT
        )
        with repo.tm.transaction() as txn:
            strict.enqueue(txn, "head")
            strict.enqueue(txn, "second")
        holder = repo.tm.begin()
        strict.dequeue(holder)
        other = repo.tm.begin()
        with pytest.raises(ElementLockedError):
            strict.dequeue(other)
        repo.tm.abort(holder)
        repo.tm.abort(other)

    def test_anomalous_order_when_holder_aborts(self, repo, q):
        # Section 10: "if the first transaction aborts and the second
        # commits, then the Dequeues won't be FIFO ordered".
        with repo.tm.transaction() as txn:
            q.enqueue(txn, "first")
            q.enqueue(txn, "second")
        t1 = repo.tm.begin()
        q.dequeue(t1)  # takes "first"
        with repo.tm.transaction() as t2:
            assert q.dequeue(t2).body == "second"  # commits before t1
        repo.tm.abort(t1)  # "first" returns
        with repo.tm.transaction() as t3:
            assert q.dequeue(t3).body == "first"


class TestErrorQueue:
    def test_nth_abort_moves_to_error_queue(self, repo, q):
        with repo.tm.transaction() as txn:
            eid = q.enqueue(txn, "poison")
        for _ in range(2):  # max_aborts=2
            txn = repo.tm.begin()
            q.dequeue(txn)
            repo.tm.abort(txn)
        err = repo.get_queue("err")
        assert q.depth() == 0
        assert err.depth() == 1
        element = err.read(eid)
        assert element.eid == eid  # identity preserved
        assert "abort_code" in element.headers
        assert element.headers["origin_queue"] == "q"

    def test_abort_count_below_bound_stays(self, repo, q):
        with repo.tm.transaction() as txn:
            q.enqueue(txn, "retry-me")
        txn = repo.tm.begin()
        q.dequeue(txn)
        repo.tm.abort(txn)
        assert q.depth() == 1
        assert repo.get_queue("err").depth() == 0

    def test_abort_count_durable_across_crash(self, repo, q):
        disk = repo.disk
        with repo.tm.transaction() as txn:
            eid = q.enqueue(txn, "poison")
        txn = repo.tm.begin()
        q.dequeue(txn)
        repo.tm.abort(txn)  # count=1, durable
        disk.crash()
        disk.recover()
        repo2 = QueueRepository("r", disk)
        q2 = repo2.get_queue("q")
        assert q2.read(eid).abort_count == 1
        # one more abort reaches the bound of 2
        txn = repo2.tm.begin()
        q2.dequeue(txn)
        repo2.tm.abort(txn)
        assert repo2.get_queue("err").depth() == 1

    def test_error_queue_override_parameter(self, repo, q):
        other = repo.create_queue("other-err")
        with repo.tm.transaction() as txn:
            q.enqueue(txn, "poison")
        for _ in range(2):
            txn = repo.tm.begin()
            q.dequeue(txn, error_queue="other-err")
            repo.tm.abort(txn)
        assert other.depth() == 1
        assert repo.get_queue("err").depth() == 0

    def test_no_error_queue_retries_forever(self, repo):
        bare = repo.create_queue("bare", max_aborts=1)
        with repo.tm.transaction() as txn:
            bare.enqueue(txn, "x")
        for _ in range(5):
            txn = repo.tm.begin()
            bare.dequeue(txn)
            repo.tm.abort(txn)
        assert bare.depth() == 1


class TestReadAndArchive:
    def test_read_available_element(self, repo, q):
        with repo.tm.transaction() as txn:
            eid = q.enqueue(txn, "readable")
        assert q.read(eid).body == "readable"

    def test_read_pending_dequeue(self, repo, q):
        with repo.tm.transaction() as txn:
            eid = q.enqueue(txn, "held")
        txn = repo.tm.begin()
        q.dequeue(txn)
        assert q.read(eid).body == "held"
        repo.tm.abort(txn)

    def test_read_after_removal_from_archive(self, repo, q):
        with repo.tm.transaction() as txn:
            eid = q.enqueue(txn, "gone but read")
        with repo.tm.transaction() as txn:
            q.dequeue(txn)
        assert q.read(eid).body == "gone but read"

    def test_read_unknown_raises(self, repo, q):
        with pytest.raises(NoSuchElementError):
            q.read(424242)

    def test_archive_bounded(self, repo):
        small = repo.create_queue("small", archive_limit=2)
        eids = []
        for i in range(4):
            with repo.tm.transaction() as txn:
                eids.append(small.enqueue(txn, i))
            with repo.tm.transaction() as txn:
                small.dequeue(txn)
        with pytest.raises(NoSuchElementError):
            small.read(eids[0])
        assert small.read(eids[-1]).body == 3


class TestKillElement:
    def test_kill_available_element(self, repo, q):
        with repo.tm.transaction() as txn:
            eid = q.enqueue(txn, "cancel me")
        assert q.kill_element(eid) is True
        assert q.depth() == 0

    def test_kill_unknown_returns_false(self, repo, q):
        assert q.kill_element(999) is False

    def test_kill_aborts_uncommitted_dequeuer(self, repo, q):
        from repro.transaction.ids import TxnStatus

        with repo.tm.transaction() as txn:
            eid = q.enqueue(txn, "contested")
        holder = repo.tm.begin()
        q.dequeue(holder)
        assert q.kill_element(eid) is True
        assert holder.status is TxnStatus.ABORTED
        assert q.depth() == 0

    def test_kill_consumed_element_fails(self, repo, q):
        with repo.tm.transaction() as txn:
            eid = q.enqueue(txn, "done")
        with repo.tm.transaction() as txn:
            q.dequeue(txn)
        assert q.kill_element(eid) is False

    def test_kill_uncommitted_enqueue_rejected(self, repo, q):
        txn = repo.tm.begin()
        eid = q.enqueue(txn, "mine")
        with pytest.raises(KillFailedError):
            q.kill_element(eid)
        repo.tm.abort(txn)

    def test_kill_is_durable(self, repo, q):
        disk = repo.disk
        with repo.tm.transaction() as txn:
            eid = q.enqueue(txn, "killed")
        q.kill_element(eid)
        disk.crash()
        disk.recover()
        repo2 = QueueRepository("r", disk)
        assert repo2.get_queue("q").depth() == 0


class TestStopStart:
    def test_stopped_queue_rejects_ops(self, repo, q):
        q.stop()
        txn = repo.tm.begin()
        with pytest.raises(QueueStoppedError):
            q.enqueue(txn, "x")
        with pytest.raises(QueueStoppedError):
            q.dequeue(txn)
        repo.tm.abort(txn)

    def test_start_reenables(self, repo, q):
        q.stop()
        q.start()
        with repo.tm.transaction() as txn:
            q.enqueue(txn, "x")
        assert q.depth() == 1


class TestRecovery:
    def test_committed_contents_survive_crash(self, repo, q):
        disk = repo.disk
        with repo.tm.transaction() as txn:
            q.enqueue(txn, "a", priority=2)
            q.enqueue(txn, "b")
        disk.crash()
        disk.recover()
        repo2 = QueueRepository("r", disk)
        q2 = repo2.get_queue("q")
        assert q2.depth() == 2
        with repo2.tm.transaction() as txn:
            assert q2.dequeue(txn).body == "a"  # priority preserved

    def test_pending_dequeue_returns_after_crash(self, repo, q):
        disk = repo.disk
        with repo.tm.transaction() as txn:
            q.enqueue(txn, "in flight")
        txn = repo.tm.begin()
        q.dequeue(txn)  # never commits: crash
        disk.crash()
        disk.recover()
        repo2 = QueueRepository("r", disk)
        assert repo2.get_queue("q").depth() == 1

    def test_committed_dequeue_stays_gone_after_crash(self, repo, q):
        disk = repo.disk
        with repo.tm.transaction() as txn:
            q.enqueue(txn, "consumed")
        with repo.tm.transaction() as txn:
            q.dequeue(txn)
        disk.crash()
        disk.recover()
        repo2 = QueueRepository("r", disk)
        assert repo2.get_queue("q").depth() == 0

    def test_enqueue_seq_resumes_after_crash(self, repo, q):
        disk = repo.disk
        with repo.tm.transaction() as txn:
            q.enqueue(txn, "before")
        disk.crash()
        disk.recover()
        repo2 = QueueRepository("r", disk)
        q2 = repo2.get_queue("q")
        with repo2.tm.transaction() as txn:
            q2.enqueue(txn, "after")
        got = []
        for _ in range(2):
            with repo2.tm.transaction() as txn:
                got.append(q2.dequeue(txn).body)
        assert got == ["before", "after"]

    def test_snapshot_restore_round_trip(self, repo, q):
        with repo.tm.transaction() as txn:
            q.enqueue(txn, "s1", priority=3, headers={"h": 1})
        with repo.tm.transaction() as txn:
            eid = q.enqueue(txn, "archived")
        with repo.tm.transaction() as txn:
            q.dequeue(txn, selector=lambda e: e.body == "archived")
        snap = q.snapshot()
        repo2 = QueueRepository("r2", MemDisk())
        repo2.create_queue("err")
        q2 = repo2.create_queue("q", error_queue="err")
        q2.restore(snap)
        assert q2.depth() == 1
        assert q2.read(eid).body == "archived"


class TestBlockingDequeue:
    def test_blocking_dequeue_woken_by_commit(self, repo, q):
        import threading

        got = []

        def consumer():
            with repo.tm.transaction() as txn:
                got.append(q.dequeue(txn, block=True, timeout=5).body)

        thread = threading.Thread(target=consumer, daemon=True)
        thread.start()
        with repo.tm.transaction() as txn:
            q.enqueue(txn, "wake up")
        thread.join(timeout=5)
        assert got == ["wake up"]

    def test_blocking_dequeue_woken_by_dequeue_abort(self, repo, q):
        import threading
        import time

        with repo.tm.transaction() as txn:
            q.enqueue(txn, "contested")
        holder = repo.tm.begin()
        q.dequeue(holder)
        got = []

        def consumer():
            with repo.tm.transaction() as txn:
                got.append(q.dequeue(txn, block=True, timeout=5).body)

        thread = threading.Thread(target=consumer, daemon=True)
        thread.start()
        time.sleep(0.1)
        repo.tm.abort(holder)
        thread.join(timeout=5)
        assert got == ["contested"]
