"""Unit tests for the byte-triggered background checkpoint driver."""

from __future__ import annotations

import time

import pytest

from repro.queueing.checkpointer import Checkpointer
from repro.queueing.repository import QueueRepository
from repro.sim.crash import FaultInjector
from repro.storage.disk import MemDisk


def _passive_repo(interval: int) -> QueueRepository:
    # A (plan-free) injector makes the repository build its checkpointer
    # in passive mode: no thread, driven only by explicit poll() calls.
    return QueueRepository(
        "r", MemDisk(), injector=FaultInjector(record=False),
        checkpoint_interval_bytes=interval,
    )


class TestTrigger:
    def test_poll_is_noop_below_threshold(self):
        repo = _passive_repo(1 << 20)
        ckpt = repo.checkpointer
        assert ckpt is not None and not ckpt.threaded
        with repo.tm.transaction() as txn:
            repo.create_queue("q").enqueue(txn, "x")
        assert not ckpt.should_checkpoint()
        assert ckpt.poll() is False
        assert ckpt.checkpoints_taken == 0

    def test_poll_checkpoints_once_threshold_crossed(self):
        repo = _passive_repo(2048)
        ckpt = repo.checkpointer
        q = repo.create_queue("q")
        while not ckpt.should_checkpoint():
            with repo.tm.transaction() as txn:
                q.enqueue(txn, "payload-" + "x" * 64)
        assert ckpt.poll() is True
        assert ckpt.checkpoints_taken == 1
        # The trigger resets: bytes are measured from the new
        # checkpoint's begin record, not from the recovery floor.
        assert not ckpt.should_checkpoint()
        assert ckpt.poll() is False

    def test_interval_must_be_positive(self):
        repo = QueueRepository("r", MemDisk())
        with pytest.raises(ValueError):
            Checkpointer(repo, 0)


class TestThreaded:
    def test_background_thread_checkpoints_under_load(self):
        repo = QueueRepository(
            "r", MemDisk(), checkpoint_interval_bytes=2048
        )
        ckpt = repo.checkpointer
        assert ckpt is not None and ckpt.threaded
        try:
            q = repo.create_queue("q")
            deadline = time.monotonic() + 10.0
            while ckpt.checkpoints_taken == 0:
                with repo.tm.transaction() as txn:
                    q.enqueue(txn, "payload-" + "x" * 64)
                assert time.monotonic() < deadline, (
                    "background checkpointer never fired"
                )
            assert repo.last_recovery.recovery_lsn == 0  # booted fresh
        finally:
            repo.close()
        assert not ckpt.threaded

    def test_close_is_idempotent(self):
        repo = QueueRepository(
            "r", MemDisk(), checkpoint_interval_bytes=1 << 20
        )
        repo.close()
        repo.close()
