"""Additional feature coverage: queue sets with selectors, volatile
blocking dequeue, scheduler selector edge cases."""

from __future__ import annotations

import threading

import pytest

from repro.core.scheduler import RequestScheduler
from repro.errors import QueueEmpty
from repro.queueing.element import Element
from repro.queueing.features import QueueSet
from repro.queueing.repository import QueueRepository
from repro.queueing.volatile import VolatileQueue
from repro.storage.disk import MemDisk


class TestQueueSetSelectors:
    def test_selector_applies_across_members(self):
        repo = QueueRepository("r", MemDisk())
        q1, q2 = repo.create_queue("q1"), repo.create_queue("q2")
        with repo.tm.transaction() as txn:
            q1.enqueue(txn, {"k": "nope"})
            q2.enqueue(txn, {"k": "yes"})
        qset = QueueSet([q1, q2])
        with repo.tm.transaction() as txn:
            member, element = qset.dequeue(txn, selector=lambda e: e.body["k"] == "yes")
        assert member is q2
        assert element.body["k"] == "yes"

    def test_selector_no_match_raises(self):
        repo = QueueRepository("r", MemDisk())
        q1 = repo.create_queue("q1")
        with repo.tm.transaction() as txn:
            q1.enqueue(txn, {"k": "nope"})
        qset = QueueSet([q1])
        with pytest.raises(QueueEmpty):
            with repo.tm.transaction() as txn:
                qset.dequeue(txn, selector=lambda e: e.body["k"] == "yes")


class TestVolatileBlocking:
    def test_blocking_dequeue_woken_by_enqueue(self):
        queue = VolatileQueue("v")
        got = []

        def consumer():
            got.append(queue.dequeue(block=True, timeout=5).body)

        thread = threading.Thread(target=consumer, daemon=True)
        thread.start()
        queue.enqueue(None, "wake")
        thread.join(timeout=5)
        assert got == ["wake"]

    def test_blocking_dequeue_times_out(self):
        queue = VolatileQueue("v")
        with pytest.raises(QueueEmpty):
            queue.dequeue(block=True, timeout=0.05)


class TestSchedulerSelectorEdges:
    def test_class_selector_ignores_non_dict_bodies(self):
        selector = RequestScheduler.class_selector("vip")
        assert not selector(Element(eid=1, body="plain string"))
        assert not selector(Element(eid=2, body={"no": "scratch"}))
        assert selector(
            Element(eid=3, body={"scratch": {"server_class": "vip"}})
        )
