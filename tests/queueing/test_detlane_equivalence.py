"""Deterministic-lane / 2PL observable equivalence.

The deterministic execution lane reorders nothing the client can see:
for the auto-routed transaction class (auto-commit enqueues and
non-waiting dequeues through the queue manager), a lane-routed system
must stay in lockstep with a plain 2PL system — same element ids, same
bodies, same ``QueueEmpty`` / ``ElementLockedError`` outcomes — for
any operation script, including explicit-transaction 2PL traffic
interleaved on the same queue and crash/restarts, in both dequeue
modes.  The final drain order after a restart must be byte-identical.

This mirrors ``test_ready_index.py``: one scripted workload, two
systems, per-op lockstep asserts, then a drain comparison.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ElementLockedError, QueueEmpty
from repro.queueing.manager import QueueManager
from repro.queueing.queue import DequeueMode
from repro.queueing.repository import QueueRepository
from repro.storage.disk import MemDisk
from repro.transaction.deterministic import DeterministicLane


class _Sys:
    """One repository + queue manager under the scripted workload."""

    def __init__(self, name: str, mode: str, cc: str):
        self.disk = MemDisk()
        self.name = name
        self.mode = mode
        self.cc = cc
        self.open_txns: list = []
        self.tags = 0
        self._open(fresh=True)

    def _open(self, fresh: bool) -> None:
        self.repo = QueueRepository(self.name, self.disk)
        lane = (
            DeterministicLane(self.repo) if self.cc != "2pl" else None
        )
        self.qm = QueueManager(self.repo, cc=self.cc, lane=lane)
        if fresh:
            self.repo.create_queue("q", mode=DequeueMode(self.mode))
        self.handle, _, _ = self.qm.register("q", "client")

    def crash(self) -> None:
        self.open_txns.clear()
        self.disk.crash()
        self.disk.recover()
        self._open(fresh=False)

    def enqueue(self, priority: int, body: str):
        # txn=None: the auto-routed class (lane-routed when cc != 2pl).
        self.tags += 1
        return self.qm.enqueue(
            self.handle, body, tag=f"t{self.tags}", priority=priority
        )

    def dequeue(self):
        """Non-waiting auto-commit dequeue — the auto-routed class."""
        try:
            element = self.qm.dequeue(self.handle)
        except QueueEmpty:
            return ("empty",)
        except ElementLockedError:
            return ("locked",)
        return ("ok", element.eid, element.body)

    def dequeue_txn(self, outcome: str):
        """Explicit-transaction dequeue: stays on the 2PL path in both
        systems, interleaving held elements with lane traffic."""
        txn = self.repo.tm.begin()
        try:
            element = self.qm.dequeue(self.handle, txn=txn)
        except QueueEmpty:
            self.repo.tm.abort(txn)
            return ("empty",)
        except ElementLockedError:
            self.repo.tm.abort(txn)
            return ("locked",)
        if outcome == "commit":
            self.repo.tm.commit(txn)
        elif outcome == "abort":
            self.repo.tm.abort(txn)
        else:  # hold: leaves the element DEQ_PENDING
            self.open_txns.append(txn)
        return ("ok", element.eid, element.body)

    def close(self, index: int, commit: bool):
        if not self.open_txns:
            return ("none",)
        txn = self.open_txns.pop(index % len(self.open_txns))
        try:
            if commit:
                self.repo.tm.commit(txn)
            else:
                self.repo.tm.abort(txn)
        except Exception as exc:
            return ("err", type(exc).__name__)
        return ("closed", commit)

    def drain(self) -> list[tuple]:
        for txn in self.open_txns:
            try:
                self.repo.tm.abort(txn)
            except Exception:
                pass
        self.open_txns.clear()
        order = []
        while True:
            outcome = self.dequeue()
            if outcome[0] != "ok":
                return order
            order.append(outcome[1:])


ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("enq"), st.integers(0, 3),
            st.sampled_from(["a", "b", "c"]),
        ),
        st.tuples(st.just("deq")),
        st.tuples(
            st.just("deq_txn"),
            st.sampled_from(["commit", "abort", "hold"]),
        ),
        st.tuples(st.just("close"), st.integers(0, 5), st.booleans()),
        st.tuples(st.just("crash")),
    ),
    max_size=40,
)


@settings(max_examples=60, deadline=None)
@given(ops=ops, mode=st.sampled_from(["skip_locked", "strict"]))
def test_deterministic_lane_matches_2pl(ops, mode):
    det = _Sys("d", mode, cc="deterministic")
    ref = _Sys("r", mode, cc="2pl")
    for op in ops:
        if op[0] == "enq":
            _, priority, body = op
            assert det.enqueue(priority, body) == ref.enqueue(priority, body)
        elif op[0] == "deq":
            assert det.dequeue() == ref.dequeue()
        elif op[0] == "deq_txn":
            assert det.dequeue_txn(op[1]) == ref.dequeue_txn(op[1])
        elif op[0] == "close":
            _, index, commit = op
            assert det.close(index, commit) == ref.close(index, commit)
        else:
            det.crash()
            ref.crash()
    # Remaining delivery order is identical after a restart recovers
    # both systems from their WALs.
    det.crash()
    ref.crash()
    assert det.drain() == ref.drain()


def test_lane_reports_deterministic_transactions():
    """The routed class really runs on the deterministic lane (not a
    silently degraded 2PL path)."""
    from repro.obs import Observability

    obs = Observability()
    repo = QueueRepository("m", MemDisk(), obs=obs)
    qm = QueueManager(
        repo, obs=obs, cc="deterministic",
        lane=DeterministicLane(repo, obs=obs),
    )
    repo.create_queue("q")
    handle, _, _ = qm.register("q", "client")
    qm.enqueue(handle, "x", tag="t1")
    element = qm.dequeue(handle)
    assert element.body == "x"
    lanes = {
        s["labels"]["lane"]: s["value"]
        for s in obs.metrics.snapshot()["txn_lane_total"]["series"]
    }
    assert lanes.get("deterministic", 0) == 2
