"""Element model tests."""

from __future__ import annotations

from repro.queueing.element import Element


class TestElement:
    def test_record_round_trip(self):
        element = Element(
            eid=7,
            body={"x": [1, 2]},
            priority=3,
            enqueue_seq=11,
            abort_count=2,
            headers={"rid": "c#1"},
        )
        assert Element.from_record(element.to_record()) == element

    def test_copy_is_deep_enough(self):
        element = Element(eid=1, body={"k": 1}, headers={"h": 1})
        clone = element.copy()
        clone.headers["h"] = 2
        assert element.headers["h"] == 1

    def test_sort_key_priority_desc_then_fifo(self):
        early_low = Element(eid=1, body=None, priority=0, enqueue_seq=1)
        late_low = Element(eid=2, body=None, priority=0, enqueue_seq=2)
        high = Element(eid=3, body=None, priority=9, enqueue_seq=3)
        ordered = sorted([late_low, high, early_low], key=Element.sort_key)
        assert [e.eid for e in ordered] == [3, 1, 2]

    def test_defaults(self):
        element = Element(eid=1, body="b")
        assert element.priority == 0
        assert element.abort_count == 0
        assert element.headers == {}
