"""Volatile queue and relay tests (Section 10)."""

from __future__ import annotations

import pytest

from repro.errors import QueueEmpty
from repro.queueing.repository import QueueRepository
from repro.queueing.volatile import VolatileQueue, VolatileRelay
from repro.storage.disk import MemDisk


class TestVolatileQueue:
    def test_non_transactional_round_trip(self):
        q = VolatileQueue("v")
        q.enqueue(None, "a")
        q.enqueue(None, "b")
        assert q.dequeue().body == "a"
        assert q.dequeue().body == "b"

    def test_priority_order(self):
        q = VolatileQueue("v")
        q.enqueue(None, "low", priority=1)
        q.enqueue(None, "high", priority=5)
        assert q.dequeue().body == "high"

    def test_empty_raises(self):
        with pytest.raises(QueueEmpty):
            VolatileQueue("v").dequeue()

    def test_transactional_visibility(self):
        repo = QueueRepository("r", MemDisk())
        q = VolatileQueue("v")
        txn = repo.tm.begin()
        q.enqueue(txn, "pending")
        assert q.depth() == 0
        repo.tm.commit(txn)
        assert q.depth() == 1

    def test_transactional_dequeue_undo_on_abort(self):
        repo = QueueRepository("r", MemDisk())
        q = VolatileQueue("v")
        q.enqueue(None, "x")
        txn = repo.tm.begin()
        q.dequeue(txn)
        repo.tm.abort(txn)
        assert q.depth() == 1

    def test_enqueue_abort_never_appears(self):
        repo = QueueRepository("r", MemDisk())
        q = VolatileQueue("v")
        txn = repo.tm.begin()
        q.enqueue(txn, "never")
        repo.tm.abort(txn)
        assert q.depth() == 0

    def test_crash_loses_contents(self):
        q = VolatileQueue("v")
        for i in range(3):
            q.enqueue(None, i)
        assert q.crash() == 3
        assert q.depth() == 0

    def test_selector(self):
        q = VolatileQueue("v")
        q.enqueue(None, {"t": "a"})
        q.enqueue(None, {"t": "b"})
        assert q.dequeue(selector=lambda e: e.body["t"] == "b").body == {"t": "b"}

    def test_drain(self):
        q = VolatileQueue("v")
        for i in range(3):
            q.enqueue(None, i)
        assert [e.body for e in q.drain()] == [0, 1, 2]
        assert q.depth() == 0


class TestVolatileRelay:
    def test_pump_moves_everything(self):
        src, dst = VolatileQueue("s"), VolatileQueue("d")
        for i in range(4):
            src.enqueue(None, i)
        relay = VolatileRelay(src, dst)
        assert relay.pump() == 4
        assert dst.depth() == 4
        assert src.depth() == 0

    def test_pump_limit(self):
        src, dst = VolatileQueue("s"), VolatileQueue("d")
        for i in range(4):
            src.enqueue(None, i)
        relay = VolatileRelay(src, dst)
        assert relay.pump(limit=2) == 2
        assert src.depth() == 2

    def test_crash_window_loses_only_unrelayed(self):
        # Section 10: the volatile pair behaves like one queue whose
        # exposure window is the relay interval.
        src, dst = VolatileQueue("s"), VolatileQueue("d")
        relay = VolatileRelay(src, dst)
        src.enqueue(None, "early")
        relay.pump()
        src.enqueue(None, "late")
        lost = src.crash()  # client node dies before next pump
        assert lost == 1
        assert dst.depth() == 1  # "early" survived via the relay
