"""Store-and-forward relay tests (Section 1's partition-masking
pattern)."""

from __future__ import annotations

import pytest

from repro.errors import PartitionedError
from repro.queueing.relay import StableRelay
from repro.queueing.repository import QueueRepository
from repro.storage.disk import MemDisk


@pytest.fixture
def setup():
    local = QueueRepository("branch", MemDisk())
    remote = QueueRepository("hq", MemDisk())
    local.create_queue("outbox")
    remote.create_queue("inbox")
    return local, remote


def enqueue_local(local, body, headers=None):
    queue = local.get_queue("outbox")
    with local.tm.transaction() as txn:
        return queue.enqueue(txn, body, headers=headers or {})


class TestBasicRelay:
    def test_pump_moves_elements_in_order(self, setup):
        local, remote = setup
        for i in range(3):
            enqueue_local(local, f"req-{i}")
        relay = StableRelay(local, "outbox", remote, "inbox")
        assert relay.pump() == 3
        assert relay.backlog() == 0
        inbox = remote.get_queue("inbox")
        got = []
        for _ in range(3):
            with remote.tm.transaction() as txn:
                got.append(inbox.dequeue(txn).body)
        assert got == ["req-0", "req-1", "req-2"]

    def test_pump_limit(self, setup):
        local, remote = setup
        for i in range(5):
            enqueue_local(local, i)
        relay = StableRelay(local, "outbox", remote, "inbox")
        assert relay.pump(limit=2) == 2
        assert relay.backlog() == 3

    def test_empty_outbox(self, setup):
        local, remote = setup
        relay = StableRelay(local, "outbox", remote, "inbox")
        assert relay.pump() == 0

    def test_headers_preserved_plus_relay_key(self, setup):
        local, remote = setup
        enqueue_local(local, "x", headers={"rid": "c1#1"})
        relay = StableRelay(local, "outbox", remote, "inbox")
        relay.pump()
        inbox = remote.get_queue("inbox")
        with remote.tm.transaction() as txn:
            element = inbox.dequeue(txn)
        assert element.headers["rid"] == "c1#1"
        assert "relay_key" in element.headers


class TestPartitions:
    def test_pump_refuses_while_partitioned(self, setup):
        local, remote = setup
        enqueue_local(local, "stuck")
        up = {"flag": False}
        relay = StableRelay(local, "outbox", remote, "inbox",
                            link_up=lambda: up["flag"])
        with pytest.raises(PartitionedError):
            relay.pump_one()
        assert relay.pump() == 0  # silent stop
        assert relay.backlog() == 1
        # The partition heals; the backlog drains.
        up["flag"] = True
        assert relay.pump() == 1
        assert remote.get_queue("inbox").depth() == 1

    def test_requests_accumulate_during_partition(self, setup):
        local, remote = setup
        up = {"flag": False}
        relay = StableRelay(local, "outbox", remote, "inbox",
                            link_up=lambda: up["flag"])
        for i in range(4):
            enqueue_local(local, i)
            relay.pump()  # all refused
        assert relay.backlog() == 4
        up["flag"] = True
        assert relay.pump() == 4


class TestExactlyOnce:
    def test_crash_between_remote_enqueue_and_local_dequeue(self, setup):
        """The at-least-once resend is deduplicated remotely."""
        local, remote = setup
        eid = enqueue_local(local, "pay-once")
        relay = StableRelay(local, "outbox", remote, "inbox")
        # Simulate the crash window: do step 2 manually, 'crash', then a
        # fresh relay re-pumps the still-queued local element.
        key = relay._relay_key(eid)
        target = remote.get_queue("inbox")
        with remote.tm.transaction() as txn:
            target.enqueue(txn, "pay-once", headers={"relay_key": key})
            relay.seen.put(txn, key, True)
        # local element was never dequeued (crash before step 3)
        relay2 = StableRelay(local, "outbox", remote, "inbox")
        moved = relay2.pump()
        assert moved == 1  # local element cleared...
        assert relay2.duplicates_suppressed == 1  # ...without a second copy
        assert remote.get_queue("inbox").depth() == 1

    def test_remote_crash_before_commit_means_resend(self, setup):
        local, remote = setup
        enqueue_local(local, "retry-me")
        relay = StableRelay(local, "outbox", remote, "inbox")
        # Remote node crashes before the relay runs: nothing happened.
        remote.disk.crash()
        remote.disk.recover()
        remote2 = QueueRepository("hq", remote.disk)
        relay2 = StableRelay(local, "outbox", remote2, "inbox")
        assert relay2.pump() == 1
        assert remote2.get_queue("inbox").depth() == 1

    def test_dedup_table_durable(self, setup):
        local, remote = setup
        enqueue_local(local, "once")
        relay = StableRelay(local, "outbox", remote, "inbox")
        relay.pump()
        # Remote crashes after the transfer; a re-pump of a re-created
        # local copy must still deduplicate.
        remote.disk.crash()
        remote.disk.recover()
        remote2 = QueueRepository("hq", remote.disk)
        assert remote2.get_queue("inbox").depth() == 1
        assert remote2.get_table("inbox.relay_dedup").size() == 1

    def test_end_to_end_with_server(self, setup):
        """Branch-office flow: local capture -> relay -> remote server."""
        local, remote = setup
        from repro.queueing.manager import QueueManager

        results = remote.create_table("results")
        for i in range(3):
            enqueue_local(local, {"n": i}, headers={"rid": f"b#{i}"})
        relay = StableRelay(local, "outbox", remote, "inbox")
        relay.pump()
        qm = QueueManager(remote)
        handle, _, _ = qm.register("inbox", "hq-server", stable=False)
        for _ in range(3):
            with remote.tm.transaction() as txn:
                element = qm.dequeue(handle, txn=txn)
                results.put(txn, f"done/{element.headers['rid']}", element.body)
        assert results.size() == 3
