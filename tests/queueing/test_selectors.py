"""Selector combinator tests (Section 10 scheduling policies)."""

from __future__ import annotations

from repro.queueing.element import Element
from repro.queueing.selectors import (
    all_of,
    any_of,
    by_body,
    by_field,
    by_header,
    min_amount,
    negate,
    priority_from,
)


def element(body=None, headers=None, priority=0):
    return Element(eid=1, body=body, priority=priority, headers=headers or {})


class TestSelectors:
    def test_by_header(self):
        sel = by_header("type", "payment")
        assert sel(element(headers={"type": "payment"}))
        assert not sel(element(headers={"type": "refund"}))
        assert not sel(element())

    def test_by_body(self):
        sel = by_body(lambda b: b == "yes")
        assert sel(element(body="yes"))
        assert not sel(element(body="no"))

    def test_by_field_requires_dict(self):
        sel = by_field("amount", lambda v: v > 10)
        assert sel(element(body={"amount": 11}))
        assert not sel(element(body={"amount": 5}))
        assert not sel(element(body="not a dict"))
        assert not sel(element(body={"other": 1}))

    def test_min_amount(self):
        sel = min_amount("amount", 100)
        assert sel(element(body={"amount": 100}))
        assert not sel(element(body={"amount": 99.5}))
        assert not sel(element(body={"amount": "lots"}))

    def test_all_of(self):
        sel = all_of(by_header("a", 1), by_header("b", 2))
        assert sel(element(headers={"a": 1, "b": 2}))
        assert not sel(element(headers={"a": 1}))

    def test_any_of(self):
        sel = any_of(by_header("a", 1), by_header("b", 2))
        assert sel(element(headers={"b": 2}))
        assert not sel(element(headers={}))

    def test_negate(self):
        sel = negate(by_header("a", 1))
        assert sel(element())
        assert not sel(element(headers={"a": 1}))

    def test_priority_from(self):
        assert priority_from({"amount": 250}, "amount") == 250
        assert priority_from({"amount": 2.5}, "amount", scale=10) == 25
        assert priority_from({}, "amount") == 0
        assert priority_from({"amount": "n/a"}, "amount") == 0
