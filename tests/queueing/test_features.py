"""Queue sets, alert thresholds, redirection, start-on-arrival,
join triggers (Section 9 product features)."""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import QueueEmpty
from repro.queueing.features import (
    AlertThreshold,
    JoinTrigger,
    QueueSet,
    Redirection,
    StartOnArrival,
)
from repro.queueing.repository import QueueRepository
from repro.storage.disk import MemDisk


@pytest.fixture
def repo():
    return QueueRepository("r", MemDisk())


class TestQueueSet:
    def test_requires_members(self):
        with pytest.raises(ValueError):
            QueueSet([])

    def test_dequeues_from_any_member(self, repo):
        q1, q2 = repo.create_queue("q1"), repo.create_queue("q2")
        with repo.tm.transaction() as txn:
            q2.enqueue(txn, "only in q2")
        qset = QueueSet([q1, q2])
        with repo.tm.transaction() as txn:
            member, element = qset.dequeue(txn)
        assert member is q2
        assert element.body == "only in q2"

    def test_round_robin_no_starvation(self, repo):
        q1, q2 = repo.create_queue("q1"), repo.create_queue("q2")
        with repo.tm.transaction() as txn:
            for i in range(3):
                q1.enqueue(txn, f"a{i}")
                q2.enqueue(txn, f"b{i}")
        qset = QueueSet([q1, q2])
        sources = []
        for _ in range(6):
            with repo.tm.transaction() as txn:
                member, _ = qset.dequeue(txn)
            sources.append(member.name)
        assert set(sources) == {"q1", "q2"}

    def test_empty_set_raises(self, repo):
        qset = QueueSet([repo.create_queue("q1")])
        with pytest.raises(QueueEmpty):
            with repo.tm.transaction() as txn:
                qset.dequeue(txn)

    def test_depth_sums_members(self, repo):
        q1, q2 = repo.create_queue("q1"), repo.create_queue("q2")
        with repo.tm.transaction() as txn:
            q1.enqueue(txn, 1)
            q2.enqueue(txn, 2)
            q2.enqueue(txn, 3)
        assert QueueSet([q1, q2]).depth() == 3


class TestAlertThreshold:
    def test_fires_on_crossing(self, repo):
        q = repo.create_queue("q")
        fired = []
        AlertThreshold(q, 2, lambda queue, depth: fired.append(depth))
        with repo.tm.transaction() as txn:
            q.enqueue(txn, 1)
        assert fired == []
        with repo.tm.transaction() as txn:
            q.enqueue(txn, 2)
        assert fired == [2]

    def test_does_not_refire_while_above(self, repo):
        q = repo.create_queue("q")
        fired = []
        AlertThreshold(q, 2, lambda queue, depth: fired.append(depth))
        with repo.tm.transaction() as txn:
            for i in range(4):
                q.enqueue(txn, i)
        assert len(fired) == 1

    def test_rearms_after_draining(self, repo):
        q = repo.create_queue("q")
        fired = []
        AlertThreshold(q, 2, lambda queue, depth: fired.append(depth))
        with repo.tm.transaction() as txn:
            q.enqueue(txn, 1)
            q.enqueue(txn, 2)
        for _ in range(2):
            with repo.tm.transaction() as txn:
                q.dequeue(txn)
        with repo.tm.transaction() as txn:
            q.enqueue(txn, 3)  # depth 1: re-arms, below threshold
        with repo.tm.transaction() as txn:
            q.enqueue(txn, 4)  # depth 2: fires again
        assert len(fired) == 2

    def test_threshold_must_be_positive(self, repo):
        with pytest.raises(ValueError):
            AlertThreshold(repo.create_queue("q"), 0, lambda q, d: None)


class TestRedirection:
    def test_forwards_new_elements(self, repo):
        src, dst = repo.create_queue("src"), repo.create_queue("dst")
        Redirection(src, dst)
        with repo.tm.transaction() as txn:
            eid = src.enqueue(txn, "follow me")
        assert src.depth() == 0
        assert dst.depth() == 1
        assert dst.read(eid).body == "follow me"  # eid preserved

    def test_catch_up_moves_existing(self, repo):
        src, dst = repo.create_queue("src"), repo.create_queue("dst")
        with repo.tm.transaction() as txn:
            src.enqueue(txn, "pre-existing")
        redirection = Redirection(src, dst)
        moved = redirection.catch_up()
        assert moved == 1
        assert dst.depth() == 1

    def test_chained_redirection(self, repo):
        a, b, c = (repo.create_queue(n) for n in ("a", "b", "c"))
        Redirection(a, b)
        Redirection(b, c)
        with repo.tm.transaction() as txn:
            a.enqueue(txn, "hop hop")
        assert c.depth() == 1


class TestStartOnArrival:
    def test_worker_started_and_processes(self, repo):
        q = repo.create_queue("q")
        processed = []
        done = threading.Event()

        def worker(queue):
            with repo.tm.transaction() as txn:
                processed.append(queue.dequeue(txn).body)
            done.set()

        StartOnArrival(q, worker, max_tasks=1)
        with repo.tm.transaction() as txn:
            q.enqueue(txn, "job")
        assert done.wait(timeout=5)
        assert processed == ["job"]

    def test_task_limit_respected(self, repo):
        q = repo.create_queue("q")
        barrier = threading.Event()
        active_high_water = []
        lock = threading.Lock()
        active = [0]

        def worker(queue):
            with lock:
                active[0] += 1
                active_high_water.append(active[0])
            barrier.wait(timeout=2)
            with lock:
                active[0] -= 1

        starter = StartOnArrival(q, worker, max_tasks=2)
        for i in range(5):
            with repo.tm.transaction() as txn:
                q.enqueue(txn, i)
        time.sleep(0.2)
        barrier.set()
        time.sleep(0.2)
        assert max(active_high_water) <= 2
        assert starter.started_tasks <= 5


class TestJoinTrigger:
    def test_fires_when_all_replies_visible(self, repo):
        q = repo.create_queue("join")
        joined = []
        JoinTrigger(q, "rid-1", 2, lambda replies: joined.append(len(replies)))
        with repo.tm.transaction() as txn:
            q.enqueue(txn, "r1", headers={"corr": "rid-1"})
        assert joined == []
        with repo.tm.transaction() as txn:
            q.enqueue(txn, "r2", headers={"corr": "rid-1"})
        assert joined == [2]

    def test_ignores_other_correlations(self, repo):
        q = repo.create_queue("join")
        joined = []
        JoinTrigger(q, "rid-1", 1, lambda replies: joined.append(1))
        with repo.tm.transaction() as txn:
            q.enqueue(txn, "other", headers={"corr": "rid-2"})
        assert joined == []

    def test_catches_up_with_existing_replies(self, repo):
        q = repo.create_queue("join")
        with repo.tm.transaction() as txn:
            q.enqueue(txn, "r1", headers={"corr": "rid-1"})
            q.enqueue(txn, "r2", headers={"corr": "rid-1"})
        joined = []
        JoinTrigger(q, "rid-1", 2, lambda replies: joined.append(len(replies)))
        assert joined == [2]

    def test_fires_once(self, repo):
        q = repo.create_queue("join")
        joined = []
        JoinTrigger(q, "rid-1", 1, lambda replies: joined.append(1))
        with repo.tm.transaction() as txn:
            q.enqueue(txn, "r1", headers={"corr": "rid-1"})
            q.enqueue(txn, "r1-dup", headers={"corr": "rid-1"})
        assert joined == [1]

    def test_declining_action_rearms(self, repo):
        q = repo.create_queue("join")
        calls = []

        def action(replies):
            calls.append(len(replies))
            return len(calls) >= 2  # decline the first firing

        trigger = JoinTrigger(q, "rid-1", 1, action)
        with repro_enqueue(repo, q, "a", "rid-1"):
            pass
        assert not trigger.fired
        with repro_enqueue(repo, q, "b", "rid-1"):
            pass
        assert trigger.fired
        # The re-fired action sees every observed reply so far.
        assert calls == [1, 2]

    def test_expected_must_be_positive(self, repo):
        with pytest.raises(ValueError):
            JoinTrigger(repo.create_queue("q"), "r", 0, lambda r: None)


class repro_enqueue:
    """Tiny helper: enqueue-and-commit as a context manager."""

    def __init__(self, repo, queue, body, corr):
        with repo.tm.transaction() as txn:
            queue.enqueue(txn, body, headers={"corr": corr})

    def __enter__(self):
        return self

    def __exit__(self, *args):
        return False
