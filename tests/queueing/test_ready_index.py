"""Ready-index / header-index selection equivalence.

The hot-path dequeue reads a heap of AVAILABLE slots (``_select_ready``)
and equality selectors over indexed headers read the header hash index
(``_select_indexed``); the seed behaviour is the full ordered scan
(``_select_scan``).  These tests pin the load-bearing claim of the
optimization: **every path selects exactly the element the scan would
have selected**, for any interleaving of enqueues, transactional
dequeues, aborts, kills, and crash/restarts, in both dequeue modes.

The property test runs the same operation script against two
repositories — one with the indexes live, one with selection forced
through the seed scan — and asserts the dequeue outcomes (element
identity, QueueEmpty, ElementLockedError) stay in lockstep, including
after recovery rebuilds the indexes.
"""

from __future__ import annotations

import types

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ElementLockedError, KillFailedError, QueueEmpty
from repro.queueing.queue import DequeueMode, RecoverableQueue
from repro.queueing.repository import QueueRepository
from repro.queueing.selectors import by_header
from repro.storage.disk import MemDisk

RTYPES = ("alpha", "beta", "gamma")


def _force_scan(queue: RecoverableQueue) -> None:
    """Route every selection of ``queue`` through the seed scan."""
    queue._select_slot = types.MethodType(  # type: ignore[method-assign]
        lambda self, txn, selector: RecoverableQueue._select_scan(
            self, txn, selector
        ),
        queue,
    )


class _Sys:
    """One repository + queue under the scripted workload."""

    def __init__(self, name: str, mode: str, force_scan: bool):
        self.disk = MemDisk()
        self.name = name
        self.mode = mode
        self.force_scan = force_scan
        self.open_txns: list = []
        self.repo: QueueRepository
        self.q: RecoverableQueue
        self._open(fresh=True)

    def _open(self, fresh: bool) -> None:
        self.repo = QueueRepository(self.name, self.disk)
        if fresh:
            self.q = self.repo.create_queue(
                "q", mode=DequeueMode(self.mode), index_headers=("rid",)
            )
        else:
            self.q = self.repo.get_queue("q")
        if self.force_scan:
            _force_scan(self.q)

    def crash(self) -> None:
        self.open_txns.clear()
        self.disk.crash()
        self.disk.recover()
        self._open(fresh=False)

    def enqueue(self, priority: int, rtype: str, commit: bool):
        txn = self.repo.tm.begin()
        eid = self.q.enqueue(
            txn, f"body-{rtype}", priority=priority, headers={"rid": rtype}
        )
        if commit:
            self.repo.tm.commit(txn)
        else:
            self.repo.tm.abort(txn)
        return eid if commit else None

    def dequeue(self, selector_rtype: str | None, outcome: str):
        """Returns a comparable outcome tag for the lockstep assert."""
        selector = (
            None if selector_rtype is None else by_header("rid", selector_rtype)
        )
        txn = self.repo.tm.begin()
        try:
            element = self.q.dequeue(txn, selector=selector)
        except QueueEmpty:
            self.repo.tm.abort(txn)
            return ("empty",)
        except ElementLockedError:
            self.repo.tm.abort(txn)
            return ("locked",)
        if outcome == "commit":
            self.repo.tm.commit(txn)
        elif outcome == "abort":
            self.repo.tm.abort(txn)
        else:  # hold: leaves the element DEQ_PENDING
            self.open_txns.append(txn)
        return ("ok", element.eid, element.body)

    def close(self, index: int, commit: bool):
        if not self.open_txns:
            return ("none",)
        txn = self.open_txns.pop(index % len(self.open_txns))
        try:
            if commit:
                self.repo.tm.commit(txn)
            else:
                self.repo.tm.abort(txn)
        except Exception as exc:  # externally aborted by a kill
            return ("err", type(exc).__name__)
        return ("closed", commit)

    def kill(self, eid: int):
        try:
            return ("kill", self.q.kill_element(eid))
        except KillFailedError:
            return ("killfail",)

    def drain(self) -> list[tuple[int, object]]:
        for txn in self.open_txns:
            try:
                self.repo.tm.abort(txn)
            except Exception:
                pass
        self.open_txns.clear()
        order = []
        while True:
            txn = self.repo.tm.begin()
            try:
                element = self.q.dequeue(txn)
            except QueueEmpty:
                self.repo.tm.abort(txn)
                return order
            self.repo.tm.commit(txn)
            order.append((element.eid, element.body))


ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("enq"), st.integers(0, 3), st.sampled_from(RTYPES),
            st.booleans(),
        ),
        st.tuples(
            st.just("deq"),
            st.sampled_from([None, *RTYPES]),
            st.sampled_from(["commit", "abort", "hold"]),
        ),
        st.tuples(st.just("close"), st.integers(0, 5), st.booleans()),
        st.tuples(st.just("kill"), st.integers(1, 12)),
        st.tuples(st.just("crash")),
    ),
    max_size=40,
)


@settings(max_examples=60, deadline=None)
@given(ops=ops, mode=st.sampled_from(["skip_locked", "strict"]))
def test_indexed_selection_matches_seed_scan(ops, mode):
    fast = _Sys("f", mode, force_scan=False)
    ref = _Sys("r", mode, force_scan=True)
    for op in ops:
        if op[0] == "enq":
            _, priority, rtype, commit = op
            assert fast.enqueue(priority, rtype, commit) == ref.enqueue(
                priority, rtype, commit
            )
        elif op[0] == "deq":
            _, rtype, outcome = op
            assert fast.dequeue(rtype, outcome) == ref.dequeue(rtype, outcome)
        elif op[0] == "close":
            _, index, commit = op
            assert fast.close(index, commit) == ref.close(index, commit)
        elif op[0] == "kill":
            assert fast.kill(op[1]) == ref.kill(op[1])
        else:
            fast.crash()
            ref.crash()
    # Full remaining order is byte-identical, across the restart that
    # rebuilt the fast system's ready index from the recovered state.
    fast.crash()
    ref.crash()
    assert fast.drain() == ref.drain()


class TestIndexedSelectorPath:
    def _repo(self):
        repo = QueueRepository("ix", MemDisk())
        q = repo.create_queue("q", index_headers=("rid",))
        return repo, q

    def test_indexed_selector_returns_same_element_as_scan(self):
        repo, q = self._repo()
        with repo.tm.transaction() as txn:
            for i, rtype in enumerate(["beta", "alpha", "beta", "alpha"]):
                q.enqueue(txn, i, priority=i % 2, headers={"rid": rtype})
        selector = by_header("rid", "alpha")
        txn = repo.tm.begin()
        via_index = q.dequeue(txn, selector=selector)
        repo.tm.abort(txn)
        _force_scan(q)
        txn = repo.tm.begin()
        via_scan = q.dequeue(txn, selector=selector)
        repo.tm.abort(txn)
        assert (via_index.eid, via_index.body) == (via_scan.eid, via_scan.body)

    def test_unindexed_header_selector_falls_back_to_scan(self):
        repo, q = self._repo()
        with repo.tm.transaction() as txn:
            q.enqueue(txn, "x", headers={"rid": "a", "other": "z"})
        with repo.tm.transaction() as txn:
            element = q.dequeue(txn, selector=by_header("other", "z"))
        assert element.body == "x"

    def test_unhashable_selector_value_matches_nothing(self):
        repo, q = self._repo()
        with repo.tm.transaction() as txn:
            q.enqueue(txn, "x", headers={"rid": "a"})
        txn = repo.tm.begin()
        try:
            q.dequeue(txn, selector=by_header("rid", ["un", "hashable"]))
            raise AssertionError("expected QueueEmpty")
        except QueueEmpty:
            repo.tm.abort(txn)
