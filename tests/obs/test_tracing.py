"""Span tracer: parenting, wire context, timeline, no-op mode."""

from __future__ import annotations

from repro.obs.tracing import (
    CTX_SPAN,
    CTX_TRACE,
    NULL_SPAN,
    NULL_TRACER,
    SpanTracer,
)


class TestSpanBasics:
    def test_start_and_end(self):
        tracer = SpanTracer()
        span = tracer.start_span("op", trace_id="r1")
        assert span.status == "open"
        assert span.duration is None
        span.end()
        assert span.status == "ok"
        assert span.duration is not None and span.duration >= 0

    def test_end_is_idempotent(self):
        tracer = SpanTracer()
        span = tracer.start_span("op")
        span.end("aborted")
        span.end("ok")
        assert span.status == "aborted"

    def test_attrs_and_events(self):
        tracer = SpanTracer()
        span = tracer.start_span("op", queue="q1")
        span.set_attr("eid", 7)
        span.annotate("txn.committed", status="ok")
        assert span.attrs == {"queue": "q1", "eid": 7}
        assert span.events[0][1] == "txn.committed"

    def test_context_manager_sets_error_status(self):
        tracer = SpanTracer()
        try:
            with tracer.start_span("op") as span:
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert span.status == "error"


class TestParenting:
    def test_nested_spans_parent_implicitly(self):
        tracer = SpanTracer()
        with tracer.start_span("outer", trace_id="r1") as outer:
            with tracer.start_span("inner") as inner:
                assert tracer.current_span() is inner
            assert tracer.current_span() is outer
        assert tracer.current_span() is None
        assert inner.parent_id == outer.span_id
        assert inner.trace_id == "r1"  # trace id inherits from parent

    def test_explicit_span_parent(self):
        tracer = SpanTracer()
        parent = tracer.start_span("p", trace_id="r1")
        child = tracer.start_span("c", parent=parent)
        assert child.parent_id == parent.span_id
        assert child.trace_id == "r1"

    def test_wire_context_round_trip(self):
        tracer = SpanTracer()
        sender = tracer.start_span("send", trace_id="c1#1")
        ctx = sender.context()
        assert ctx == {CTX_TRACE: "c1#1", CTX_SPAN: sender.span_id}
        # "another process": a fresh tracer stitches via the dict
        consumer = SpanTracer()
        child = consumer.start_span("process", parent=ctx)
        assert child.trace_id == "c1#1"
        assert child.parent_id == sender.span_id

    def test_adopt_context_reparents(self):
        tracer = SpanTracer()
        span = tracer.start_span("dequeue")
        span.adopt_context({CTX_TRACE: "r9", CTX_SPAN: "s42"})
        assert span.trace_id == "r9"
        assert span.parent_id == "s42"
        span.adopt_context(None)  # no-op
        assert span.trace_id == "r9"

    def test_use_span_pushes_without_ending(self):
        tracer = SpanTracer()
        span = tracer.start_span("server.process", trace_id="r1")
        with tracer.use_span(span):
            child = tracer.start_span("queue.enqueue")
            child.end()
        assert span.status == "open"  # use_span must not end it
        assert child.parent_id == span.span_id
        span.end()


class TestTracerQueries:
    def test_spans_filtered_by_trace_and_name(self):
        tracer = SpanTracer()
        tracer.start_span("a", trace_id="r1").end()
        tracer.start_span("b", trace_id="r1").end()
        tracer.start_span("a", trace_id="r2").end()
        assert len(tracer.spans()) == 3
        assert len(tracer.spans(trace_id="r1")) == 2
        assert len(tracer.spans(name="a")) == 2
        assert len(tracer.spans(trace_id="r2", name="a")) == 1

    def test_trace_ids_first_seen_order(self):
        tracer = SpanTracer()
        for tid in ("r2", "r1", "r2"):
            tracer.start_span("x", trace_id=tid)
        assert tracer.trace_ids() == ["r2", "r1"]

    def test_event_is_zero_duration(self):
        tracer = SpanTracer()
        ev = tracer.event("queue.error_move", trace_id="r1", queue="q")
        assert ev.duration == 0.0
        assert ev.status == "event"

    def test_bounded_drops_oldest(self):
        tracer = SpanTracer(max_spans=10)
        for i in range(11):
            tracer.start_span("s", trace_id=f"t{i}")
        assert len(tracer) <= 10
        remaining = tracer.trace_ids()
        assert "t10" in remaining and "t0" not in remaining

    def test_timeline_structure(self):
        tracer = SpanTracer()
        with tracer.start_span("clerk.send", trace_id="r1", client="c1") as send:
            tracer.start_span("queue.enqueue", queue="req.q").end()
        send.end()
        text = tracer.timeline("r1")
        lines = text.splitlines()
        assert lines[0] == "trace r1"
        assert "clerk.send" in text and "queue.enqueue" in text
        # child indented deeper than parent
        send_line = next(line for line in lines if "clerk.send" in line)
        enq_line = next(line for line in lines if "queue.enqueue" in line)
        assert enq_line.index("queue.enqueue") > send_line.index("clerk.send")

    def test_timeline_missing_trace(self):
        tracer = SpanTracer()
        assert "no spans" in tracer.timeline("nope")

    def test_to_records(self):
        tracer = SpanTracer()
        span = tracer.start_span("op", trace_id="r1", queue="q")
        span.annotate("point", n=1)
        span.end()
        (record,) = tracer.to_records("r1")
        assert record["name"] == "op"
        assert record["trace_id"] == "r1"
        assert record["attrs"] == {"queue": "q"}
        assert record["events"][0]["name"] == "point"
        assert record["duration"] is not None


class TestNoOpMode:
    def test_null_tracer_hands_out_null_span(self):
        assert NULL_TRACER.enabled is False
        span = NULL_TRACER.start_span("op", trace_id="r1")
        assert span is NULL_SPAN
        assert NULL_TRACER.event("x") is NULL_SPAN
        assert NULL_TRACER.current_span() is None
        assert len(NULL_TRACER) == 0

    def test_null_span_absorbs_everything(self):
        with NULL_SPAN as span:
            span.annotate("x")
            span.set_attr("k", 1)
            span.adopt_context({CTX_TRACE: "r"})
        span.end("aborted")
        assert span.context() is None  # senders skip header injection
        assert span.status == "open"  # nothing sticks

    def test_null_use_span(self):
        with NULL_TRACER.use_span(NULL_SPAN) as span:
            assert span is NULL_SPAN
