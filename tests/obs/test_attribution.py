"""Commit-pipeline phase timings, queue age, and recovery-progress
metrics — the latency-attribution side of the observability layer."""

from __future__ import annotations

import threading

from repro.obs import Observability
from repro.queueing.placement import PinnedPlacement
from repro.queueing.repository import QueueRepository
from repro.queueing.sharded import ShardedRepository
from repro.storage.disk import MemDisk
from repro.storage.groupcommit import GroupCommitConfig


def _hist(obs: Observability, name: str, **labels):
    family = obs.metrics.snapshot().get(name)
    assert family is not None, f"metric {name} was never registered"
    for series in family["series"]:
        if all(series["labels"].get(k) == v for k, v in labels.items()):
            return series
    return None


class TestCommitPhaseTimings:
    def test_wal_append_and_force_are_timed(self):
        obs = Observability()
        repo = QueueRepository("node", MemDisk(), obs=obs)
        table = repo.create_table("t")
        for i in range(3):
            with repo.tm.transaction() as txn:
                table.put(txn, f"k{i}", i)
        append = _hist(obs, "wal_append_seconds", area="node.log")
        force = _hist(obs, "wal_force_seconds", area="node.log")
        assert append["count"] >= 3 and append["sum"] >= 0.0
        assert force["count"] >= 3

    def test_group_commit_roles_are_timed(self):
        obs = Observability()
        repo = QueueRepository(
            "node", MemDisk(), obs=obs,
            group_commit=GroupCommitConfig(max_wait=0.002, max_batch=8),
        )
        table = repo.create_table("t")
        errors: list[BaseException] = []

        def committer(tid: int) -> None:
            try:
                for i in range(20):
                    with repo.tm.transaction() as txn:
                        table.put(txn, f"k{tid}-{i}", i)
            except BaseException as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        workers = [threading.Thread(target=committer, args=(t,))
                   for t in range(4)]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        assert not errors
        leader = _hist(obs, "wal_group_commit_wait_seconds",
                       area="node.log", role="leader")
        follower = _hist(obs, "wal_group_commit_wait_seconds",
                         area="node.log", role="follower")
        assert leader["count"] > 0
        # 80 concurrent commits through a 2ms window: someone piggybacked
        assert follower is not None and follower["count"] > 0
        # every sync was either led or piggybacked (the +1 is the
        # create_table DDL commit before the workers started)
        assert leader["count"] + follower["count"] == 81

    def test_two_phase_rounds_are_timed(self):
        obs = Observability()
        repo = ShardedRepository(
            "node", [MemDisk(), MemDisk()], obs=obs,
            placement=PinnedPlacement({"a": 0, "b": 1}),
        )
        ta, tb = repo.create_table("a"), repo.create_table("b")
        with repo.tm.transaction() as txn:
            ta.put(txn, "k", 1)
            tb.put(txn, "k", 2)
        prepare = _hist(obs, "twophase_prepare_seconds", area="node.s0.log")
        decide = _hist(obs, "twophase_decide_seconds", area="node.s0.log")
        commit = _hist(obs, "twophase_commit_seconds", node="node")
        assert prepare["count"] == 2  # one per branch
        assert decide["count"] == 1
        assert commit["count"] == 1
        kinds = [e["kind"] for e in obs.flight.events()]
        assert "2pc.decision" in kinds
        assert kinds.count("txn.prepare") == 2

    def test_queue_age_spans_enqueue_to_dequeue(self):
        obs = Observability()
        repo = QueueRepository("node", MemDisk(), obs=obs)
        q = repo.create_queue("req")
        with repo.tm.transaction() as txn:
            q.enqueue(txn, "payload")
        with repo.tm.transaction() as txn:
            q.dequeue(txn)
        age = _hist(obs, "queue_age_seconds", queue="req")
        assert age["count"] == 1
        assert age["sum"] >= 0.0


class TestRecoveryProgressMetrics:
    def test_full_replay_after_restart(self):
        disk = MemDisk()
        repo = QueueRepository("node", disk, obs=Observability())
        table = repo.create_table("t")
        for i in range(5):
            with repo.tm.transaction() as txn:
                table.put(txn, f"k{i}", i)
        repo.close()

        obs = Observability()
        reopened = QueueRepository("node", disk, obs=obs)
        reopened.close()
        report = reopened.last_recovery
        assert report.replayed_records > 0

        snapshot = obs.metrics.snapshot()
        records = snapshot["recovery_replayed_records_total"]["series"][0]
        replayed = snapshot["recovery_replayed_bytes_total"]["series"][0]
        duration = snapshot["recovery_duration_seconds"]["series"][0]
        assert records["value"] == report.replayed_records
        assert replayed["value"] > 0
        assert duration["count"] == 1 and duration["sum"] > 0.0
        mode = _hist(obs, "recovery_mode_total",
                     repo="node", mode="full-replay")
        assert mode["value"] == 1
        (event,) = [e for e in obs.flight.events()
                    if e["kind"] == "recovery.complete"]
        assert event["mode"] == "full-replay"
        assert event["records"] == report.replayed_records

    def test_checkpoint_suffix_classification(self):
        disk = MemDisk()
        obs = Observability()
        repo = QueueRepository("node", disk, obs=obs)
        table = repo.create_table("t")
        for i in range(5):
            with repo.tm.transaction() as txn:
                table.put(txn, f"k{i}", i)
        repo.checkpoint()
        stall = _hist(obs, "checkpoint_stall_seconds", repo="node")
        assert stall["count"] == 1
        repo.close()

        obs2 = Observability()
        reopened = QueueRepository("node", disk, obs=obs2)
        reopened.close()
        assert reopened.last_recovery.checkpoint_loaded
        mode = _hist(obs2, "recovery_mode_total",
                     repo="node", mode="checkpoint-suffix")
        assert mode["value"] == 1

    def test_parallel_shard_recovery_reports_per_shard_and_wall(self):
        disks = [MemDisk(), MemDisk()]
        repo = ShardedRepository(
            "node", disks, obs=Observability(),
            placement=PinnedPlacement({"a": 0, "b": 1}),
        )
        ta, tb = repo.create_table("a"), repo.create_table("b")
        with repo.tm.transaction() as txn:
            ta.put(txn, "k", 1)
            tb.put(txn, "k", 2)
        repo.close()

        obs = Observability()
        reopened = ShardedRepository(
            "node", disks, obs=obs,
            placement=PinnedPlacement({"a": 0, "b": 1}),
        )
        reopened.close()
        for shard in ("node.s0", "node.s1"):
            duration = _hist(obs, "recovery_duration_seconds", repo=shard)
            assert duration["count"] == 1
        wall = _hist(obs, "sharded_recovery_wall_seconds", node="node")
        assert wall["count"] == 1 and wall["sum"] > 0.0
