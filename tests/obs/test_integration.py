"""End-to-end observability over a live TPSystem.

The acceptance scenario of the observability layer: one request whose
first processing attempt aborts must yield a span timeline showing
send -> enqueue -> dequeue -> aborted attempt -> re-dequeue -> commit
-> reply, with metrics consistent with that story.
"""

from __future__ import annotations

import pytest

from repro import (
    Observability,
    Request,
    TPSystem,
    get_observability,
    set_observability,
)


def _send(system: TPSystem, clerk, rid: str, body) -> None:
    request = Request(
        rid=rid,
        body=body,
        client_id=clerk.client_id,
        reply_to=system.reply_queue_name(clerk.client_id),
    )
    clerk.send(request, rid)


class TestRequestLifetimeTrace:
    def test_abort_then_commit_timeline_and_metrics(self):
        obs = Observability()
        system = TPSystem(obs=obs)
        attempts = []

        def flaky(txn, request):
            attempts.append(request.rid)
            if len(attempts) == 1:
                raise RuntimeError("first attempt dies")
            return {"ok": True}

        server = system.server("s1", flaky)
        clerk = system.clerk("c1")
        clerk.connect()
        _send(system, clerk, "c1#1", {"op": "test"})

        with pytest.raises(RuntimeError):
            server.process_one()  # attempt 1 aborts, request requeued
        assert server.process_one()  # attempt 2 commits
        reply = clerk.receive(timeout=5.0)
        assert reply.rid == "c1#1"

        spans = obs.tracer.spans(trace_id="c1#1")
        names = [s.name for s in spans]
        for expected in ("clerk.send", "queue.enqueue", "queue.dequeue",
                         "server.process", "clerk.receive"):
            assert expected in names, f"missing {expected} in {names}"

        # one aborted attempt, then one committed attempt
        process = sorted(
            obs.tracer.spans(trace_id="c1#1", name="server.process"),
            key=lambda s: s.start,
        )
        assert [s.status for s in process] == ["aborted", "ok"]
        assert process[0].attrs["attempt"] == 1
        assert process[1].attrs["attempt"] == 2
        # the committed attempt recorded the commit annotation
        assert any(e[1] == "txn.committed" for e in process[1].events)
        # request dequeued twice (abort requeues it); reply once
        dequeues = obs.tracer.spans(trace_id="c1#1", name="queue.dequeue")
        assert [s.attrs["queue"] for s in dequeues].count("req.q") == 2
        assert [s.attrs["queue"] for s in dequeues].count("reply.c1") == 1
        # every span of the trace stitched onto the same trace id
        assert all(s.trace_id == "c1#1" for s in spans)

        timeline = system.span_timeline("c1#1")
        assert timeline.startswith("trace c1#1")
        assert "[aborted]" in timeline and "[ok]" in timeline

        # -- metrics agree with the story ------------------------------
        snap = system.metrics_snapshot()

        def series(name, **labels):
            for entry in snap[name]["series"]:
                if all(entry["labels"].get(k) == v for k, v in labels.items()):
                    return entry
            raise AssertionError(f"no series {labels} in {name}")

        assert series("requests_sent_total", client="c1")["value"] == 1.0
        assert series("requests_committed_total", server="s1")["value"] == 1.0
        assert series("server_aborts_total", server="s1")["value"] == 1.0
        assert series("txn_aborts_total", node="reqnode")["value"] >= 1.0
        assert series("txn_commits_total", node="reqnode")["value"] >= 1.0
        assert series("replies_received_total", client="c1")["value"] == 1.0
        # request consumed, reply consumed: both queues drained
        assert series("queue_depth", queue="req.q")["value"] == 0.0
        assert series("queue_depth", queue="reply.c1")["value"] == 0.0
        assert series("queue_enqueues_total", queue="req.q")["value"] == 1.0
        assert series("queue_dequeues_total", queue="req.q")["value"] == 2.0
        assert series("queue_dequeue_aborts_total", queue="req.q")["value"] == 1.0
        # the WAL saw appends on the repo's log area
        assert snap["wal_appends_total"]["series"][0]["value"] > 0

    def test_error_queue_trip_is_traced(self):
        obs = Observability()
        system = TPSystem(obs=obs, max_aborts=1)

        def poison(txn, request):
            raise RuntimeError("always dies")

        server = system.server("s1", poison)
        clerk = system.clerk("c1")
        clerk.connect()
        _send(system, clerk, "c1#1", {"op": "poison"})

        with pytest.raises(RuntimeError):
            server.process_one()
        # abort_count reached max_aborts: the request is on the error queue
        assert system.queue_depths()["req.err"] == 1
        moves = obs.tracer.spans(trace_id="c1#1", name="queue.error_move")
        assert len(moves) == 1
        assert moves[0].attrs["error_queue"] == "req.err"
        snap = system.metrics_snapshot()
        (entry,) = [
            s for s in snap["queue_error_moves_total"]["series"]
            if s["labels"]["queue"] == "req.q"
        ]
        assert entry["value"] == 1.0


class TestDisabledMode:
    def test_default_system_records_nothing(self):
        system = TPSystem()  # global default observability is disabled
        server = system.server("s1", lambda txn, req: {"ok": True})
        clerk = system.clerk("c1")
        clerk.connect()
        _send(system, clerk, "c1#1", {})
        assert server.process_one()
        clerk.receive(timeout=5.0)
        assert system.metrics_snapshot() == {}
        assert len(system.obs.tracer) == 0
        assert "no spans" in system.span_timeline("c1#1")

    def test_disabled_sends_no_trace_headers(self):
        system = TPSystem()
        clerk = system.clerk("c1")
        clerk.connect()
        _send(system, clerk, "c1#1", {})
        queue = system.request_repo.get_queue(system.request_queue)
        element = queue.read(clerk.last_request_eid)
        assert "trace" not in element.headers


class TestGlobalObservability:
    def test_set_observability_threads_through(self):
        obs = Observability()
        set_observability(obs)
        try:
            assert get_observability() is obs
            system = TPSystem()  # no explicit obs: picks up the global
            assert system.obs is obs
            server = system.server("s1", lambda txn, req: {"ok": True})
            clerk = system.clerk("c1")
            clerk.connect()
            _send(system, clerk, "c1#1", {})
            assert server.process_one()
            assert obs.metrics.snapshot()["requests_committed_total"]
        finally:
            set_observability(None)
        assert get_observability().enabled is False
