"""The black-box flight recorder: ring semantics, dumps, and the
auto-dump hooks on WAL panic."""

from __future__ import annotations

import json
import os

import pytest

from repro.errors import DiskIOError
from repro.obs import NULL_FLIGHT, FlightRecorder, Observability
from repro.obs.flight import NullFlightRecorder, read_flight_dump
from repro.queueing.repository import QueueRepository
from repro.storage.disk import MemDisk
from repro.storage.faults import DiskFault, FaultyDisk


class TestRing:
    def test_events_keep_order_and_sequence(self):
        flight = FlightRecorder(capacity=8)
        flight.record("a", x=1)
        flight.record("b", x=2)
        events = flight.events()
        assert [e["kind"] for e in events] == ["a", "b"]
        assert [e["seq"] for e in events] == [1, 2]
        assert events[0]["x"] == 1

    def test_bounded_ring_drops_oldest(self):
        flight = FlightRecorder(capacity=3)
        for n in range(5):
            flight.record("e", n=n)
        events = flight.events()
        assert len(flight) == 3
        assert [e["n"] for e in events] == [2, 3, 4]
        assert flight.dropped == 2

    def test_event_kind_is_never_masked_by_a_field(self):
        flight = FlightRecorder()
        flight.record("disk.fault", kind="io_error")
        (event,) = flight.events()
        assert event["kind"] == "disk.fault"

    def test_clear(self):
        flight = FlightRecorder(capacity=2)
        for _ in range(4):
            flight.record("e")
        flight.clear()
        assert len(flight) == 0 and flight.dropped == 0


class TestDump:
    def test_dump_round_trips(self, tmp_path):
        flight = FlightRecorder(name="box")
        flight.record("txn.commit", txn="7")
        flight.record("wal.force", lsn=42)
        path = flight.dump(str(tmp_path / "d.jsonl"), reason="test")
        header, events = read_flight_dump(path)
        assert header["flight"] == "box" and header["reason"] == "test"
        assert header["events"] == 2
        assert [e["kind"] for e in events] == ["txn.commit", "wal.force"]
        assert events[1]["lsn"] == 42
        assert flight.last_dump_path == path

    def test_auto_dump_without_dir_is_a_no_op(self, tmp_path):
        flight = FlightRecorder()
        flight.record("e")
        assert flight.auto_dump("why") is None
        assert os.listdir(tmp_path) == []

    def test_auto_dump_names_carry_reason_and_counter(self, tmp_path):
        flight = FlightRecorder(name="box", auto_dump_dir=str(tmp_path))
        flight.record("e")
        first = flight.auto_dump("wal panic!")
        second = flight.auto_dump("wal panic!")
        assert first != second
        assert os.path.basename(first) == "box-001-wal-panic-.jsonl"
        assert flight.dump_paths == [first, second]

    def test_failed_dump_is_swallowed(self, tmp_path):
        flight = FlightRecorder(auto_dump_dir=str(tmp_path / "missing" / "x"))
        flight.record("e")
        assert flight.auto_dump("r") is None

    def test_headerless_dump_is_tolerated(self, tmp_path):
        path = tmp_path / "bare.jsonl"
        path.write_text(json.dumps({"seq": 1, "kind": "e"}) + "\n")
        header, events = read_flight_dump(str(path))
        assert events[0]["kind"] == "e"


class TestNullRecorder:
    def test_records_nothing(self):
        NULL_FLIGHT.record("e", x=1)
        assert len(NULL_FLIGHT) == 0
        assert NULL_FLIGHT.auto_dump("r") is None
        assert isinstance(NULL_FLIGHT, NullFlightRecorder)

    def test_disabled_observability_hands_out_null(self):
        assert Observability.disabled().flight is NULL_FLIGHT

    def test_disabled_observability_accepts_an_explicit_black_box(self):
        box = FlightRecorder()
        obs = Observability(enabled=False, flight=box)
        assert obs.flight is box


class TestWalPanicAutoDump:
    def _panicking_repo(self, tmp_path):
        obs = Observability()
        obs.flight.auto_dump_dir = str(tmp_path)
        faulty = FaultyDisk(MemDisk(), faults=[DiskFault(op="flush", hit=2)],
                            obs=obs)
        repo = QueueRepository("node", faulty, obs=obs)
        return obs, repo

    def test_panic_records_and_dumps(self, tmp_path):
        obs, repo = self._panicking_repo(tmp_path)
        table = repo.create_table("t")  # flush #1
        txn = repo.tm.begin()
        table.put(txn, "k", "v")
        with pytest.raises(DiskIOError):
            repo.tm.commit(txn)  # flush #2 fails -> panic
        kinds = [e["kind"] for e in obs.flight.events()]
        assert "wal.panic" in kinds
        dump = obs.flight.last_dump_path
        assert dump is not None and os.path.exists(dump)
        header, events = read_flight_dump(dump)
        assert header["reason"] == "wal-panic"
        panic = [e for e in events if e["kind"] == "wal.panic"]
        assert panic and panic[0]["error"] == "DiskIOError"
        # the events leading up to the failure are in the box too
        assert any(e["kind"] == "wal.force" for e in events)
        assert any(e["kind"] == "disk.fault" for e in events)
