"""The latency-attribution report CLI (``python -m repro.obs.report``)."""

from __future__ import annotations

import io
import json

from repro.obs.export import write_metrics_json
from repro.obs.metrics import MetricsRegistry
from repro.obs.report import main, render_report

GOLDEN = """\

Commit-pipeline latency attribution
-----------------------------------
phase                           lane     count      total      mean       p95   share
lock wait                        2pl         2     4.00ms    2.00ms    2.00ms   10.0%
WAL append (buffer)              any         1    100.0us   100.0us   100.0us    0.2%
WAL force (flush)                any         1     4.00ms    4.00ms    4.00ms   10.0%
group-commit wait (leader)       any         1     1.00ms    1.00ms    1.00ms    2.5%
group-commit wait (follower)     any         1     3.00ms    3.00ms    3.00ms    7.5%
2PC prepare                      2pl         1     2.00ms    2.00ms    2.00ms    5.0%
2PC decision force               2pl         1     5.00ms    5.00ms    5.00ms   12.5%
2PC round-trip (end-to-end)      2pl         1    10.00ms   10.00ms   10.00ms   25.0%
checkpoint stall                 any         1    50.00ms   50.00ms   50.00ms  125.0%
transaction total                any         2    40.00ms   20.00ms   20.00ms  100.0%
(share = phase time / total transaction time; phases overlap — e.g. the
 WAL force happens inside the group-commit leader wait — so shares do not sum to 100%)

Concurrency-control lanes
-------------------------
node                 lane                 txns
node                 2pl                     3
node                 deterministic           5
deterministic plan batches: 2 (mean size 2.5, max 3)

Queue age (visible -> dequeued)
-------------------------------
queue                              count      mean       p95       max
req                                    1  500.00ms  500.00ms  500.00ms

Recovery
--------
repo                             runs   records      bytes  time(sum)
node                                1        12       3456     3.00ms
modes: full-replay=1
"""


def _populated_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    lock = reg.histogram("lock_wait_seconds", "lock wait")
    lock.observe(0.002)
    lock.observe(0.002)
    reg.histogram("wal_append_seconds", "append", ("area",)) \
        .labels(area="node.log").observe(0.0001)
    reg.histogram("wal_force_seconds", "force", ("area",)) \
        .labels(area="node.log").observe(0.004)
    waits = reg.histogram("wal_group_commit_wait_seconds", "gc",
                          ("area", "role"))
    waits.labels(area="node.log", role="leader").observe(0.001)
    waits.labels(area="node.log", role="follower").observe(0.003)
    reg.histogram("twophase_prepare_seconds", "p", ("area",)) \
        .labels(area="node.s0.log").observe(0.002)
    reg.histogram("twophase_decide_seconds", "d", ("area",)) \
        .labels(area="node.s0.log").observe(0.005)
    reg.histogram("twophase_commit_seconds", "c", ("node",)) \
        .labels(node="node").observe(0.01)
    reg.histogram("checkpoint_stall_seconds", "s", ("repo",)) \
        .labels(repo="node").observe(0.05)
    txn = reg.histogram("txn_duration_seconds", "t", ("node",)) \
        .labels(node="node")
    txn.observe(0.02)
    txn.observe(0.02)
    reg.histogram("queue_age_seconds", "age", ("queue",)) \
        .labels(queue="req").observe(0.5)
    reg.counter("recovery_runs_total", "r", ("repo",)) \
        .labels(repo="node").inc()
    reg.counter("recovery_replayed_records_total", "r", ("repo",)) \
        .labels(repo="node").inc(12)
    reg.counter("recovery_replayed_bytes_total", "r", ("repo",)) \
        .labels(repo="node").inc(3456)
    reg.histogram("recovery_duration_seconds", "r", ("repo",)) \
        .labels(repo="node").observe(0.003)
    reg.counter("recovery_mode_total", "r", ("repo", "mode")) \
        .labels(repo="node", mode="full-replay").inc()
    lanes = reg.counter("txn_lane_total", "lane", ("node", "lane"))
    lanes.labels(node="node", lane="2pl").inc(3)
    lanes.labels(node="node", lane="deterministic").inc(5)
    batches = reg.histogram("det_plan_batch_size", "batch", ("node",)) \
        .labels(node="node")
    batches.observe(2)
    batches.observe(3)
    return reg


class TestRendering:
    def test_golden_report(self):
        out = io.StringIO()
        render_report(_populated_registry().snapshot(), out)
        assert out.getvalue() == GOLDEN

    def test_empty_snapshot_degrades_gracefully(self):
        out = io.StringIO()
        render_report({}, out)
        text = out.getvalue()
        assert "Commit-pipeline latency attribution" in text
        assert "per-phase shares unavailable" in text

    def test_flight_tail_renders_events(self, tmp_path):
        dump = tmp_path / "flight.jsonl"
        lines = [
            {"flight": "box", "reason": "violation", "events": 3},
            {"seq": 1, "ts": 1.0, "kind": "wal.force", "lsn": 10},
            {"seq": 2, "ts": 2.0, "kind": "crash.point", "point": "wal.pre"},
            {"seq": 3, "ts": 3.0, "kind": "episode.end", "outcome": "violation"},
        ]
        dump.write_text("".join(json.dumps(l) + "\n" for l in lines))
        out = io.StringIO()
        render_report({}, out, flight_path=str(dump), tail=2)
        text = out.getvalue()
        assert "Flight recorder: box (reason: violation)" in text
        assert "... 1 earlier events omitted ..." in text
        assert "wal.force" not in text  # outside the tail
        assert "crash.point" in text and "point=wal.pre" in text
        assert "episode.end" in text and "outcome=violation" in text


class TestCli:
    def test_end_to_end_from_snapshot_file(self, tmp_path, capsys):
        path = tmp_path / "metrics.json"
        write_metrics_json(_populated_registry(), str(path))
        assert main([str(path)]) == 0
        out = capsys.readouterr().out
        assert out == GOLDEN

    def test_missing_file_is_an_error(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope.json")]) == 2
        assert "cannot read" in capsys.readouterr().err
