"""Exporters: JSONL sink, metrics JSON, Prometheus text, dashboard."""

from __future__ import annotations

import io
import json

from repro.obs.export import (
    JsonlSink,
    render_dashboard,
    render_prometheus,
    write_metrics_json,
    write_spans_jsonl,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import SpanTracer


def _populated_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("ops_total", "operations", ("queue",)).labels(queue="q1").inc(3)
    reg.gauge("depth", "queue depth").set(2)
    h = reg.histogram("lat_seconds", "latency", buckets=(0.01, 0.1))
    h.observe(0.005)
    h.observe(0.05)
    return reg


class TestJsonlSink:
    def test_writes_one_json_object_per_line(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonlSink(str(path)) as sink:
            sink.write({"a": 1})
            sink.write_many([{"b": 2}, {"c": 3}])
        lines = path.read_text().splitlines()
        assert [json.loads(line) for line in lines] == [{"a": 1}, {"b": 2}, {"c": 3}]

    def test_file_object_not_closed(self):
        buf = io.StringIO()
        with JsonlSink(buf) as sink:
            sink.write({"x": 1})
        assert not buf.closed
        assert json.loads(buf.getvalue()) == {"x": 1}


class TestSpanDump:
    def test_write_spans_jsonl(self, tmp_path):
        tracer = SpanTracer()
        tracer.start_span("a", trace_id="r1").end()
        tracer.start_span("b", trace_id="r2").end()
        path = tmp_path / "spans.jsonl"
        n = write_spans_jsonl(tracer, str(path), trace_id="r1")
        assert n == 1
        (record,) = [json.loads(line) for line in path.read_text().splitlines()]
        assert record["name"] == "a" and record["trace_id"] == "r1"


class TestMetricsJson:
    def test_round_trips(self, tmp_path):
        path = tmp_path / "metrics.json"
        write_metrics_json(_populated_registry(), str(path))
        snap = json.loads(path.read_text())
        assert snap["ops_total"]["series"][0]["value"] == 3.0
        assert snap["lat_seconds"]["series"][0]["count"] == 2


class TestPrometheus:
    def test_exposition_format(self):
        text = render_prometheus(_populated_registry())
        assert "# HELP ops_total operations" in text
        assert "# TYPE ops_total counter" in text
        assert 'ops_total{queue="q1"} 3.0' in text
        assert "depth 2.0" in text
        # histogram: cumulative buckets + sum/count
        assert 'lat_seconds_bucket{le="0.01"} 1' in text
        assert 'lat_seconds_bucket{le="0.1"} 2' in text
        assert 'lat_seconds_bucket{le="+Inf"} 2' in text
        assert "lat_seconds_count 2" in text
        assert text.endswith("\n")

    def test_empty_registry(self):
        assert render_prometheus(MetricsRegistry()) == ""


class TestDashboard:
    def test_sections_and_percentiles(self):
        text = render_dashboard(_populated_registry())
        assert text.startswith("== metrics dashboard ==")
        assert "counters:" in text and "gauges:" in text
        assert "histograms:" in text
        assert "p95=" in text and "count=2" in text
        # latency histograms (*_seconds) render in milliseconds
        assert "ms " in text or text.rstrip().endswith("ms")

    def test_unitless_histogram_not_rendered_as_ms(self):
        registry = MetricsRegistry()
        batch = registry.histogram(
            "batch_size", "committers per flush", buckets=(1, 2, 4)
        ).labels()
        batch.observe(1)
        batch.observe(4)
        text = render_dashboard(registry)
        line = next(ln for ln in text.splitlines() if "batch_size" in ln)
        assert "ms" not in line
        assert "mean=2.5" in line

    def test_multi_series_families_get_a_total_line(self):
        registry = MetricsRegistry()
        flushes = registry.counter(
            "wal_flushes_total", "forces", ("node",)
        )
        flushes.labels(node="reqnode.s0").inc(3)
        flushes.labels(node="reqnode.s1").inc(4)
        text = render_dashboard(registry)
        assert "wal_flushes_total (total of 2 series): 7" in text
        # per-series lines still follow the total
        assert 'wal_flushes_total{node="reqnode.s0"}: 3' in text

    def test_single_series_family_has_no_total_line(self):
        registry = MetricsRegistry()
        registry.counter("ops_total", "ops").labels().inc(5)
        text = render_dashboard(registry)
        assert "total of" not in text
        assert "ops_total: 5" in text

    def test_empty_registry(self):
        assert render_dashboard(MetricsRegistry()) == "(no metrics recorded)"


class TestPrometheusLabelEscaping:
    def test_special_characters_are_escaped(self):
        reg = MetricsRegistry()
        reg.counter("ops_total", "operations", ("q",)) \
            .labels(q='a"b\\c\nd').inc()
        text = render_prometheus(reg)
        assert 'ops_total{q="a\\"b\\\\c\\nd"} 1.0' in text
        # one metric line (plus HELP/TYPE): the newline did not split it
        lines = [l for l in text.splitlines() if l.startswith("ops_total{")]
        assert len(lines) == 1

    def test_backslash_is_escaped_before_quotes(self):
        reg = MetricsRegistry()
        reg.counter("ops_total", "operations", ("q",)) \
            .labels(q='\\"').inc()
        text = render_prometheus(reg)
        # raw \" must become \\\" — not \\" (which would unescape wrong)
        assert '{q="\\\\\\""}' in text

    def test_series_order_is_stable_across_renders(self):
        def build(order):
            reg = MetricsRegistry()
            metric = reg.counter("ops_total", "operations", ("q", "op"))
            for q, op in order:
                metric.labels(q=q, op=op).inc()
            return render_prometheus(reg)

        first = build([("b", "y"), ("a", "z"), ("a", "x")])
        second = build([("a", "x"), ("a", "z"), ("b", "y")])
        # insertion order must not leak into the exposition
        assert first == second
        lines = [l for l in first.splitlines() if l.startswith("ops_total{")]
        # series sort by label values in declared-labelname order (q, op)
        assert lines == [
            'ops_total{op="x",q="a"} 1.0',
            'ops_total{op="z",q="a"} 1.0',
            'ops_total{op="y",q="b"} 1.0',
        ]
