"""Metrics primitives: Counter / Gauge / Histogram / registry / no-op."""

from __future__ import annotations

import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    NULL_METRIC,
    NULL_REGISTRY,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("c_total")
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative(self):
        c = Counter("c_total")
        with pytest.raises(MetricError):
            c.inc(-1)

    def test_labeled_children_are_independent(self):
        c = Counter("ops_total", labelnames=("queue",))
        c.labels(queue="a").inc()
        c.labels(queue="a").inc()
        c.labels(queue="b").inc()
        assert c.labels(queue="a").value == 2.0
        assert c.labels(queue="b").value == 1.0

    def test_labels_is_get_or_create(self):
        c = Counter("ops_total", labelnames=("queue",))
        assert c.labels(queue="a") is c.labels(queue="a")

    def test_wrong_label_names_raise(self):
        c = Counter("ops_total", labelnames=("queue",))
        with pytest.raises(MetricError):
            c.labels(client="a")
        with pytest.raises(MetricError):
            c.inc()  # labeled family has no implicit unlabeled child

    def test_thread_safety(self):
        c = Counter("c_total")

        def work():
            for _ in range(1000):
                c.inc()

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 8000.0


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("depth")
        g.set(10)
        g.inc(5)
        g.dec(3)
        assert g.value == 12.0

    def test_can_go_negative(self):
        g = Gauge("delta")
        g.dec(2)
        assert g.value == -2.0

    def test_callback_gauge_sampled_lazily(self):
        g = Gauge("depth")
        state = {"n": 0}
        g.set_function(lambda: state["n"])
        state["n"] = 7
        assert g.value == 7.0
        state["n"] = 3
        assert g.value == 3.0

    def test_callback_errors_become_nan(self):
        g = Gauge("depth")
        g.set_function(lambda: 1 / 0)
        assert g.value != g.value  # NaN

    def test_labeled(self):
        g = Gauge("depth", labelnames=("queue",))
        g.labels(queue="q1").set(4)
        assert g.labels(queue="q1").value == 4.0


class TestHistogram:
    def test_count_sum(self):
        h = Histogram("lat", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 2.0):
            h.observe(v)
        assert h.count == 3
        assert h.sum == pytest.approx(2.55)

    def test_single_observation_quantiles_exact(self):
        h = Histogram("lat")
        h.observe(0.003)
        # clamped to observed min == max
        assert h.quantile(0.50) == pytest.approx(0.003)
        assert h.quantile(0.99) == pytest.approx(0.003)

    def test_quantiles_ordered(self):
        h = Histogram("lat")
        for i in range(1, 101):
            h.observe(i / 1000.0)  # 1ms .. 100ms
        p50, p95, p99 = h.quantile(0.5), h.quantile(0.95), h.quantile(0.99)
        assert p50 <= p95 <= p99
        assert 0.02 <= p50 <= 0.08
        assert p99 <= 0.1

    def test_empty_quantile_is_zero(self):
        h = Histogram("lat")
        assert h.quantile(0.5) == 0.0

    def test_snapshot_has_percentiles_and_buckets(self):
        h = Histogram("lat", buckets=(0.01, 0.1))
        h.observe(0.005)
        h.observe(0.05)
        snap = h.snapshot()
        series = snap["series"][0]
        assert series["count"] == 2
        assert series["buckets"] == {"0.01": 1, "0.1": 1, "+Inf": 0}
        for q in ("p50", "p95", "p99", "mean", "min", "max"):
            assert q in series

    def test_needs_buckets(self):
        with pytest.raises(MetricError):
            Histogram("lat", buckets=())

    def test_default_buckets_sorted(self):
        assert tuple(sorted(DEFAULT_BUCKETS)) == DEFAULT_BUCKETS


class TestRegistry:
    def test_get_or_create_shares_families(self):
        reg = MetricsRegistry()
        a = reg.counter("ops_total", "help", ("queue",))
        b = reg.counter("ops_total", "other help", ("queue",))
        assert a is b

    def test_kind_clash_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(MetricError):
            reg.gauge("x")

    def test_labelname_clash_raises(self):
        reg = MetricsRegistry()
        reg.counter("x", labelnames=("a",))
        with pytest.raises(MetricError):
            reg.counter("x", labelnames=("b",))

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("ops_total", "operations", ("queue",)).labels(queue="q").inc(3)
        reg.gauge("depth").set(5)
        snap = reg.snapshot()
        assert snap["ops_total"]["kind"] == "counter"
        assert snap["ops_total"]["series"] == [
            {"labels": {"queue": "q"}, "value": 3.0}
        ]
        assert snap["depth"]["series"][0]["value"] == 5.0

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        reg.reset()
        assert reg.snapshot() == {}
        assert reg.names() == []


class TestNoOpMode:
    def test_null_registry_hands_out_null_metric(self):
        assert NULL_REGISTRY.enabled is False
        assert NULL_REGISTRY.counter("x") is NULL_METRIC
        assert NULL_REGISTRY.gauge("x") is NULL_METRIC
        assert NULL_REGISTRY.histogram("x") is NULL_METRIC
        assert NULL_REGISTRY.snapshot() == {}

    def test_null_metric_absorbs_everything(self):
        m = NULL_METRIC.labels(queue="q")
        assert m is NULL_METRIC
        m.inc()
        m.dec()
        m.set(5)
        m.observe(0.1)
        m.set_function(lambda: 1)
        assert m.value == 0.0
        assert m.quantile(0.5) == 0.0
        assert m.snapshot() == {}


class TestHistogramTimer:
    def test_time_observes_elapsed_wall_time(self):
        h = Histogram("h_seconds", buckets=(0.5, 1.0))
        with h.time():
            pass
        assert h.count == 1
        assert 0.0 <= h.sum < 0.5

    def test_time_observes_on_exception(self):
        h = Histogram("h_seconds", buckets=(0.5, 1.0))
        with pytest.raises(RuntimeError):
            with h.time():
                raise RuntimeError("timed section failed")
        assert h.count == 1

    def test_labeled_child_timer(self):
        h = Histogram("h_seconds", labelnames=("q",), buckets=(0.5,))
        with h.labels(q="a").time():
            pass
        (series,) = [
            s for s in h.snapshot()["series"] if s["labels"] == {"q": "a"}
        ]
        assert series["count"] == 1

    def test_null_timer_is_a_shared_singleton(self):
        # the disabled path must not allocate per call
        first = NULL_METRIC.time()
        second = NULL_METRIC.labels(q="a").time()
        assert first is second
        with first:
            pass
