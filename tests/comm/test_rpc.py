"""RPC / one-way transport tests (Section 5's Send variants)."""

from __future__ import annotations

import pytest

from repro.comm.network import SimNetwork
from repro.comm.rpc import OneWayTransport, RpcChannel, RpcServer
from repro.errors import RpcTimeout


class TestRpcChannel:
    def test_call_round_trip(self):
        net = SimNetwork()
        RpcServer(net, "server")
        channel = RpcChannel(net, "client", "server")
        assert channel.call(lambda: 40 + 2) == 42
        # one request + one response
        assert net.stats.sent == 2

    def test_call_retries_on_loss(self):
        net = SimNetwork(seed=11, loss_rate=0.4)
        RpcServer(net, "server")
        channel = RpcChannel(net, "client", "server", max_retries=50)
        results = [channel.call(lambda: "ok") for _ in range(20)]
        assert results == ["ok"] * 20
        assert channel.retries > 0  # some loss actually happened

    def test_call_times_out_on_total_loss(self):
        net = SimNetwork(seed=1, loss_rate=1.0)
        RpcServer(net, "server")
        channel = RpcChannel(net, "client", "server", max_retries=3)
        with pytest.raises(RpcTimeout):
            channel.call(lambda: "never")

    def test_post_is_one_message(self):
        net = SimNetwork()
        server = RpcServer(net, "server")
        channel = RpcChannel(net, "client", "server")
        effects = []
        channel.post(lambda: effects.append(1))
        assert effects == [1]
        assert net.stats.sent == 1
        assert server.handled == 1

    def test_post_loss_is_silent(self):
        net = SimNetwork(seed=1, loss_rate=1.0)
        RpcServer(net, "server")
        channel = RpcChannel(net, "client", "server")
        effects = []
        channel.post(lambda: effects.append(1))  # dropped, no raise
        assert effects == []


class TestCallCorrelation:
    def test_concurrent_calls_each_get_their_own_result(self):
        # Many threads share one channel over a duplicating network:
        # the per-call id must route every (possibly duplicated)
        # response to exactly its own caller.
        import threading

        net = SimNetwork(seed=5, dup_rate=0.3)
        RpcServer(net, "server")
        channel = RpcChannel(net, "client", "server", seed=5)
        results: dict[tuple[int, int], object] = {}
        mutex = threading.Lock()

        def caller(tid: int) -> None:
            for i in range(25):
                value = channel.call(lambda tid=tid, i=i: ("r", tid, i))
                with mutex:
                    results[(tid, i)] = value

        threads = [threading.Thread(target=caller, args=(t,)) for t in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert len(results) == 8 * 25
        for (tid, i), value in results.items():
            assert value == ("r", tid, i)

    def test_duplicated_responses_are_discarded(self):
        net = SimNetwork(seed=2, dup_rate=1.0)  # every message doubled
        RpcServer(net, "server")
        channel = RpcChannel(net, "client", "server")
        assert [channel.call(lambda i=i: i) for i in range(10)] == list(range(10))


class TestRetryBackoff:
    def _delays_for(self, seed: int, monkeypatch) -> list[float]:
        from repro.comm import rpc as rpc_module

        slept: list[float] = []
        monkeypatch.setattr(
            rpc_module._time, "sleep", lambda d: slept.append(round(d, 9))
        )
        net = SimNetwork(seed=1, loss_rate=1.0)
        RpcServer(net, "server")
        channel = RpcChannel(
            net, "client", "server", max_retries=6,
            backoff_base=0.001, backoff_max=1.0, seed=seed,
        )
        with pytest.raises(RpcTimeout):
            channel.call(lambda: "never")
        return slept

    def test_backoff_is_seed_deterministic(self, monkeypatch):
        assert self._delays_for(3, monkeypatch) == self._delays_for(3, monkeypatch)
        assert self._delays_for(3, monkeypatch) != self._delays_for(4, monkeypatch)

    def test_backoff_grows_and_respects_the_cap(self, monkeypatch):
        from repro.comm import rpc as rpc_module

        slept: list[float] = []
        monkeypatch.setattr(rpc_module._time, "sleep", lambda d: slept.append(d))
        net = SimNetwork(seed=1, loss_rate=1.0)
        RpcServer(net, "server")
        channel = RpcChannel(
            net, "client", "server", max_retries=8,
            backoff_base=0.001, backoff_factor=2.0, backoff_max=0.004, seed=0,
        )
        with pytest.raises(RpcTimeout):
            channel.call(lambda: "never")
        assert len(slept) == 8
        # Jitter is in [0.5, 1.0), so the cap bounds every sleep and the
        # later (capped) delays still exceed the first un-capped one.
        assert all(d <= 0.004 for d in slept)
        assert max(slept) > min(slept)

    def test_zero_base_never_sleeps(self, monkeypatch):
        from repro.comm import rpc as rpc_module

        monkeypatch.setattr(
            rpc_module._time, "sleep",
            lambda d: (_ for _ in ()).throw(AssertionError("slept")),
        )
        net = SimNetwork(seed=1, loss_rate=1.0)
        RpcServer(net, "server")
        channel = RpcChannel(net, "client", "server", max_retries=3,
                             backoff_base=0.0)
        with pytest.raises(RpcTimeout):
            channel.call(lambda: "never")


class TestOneWayTransportWithClerk:
    def test_oneway_send_through_transport(self):
        from repro.core.request import Request
        from repro.core.system import TPSystem

        system = TPSystem()
        net = SimNetwork()  # lossless
        RpcServer(net, "qm-node")
        transport = OneWayTransport(net, "client-node", "qm-node")
        clerk = system.clerk("c1")
        clerk.transport = transport
        clerk.connect()
        request = Request(
            rid="c1#1", body="via one-way", client_id="c1",
            reply_to=system.reply_queue_name("c1"),
        )
        clerk.send_oneway(request, "c1#1")
        assert system.request_repo.get_queue(system.request_queue).depth() == 1

    def test_oneway_send_lost_then_resynchronized(self):
        # Section 5: "If the Enqueue fails, the client will time out
        # waiting for its Receive ... and can determine what happened
        # when it reconnects."
        from repro.core.request import Request
        from repro.core.system import TPSystem
        from repro.errors import QueueEmpty

        system = TPSystem()
        net = SimNetwork(seed=1, loss_rate=1.0)  # everything lost
        RpcServer(net, "qm-node")
        transport = OneWayTransport(net, "client-node", "qm-node")
        clerk = system.clerk("c1")
        clerk.transport = transport
        clerk.connect()
        request = Request(
            rid="c1#1", body="lost", client_id="c1",
            reply_to=system.reply_queue_name("c1"),
        )
        clerk.send_oneway(request, "c1#1")
        with pytest.raises(QueueEmpty):
            clerk.receive(timeout=0.1)  # reply never comes
        # Reconnect: the registration shows the Send never happened.
        clerk2 = system.clerk("c1")
        s_rid, r_rid, _ = clerk2.connect()
        assert s_rid is None  # safe to resend
