"""Wire-protocol edge cases: the frames themselves, independent of any
socket — torn delivery, corruption, oversize, version skew."""

import struct

import pytest

from repro.comm.wire import (
    DEFAULT_MAX_FRAME,
    HEADER_SIZE,
    KIND_CALL,
    KIND_RESP,
    FrameError,
    FrameReader,
    encode_frame,
    error_payload,
    ok_payload,
    unwrap,
)
from repro.errors import (
    DeadlockError,
    QueueEmpty,
    ReproError,
    TransactionAborted,
)


class TestFraming:
    def test_round_trip(self):
        frame = encode_frame(KIND_CALL, 7, {"op": "depth", "queue": "q"})
        reader = FrameReader()
        frames = list(reader.feed(frame))
        assert frames == [(KIND_CALL, 7, {"op": "depth", "queue": "q"})]

    def test_torn_frames_reassemble_byte_by_byte(self):
        """A frame arriving one byte at a time (worst-case TCP
        segmentation) decodes once — never partially, never twice."""
        frame = encode_frame(KIND_RESP, 3, ok_payload([1, 2, 3]))
        reader = FrameReader()
        collected = []
        for i in range(len(frame)):
            collected.extend(reader.feed(frame[i:i + 1]))
        assert collected == [(KIND_RESP, 3, {"ok": [1, 2, 3]})]

    def test_two_frames_in_one_chunk(self):
        chunk = (encode_frame(KIND_CALL, 1, "a")
                 + encode_frame(KIND_CALL, 2, "b"))
        frames = list(FrameReader().feed(chunk))
        assert [(call_id, payload) for _, call_id, payload in frames] == [
            (1, "a"), (2, "b"),
        ]

    def test_split_across_chunk_boundary(self):
        a = encode_frame(KIND_CALL, 1, {"x": "y" * 100})
        b = encode_frame(KIND_CALL, 2, {"z": 9})
        stream = a + b
        reader = FrameReader()
        out = []
        mid = len(a) - 3  # cut inside frame a's trailing bytes
        out.extend(reader.feed(stream[:mid]))
        out.extend(reader.feed(stream[mid:]))
        assert [call_id for _, call_id, _ in out] == [1, 2]

    def test_bad_magic_rejected(self):
        frame = bytearray(encode_frame(KIND_CALL, 1, None))
        frame[0:2] = b"XX"
        with pytest.raises(FrameError, match="magic"):
            list(FrameReader().feed(bytes(frame)))

    def test_bad_version_rejected(self):
        frame = bytearray(encode_frame(KIND_CALL, 1, None))
        frame[2] = 99
        with pytest.raises(FrameError, match="version"):
            list(FrameReader().feed(bytes(frame)))

    def test_crc_corruption_rejected(self):
        frame = bytearray(encode_frame(KIND_CALL, 1, {"op": "enqueue"}))
        frame[-1] ^= 0xFF  # flip a body bit
        with pytest.raises(FrameError, match="CRC"):
            list(FrameReader().feed(bytes(frame)))

    def test_oversized_payload_rejected_before_allocation(self):
        """A hostile or corrupt length field must be refused from the
        12-byte header alone — before buffering a 'frame' that large."""
        header = struct.pack(
            ">2sBBII", b"RQ", 1, 0, DEFAULT_MAX_FRAME + 1, 0
        )
        reader = FrameReader()
        with pytest.raises(FrameError, match="exceeds"):
            list(reader.feed(header))
        assert len(reader._buf) <= HEADER_SIZE

    def test_encode_refuses_oversize(self):
        with pytest.raises(FrameError, match="exceeds"):
            encode_frame(KIND_CALL, 1, "x" * (DEFAULT_MAX_FRAME + 1))

    def test_custom_frame_limit(self):
        small = FrameReader(max_frame=64)
        frame = encode_frame(KIND_CALL, 1, "payload")
        assert list(small.feed(frame))[0][2] == "payload"
        big = encode_frame(KIND_CALL, 2, "y" * 512)
        with pytest.raises(FrameError, match="exceeds"):
            list(small.feed(big))


class TestErrorEnvelopes:
    def test_ok_round_trip(self):
        assert unwrap(ok_payload({"depth": 3})) == {"depth": 3}

    def test_error_reconstructs_class(self):
        envelope = error_payload(DeadlockError("t1 vs t2"))
        with pytest.raises(DeadlockError, match="t1 vs t2"):
            unwrap(envelope)

    def test_queue_empty_crosses_the_wire(self):
        with pytest.raises(QueueEmpty):
            unwrap(error_payload(QueueEmpty("q is empty")))

    def test_transaction_aborted_keeps_reason(self):
        original = TransactionAborted(42, "deadlock victim")
        with pytest.raises(TransactionAborted) as info:
            unwrap(error_payload(original))
        assert "deadlock victim" in str(info.value)

    def test_unknown_error_class_degrades_to_repro_error(self):
        with pytest.raises(ReproError, match="no such thing"):
            unwrap({"err": "NotARealErrorClass", "msg": "no such thing"})
