"""The clerk over RPC (Section 5's remote-QM deployment), including
duplicate suppression of retried tagged enqueues."""

from __future__ import annotations

import threading


from repro.comm.network import SimNetwork
from repro.comm.remote import QueueManagerService, RemoteQueueManager
from repro.comm.transport import InProcListener, InProcTransport
from repro.core.clerk import Clerk
from repro.core.devices import TicketPrinter
from repro.core.guarantees import GuaranteeChecker
from repro.core.system import TPSystem

from tests.conftest import echo_handler


def remote_setup(loss_rate=0.0, dup_rate=0.0, seed=0):
    system = TPSystem()
    network = SimNetwork(seed=seed, loss_rate=loss_rate, dup_rate=dup_rate)
    service = QueueManagerService(system.request_qm)
    InProcListener(network, "qm-node", service.handle)
    channel = InProcTransport(network, "client-node", "qm-node", max_retries=200)
    remote_qm = RemoteQueueManager(channel)
    return system, network, channel, remote_qm


def remote_clerk(system, remote_qm, client_id="c1"):
    reply_queue = system.ensure_reply_queue(client_id)
    return Clerk(
        client_id,
        remote_qm,
        system.request_queue,
        remote_qm,
        reply_queue,
        trace=system.trace,
    )


class TestRemoteClerk:
    def test_full_protocol_over_rpc(self):
        system, network, channel, remote_qm = remote_setup()
        clerk = remote_clerk(system, remote_qm)
        device = TicketPrinter(trace=system.trace)
        from repro.core.client import Client

        client = Client("c1", clerk, device, ["over", "rpc"], trace=system.trace,
                        receive_timeout=5)
        server = system.server("s", echo_handler)
        done = threading.Event()
        thread = threading.Thread(
            target=lambda: server.serve_until(done.is_set, 0.02), daemon=True
        )
        thread.start()
        try:
            replies = client.run()
        finally:
            done.set()
            thread.join(timeout=10)
        assert [r.body["echo"] for r in replies] == ["over", "rpc"]
        assert network.stats.sent > 0
        GuaranteeChecker(system.trace).assert_ok()

    def test_protocol_survives_lossy_rpc(self):
        system, network, channel, remote_qm = remote_setup(loss_rate=0.3, seed=9)
        clerk = remote_clerk(system, remote_qm)
        device = TicketPrinter(trace=system.trace)
        from repro.core.client import Client

        client = Client("c1", clerk, device, ["lossy"], trace=system.trace,
                        receive_timeout=10)
        server = system.server("s", echo_handler)
        done = threading.Event()
        thread = threading.Thread(
            target=lambda: server.serve_until(done.is_set, 0.02), daemon=True
        )
        thread.start()
        try:
            client.run()
        finally:
            done.set()
            thread.join(timeout=10)
        assert channel.retries > 0  # loss actually happened and was retried
        GuaranteeChecker(system.trace).assert_ok()
        assert device.tickets_for("c1#1") == [1]

    def test_duplicated_rpc_delivery_does_not_duplicate_request(self):
        # Every message delivered twice: the tagged-enqueue dedup must
        # keep the queue at one element per Send.
        system, network, channel, remote_qm = remote_setup(dup_rate=1.0, seed=3)
        clerk = remote_clerk(system, remote_qm)
        clerk.connect()
        from repro.core.request import Request

        request = Request(rid="c1#1", body="once", client_id="c1",
                          reply_to=system.reply_queue_name("c1"))
        clerk.send(request, "c1#1")
        assert system.request_repo.get_queue(system.request_queue).depth() == 1

    def test_retried_tagged_enqueue_returns_original_eid(self):
        system, _, _, remote_qm = remote_setup()
        handle, _, _ = remote_qm.register(system.request_queue, "c1")
        eid1 = remote_qm.enqueue(handle, "payload", tag="rid-1",
                                 headers={"rid": "rid-1"})
        # The "retry" (response lost, call repeated verbatim):
        eid2 = remote_qm.enqueue(handle, "payload", tag="rid-1",
                                 headers={"rid": "rid-1"})
        assert eid1 == eid2
        assert system.request_repo.get_queue(system.request_queue).depth() == 1


class TestTaggedEnqueueDedupLocal:
    def test_distinct_tags_not_deduplicated(self, system):
        qm = system.request_qm
        handle, _, _ = qm.register(system.request_queue, "c1")
        qm.enqueue(handle, "a", tag="t1")
        qm.enqueue(handle, "b", tag="t2")
        assert qm.depth(system.request_queue) == 2

    def test_untagged_enqueues_never_deduplicated(self, system):
        qm = system.request_qm
        handle, _, _ = qm.register(system.request_queue, "c1")
        qm.enqueue(handle, "a")
        qm.enqueue(handle, "a")
        assert qm.depth(system.request_queue) == 2

    def test_unstable_registrants_not_deduplicated(self, system):
        qm = system.request_qm
        handle, _, _ = qm.register(system.request_queue, "srv", stable=False)
        qm.enqueue(handle, "a", tag="t1")
        qm.enqueue(handle, "a", tag="t1")
        assert qm.depth(system.request_queue) == 2

    def test_dedup_survives_crash(self, system):
        qm = system.request_qm
        handle, _, _ = qm.register(system.request_queue, "c1")
        eid1 = qm.enqueue(handle, "once", tag="rid-9")
        system.crash()
        system2 = system.reopen()
        qm2 = system2.request_qm
        handle2, _, _ = qm2.register(system2.request_queue, "c1")
        eid2 = qm2.enqueue(handle2, "once", tag="rid-9")
        assert eid2 == eid1
        assert qm2.depth(system2.request_queue) == 1
