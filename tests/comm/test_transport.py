"""TCP transport behaviour against real sockets: multiplexing,
correlation, retry/reconnect, and mid-call peer death."""

import socket
import threading

import pytest

from repro.comm.transport import NO_RESPONSE, TcpListener, TcpTransport
from repro.comm.wire import (
    KIND_RESP,
    FrameReader,
    encode_frame,
    ok_payload,
    unwrap,
)
from repro.errors import CommError, PartitionedError, RpcTimeout


def make_transport(port, **kwargs):
    kwargs.setdefault("backoff_base", 0.0)
    return TcpTransport("127.0.0.1", port, **kwargs)


class TestTcpRoundTrip:
    def test_call_round_trip(self):
        listener = TcpListener(lambda payload: ok_payload(payload["x"] * 2))
        transport = make_transport(listener.port)
        try:
            assert unwrap(transport.request({"x": 21})) == 42
        finally:
            transport.close()
            listener.close()

    def test_concurrent_calls_multiplex_one_socket(self):
        """Many threads share one connection; correlation ids route
        each response to exactly its caller."""
        listener = TcpListener(lambda payload: ok_payload(payload["n"]))
        transport = make_transport(listener.port)
        results: dict[int, int] = {}

        def worker(n):
            results[n] = unwrap(transport.request({"n": n}))

        try:
            threads = [
                threading.Thread(target=worker, args=(n,)) for n in range(16)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert results == {n: n for n in range(16)}
            assert transport.reconnects == 0  # one socket for all of it
        finally:
            transport.close()
            listener.close()

    def test_swallowed_response_is_retried(self):
        """NO_RESPONSE lets a handler drop its reply (a lost response
        in fault-injection terms): at-least-once retry must deliver."""
        calls = []

        def handler(payload):
            calls.append(payload["n"])
            if len(calls) == 1:
                return NO_RESPONSE
            return ok_payload(len(calls))

        listener = TcpListener(handler)
        transport = make_transport(listener.port, timeout=0.2)
        try:
            assert unwrap(transport.request({"n": 1})) == 2
            assert calls == [1, 1]  # executed twice: duplicate delivered
        finally:
            transport.close()
            listener.close()

    def test_reconnects_after_listener_restart(self):
        listener = TcpListener(lambda payload: ok_payload("a"))
        port = listener.port
        transport = make_transport(port, timeout=0.5, backoff_base=0.01)
        try:
            assert unwrap(transport.request(None)) == "a"
            listener.close()
            listener = TcpListener(
                lambda payload: ok_payload("b"), port=port)
            assert unwrap(transport.request(None)) == "b"
            assert transport.reconnects >= 1
        finally:
            transport.close()
            listener.close()


class TestPeerDeath:
    def test_connect_refused_raises_partitioned(self):
        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        port = sock.getsockname()[1]
        sock.close()  # nobody listening on this port now
        transport = make_transport(port, max_retries=1)
        try:
            with pytest.raises(PartitionedError):
                transport.request({"op": "x"})
        finally:
            transport.close()

    def test_mid_call_peer_death_fails_fast(self):
        """The peer dies while a call is parked waiting for its reply:
        the caller must fail promptly (broken-attempt wakeup), not wait
        out the whole per-attempt timeout ladder."""
        listener = TcpListener(lambda payload: NO_RESPONSE)  # never replies
        transport = make_transport(
            listener.port, timeout=30.0, max_retries=0)
        result: list = []

        def call():
            try:
                transport.request({"op": "x"})
                result.append("returned")
            except (RpcTimeout, PartitionedError) as exc:
                result.append(exc)

        thread = threading.Thread(target=call)
        try:
            thread.start()
            # Let the request hit the wire, then kill the server.
            import time

            time.sleep(0.3)
            listener.close()
            thread.join(timeout=5.0)
            assert not thread.is_alive(), "caller still stuck after peer death"
            assert result and isinstance(result[0], CommError)
        finally:
            transport.close()
            listener.close()


class TestCorrelation:
    def _misdirecting_server(self, wrong_offset=1000):
        """A hand-rolled server that answers every call twice: first
        with a *wrong* correlation id, then with the right one."""
        server = socket.socket()
        server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        server.bind(("127.0.0.1", 0))
        server.listen(1)

        def serve():
            conn, _ = server.accept()
            frames = FrameReader()
            try:
                while True:
                    chunk = conn.recv(65536)
                    if not chunk:
                        return
                    for _kind, call_id, _payload in frames.feed(chunk):
                        conn.sendall(encode_frame(
                            KIND_RESP, call_id + wrong_offset,
                            ok_payload("imposter")))
                        conn.sendall(encode_frame(
                            KIND_RESP, call_id, ok_payload("genuine")))
            except OSError:
                pass

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        return server

    def test_mismatched_correlation_id_is_ignored(self):
        server = self._misdirecting_server()
        transport = make_transport(server.getsockname()[1])
        try:
            assert unwrap(transport.request({"op": "x"})) == "genuine"
        finally:
            transport.close()
            server.close()

    def test_only_wrong_ids_means_timeout(self):
        """A peer that never echoes the right id gives the caller
        nothing to correlate: the call must time out, not mis-deliver."""
        server = socket.socket()
        server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        server.bind(("127.0.0.1", 0))
        server.listen(1)

        def serve():
            conn, _ = server.accept()
            frames = FrameReader()
            try:
                while True:
                    chunk = conn.recv(65536)
                    if not chunk:
                        return
                    for _kind, call_id, _payload in frames.feed(chunk):
                        conn.sendall(encode_frame(
                            KIND_RESP, call_id + 7, ok_payload("wrong")))
            except OSError:
                pass

        threading.Thread(target=serve, daemon=True).start()
        transport = make_transport(
            server.getsockname()[1], timeout=0.2, max_retries=1)
        try:
            with pytest.raises(RpcTimeout):
                transport.request({"op": "x"})
        finally:
            transport.close()
            server.close()
