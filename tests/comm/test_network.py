"""Simulated network tests."""

from __future__ import annotations

import pytest

from repro.comm.network import SimNetwork
from repro.errors import MessageLost, PartitionedError


class TestDelivery:
    def test_basic_delivery(self):
        net = SimNetwork()
        inbox = []
        net.register("b", inbox.append)
        net.send("a", "b", "hello")
        assert inbox == ["hello"]
        assert net.stats.delivered == 1

    def test_unknown_endpoint_raises(self):
        net = SimNetwork()
        with pytest.raises(PartitionedError):
            net.send("a", "ghost", "x")

    def test_loss_is_seeded_and_counted(self):
        net = SimNetwork(seed=7, loss_rate=0.5)
        inbox = []
        net.register("b", inbox.append)
        for i in range(100):
            net.send("a", "b", i)
        assert 0 < len(inbox) < 100
        assert net.stats.lost == 100 - len(inbox) - net.stats.duplicated
        # Determinism: same seed, same outcome.
        net2 = SimNetwork(seed=7, loss_rate=0.5)
        inbox2 = []
        net2.register("b", inbox2.append)
        for i in range(100):
            net2.send("a", "b", i)
        assert inbox2 == inbox

    def test_reliable_send_raises_on_loss(self):
        net = SimNetwork(seed=1, loss_rate=1.0)
        net.register("b", lambda m: None)
        with pytest.raises(MessageLost):
            net.send("a", "b", "x", reliable=True)

    def test_duplication(self):
        net = SimNetwork(seed=3, dup_rate=1.0)
        inbox = []
        net.register("b", inbox.append)
        net.send("a", "b", "twice")
        assert inbox == ["twice", "twice"]
        assert net.stats.duplicated == 1


class TestPartitions:
    def test_partitioned_endpoints_cannot_talk(self):
        net = SimNetwork()
        net.register("a", lambda m: None)
        net.register("b", lambda m: None)
        net.partition([["a"], ["b"]])
        with pytest.raises(PartitionedError):
            net.send("a", "b", "x")
        assert net.stats.blocked_by_partition == 1

    def test_same_group_can_talk(self):
        net = SimNetwork()
        inbox = []
        net.register("a", lambda m: None)
        net.register("b", inbox.append)
        net.partition([["a", "b"], ["c"]])
        net.send("a", "b", "ok")
        assert inbox == ["ok"]

    def test_heal_restores_connectivity(self):
        net = SimNetwork()
        inbox = []
        net.register("a", lambda m: None)
        net.register("b", inbox.append)
        net.partition([["a"], ["b"]])
        net.heal()
        net.send("a", "b", "back")
        assert inbox == ["back"]


class TestMailboxes:
    def test_buffered_endpoint_queues(self):
        net = SimNetwork()
        handled = []
        net.register("b", handled.append, buffered=True)
        net.send("a", "b", 1)
        net.send("a", "b", 2)
        assert handled == []
        assert net.pending("b") == 2
        assert net.pump("b") == 2
        assert handled == [1, 2]

    def test_pump_limit(self):
        net = SimNetwork()
        handled = []
        net.register("b", handled.append, buffered=True)
        for i in range(5):
            net.send("a", "b", i)
        assert net.pump("b", limit=2) == 2
        assert handled == [0, 1]
