"""Regression: the clerk's exactly-once argument over a *real* flaky
TCP transport.

The paper's claim is that tagged queue operations make at-least-once
delivery safe: a retried Enqueue with the same tag is recognized and
deduplicated, a retried tagged Dequeue redelivers the same element.
The in-proc suites prove it over the simulated network; this one
proves it over actual sockets with dropped replies (NO_RESPONSE) and
mid-call connection kills, where the client genuinely cannot know
whether the lost call executed.
"""

import socket
import threading

import pytest

from repro.comm.remote import QueueManagerService, RemoteQueueManager
from repro.comm.transport import NO_RESPONSE, TcpListener, TcpTransport
from repro.core.system import TPSystem
from repro.errors import QueueEmpty


class FlakyService:
    """Wraps the queue-manager service: executes every call, but drops
    the response of calls selected by ``drop_replies`` (op name ->
    remaining drops).  The operation HAS run — only the caller's
    evidence is lost, the exact ambiguity at-least-once must absorb."""

    def __init__(self, service, drop_replies=None):
        self.service = service
        self.drop_replies = dict(drop_replies or {})
        self.dropped = []

    def handle(self, payload):
        response = self.service.handle(payload)
        op = payload.get("op")
        if self.drop_replies.get(op, 0) > 0:
            self.drop_replies[op] -= 1
            self.dropped.append(op)
            return NO_RESPONSE
        return response


def tcp_setup(drop_replies=None, **transport_kwargs):
    system = TPSystem()
    flaky = FlakyService(
        QueueManagerService(system.request_qm), drop_replies)
    listener = TcpListener(flaky.handle)
    transport_kwargs.setdefault("timeout", 0.2)
    transport_kwargs.setdefault("backoff_base", 0.0)
    transport = TcpTransport(
        "127.0.0.1", listener.port, **transport_kwargs)
    return system, flaky, listener, RemoteQueueManager(transport)


class TestFlakyTcpDedup:
    def test_retried_tagged_enqueue_is_deduplicated(self):
        """The enqueue executes, its reply is dropped, the client
        retries: exactly one element lands and both attempts report
        the same eid."""
        system, flaky, listener, rqm = tcp_setup({"enqueue": 1})
        try:
            handle, _tag, _eid = rqm.register("req.q", "c1", stable=True)
            eid = rqm.enqueue(handle, {"work": 1}, tag="c1#1",
                              headers={"rid": "c1#1"})
            assert flaky.dropped == ["enqueue"]
            assert system.request_repo.queues["req.q"].depth() == 1
            # A second explicit retry of the same tagged send is a
            # duplicate too (client crashed after Send, re-sent at
            # resync): still one element, same eid.
            again = rqm.enqueue(handle, {"work": 1}, tag="c1#1",
                                headers={"rid": "c1#1"})
            assert again == eid
            assert system.request_repo.queues["req.q"].depth() == 1
        finally:
            rqm.transport.close()
            listener.close()

    def test_retried_tagged_dequeue_recovers_via_registration(self):
        """The paper's serial clerk keeps at most one reply pending, so
        a retried Dequeue whose first attempt executed invisibly always
        finds the queue *empty*.  The stable registration then proves
        the loss was ours (last op is a Dequeue carrying this very tag)
        and Section 4.3's Read recovers the element — the exact
        clerk-side resync of :meth:`repro.core.clerk.Clerk.receive`."""
        system, flaky, listener, rqm = tcp_setup({"dequeue": 1})
        try:
            handle, _tag, _eid = rqm.register("req.q", "c1", stable=True)
            first = rqm.enqueue(handle, {"n": 1}, tag="c1#1")
            tag = ["c1#1", 0]
            with pytest.raises(QueueEmpty):
                # Executes server-side, reply dropped, transport retries,
                # retry sees the queue empty — the at-least-once ambiguity.
                rqm.dequeue(handle, tag=tag)
            assert flaky.dropped == ["dequeue"]
            reg = rqm.registration_info(handle)
            assert reg.last_op == "deq"
            assert reg.last_tag == tag
            assert reg.last_eid == first
            element = rqm.read(handle, reg.last_eid)
            assert element.eid == first
            assert element.body == {"n": 1}
            assert system.request_repo.queues["req.q"].depth() == 0
        finally:
            rqm.transport.close()
            listener.close()

    def test_dropped_register_reply_is_idempotent(self):
        system, flaky, listener, rqm = tcp_setup({"register": 1})
        try:
            handle, tag, eid = rqm.register("req.q", "c1", stable=True)
            assert flaky.dropped == ["register"]
            assert (tag, eid) == (None, None)  # brand-new client
            rqm.enqueue(handle, {"n": 1}, tag="c1#1")
            # Reconnect-style re-register reports the tagged history.
            _h, tag2, eid2 = rqm.register("req.q", "c1", stable=True)
            assert tag2 == "c1#1"
            assert eid2 is not None
        finally:
            rqm.transport.close()
            listener.close()

    def test_dedup_survives_connection_kill_between_attempts(self):
        """Harsher than a dropped reply: the server kills the TCP
        connection after executing the enqueue, the client reconnects
        and retries — still exactly one element."""
        system = TPSystem()
        service = QueueManagerService(system.request_qm)
        state = {"kills": 1}
        conns = []

        class KillingListener(TcpListener):
            def _serve_conn(self, conn, *args, **kwargs):
                conns.append(conn)
                return super()._serve_conn(conn, *args, **kwargs)

        def handler(payload):
            response = service.handle(payload)
            if payload.get("op") == "enqueue" and state["kills"] > 0:
                state["kills"] -= 1
                for conn in conns:
                    try:
                        conn.shutdown(socket.SHUT_RDWR)
                    except OSError:
                        pass
                return NO_RESPONSE
            return response

        listener = KillingListener(handler)
        transport = TcpTransport(
            "127.0.0.1", listener.port, timeout=0.3, backoff_base=0.001)
        rqm = RemoteQueueManager(transport)
        try:
            handle, _tag, _eid = rqm.register("req.q", "c1", stable=True)
            rqm.enqueue(handle, {"n": 1}, tag="c1#1")
            assert state["kills"] == 0
            assert transport.reconnects >= 1
            assert system.request_repo.queues["req.q"].depth() == 1
        finally:
            transport.close()
            listener.close()

    def test_untagged_reads_are_plain_at_least_once(self):
        """Sanity: ops with no tag do not dedup (two untagged enqueues
        are two elements) — the discipline is opt-in by design."""
        system, _flaky, listener, rqm = tcp_setup()
        try:
            handle, _tag, _eid = rqm.register("req.q", "c1", stable=False)
            rqm.enqueue(handle, {"n": 1})
            rqm.enqueue(handle, {"n": 1})
            assert system.request_repo.queues["req.q"].depth() == 2
            rqm.dequeue(handle)
            rqm.dequeue(handle)
            with pytest.raises(QueueEmpty):
                rqm.dequeue(handle)
        finally:
            rqm.transport.close()
            listener.close()
