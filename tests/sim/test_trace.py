"""TraceRecorder tests."""

from __future__ import annotations

from repro.sim.trace import TraceEvent, TraceRecorder


class TestTraceEventStr:
    def test_str_with_rid_and_detail(self):
        event = TraceEvent(seq=7, kind="request.sent", rid="c1#1", detail={"n": 2})
        text = str(event)
        assert text == "[7] request.sent rid=c1#1 {'n': 2}"

    def test_str_without_rid(self):
        event = TraceEvent(seq=1, kind="system.crash")
        assert str(event) == "[1] system.crash"

    def test_str_without_detail_has_no_trailing_space(self):
        event = TraceEvent(seq=3, kind="reply.enqueued", rid="r9")
        assert str(event) == "[3] reply.enqueued rid=r9"


class TestTraceRecorder:
    def test_record_and_count(self):
        trace = TraceRecorder()
        trace.record("a.b", rid="r1")
        trace.record("a.b", rid="r2")
        trace.record("c", rid="r1")
        assert trace.count("a.b") == 2
        assert trace.count("a.b", rid="r1") == 1

    def test_sequence_numbers_increase(self):
        trace = TraceRecorder()
        e1 = trace.record("x")
        e2 = trace.record("y")
        assert e2.seq == e1.seq + 1

    def test_events_filtering(self):
        trace = TraceRecorder()
        trace.record("k1", rid="a", extra=1)
        trace.record("k2", rid="a")
        trace.record("k1", rid="b")
        assert len(trace.events("k1")) == 2
        assert len(trace.events(rid="a")) == 2
        assert len(trace.events("k1", rid="b")) == 1
        assert len(trace.events()) == 3

    def test_rids_keeps_duplicates_in_order(self):
        trace = TraceRecorder()
        for rid in ["r1", "r2", "r1"]:
            trace.record("sent", rid=rid)
        assert trace.rids("sent") == ["r1", "r2", "r1"]

    def test_last(self):
        trace = TraceRecorder()
        assert trace.last("k") is None
        trace.record("k", rid="a", n=1)
        trace.record("k", rid="a", n=2)
        assert trace.last("k").detail["n"] == 2

    def test_detail_stored(self):
        trace = TraceRecorder()
        event = trace.record("k", rid="r", foo="bar", n=3)
        assert event.detail == {"foo": "bar", "n": 3}

    def test_clear(self):
        trace = TraceRecorder()
        trace.record("k")
        trace.clear()
        assert len(trace) == 0
        assert trace.record("k").seq == 1

    def test_iter_and_len(self):
        trace = TraceRecorder()
        trace.record("a")
        trace.record("b")
        assert [e.kind for e in trace] == ["a", "b"]
        assert len(trace) == 2

    def test_iteration_preserves_seq_order(self):
        trace = TraceRecorder()
        for kind in ["send", "enqueue", "dequeue", "execute", "reply"]:
            trace.record(kind, rid="r1")
        seqs = [e.seq for e in trace]
        assert seqs == sorted(seqs)
        assert seqs == [1, 2, 3, 4, 5]

    def test_filtered_events_keep_recording_order(self):
        trace = TraceRecorder()
        trace.record("a", rid="r1")
        trace.record("b", rid="r2")
        trace.record("a", rid="r3")
        trace.record("a", rid="r2")
        assert [e.rid for e in trace.events("a")] == ["r1", "r3", "r2"]
        seqs = [e.seq for e in trace.events("a")]
        assert seqs == sorted(seqs)
