"""TraceRecorder tests."""

from __future__ import annotations

from repro.sim.trace import TraceRecorder


class TestTraceRecorder:
    def test_record_and_count(self):
        trace = TraceRecorder()
        trace.record("a.b", rid="r1")
        trace.record("a.b", rid="r2")
        trace.record("c", rid="r1")
        assert trace.count("a.b") == 2
        assert trace.count("a.b", rid="r1") == 1

    def test_sequence_numbers_increase(self):
        trace = TraceRecorder()
        e1 = trace.record("x")
        e2 = trace.record("y")
        assert e2.seq == e1.seq + 1

    def test_events_filtering(self):
        trace = TraceRecorder()
        trace.record("k1", rid="a", extra=1)
        trace.record("k2", rid="a")
        trace.record("k1", rid="b")
        assert len(trace.events("k1")) == 2
        assert len(trace.events(rid="a")) == 2
        assert len(trace.events("k1", rid="b")) == 1
        assert len(trace.events()) == 3

    def test_rids_keeps_duplicates_in_order(self):
        trace = TraceRecorder()
        for rid in ["r1", "r2", "r1"]:
            trace.record("sent", rid=rid)
        assert trace.rids("sent") == ["r1", "r2", "r1"]

    def test_last(self):
        trace = TraceRecorder()
        assert trace.last("k") is None
        trace.record("k", rid="a", n=1)
        trace.record("k", rid="a", n=2)
        assert trace.last("k").detail["n"] == 2

    def test_detail_stored(self):
        trace = TraceRecorder()
        event = trace.record("k", rid="r", foo="bar", n=3)
        assert event.detail == {"foo": "bar", "n": 3}

    def test_clear(self):
        trace = TraceRecorder()
        trace.record("k")
        trace.clear()
        assert len(trace) == 0
        assert trace.record("k").seq == 1

    def test_iter_and_len(self):
        trace = TraceRecorder()
        trace.record("a")
        trace.record("b")
        assert [e.kind for e in trace] == ["a", "b"]
        assert len(trace) == 2
