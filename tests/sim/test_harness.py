"""crash_every_step harness tests."""

from __future__ import annotations

from repro.sim.crash import FaultInjector
from repro.sim.harness import crash_every_step, enumerate_crash_points


class TestEnumeration:
    def test_enumerates_in_order(self):
        def scenario(injector: FaultInjector):
            injector.reach("a")
            injector.reach("b")
            injector.reach("a")

        assert enumerate_crash_points(scenario) == [("a", 1), ("b", 1), ("a", 2)]


class TestCrashEverStep:
    def test_each_point_crashes_once(self):
        crashes = []

        def scenario(injector: FaultInjector):
            state = {"progress": []}
            scenario.state = state
            injector.reach("step1")
            state["progress"].append(1)
            injector.reach("step2")
            state["progress"].append(2)
            return state

        def recover(state):
            return state

        results = crash_every_step(scenario, recover)
        # 2 points + 1 crash-free run
        assert len(results) == 3
        assert [r.crashed for r in results] == [True, True, False]
        # Crash at step1 -> no progress; at step2 -> progress [1].
        assert results[0].scenario_result["progress"] == []
        assert results[1].scenario_result["progress"] == [1]
        assert results[2].scenario_result["progress"] == [1, 2]

    def test_point_filter(self):
        def scenario(injector: FaultInjector):
            scenario.state = {}
            injector.reach("keep.this")
            injector.reach("skip.this")
            return {}

        results = crash_every_step(
            scenario, lambda s: s, point_filter=lambda p: p.startswith("keep")
        )
        assert len(results) == 2  # one filtered point + crash-free run
        assert results[0].plan.point == "keep.this"

    def test_check_called_with_plan(self):
        plans = []

        def scenario(injector: FaultInjector):
            scenario.state = {}
            injector.reach("only")
            return {}

        def check(state, recovery, plan):
            plans.append(plan.point)
            return "checked"

        results = crash_every_step(scenario, lambda s: s, check)
        assert plans == ["only", "<none>"]
        assert all(r.check_result == "checked" for r in results)

    def test_pre_enumerated_points(self):
        def scenario(injector: FaultInjector):
            scenario.state = {}
            injector.reach("a")
            injector.reach("b")
            return {}

        results = crash_every_step(
            scenario, lambda s: s, points=[("b", 1)]
        )
        assert len(results) == 2
        assert results[0].plan.point == "b"

    def test_state_attribute_used_after_crash(self):
        def scenario(injector: FaultInjector):
            scenario.state = "partial"
            injector.reach("boom")
            scenario.state = "complete"
            return "complete"

        recovered = []

        def recover(state):
            recovered.append(state)
            return state

        crash_every_step(scenario, recover)
        assert recovered == ["partial", "complete"]
