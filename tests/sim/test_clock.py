"""VirtualClock tests."""

from __future__ import annotations

import pytest

from repro.sim.clock import VirtualClock


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now() == 0.0

    def test_custom_start(self):
        assert VirtualClock(100.0).now() == 100.0

    def test_advance(self):
        clock = VirtualClock()
        assert clock.advance(5.0) == 5.0
        assert clock.now() == 5.0

    def test_advance_rejects_negative(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1)

    def test_advance_zero_ok(self):
        clock = VirtualClock()
        clock.advance(0)
        assert clock.now() == 0.0

    def test_tick_strictly_increases(self):
        clock = VirtualClock()
        ticks = [clock.tick() for _ in range(100)]
        assert all(a < b for a, b in zip(ticks, ticks[1:]))

    def test_sequence_unique(self):
        clock = VirtualClock()
        seqs = [clock.sequence() for _ in range(10)]
        assert seqs == sorted(set(seqs))
