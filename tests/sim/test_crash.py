"""FaultInjector / CrashPlan tests."""

from __future__ import annotations

import pytest

from repro.errors import SimulatedCrash
from repro.sim.crash import NULL_INJECTOR, CrashPlan, FaultInjector


class TestCrashPlan:
    def test_hit_must_be_positive(self):
        with pytest.raises(ValueError):
            CrashPlan("p", hit=0)

    def test_defaults(self):
        assert CrashPlan("p").hit == 1


class TestFaultInjector:
    def test_idle_injector_is_noop(self):
        injector = FaultInjector()
        injector.reach("anywhere")  # no raise

    def test_armed_point_crashes(self):
        injector = FaultInjector()
        injector.arm("danger")
        with pytest.raises(SimulatedCrash):
            injector.reach("danger")

    def test_other_points_unaffected(self):
        injector = FaultInjector()
        injector.arm("danger")
        injector.reach("safe")

    def test_nth_hit(self):
        injector = FaultInjector()
        injector.arm("loop", hit=3)
        injector.reach("loop")
        injector.reach("loop")
        with pytest.raises(SimulatedCrash):
            injector.reach("loop")

    def test_history_records_order(self):
        injector = FaultInjector()
        injector.reach("a")
        injector.reach("b")
        injector.reach("a")
        assert injector.history == ["a", "b", "a"]

    def test_schedule_pairs(self):
        injector = FaultInjector()
        injector.reach("a")
        injector.reach("b")
        injector.reach("a")
        assert injector.schedule() == [("a", 1), ("b", 1), ("a", 2)]

    def test_hits_counter(self):
        injector = FaultInjector()
        injector.reach("x")
        injector.reach("x")
        assert injector.hits("x") == 2
        assert injector.hits("never") == 0

    def test_on_crash_hooks_run_before_raise(self):
        injector = FaultInjector()
        ran = []
        injector.on_crash.append(lambda point: ran.append(point))
        injector.arm("p")
        with pytest.raises(SimulatedCrash):
            injector.reach("p")
        assert ran == ["p"]

    def test_disarm_keeps_history(self):
        injector = FaultInjector()
        injector.arm("p")
        injector.disarm()
        injector.reach("p")
        assert injector.history == ["p"]

    def test_reset_clears_everything(self):
        injector = FaultInjector()
        injector.arm("p")
        injector.reach("q")
        injector.reset()
        assert injector.history == []
        assert injector.hits("q") == 0
        injector.reach("p")  # plan is gone

    def test_crash_message_names_point_and_hit(self):
        injector = FaultInjector()
        injector.arm("spot", hit=2)
        injector.reach("spot")
        with pytest.raises(SimulatedCrash) as excinfo:
            injector.reach("spot")
        assert "spot#2" in str(excinfo.value)

    def test_simulated_crash_not_caught_by_except_exception(self):
        injector = FaultInjector()
        injector.arm("p")
        with pytest.raises(SimulatedCrash):
            try:
                injector.reach("p")
            except Exception:  # noqa: BLE001 - the point of the test
                pytest.fail("SimulatedCrash must not be a plain Exception")

    def test_null_injector_does_not_record(self):
        NULL_INJECTOR.reach("spam")
        assert NULL_INJECTOR.history == []
