"""F1 — Figure 1/7: the client state machines, executable.

Reproduces the figures behaviorally: drives every legal path, verifies
every undeclared edge is rejected, and times a full protocol cycle
through the machine (the machine is on the client's hot path, so its
cost matters)."""

from __future__ import annotations

from repro.core.states import ClientOp, ClientState, ClientStateMachine
from repro.errors import ProtocolViolation


def full_cycle(interactive: bool) -> int:
    machine = ClientStateMachine(interactive=interactive)
    machine.apply(ClientOp.CONNECT)
    machine.apply(ClientOp.SEND)
    if interactive:
        for _ in range(3):
            machine.apply(ClientOp.RECV_INTERMEDIATE)
            machine.apply(ClientOp.SEND_INTERMEDIATE)
    machine.apply(ClientOp.RECEIVE)
    machine.apply(ClientOp.DISCONNECT)
    return len(machine.history)


def exhaustive_edge_audit() -> tuple[int, int]:
    """Try every (state, op) edge of both machines; count legal and
    rejected edges.  Figure 1 has 9 legal edges, Figure 7 adds 2."""
    legal = rejected = 0
    for interactive in (False, True):
        machine = ClientStateMachine(interactive=interactive)
        table = machine.transitions
        for state in ClientState:
            for op in ClientOp:
                machine.state = state
                if (state, op) in table:
                    machine.apply(op)
                    legal += 1
                else:
                    try:
                        machine.apply(op)
                    except ProtocolViolation:
                        rejected += 1
    return legal, rejected


def test_f1_non_interactive_cycle(benchmark):
    transitions = benchmark(full_cycle, False)
    assert transitions == 4
    benchmark.extra_info["figure"] = "1"
    benchmark.extra_info["transitions_per_cycle"] = transitions


def test_f1_interactive_cycle(benchmark):
    transitions = benchmark(full_cycle, True)
    assert transitions == 10
    benchmark.extra_info["figure"] = "7 (machine)"
    benchmark.extra_info["transitions_per_cycle"] = transitions


def test_f1_exhaustive_edges(benchmark):
    legal, rejected = benchmark(exhaustive_edge_audit)
    # fig 1: 9 legal edges; fig 7 table: those 9 + 2 intermediate edges.
    assert legal == 9 + 11
    total_pairs = 2 * len(ClientState) * len(ClientOp)
    assert rejected == total_pairs - legal
    benchmark.extra_info["legal_edges"] = legal
    benchmark.extra_info["rejected_edges"] = rejected
