"""F2 — Figure 2: the client program's connect-time resynchronization.

Times each resynchronization branch (fresh connect, reply-in-flight
Receive, received-but-unprocessed Rereceive, fully-processed continue)
and asserts each lands where Figure 2 says it must."""

from __future__ import annotations

from repro.core.devices import TicketPrinter
from repro.core.system import TPSystem
from repro.sim.trace import TraceRecorder


def _base(work=("w1", "w2")):
    system = TPSystem(trace=TraceRecorder())
    device = TicketPrinter(trace=system.trace)
    server = system.server("s", lambda txn, r: {"echo": r.body})
    return system, device, server, list(work)


def branch_a_fresh():
    system, device, _, work = _base()
    client = system.client("c1", work, device)
    return client.resynchronize(), device


def branch_b_reply_in_flight():
    system, device, server, work = _base()
    first = system.client("c1", work, device)
    first.resynchronize()
    first.send_only(1)
    server.process_one()
    client = system.client("c1", work, device, receive_timeout=2)
    return client.resynchronize(), device


def branch_c_received_not_processed():
    system, device, server, work = _base()
    first = system.client("c1", work, device)
    first.resynchronize()
    first.send_only(1)
    server.process_one()
    first.clerk.receive(ckpt=device.state(), timeout=2)  # crash before process
    client = system.client("c1", work, device)
    return client.resynchronize(), device


def branch_d_fully_processed():
    system, device, server, work = _base()
    first = system.client("c1", work, device)
    first.resynchronize()
    first.send_only(1)
    server.process_one()
    reply = first.clerk.receive(ckpt=device.state(), timeout=2)
    device.process(reply.rid, reply.body)
    client = system.client("c1", work, device)
    return client.resynchronize(), device


def test_f2_branch_a_fresh_client(benchmark):
    next_seq, device = benchmark(branch_a_fresh)
    assert next_seq == 1 and device.printed == []
    benchmark.extra_info["branch"] = "A: s_rid NIL -> start fresh"


def test_f2_branch_b_receive_in_flight(benchmark):
    next_seq, device = benchmark(branch_b_reply_in_flight)
    assert next_seq == 2
    assert len(device.printed) == 1  # processed exactly once in this run
    benchmark.extra_info["branch"] = "B: s_rid != r_rid -> Receive"


def test_f2_branch_c_rereceive(benchmark):
    next_seq, device = benchmark(branch_c_received_not_processed)
    assert next_seq == 2
    assert len(device.printed) == 1
    benchmark.extra_info["branch"] = "C: s_rid == r_rid, unprocessed -> Rereceive"


def test_f2_branch_d_continue(benchmark):
    next_seq, device = benchmark(branch_d_fully_processed)
    assert next_seq == 2
    assert len(device.printed) == 1  # NOT re-printed by the resync
    benchmark.extra_info["branch"] = "D: processed -> continue with new work"
