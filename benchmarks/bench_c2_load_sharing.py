"""C2 — Section 1's load-sharing claim.

"Since many processes can dequeue requests from a single queue, this
automatically shares the workload among these processes."

Setup: 40 requests, each costing ~3 ms of simulated work, served by 1,
2, or 4 server processes dequeuing the same queue.  Predicted shape:
completion time drops roughly linearly with the server count until the
queue (not the workers) is the bottleneck.
"""

from __future__ import annotations

import threading
import time

from repro.core.system import TPSystem

from conftest import send_request

REQUESTS = 40
WORK_MS = 0.003


def run_with_servers(server_count: int) -> tuple[float, list[int]]:
    system = TPSystem()
    for seq in range(1, REQUESTS + 1):
        send_request(system, "load", seq, seq)

    def handler(txn, request):
        time.sleep(WORK_MS)
        return request.body

    servers = [system.server(f"s{i}", handler) for i in range(server_count)]
    queue = system.request_repo.get_queue(system.request_queue)
    stop = threading.Event()
    threads = [
        threading.Thread(target=s.serve_until, args=(stop.is_set, 0.002), daemon=True)
        for s in servers
    ]
    start = time.monotonic()
    for t in threads:
        t.start()
    while queue.depth() + queue.pending() > 0:
        time.sleep(0.002)
    elapsed = time.monotonic() - start
    stop.set()
    for t in threads:
        t.join(timeout=5)
    return elapsed, [s.stats.processed for s in servers]


def _bench(benchmark, count):
    elapsed, per_server = benchmark.pedantic(
        lambda: run_with_servers(count), rounds=3, iterations=1
    )
    benchmark.extra_info["servers"] = count
    benchmark.extra_info["elapsed_s"] = round(elapsed, 4)
    benchmark.extra_info["per_server_processed"] = per_server
    return elapsed, per_server


def test_c2_one_server(benchmark):
    _bench(benchmark, 1)


def test_c2_two_servers(benchmark):
    _bench(benchmark, 2)


def test_c2_four_servers(benchmark):
    _bench(benchmark, 4)


def test_c2_shape_scales_and_shares(benchmark):
    def compare():
        t1, _ = run_with_servers(1)
        t4, shares = run_with_servers(4)
        return t1, t4, shares

    t1, t4, shares = benchmark.pedantic(compare, rounds=1, iterations=1)
    assert t4 < t1, f"4 servers ({t4:.3f}s) must beat 1 server ({t1:.3f}s)"
    # Work is genuinely shared: no single server did everything.
    assert sum(shares) == REQUESTS
    assert max(shares) < REQUESTS
    benchmark.extra_info["t_1_server_s"] = round(t1, 4)
    benchmark.extra_info["t_4_servers_s"] = round(t4, 4)
    benchmark.extra_info["speedup"] = round(t1 / t4, 2)
    benchmark.extra_info["per_server_share"] = shares
