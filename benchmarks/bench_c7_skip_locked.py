"""C7 — Section 10's ordering/concurrency trade-off.

"it should be possible for one transaction to dequeue the top element
of a queue, and for a second transaction to do the same before the
first transaction commits or aborts.  ...  this anomalous ordering is
tolerable, when compared to the performance degradation that strict
ordering would imply."

Setup: multiple worker threads dequeue from one pre-filled queue; each
holds its transaction open for a moment (simulated processing) before
committing.  In STRICT mode a pending head stalls everyone; in
SKIP_LOCKED mode workers pass over it.  Predicted shape: skip-locked
drains the queue several times faster; strict mode's completion order
is exactly FIFO while skip-locked occasionally reorders.
"""

from __future__ import annotations

import threading
import time

from repro.errors import ElementLockedError, QueueEmpty
from repro.queueing.queue import DequeueMode
from repro.queueing.repository import QueueRepository
from repro.storage.disk import MemDisk

ELEMENTS = 30
WORKERS = 4
HOLD_MS = 0.002


def drain(mode: DequeueMode) -> tuple[float, list[int]]:
    repo = QueueRepository("c7", MemDisk())
    queue = repo.create_queue("q", mode=mode)
    with repo.tm.transaction() as txn:
        for i in range(ELEMENTS):
            queue.enqueue(txn, i)
    completed: list[int] = []
    lock = threading.Lock()

    def worker():
        while True:
            txn = repo.tm.begin()
            try:
                element = queue.dequeue(txn)
            except QueueEmpty:
                repo.tm.abort(txn)
                return
            except ElementLockedError:
                repo.tm.abort(txn)
                time.sleep(0.0005)  # strict mode: wait for the head
                continue
            time.sleep(HOLD_MS)  # hold the element uncommitted
            repo.tm.commit(txn)
            with lock:
                completed.append(element.body)

    threads = [threading.Thread(target=worker) for _ in range(WORKERS)]
    start = time.monotonic()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return time.monotonic() - start, completed


def test_c7_skip_locked(benchmark):
    elapsed, completed = benchmark.pedantic(
        lambda: drain(DequeueMode.SKIP_LOCKED), rounds=3, iterations=1
    )
    assert sorted(completed) == list(range(ELEMENTS))
    benchmark.extra_info["mode"] = "skip-locked"
    benchmark.extra_info["elapsed_s"] = round(elapsed, 4)


def test_c7_strict_fifo(benchmark):
    elapsed, completed = benchmark.pedantic(
        lambda: drain(DequeueMode.STRICT), rounds=3, iterations=1
    )
    assert completed == list(range(ELEMENTS))  # exact FIFO, always
    benchmark.extra_info["mode"] = "strict FIFO"
    benchmark.extra_info["elapsed_s"] = round(elapsed, 4)


def test_c7_shape_strict_ordering_costs_concurrency(benchmark):
    def compare():
        fast, fast_order = drain(DequeueMode.SKIP_LOCKED)
        slow, slow_order = drain(DequeueMode.STRICT)
        return fast, slow, fast_order, slow_order

    fast, slow, fast_order, slow_order = benchmark.pedantic(
        compare, rounds=1, iterations=1
    )
    assert fast < slow, (
        f"skip-locked ({fast:.3f}s) must beat strict ({slow:.3f}s)"
    )
    assert slow_order == list(range(ELEMENTS))
    benchmark.extra_info["skip_locked_s"] = round(fast, 4)
    benchmark.extra_info["strict_s"] = round(slow, 4)
    benchmark.extra_info["degradation_factor"] = round(slow / fast, 2)
    benchmark.extra_info["skip_locked_reordered"] = fast_order != sorted(fast_order)
