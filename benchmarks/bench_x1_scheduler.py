"""X1 — extension: request scheduling (Section 10's "ignored issue").

Measures the effect of the scheduling policies the paper names:

* "highest dollar amount first" — mean completion position of the
  high-value requests under FIFO vs value-priority scheduling;
* elastic server pools — backlog drain time with a fixed single server
  vs an auto-scaling pool.
"""

from __future__ import annotations

import time

from repro.core.request import Request
from repro.core.scheduler import (
    RequestScheduler,
    ServerPool,
    fifo_policy,
    highest_amount_policy,
)
from repro.core.system import TPSystem

AMOUNTS = [10, 5000, 20, 8000, 15, 30, 9000, 25, 40, 7000]
HIGH = {a for a in AMOUNTS if a >= 5000}


def mean_position_of_high_value(policy) -> float:
    system = TPSystem()
    scheduler = RequestScheduler(policy)
    clerk = system.clerk("sched")
    clerk.connect()
    for seq, amount in enumerate(AMOUNTS, start=1):
        request = Request(
            rid=f"sched#{seq}", body={"amount": amount}, client_id="sched",
            reply_to=system.reply_queue_name("sched"),
        )
        scheduler.send(clerk, request, request.rid)
    server = system.server("s", lambda txn, r: r.body["amount"])
    order = []
    while server.process_one():
        pass
    order = [
        e.detail.get("status") and e.rid for e in system.trace.events("request.executed")
    ]
    positions = []
    for position, rid in enumerate(order):
        seq = int(rid.split("#")[1])
        if AMOUNTS[seq - 1] in HIGH:
            positions.append(position)
    return sum(positions) / len(positions)


def test_x1_fifo_scheduling(benchmark):
    mean_pos = benchmark.pedantic(
        lambda: mean_position_of_high_value(fifo_policy()), rounds=3, iterations=1
    )
    benchmark.extra_info["policy"] = "FIFO (submission time)"
    benchmark.extra_info["mean_position_of_high_value"] = round(mean_pos, 2)


def test_x1_highest_amount_first(benchmark):
    mean_pos = benchmark.pedantic(
        lambda: mean_position_of_high_value(highest_amount_policy()),
        rounds=3,
        iterations=1,
    )
    # The 4 high-value requests occupy the first 4 positions: mean 1.5.
    assert mean_pos == 1.5
    benchmark.extra_info["policy"] = "highest dollar amount first"
    benchmark.extra_info["mean_position_of_high_value"] = round(mean_pos, 2)


def drain_backlog(elastic: bool) -> tuple[float, int]:
    system = TPSystem()
    clerk = system.clerk("load")
    clerk.connect()
    for seq in range(1, 41):
        clerk.send(
            Request(rid=f"load#{seq}", body=seq, client_id="load",
                    reply_to=system.reply_queue_name("load")),
            f"load#{seq}",
        )

    def handler(txn, request):
        time.sleep(0.003)
        return request.body

    pool = ServerPool(
        system, handler,
        min_servers=1,
        max_servers=4 if elastic else 1,
        scale_up_depth=4,
        poll_timeout=0.004,
    )
    queue = system.request_repo.get_queue(system.request_queue)
    start = time.monotonic()
    pool.start()
    try:
        while queue.depth() + queue.pending() > 0:
            time.sleep(0.003)
        elapsed = time.monotonic() - start
        return elapsed, pool.size()
    finally:
        pool.stop()


def test_x1_fixed_single_server(benchmark):
    elapsed, _ = benchmark.pedantic(lambda: drain_backlog(False), rounds=3, iterations=1)
    benchmark.extra_info["pool"] = "fixed (1 server)"
    benchmark.extra_info["drain_s"] = round(elapsed, 4)


def test_x1_elastic_pool(benchmark):
    elapsed, peak = benchmark.pedantic(lambda: drain_backlog(True), rounds=3, iterations=1)
    benchmark.extra_info["pool"] = "elastic (1..4 servers)"
    benchmark.extra_info["drain_s"] = round(elapsed, 4)
    benchmark.extra_info["peak_servers"] = peak


def test_x1_shape_elastic_drains_faster(benchmark):
    def compare():
        fixed, _ = drain_backlog(False)
        elastic, peak = drain_backlog(True)
        return fixed, elastic, peak

    fixed, elastic, peak = benchmark.pedantic(compare, rounds=1, iterations=1)
    assert elastic < fixed
    benchmark.extra_info["fixed_s"] = round(fixed, 4)
    benchmark.extra_info["elastic_s"] = round(elastic, 4)
    benchmark.extra_info["speedup"] = round(fixed / elastic, 2)
