"""C8 — Section 5's Send variants, compared by message count.

"This saves a message from the QM to the client in the common case
that the reply arrives within the client's timeout period.
Alternatively, we can merge Send and Receive into a single Transceive
operation."

Measured over a lossless simulated network: messages per completed
request for (a) RPC Send + RPC Receive, (b) one-way Send + RPC Receive,
(c) Transceive.  Predicted shape: one-way saves exactly one message per
request; under loss, one-way still converges via reconnection.
"""

from __future__ import annotations

from repro.comm.network import SimNetwork
from repro.comm.rpc import RpcChannel, RpcServer
from repro.core.request import Request
from repro.core.system import TPSystem

REQUESTS = 20


def _system_with_network(loss_rate=0.0, seed=0):
    system = TPSystem()
    network = SimNetwork(seed=seed, loss_rate=loss_rate)
    RpcServer(network, "qm")
    channel = RpcChannel(network, "client", "qm", max_retries=100)
    server = system.server("s", lambda txn, r: {"echo": r.body})
    clerk = system.clerk("c1")
    clerk.connect()
    return system, network, channel, server, clerk


def _request(system, seq):
    return Request(
        rid=f"c1#{seq}", body=seq, client_id="c1",
        reply_to=system.reply_queue_name("c1"),
    )


def rpc_send_rpc_receive() -> int:
    system, network, channel, server, clerk = _system_with_network()
    for seq in range(1, REQUESTS + 1):
        request = _request(system, seq)
        channel.call(lambda: clerk.send(request, request.rid))
        server.process_one()
        channel.call(lambda: clerk.receive(timeout=2))
    return network.stats.sent


def oneway_send_rpc_receive() -> int:
    system, network, channel, server, clerk = _system_with_network()
    for seq in range(1, REQUESTS + 1):
        request = _request(system, seq)
        channel.post(lambda: clerk.send(request, request.rid))  # 1 message
        server.process_one()
        channel.call(lambda: clerk.receive(timeout=2))          # 2 messages
    return network.stats.sent


def transceive() -> int:
    """Merged Send+Receive: one request message whose response IS the
    reply — 2 messages per request."""
    system, network, channel, server, clerk = _system_with_network()

    def serve_and_receive(request):
        clerk.send(request, request.rid)
        server.process_one()
        return clerk.receive(timeout=2)

    for seq in range(1, REQUESTS + 1):
        request = _request(system, seq)
        channel.call(lambda: serve_and_receive(request))
    return network.stats.sent


def test_c8_rpc_send(benchmark):
    messages = benchmark.pedantic(rpc_send_rpc_receive, rounds=3, iterations=1)
    benchmark.extra_info["variant"] = "RPC Send + RPC Receive"
    benchmark.extra_info["messages_per_request"] = messages / REQUESTS


def test_c8_oneway_send(benchmark):
    messages = benchmark.pedantic(oneway_send_rpc_receive, rounds=3, iterations=1)
    benchmark.extra_info["variant"] = "one-way Send + RPC Receive"
    benchmark.extra_info["messages_per_request"] = messages / REQUESTS


def test_c8_transceive(benchmark):
    messages = benchmark.pedantic(transceive, rounds=3, iterations=1)
    benchmark.extra_info["variant"] = "Transceive (merged Send+Receive)"
    benchmark.extra_info["messages_per_request"] = messages / REQUESTS


def test_c8_shape_message_savings(benchmark):
    def compare():
        return rpc_send_rpc_receive(), oneway_send_rpc_receive(), transceive()

    rpc_msgs, oneway_msgs, transceive_msgs = benchmark.pedantic(
        compare, rounds=1, iterations=1
    )
    # One-way send saves exactly one message per request; Transceive
    # saves another.
    assert rpc_msgs - oneway_msgs == REQUESTS
    assert transceive_msgs < oneway_msgs
    assert transceive_msgs == 2 * REQUESTS
    benchmark.extra_info["rpc_messages"] = rpc_msgs
    benchmark.extra_info["oneway_messages"] = oneway_msgs
    benchmark.extra_info["transceive_messages"] = transceive_msgs
    benchmark.extra_info["saved_per_request"] = (rpc_msgs - oneway_msgs) / REQUESTS


def test_c8_oneway_loss_recovered_at_reconnect(benchmark):
    """Under loss, the one-way Send may vanish; the client detects it
    at reconnect (registration shows no Send) and resends — the paper's
    stated recovery path."""

    def lossy_run():
        system = TPSystem()
        network = SimNetwork(seed=5, loss_rate=0.5)
        RpcServer(network, "qm")
        from repro.comm.rpc import OneWayTransport

        clerk = system.clerk("c1")
        clerk.transport = OneWayTransport(network, "client", "qm")
        clerk.connect()
        resends = 0
        request = _request(system, 1)
        while True:
            clerk.send_oneway(request, "c1#1")
            # did it arrive?
            if system.request_repo.get_queue(system.request_queue).depth() > 0:
                break
            # timeout waiting for reply; reconnect shows Send was lost
            fresh = system.clerk("c1")
            s_rid, _, _ = fresh.connect()
            assert s_rid is None  # safe to resend
            clerk = fresh
            clerk.transport = OneWayTransport(network, "client", "qm")
            resends += 1
        return resends

    resends = benchmark.pedantic(lossy_run, rounds=1, iterations=1)
    benchmark.extra_info["resends_until_captured"] = resends
