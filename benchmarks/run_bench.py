#!/usr/bin/env python
"""Commit-throughput benchmark for the group-commit coordinator.

Runs N committer threads x M transactions each against one repository
(a KV table sharing the node's log, as in Figure 5's server
transaction), on both the in-memory disk and the file-backed disk, with
group commit disabled (the seed's one-fsync-per-commit behaviour) and
enabled.  Writes ``BENCH_groupcommit.json`` with txn/s, the disk's
flush count, and the batch-size distribution, so the performance
trajectory has data points.

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py            # full run
    PYTHONPATH=src python benchmarks/run_bench.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/run_bench.py --check BENCH_groupcommit.json
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import threading
import time

from repro.obs import Observability
from repro.queueing.repository import QueueRepository
from repro.storage.disk import FileDisk, MemDisk
from repro.storage.groupcommit import GroupCommitConfig

SCHEMA_VERSION = 1


def run_scenario(
    disk_kind: str,
    group_commit: GroupCommitConfig,
    threads_n: int,
    txns_n: int,
) -> dict:
    """One benchmark cell; returns its JSON-ready result row."""
    obs = Observability()
    if disk_kind == "mem":
        disk = MemDisk()
        tmpdir = None
    elif disk_kind == "file":
        tmpdir = tempfile.TemporaryDirectory(prefix="repro-bench-")
        disk = FileDisk(tmpdir.name)
    else:
        raise ValueError(f"unknown disk kind {disk_kind!r}")
    try:
        repo = QueueRepository(
            "bench", disk, obs=obs, group_commit=group_commit
        )
        table = repo.create_table("accounts")
        flushes_before = disk.flush_count
        errors: list[BaseException] = []

        def committer(tid: int) -> None:
            try:
                for i in range(txns_n):
                    with repo.tm.transaction() as txn:
                        table.put(txn, f"k{tid}-{i}", i)
            except BaseException as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        workers = [
            threading.Thread(target=committer, args=(t,))
            for t in range(threads_n)
        ]
        started = time.perf_counter()
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        elapsed = time.perf_counter() - started
        if errors:
            raise errors[0]

        commits = threads_n * txns_n
        flushes = disk.flush_count - flushes_before
        snapshot = obs.metrics.snapshot()
        batch = None
        family = snapshot.get("wal_group_commit_batch_size")
        if family and family["series"]:
            series = family["series"][0]
            batch = {
                "count": series["count"],
                "mean": series.get("mean", 0.0),
                "max": series.get("max", 0.0),
                "buckets": series["buckets"],
            }
        return {
            "disk": disk_kind,
            "group_commit": group_commit.enabled,
            "max_wait": group_commit.max_wait,
            "max_batch": group_commit.max_batch,
            "threads": threads_n,
            "txns_per_thread": txns_n,
            "commits": commits,
            "flushes": flushes,
            "flushes_per_commit": flushes / commits if commits else 0.0,
            "txn_per_sec": commits / elapsed if elapsed > 0 else 0.0,
            "elapsed_s": elapsed,
            "batch_size": batch,
        }
    finally:
        if isinstance(disk, FileDisk):
            disk.close()
        if tmpdir is not None:
            tmpdir.cleanup()


def run(args: argparse.Namespace) -> dict:
    threads_n = args.threads
    txns_n = args.txns
    if args.quick:
        threads_n = min(threads_n, 4)
        txns_n = min(txns_n, 40)
    configs = [
        GroupCommitConfig(enabled=False),
        GroupCommitConfig(max_wait=args.max_wait, max_batch=args.max_batch),
    ]
    scenarios = []
    for disk_kind in ("mem", "file"):
        for config in configs:
            label = "group" if config.enabled else "baseline"
            print(f"running {disk_kind}/{label} "
                  f"({threads_n} threads x {txns_n} txns)...", flush=True)
            row = run_scenario(disk_kind, config, threads_n, txns_n)
            print(f"  {row['txn_per_sec']:.0f} txn/s, "
                  f"{row['flushes']} flushes / {row['commits']} commits")
            scenarios.append(row)
    return {
        "version": SCHEMA_VERSION,
        "benchmark": "groupcommit",
        "quick": bool(args.quick),
        "scenarios": scenarios,
    }


# -- schema check (CI smoke) -------------------------------------------------

_SCENARIO_FIELDS = {
    "disk": str,
    "group_commit": bool,
    "max_wait": (int, float),
    "max_batch": int,
    "threads": int,
    "txns_per_thread": int,
    "commits": int,
    "flushes": int,
    "flushes_per_commit": (int, float),
    "txn_per_sec": (int, float),
    "elapsed_s": (int, float),
}


def validate(doc: object) -> list[str]:
    """Schema errors in a benchmark JSON document (empty = valid)."""
    errors: list[str] = []
    if not isinstance(doc, dict):
        return ["document is not an object"]
    if doc.get("version") != SCHEMA_VERSION:
        errors.append(f"version must be {SCHEMA_VERSION}")
    if doc.get("benchmark") != "groupcommit":
        errors.append("benchmark must be 'groupcommit'")
    scenarios = doc.get("scenarios")
    if not isinstance(scenarios, list) or not scenarios:
        return errors + ["scenarios must be a non-empty list"]
    for index, row in enumerate(scenarios):
        if not isinstance(row, dict):
            errors.append(f"scenarios[{index}] is not an object")
            continue
        for field, kind in _SCENARIO_FIELDS.items():
            if field not in row:
                errors.append(f"scenarios[{index}] missing {field!r}")
            elif not isinstance(row[field], kind) or isinstance(row[field], bool) != (kind is bool):
                errors.append(
                    f"scenarios[{index}].{field} has type "
                    f"{type(row[field]).__name__}"
                )
        batch = row.get("batch_size")
        if batch is not None and (
            not isinstance(batch, dict) or "buckets" not in batch
        ):
            errors.append(f"scenarios[{index}].batch_size malformed")
        if row.get("group_commit") and not row.get("batch_size"):
            errors.append(
                f"scenarios[{index}]: group-commit run has no batch histogram"
            )
    return errors


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--threads", type=int, default=8)
    parser.add_argument("--txns", type=int, default=200,
                        help="transactions per thread")
    parser.add_argument("--max-wait", type=float, default=0.0005,
                        help="group-commit wait window (seconds)")
    parser.add_argument("--max-batch", type=int, default=64)
    parser.add_argument("--quick", action="store_true",
                        help="small run for CI smoke testing")
    parser.add_argument("--out", default="BENCH_groupcommit.json")
    parser.add_argument("--check", metavar="PATH",
                        help="validate an existing result file and exit")
    args = parser.parse_args(argv)

    if args.check:
        with open(args.check) as f:
            doc = json.load(f)
        errors = validate(doc)
        if errors:
            for error in errors:
                print(f"schema error: {error}", file=sys.stderr)
            return 1
        print(f"{args.check}: schema ok ({len(doc['scenarios'])} scenarios)")
        return 0

    doc = run(args)
    errors = validate(doc)
    if errors:  # pragma: no cover - a bug in this script
        for error in errors:
            print(f"schema error: {error}", file=sys.stderr)
        return 1
    with open(args.out, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
