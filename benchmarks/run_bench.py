#!/usr/bin/env python
"""Commit-throughput benchmarks: group commit and repository sharding.

**groupcommit** (default): N committer threads x M transactions each
against one repository (a KV table sharing the node's log, as in
Figure 5's server transaction), on both the in-memory disk and the
file-backed disk, with group commit disabled (the seed's
one-fsync-per-commit behaviour) and enabled.  Writes
``BENCH_groupcommit.json`` with txn/s, the disk's flush count, and the
batch-size distribution.

**checkpoint** (``--checkpoint-bytes N``): the same committer workload
on one file-backed repository, with the byte-triggered fuzzy
checkpointer off (the seed's full-log-replay restart) and on at an
``N``-byte interval.  After the workload the node is closed and
reopened cold, timing restart recovery.  Writes
``BENCH_checkpoint.json`` with live WAL bytes, checkpoints taken,
restart latency, and records replayed — the bounded-time-recovery
acceptance numbers.

**sharding** (``--shards N``): the same committer workload against a
:class:`~repro.queueing.sharded.ShardedRepository` over 1, 2, ... N
file-backed shard disks, each thread pinned to one shard's table
(single-shard transactions: one log force, no 2PC — the routed commit
counters prove it), plus one cross-shard cell at N shards where every
transaction spans two shards and is promoted to two-phase commit.
Writes ``BENCH_sharding.json`` with txn/s per shard count.

**profile** (``--profile``): the in-memory committer workload with
observability disabled (the null-object fast path) and enabled, timing
the instrumentation overhead.  Writes ``BENCH_obs_overhead.json`` with
txn/s for both cells, the overhead percentage, and the enabled run's
per-phase latency attribution; the full metrics snapshot goes to
``--metrics-out`` so ``python -m repro.obs.report`` can render it.

**hotpath** (``--dequeue-mode``): the contended-consumer dequeue
workload — one file-backed queue prefilled to a steady depth, N
consumer threads each running dequeue-and-requeue transactions — at
the base depth and at 10x the base depth, in ``skip_locked`` and/or
``strict`` mode.  This is the Section 10 claim as a benchmark shape:
skip-locked throughput should be depth-insensitive while strict FIFO
collapses under contention.  Writes ``BENCH_hotpath.json`` with txn/s,
lock conflicts, skipped-locked counts, and WAL appends per commit.

**detlane** (``--cc``): the concurrency-control contention sweep —
N consumer threads each running auto-commit dequeue-then-requeue
against a strict-FIFO hot queue (with probability ``hot_fraction``)
or their private queue, on a file-backed repository with group commit
off, once under 2PL and once routed through the deterministic
plan-queue lane.  At high contention the 2PL cells collapse into
``ElementLockedError`` retry storms and one fsync per commit, while
the lane serializes intents without conflicts and coalesces each plan
batch into a single commit force.  Writes ``BENCH_detlane.json``; the
``--check`` gate asserts the lane overtakes 2PL at the
highest-contention cell (the crossover documented in
docs/performance.md).

**codec** (``--codec``): microbenchmark of the storage codec — per-
record ``encode``/``decode`` versus the batched ``encode_into`` reused
buffer and the ``memoryview``-based ``decode_from`` used by batched
WAL appends and recovery replay.  Writes ``BENCH_codec.json``.

**failover** (``--replicate``): the committer workload unreplicated,
with a warm standby attached (WAL log shipping rides along with every
commit force — the shipping-overhead number), and with a mid-workload
failover to the standby.  The failover cell times promotion plus the
promoted image's recovery boot (the RTO), verifies every acknowledged
pre-failover commit survived on the promoted node, and its txn/s
includes the outage window (steady-state vs during-failover
throughput).  Writes ``BENCH_failover.json``.

**netdeploy** (``--deployment tcp``): the saturation benchmark for the
TCP deployment — shard processes spawned by the supervisor, an asyncio
:class:`~repro.gateway.Gateway` terminating N closed-loop client
sessions, and a fixed pool of server threads draining the request
queue.  Swept over session counts (underload and overload) with
queue-depth backpressure on and off.  Overload with backpressure off
lets the request queue absorb the whole session population, so queue
wait — and the reply tail — grows with N; with backpressure on the
gateway refuses (``Busy``) past the depth watermark and the accepted
requests keep a bounded tail.  Writes ``BENCH_netdeploy.json`` with
txn/s, accepted-submit p50/p95/p99 reply latency, end-to-end p99
(including Busy retries), and refusal counts; the ``--check`` gate
asserts backpressure-on beats backpressure-off on p99 at the
overloaded cell.

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py            # group commit
    PYTHONPATH=src python benchmarks/run_bench.py --shards 4 # sharding
    PYTHONPATH=src python benchmarks/run_bench.py --checkpoint-bytes 65536
    PYTHONPATH=src python benchmarks/run_bench.py --profile  # obs overhead
    PYTHONPATH=src python benchmarks/run_bench.py --dequeue-mode both
    PYTHONPATH=src python benchmarks/run_bench.py --cc       # det lane sweep
    PYTHONPATH=src python benchmarks/run_bench.py --codec    # codec micro
    PYTHONPATH=src python benchmarks/run_bench.py --replicate # failover/RTO
    PYTHONPATH=src python benchmarks/run_bench.py --deployment tcp # netdeploy
    PYTHONPATH=src python benchmarks/run_bench.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/run_bench.py --check BENCH_groupcommit.json
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import tempfile
import threading
import time

from repro.errors import ElementLockedError, QueueEmpty
from repro.obs import Observability
from repro.queueing.manager import QueueManager
from repro.queueing.placement import PinnedPlacement
from repro.queueing.queue import DequeueMode
from repro.queueing.repository import QueueRepository
from repro.queueing.sharded import ShardedRepository
from repro.replication import ReplicaSet
from repro.storage.disk import FileDisk, MemDisk
from repro.storage.groupcommit import GroupCommitConfig
from repro.transaction.deterministic import DeterministicLane

SCHEMA_VERSION = 1


def _counter_total(snapshot: dict, name: str) -> int:
    """Sum of a counter family across its label series (0 if absent)."""
    family = snapshot.get(name)
    if not family:
        return 0
    return int(sum(s.get("value", 0) for s in family.get("series", ())))


def run_scenario(
    disk_kind: str,
    group_commit: GroupCommitConfig,
    threads_n: int,
    txns_n: int,
    obs: Observability | None = None,
) -> dict:
    """One benchmark cell; returns its JSON-ready result row."""
    obs = obs if obs is not None else Observability()
    if disk_kind == "mem":
        disk = MemDisk()
        tmpdir = None
    elif disk_kind == "file":
        tmpdir = tempfile.TemporaryDirectory(prefix="repro-bench-")
        disk = FileDisk(tmpdir.name)
    else:
        raise ValueError(f"unknown disk kind {disk_kind!r}")
    try:
        repo = QueueRepository(
            "bench", disk, obs=obs, group_commit=group_commit
        )
        table = repo.create_table("accounts")
        flushes_before = disk.flush_count
        errors: list[BaseException] = []

        def committer(tid: int) -> None:
            try:
                for i in range(txns_n):
                    with repo.tm.transaction() as txn:
                        table.put(txn, f"k{tid}-{i}", i)
            except BaseException as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        workers = [
            threading.Thread(target=committer, args=(t,))
            for t in range(threads_n)
        ]
        started = time.perf_counter()
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        elapsed = time.perf_counter() - started
        if errors:
            raise errors[0]

        commits = threads_n * txns_n
        flushes = disk.flush_count - flushes_before
        snapshot = obs.metrics.snapshot()
        batch = None
        family = snapshot.get("wal_group_commit_batch_size")
        if family and family["series"]:
            series = family["series"][0]
            batch = {
                "count": series["count"],
                "mean": series.get("mean", 0.0),
                "max": series.get("max", 0.0),
                "buckets": series["buckets"],
            }
        return {
            "disk": disk_kind,
            "group_commit": group_commit.enabled,
            "max_wait": group_commit.max_wait,
            "max_batch": group_commit.max_batch,
            "threads": threads_n,
            "txns_per_thread": txns_n,
            "commits": commits,
            "flushes": flushes,
            "flushes_per_commit": flushes / commits if commits else 0.0,
            "txn_per_sec": commits / elapsed if elapsed > 0 else 0.0,
            "elapsed_s": elapsed,
            "batch_size": batch,
        }
    finally:
        if isinstance(disk, FileDisk):
            disk.close()
        if tmpdir is not None:
            tmpdir.cleanup()


def run_sharded_scenario(
    shard_count: int,
    threads_n: int,
    txns_n: int,
    workload: str,
) -> dict:
    """One sharding-benchmark cell on file-backed shard disks.

    ``workload="single"`` pins thread *t* to a table on shard
    ``t % shard_count`` — every transaction stays on one shard and
    commits with a single log force.  ``workload="cross"`` makes every
    transaction also write the next thread's table, so (for more than
    one shard) each commit spans two shards and promotes to 2PC.
    """
    obs = Observability()
    tmpdirs = [
        tempfile.TemporaryDirectory(prefix="repro-bench-")
        for _ in range(shard_count)
    ]
    disks = [FileDisk(d.name) for d in tmpdirs]
    try:
        placement = PinnedPlacement(
            {f"t{t}": t % shard_count for t in range(threads_n)}
        )
        repo = ShardedRepository(
            "bench", disks, obs=obs,
            group_commit=GroupCommitConfig(enabled=False),
            placement=placement,
        )
        tables = [repo.create_table(f"t{t}") for t in range(threads_n)]
        tm = repo.tm
        commits_before = tm.commits
        single_before = getattr(tm, "single_shard_commits", 0)
        cross_before = getattr(tm, "cross_shard_commits", 0)
        flushes_before = sum(disk.flush_count for disk in disks)
        errors: list[BaseException] = []

        def committer(tid: int) -> None:
            table = tables[tid]
            other = tables[(tid + 1) % threads_n]
            try:
                for i in range(txns_n):
                    with tm.transaction() as txn:
                        table.put(txn, f"k{tid}-{i}", i)
                        if workload == "cross":
                            other.put(txn, f"x{tid}-{i}", i)
            except BaseException as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        workers = [
            threading.Thread(target=committer, args=(t,))
            for t in range(threads_n)
        ]
        started = time.perf_counter()
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        elapsed = time.perf_counter() - started
        if errors:
            raise errors[0]

        commits = threads_n * txns_n
        flushes = sum(disk.flush_count for disk in disks) - flushes_before
        if shard_count == 1:
            # Passthrough repository: a plain TransactionManager, every
            # commit trivially single-shard.
            single, cross = tm.commits - commits_before, 0
        else:
            single = tm.single_shard_commits - single_before
            cross = tm.cross_shard_commits - cross_before
        return {
            "shards": shard_count,
            "workload": workload,
            "threads": threads_n,
            "txns_per_thread": txns_n,
            "commits": commits,
            "single_shard_commits": single,
            "cross_shard_commits": cross,
            "flushes": flushes,
            "flushes_per_commit": flushes / commits if commits else 0.0,
            "txn_per_sec": commits / elapsed if elapsed > 0 else 0.0,
            "elapsed_s": elapsed,
        }
    finally:
        for disk in disks:
            disk.close()
        for tmpdir in tmpdirs:
            tmpdir.cleanup()


def run_checkpoint_scenario(
    interval_bytes: int | None,
    threads_n: int,
    txns_n: int,
) -> dict:
    """One checkpoint-benchmark cell on a file-backed disk.

    Runs the committer workload (with the background checkpointer when
    ``interval_bytes`` is set), then closes the node and times a cold
    reopen — the restart-latency number the checkpoint exists to bound.
    """
    obs = Observability()
    tmpdir = tempfile.TemporaryDirectory(prefix="repro-bench-")
    pad = "x" * 64  # give each commit some log weight
    try:
        disk = FileDisk(tmpdir.name)
        repo = QueueRepository(
            "bench", disk, obs=obs, checkpoint_interval_bytes=interval_bytes
        )
        table = repo.create_table("accounts")
        errors: list[BaseException] = []

        def committer(tid: int) -> None:
            try:
                for i in range(txns_n):
                    with repo.tm.transaction() as txn:
                        table.put(txn, f"k{tid}-{i}", f"{i}:{pad}")
            except BaseException as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        workers = [
            threading.Thread(target=committer, args=(t,))
            for t in range(threads_n)
        ]
        started = time.perf_counter()
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        elapsed = time.perf_counter() - started
        if errors:
            raise errors[0]

        repo.close()
        commits = threads_n * txns_n
        live_wal = repo.log.wal.live_bytes()
        checkpoints = (
            repo.checkpointer.checkpoints_taken
            if repo.checkpointer is not None else 0
        )
        disk.close()

        # Cold restart: recovery reads the checkpoint (if any) and
        # replays only the log suffix above its recovery LSN.
        disk = FileDisk(tmpdir.name)
        restart_started = time.perf_counter()
        reopened = QueueRepository(
            "bench", disk, obs=Observability(),
            checkpoint_interval_bytes=interval_bytes,
        )
        restart_seconds = time.perf_counter() - restart_started
        reopened.close()
        report = reopened.last_recovery
        disk.close()
        return {
            "checkpointing": interval_bytes is not None,
            "interval_bytes": interval_bytes or 0,
            "threads": threads_n,
            "txns_per_thread": txns_n,
            "commits": commits,
            "checkpoints": checkpoints,
            "live_wal_bytes": live_wal,
            "restart_seconds": restart_seconds,
            "replayed_records": report.replayed_records,
            "recovery_lsn": report.recovery_lsn,
            "txn_per_sec": commits / elapsed if elapsed > 0 else 0.0,
            "elapsed_s": elapsed,
        }
    finally:
        tmpdir.cleanup()


def run_failover_scenario(phase: str, threads_n: int, txns_n: int) -> dict:
    """One replication-benchmark cell on file-backed disks.

    ``phase="baseline"`` runs the committer workload unreplicated;
    ``phase="replicated"`` attaches a warm standby (log shipping rides
    along with every commit force) to measure the shipping overhead;
    ``phase="failover"`` runs half the workload, fails over to the
    standby — timing promotion plus the promoted image's recovery boot,
    which is the RTO — verifies that every pre-failover commit survived
    on the promoted node, and finishes the workload there.  The
    failover cell's txn/s includes the RTO outage window, so comparing
    it against the replicated cell is the steady-state vs
    during-failover throughput number.
    """
    obs = Observability()
    tmp_primary = tempfile.TemporaryDirectory(prefix="repro-bench-")
    tmp_standby = tempfile.TemporaryDirectory(prefix="repro-bench-")
    pad = "x" * 64
    disks: list[FileDisk] = []
    try:
        disk = FileDisk(tmp_primary.name)
        disks.append(disk)
        repo = ShardedRepository(
            "bench", [disk], obs=obs,
            group_commit=GroupCommitConfig(enabled=False),
        )
        table = repo.create_table("accounts")
        replicas = None
        if phase != "baseline":
            standby_disk = FileDisk(tmp_standby.name)
            disks.append(standby_disk)
            replicas = ReplicaSet(repo, standby_disks=[standby_disk], obs=obs)

        def run_burst(repo, table, count, offset) -> float:
            errors: list[BaseException] = []

            def committer(tid: int) -> None:
                try:
                    for i in range(offset, offset + count):
                        with repo.tm.transaction() as txn:
                            table.put(txn, f"k{tid}-{i}", f"{i}:{pad}")
                except BaseException as exc:  # pragma: no cover - diagnostic
                    errors.append(exc)

            workers = [
                threading.Thread(target=committer, args=(t,))
                for t in range(threads_n)
            ]
            started = time.perf_counter()
            for w in workers:
                w.start()
            for w in workers:
                w.join()
            if errors:
                raise errors[0]
            return time.perf_counter() - started

        failovers = 0
        rto_seconds = 0.0
        commits_before_failover = 0
        recovered = 0
        if phase == "failover":
            first = txns_n // 2
            elapsed = run_burst(repo, table, first, 0)
            commits_before_failover = threads_n * first
            started = time.perf_counter()
            promoted = replicas.fail_over(0, reason="bench.kill")
            reopened = ShardedRepository(
                "bench", [promoted], obs=Observability(),
                group_commit=GroupCommitConfig(enabled=False),
            )
            rto_seconds = time.perf_counter() - started
            failovers = 1
            new_table = reopened.create_table("accounts")
            with reopened.tm.transaction() as txn:
                for tid in range(threads_n):
                    for i in range(first):
                        if new_table.get(txn, f"k{tid}-{i}") is not None:
                            recovered += 1
            elapsed += rto_seconds
            elapsed += run_burst(reopened, new_table, txns_n - first, first)
            commits = threads_n * txns_n
        else:
            elapsed = run_burst(repo, table, txns_n, 0)
            commits = threads_n * txns_n
            if replicas is not None:
                replicas.pump()
                replicas.detach()

        shipped = _counter_total(
            obs.metrics.snapshot(), "replication_shipped_bytes_total"
        )
        lag = sum(replicas.lag_bytes()) if replicas is not None else 0
        return {
            "phase": phase,
            "threads": threads_n,
            "txns_per_thread": txns_n,
            "commits": commits,
            "shipped_bytes": shipped,
            "lag_bytes": lag,
            "failovers": failovers,
            "rto_seconds": rto_seconds,
            "commits_before_failover": commits_before_failover,
            "recovered_commits": recovered,
            "txn_per_sec": commits / elapsed if elapsed > 0 else 0.0,
            "elapsed_s": elapsed,
        }
    finally:
        for d in disks:
            d.close()
        tmp_primary.cleanup()
        tmp_standby.cleanup()


def run_failover(args: argparse.Namespace) -> dict:
    threads_n = args.threads
    txns_n = args.txns
    if args.quick:
        threads_n = min(threads_n, 4)
        txns_n = min(txns_n, 40)
    scenarios = []
    for phase in ("baseline", "replicated", "failover"):
        print(f"running failover/{phase} "
              f"({threads_n} threads x {txns_n} txns)...", flush=True)
        row = run_failover_scenario(phase, threads_n, txns_n)
        print(f"  {row['txn_per_sec']:.0f} txn/s, "
              f"{row['shipped_bytes']} bytes shipped, lag {row['lag_bytes']}"
              + (f", RTO {row['rto_seconds'] * 1000:.1f} ms, "
                 f"{row['recovered_commits']}/{row['commits_before_failover']} "
                 "pre-failover commits recovered"
                 if row["failovers"] else ""))
        scenarios.append(row)
    return {
        "version": SCHEMA_VERSION,
        "benchmark": "failover",
        "quick": bool(args.quick),
        "scenarios": scenarios,
    }


def run_hotpath_scenario(
    mode: str,
    prefill: int,
    threads_n: int,
    txns_n: int,
    group_commit: GroupCommitConfig,
    metrics_out: str | None = None,
) -> dict:
    """One contended-consumer cell on a file-backed disk.

    The queue is prefilled to ``prefill`` committed elements; each of
    ``threads_n`` consumers then runs ``txns_n`` dequeue-and-requeue
    transactions, so the committed depth stays ~constant for the whole
    timed window (the degradation claim needs a steady depth, not a
    drain).  In STRICT mode an uncommitted head raises
    ``ElementLockedError``; the consumer aborts and retries, and the
    retry count is reported as ``lock_conflicts``.
    """
    obs = Observability()
    tmpdir = tempfile.TemporaryDirectory(prefix="repro-bench-")
    try:
        disk = FileDisk(tmpdir.name)
        repo = QueueRepository("bench", disk, obs=obs, group_commit=group_commit)
        queue = repo.create_queue("work", mode=DequeueMode(mode))
        filled = 0
        while filled < prefill:
            batch = min(100, prefill - filled)
            with repo.tm.transaction() as txn:
                for offset in range(batch):
                    queue.enqueue(txn, {"n": filled + offset})
            filled += batch

        flushes_before = disk.flush_count
        appends_before = _counter_total(
            obs.metrics.snapshot(), "wal_appends_total"
        )
        conflicts = [0] * threads_n
        errors: list[BaseException] = []

        def consumer(tid: int) -> None:
            done = 0
            try:
                while done < txns_n:
                    try:
                        with repo.tm.transaction() as txn:
                            element = queue.dequeue(txn)
                            queue.enqueue(
                                txn, element.body, priority=element.priority
                            )
                        done += 1
                    except (ElementLockedError, QueueEmpty):
                        conflicts[tid] += 1
                        time.sleep(0)  # yield to the lock holder
            except BaseException as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        workers = [
            threading.Thread(target=consumer, args=(t,))
            for t in range(threads_n)
        ]
        started = time.perf_counter()
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        elapsed = time.perf_counter() - started
        if errors:
            raise errors[0]

        commits = threads_n * txns_n
        flushes = disk.flush_count - flushes_before
        appends = _counter_total(
            obs.metrics.snapshot(), "wal_appends_total"
        ) - appends_before
        if metrics_out is not None:
            from repro.obs.export import write_metrics_json

            write_metrics_json(obs.metrics, metrics_out)
            print(f"  wrote metrics snapshot to {metrics_out}")
        return {
            "mode": mode,
            "prefill": prefill,
            "threads": threads_n,
            "txns_per_thread": txns_n,
            "commits": commits,
            "lock_conflicts": sum(conflicts),
            "skipped_locked": queue.skipped_locked,
            "flushes": flushes,
            "flushes_per_commit": flushes / commits if commits else 0.0,
            "wal_appends": appends,
            "appends_per_commit": appends / commits if commits else 0.0,
            "txn_per_sec": commits / elapsed if elapsed > 0 else 0.0,
            "elapsed_s": elapsed,
        }
    finally:
        tmpdir.cleanup()


def run_hotpath(args: argparse.Namespace) -> dict:
    threads_n = args.threads
    txns_n = args.txns
    prefill = args.prefill
    if args.quick:
        threads_n = min(threads_n, 4)
        txns_n = min(txns_n, 30)
        prefill = min(prefill, 20)
    modes = (
        ("skip_locked", "strict")
        if args.dequeue_mode == "both" else (args.dequeue_mode,)
    )
    config = GroupCommitConfig(max_wait=args.max_wait, max_batch=args.max_batch)
    scenarios = []
    for mode in modes:
        # STRICT spends most of its time in abort/retry spins; a
        # smaller per-thread quota keeps the cell's wall time sane
        # without changing its (normalized) txn/s.
        mode_txns = txns_n if mode == "skip_locked" else max(10, txns_n // 4)
        for depth in (prefill, prefill * 10):
            print(f"running hotpath/{mode} depth={depth} "
                  f"({threads_n} threads x {mode_txns} txns)...", flush=True)
            # Snapshot the deep skip-locked cell: that is the hot path
            # whose attribution docs/performance.md tracks.
            snapshot_cell = mode == "skip_locked" and depth == prefill * 10
            row = run_hotpath_scenario(
                mode, depth, threads_n, mode_txns, config,
                metrics_out=args.metrics_out if snapshot_cell else None,
            )
            print(f"  {row['txn_per_sec']:.0f} txn/s, "
                  f"{row['lock_conflicts']} conflicts, "
                  f"{row['skipped_locked']} skipped-locked, "
                  f"{row['appends_per_commit']:.2f} appends/commit")
            scenarios.append(row)
    return {
        "version": SCHEMA_VERSION,
        "benchmark": "hotpath",
        "quick": bool(args.quick),
        "scenarios": scenarios,
    }


def run_detlane_scenario(
    cc: str,
    threads_n: int,
    txns_n: int,
    hot_fraction: float,
) -> dict:
    """One cell of the concurrency-control contention sweep.

    Every thread loops: pick the shared strict-FIFO ``hot`` queue with
    probability ``hot_fraction`` (else its private queue), then run an
    auto-commit dequeue followed by an auto-commit requeue of the same
    body.  Under 2PL each operation is its own transaction fighting for
    the queue head; under the deterministic lane both are planned
    intents executed serially in shared batches.  ``ops`` counts
    completed dequeue+requeue pairs; a strict-mode head conflict or an
    empty poll counts as one ``conflict`` retry.
    """
    obs = Observability()
    tmpdir = tempfile.TemporaryDirectory(prefix="repro-bench-")
    try:
        disk = FileDisk(tmpdir.name)
        repo = ShardedRepository(
            "bench", [disk], obs=obs,
            group_commit=GroupCommitConfig(enabled=False),
        )
        lane = DeterministicLane(repo, obs=obs) if cc != "2pl" else None
        qm = QueueManager(repo, obs=obs, cc=cc, lane=lane)
        qnames = ["hot"] + [f"own{t}" for t in range(threads_n)]
        for qname in qnames:
            repo.create_queue(qname, mode=DequeueMode.STRICT)
        handles = {}
        for t in range(threads_n):
            for qname in ("hot", f"own{t}"):
                handles[(qname, t)], _, _ = qm.register(qname, f"w{t}")
        prefill = {"hot": 4 * threads_n + 8}
        for t in range(threads_n):
            prefill[f"own{t}"] = 4
        for qname, depth in prefill.items():
            with repo.tm.transaction() as txn:
                queue = repo.get_queue(qname)
                for n in range(depth):
                    queue.enqueue(txn, {"q": qname, "n": n})

        flushes_before = disk.flush_count
        conflicts = [0] * threads_n
        errors: list[BaseException] = []

        def worker(tid: int) -> None:
            rng = random.Random(7919 * tid + 13)
            hot = handles[("hot", tid)]
            own = handles[(f"own{tid}", tid)]
            done = 0
            try:
                while done < txns_n:
                    handle = hot if rng.random() < hot_fraction else own
                    try:
                        element = qm.dequeue(handle)
                        qm.enqueue(handle, element.body)
                        done += 1
                    except (ElementLockedError, QueueEmpty):
                        conflicts[tid] += 1
                        time.sleep(0)  # yield to the pending dequeuer
            except BaseException as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        workers = [
            threading.Thread(target=worker, args=(t,))
            for t in range(threads_n)
        ]
        started = time.perf_counter()
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        elapsed = time.perf_counter() - started
        if errors:
            raise errors[0]

        ops = threads_n * txns_n
        flushes = disk.flush_count - flushes_before
        snapshot = obs.metrics.snapshot()
        batch_family = snapshot.get("det_plan_batch_size") or {}
        batch_series = (batch_family.get("series") or [{}])[0]
        det_batches = int(batch_series.get("count", 0))
        batch_sum = float(batch_series.get("sum", 0.0))
        return {
            "cc": cc,
            "threads": threads_n,
            "hot_fraction": hot_fraction,
            "txns_per_thread": txns_n,
            "ops": ops,
            "conflicts": sum(conflicts),
            "det_batches": det_batches,
            "det_batch_mean": (
                batch_sum / det_batches if det_batches else 0.0
            ),
            "flushes": flushes,
            "ops_per_sec": ops / elapsed if elapsed > 0 else 0.0,
            "elapsed_s": elapsed,
        }
    finally:
        tmpdir.cleanup()


def run_detlane(args: argparse.Namespace) -> dict:
    """The ``--cc`` contention sweep: thread count x hot-queue skew,
    each cell once per concurrency-control lane."""
    txns_n = max(10, args.txns // 8)
    threads_grid = (2, 8)
    hot_grid = (0.0, 0.9)
    if args.quick:
        txns_n = min(txns_n, 10)
        threads_grid = (2,)
        hot_grid = (0.9,)
    scenarios = []
    for threads_n in threads_grid:
        for hot_fraction in hot_grid:
            for cc in ("2pl", "deterministic"):
                print(f"running detlane/{cc} threads={threads_n} "
                      f"hot={hot_fraction} ({txns_n} pairs/thread)...",
                      flush=True)
                row = run_detlane_scenario(
                    cc, threads_n, txns_n, hot_fraction
                )
                print(f"  {row['ops_per_sec']:.0f} ops/s, "
                      f"{row['conflicts']} conflicts, "
                      f"{row['det_batches']} plan batches "
                      f"(mean {row['det_batch_mean']:.1f}), "
                      f"{row['flushes']} flushes")
                scenarios.append(row)
    return {
        "version": SCHEMA_VERSION,
        "benchmark": "detlane",
        "quick": bool(args.quick),
        "scenarios": scenarios,
    }


def run_codec(args: argparse.Namespace) -> dict:
    """The codec microbenchmark (``--codec``).

    Encodes/decodes a realistic WAL-record population four ways:
    per-record ``encode``/``decode`` (one fresh buffer and one byte
    copy per record — the seed's path) versus the batched
    ``encode_into`` reused buffer and the zero-copy ``decode_from``
    over a single ``memoryview`` (the batched-append path).
    """
    from repro.storage import codec

    records_n = 200 if args.quick else 2000
    reps = 5 if args.quick else 20
    records = [
        {
            "k": "upd",
            "t": i,
            "rm": "q:requests",
            "d": {
                "op": "enq",
                "el": {
                    "eid": i,
                    "body": {"payload": "x" * 64, "n": i},
                    "priority": i % 3,
                    "enqueue_seq": i,
                    "headers": {"rid": f"r{i}", "client": "bench"},
                    "abort_count": 0,
                },
            },
        }
        for i in range(records_n)
    ]

    def cell(op: str, variant: str, run) -> dict:
        # One warm-up rep (buffer growth, cache warming), then timed.
        run()
        started = time.perf_counter()
        total_bytes = 0
        for _ in range(reps):
            total_bytes += run()
        elapsed = time.perf_counter() - started
        done = reps * records_n
        row = {
            "op": op,
            "variant": variant,
            "records": done,
            "bytes": total_bytes,
            "records_per_sec": done / elapsed if elapsed > 0 else 0.0,
            "mb_per_sec": (
                total_bytes / elapsed / 1e6 if elapsed > 0 else 0.0
            ),
            "elapsed_s": elapsed,
        }
        print(f"  {op}/{variant}: {row['records_per_sec']:.0f} records/s "
              f"({row['mb_per_sec']:.1f} MB/s)")
        return row

    print(f"running codec microbenchmark ({records_n} records x {reps} "
          "reps)...", flush=True)

    payloads = [codec.encode(r) for r in records]
    batch = bytearray()
    for record in records:
        codec.encode_into(batch, record)
    batch_view = memoryview(bytes(batch))

    def encode_single() -> int:
        return sum(len(codec.encode(r)) for r in records)

    reused = bytearray()

    def encode_batched() -> int:
        del reused[:]
        for record in records:
            codec.encode_into(reused, record)
        return len(reused)

    def decode_single() -> int:
        total = 0
        for payload in payloads:
            codec.decode(payload)
            total += len(payload)
        return total

    def decode_memoryview() -> int:
        pos = 0
        while pos < len(batch_view):
            _, pos = codec.decode_from(batch_view, pos)
        return len(batch_view)

    scenarios = [
        cell("encode", "single", encode_single),
        cell("encode", "batched", encode_batched),
        cell("decode", "single", decode_single),
        cell("decode", "memoryview", decode_memoryview),
    ]
    return {
        "version": SCHEMA_VERSION,
        "benchmark": "codec",
        "quick": bool(args.quick),
        "scenarios": scenarios,
    }


def run_checkpoint(args: argparse.Namespace) -> dict:
    threads_n = args.threads
    txns_n = args.txns
    if args.quick:
        threads_n = min(threads_n, 4)
        txns_n = min(txns_n, 40)
    scenarios = []
    for interval in (None, args.checkpoint_bytes):
        label = "off" if interval is None else f"every {interval} bytes"
        print(f"running checkpoint/{label} "
              f"({threads_n} threads x {txns_n} txns)...", flush=True)
        row = run_checkpoint_scenario(interval, threads_n, txns_n)
        print(f"  {row['txn_per_sec']:.0f} txn/s, "
              f"{row['checkpoints']} checkpoints, "
              f"{row['live_wal_bytes']} live WAL bytes, "
              f"restart {row['restart_seconds'] * 1000:.1f} ms "
              f"({row['replayed_records']} records replayed)")
        scenarios.append(row)
    return {
        "version": SCHEMA_VERSION,
        "benchmark": "checkpoint",
        "quick": bool(args.quick),
        "scenarios": scenarios,
    }


def run_sharding(args: argparse.Namespace) -> dict:
    threads_n = args.threads
    txns_n = args.txns
    if args.quick:
        threads_n = min(threads_n, 4)
        txns_n = min(txns_n, 40)
    counts = []
    count = 1
    while count < args.shards:
        counts.append(count)
        count *= 2
    counts.append(args.shards)
    scenarios = []
    for shard_count in counts:
        print(f"running sharding/single x{shard_count} "
              f"({threads_n} threads x {txns_n} txns)...", flush=True)
        row = run_sharded_scenario(shard_count, threads_n, txns_n, "single")
        print(f"  {row['txn_per_sec']:.0f} txn/s, "
              f"{row['cross_shard_commits']} cross-shard commits")
        scenarios.append(row)
    print(f"running sharding/cross x{args.shards}...", flush=True)
    row = run_sharded_scenario(args.shards, threads_n, txns_n, "cross")
    print(f"  {row['txn_per_sec']:.0f} txn/s, "
          f"{row['cross_shard_commits']} cross-shard commits")
    scenarios.append(row)
    return {
        "version": SCHEMA_VERSION,
        "benchmark": "sharding",
        "quick": bool(args.quick),
        "scenarios": scenarios,
    }


def run_profile(args: argparse.Namespace) -> dict:
    """The observability-overhead benchmark (``--profile``).

    Runs the same in-memory committer workload twice — observability
    disabled (the null-object fast path) and enabled — and reports the
    txn/s delta plus the enabled run's per-phase latency attribution.
    The enabled run's full metrics snapshot is written next to the
    result so ``python -m repro.obs.report`` can render it.
    """
    from repro.obs.export import write_metrics_json
    from repro.obs.report import PIPELINE_PHASES, _merge, _series

    threads_n = args.threads
    txns_n = args.txns
    if args.quick:
        threads_n = min(threads_n, 4)
        txns_n = min(txns_n, 40)
    config = GroupCommitConfig(max_wait=args.max_wait, max_batch=args.max_batch)

    print(f"running profile/disabled ({threads_n} threads x {txns_n} "
          "txns)...", flush=True)
    row_off = run_scenario("mem", config, threads_n, txns_n,
                           obs=Observability.disabled())
    row_off["obs_enabled"] = False
    print(f"  {row_off['txn_per_sec']:.0f} txn/s")

    print(f"running profile/enabled ({threads_n} threads x {txns_n} "
          "txns)...", flush=True)
    obs = Observability()
    row_on = run_scenario("mem", config, threads_n, txns_n, obs=obs)
    row_on["obs_enabled"] = True
    print(f"  {row_on['txn_per_sec']:.0f} txn/s")

    snapshot = obs.metrics.snapshot()
    attribution = {}
    for label, metric, match, lane in PIPELINE_PHASES:
        merged = _merge(_series(snapshot, metric, match))
        if merged["count"]:
            attribution[label] = {
                "lane": lane,
                "count": int(merged["count"]),
                "total_s": merged["sum"],
                "p95_s": merged["p95"],
            }
    write_metrics_json(obs.metrics, args.metrics_out)
    print(f"wrote metrics snapshot to {args.metrics_out}")

    off_tps, on_tps = row_off["txn_per_sec"], row_on["txn_per_sec"]
    overhead_pct = (
        100.0 * (off_tps - on_tps) / off_tps if off_tps > 0 else 0.0
    )
    print(f"  instrumentation overhead: {overhead_pct:.1f}% txn/s")
    return {
        "version": SCHEMA_VERSION,
        "benchmark": "obs_overhead",
        "quick": bool(args.quick),
        "overhead_pct": overhead_pct,
        "metrics_snapshot": args.metrics_out,
        "attribution": attribution,
        "scenarios": [row_off, row_on],
    }


def run(args: argparse.Namespace) -> dict:
    threads_n = args.threads
    txns_n = args.txns
    if args.quick:
        threads_n = min(threads_n, 4)
        txns_n = min(txns_n, 40)
    configs = [
        GroupCommitConfig(enabled=False),
        GroupCommitConfig(max_wait=args.max_wait, max_batch=args.max_batch),
    ]
    scenarios = []
    for disk_kind in ("mem", "file"):
        for config in configs:
            label = "group" if config.enabled else "baseline"
            print(f"running {disk_kind}/{label} "
                  f"({threads_n} threads x {txns_n} txns)...", flush=True)
            row = run_scenario(disk_kind, config, threads_n, txns_n)
            print(f"  {row['txn_per_sec']:.0f} txn/s, "
                  f"{row['flushes']} flushes / {row['commits']} commits")
            scenarios.append(row)
    return {
        "version": SCHEMA_VERSION,
        "benchmark": "groupcommit",
        "quick": bool(args.quick),
        "scenarios": scenarios,
    }


def _percentile(samples: list[float], pct: float) -> float:
    """Nearest-rank percentile of ``samples`` in milliseconds."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, int(round(pct * (len(ordered) - 1)))))
    return ordered[rank] * 1000.0


def run_netdeploy_scenario(
    backpressure: bool,
    sessions_n: int,
    requests_n: int,
    depth_limit: int,
    servers_n: int,
    service_time: float = 0.002,
) -> dict:
    """One netdeploy cell: a fresh 2-shard TCP deployment, ``sessions_n``
    closed-loop async sessions through one gateway, ``servers_n`` server
    threads draining the request queue with ``service_time`` of work per
    request.  The server pool is the bottleneck, so the steady-state
    queue depth is the session population — unless backpressure caps it
    at ``depth_limit``."""
    import asyncio
    import shutil

    from repro.core.system import TPSystem
    from repro.errors import Busy
    from repro.gateway import Gateway

    data_dir = tempfile.mkdtemp(prefix="repro-bench-netdeploy-")
    system = TPSystem(deployment="tcp", shards=2, data_dir=data_dir)
    stop = threading.Event()

    def handler(_txn, request):
        time.sleep(service_time)
        return request.body

    def serve_loop(server) -> None:
        while not stop.is_set():
            try:
                if not server.process_one():
                    time.sleep(0.001)
            except Exception:
                if stop.is_set():
                    return
                time.sleep(0.001)

    servers = [
        system.server(f"bench-s{i}", handler) for i in range(servers_n)
    ]
    threads = [
        threading.Thread(target=serve_loop, args=(server,), daemon=True)
        for server in servers
    ]

    #: per-session (accepted-submit latencies, end-to-end latencies, busy)
    async def client(gateway, cid: str) -> tuple[list, list, int]:
        loop = asyncio.get_event_loop()
        session = await gateway.session(cid)
        service, e2e, busy = [], [], 0
        for n in range(requests_n):
            first_attempt = loop.time()
            while True:
                try:
                    await session.submit({"n": n})
                    break
                except Busy:
                    busy += 1
                    await asyncio.sleep(0.005)
            accepted = loop.time()
            await session.receive(timeout=60)
            now = loop.time()
            service.append(now - accepted)
            e2e.append(now - first_attempt)
        return service, e2e, busy

    async def scenario() -> list:
        gateway = Gateway(
            [("127.0.0.1", s.port) for s in system.supervisor.shards],
            request_queue=system.request_queue,
            depth_limit=depth_limit,
            backpressure=backpressure,
            max_inflight=max(64, 4 * sessions_n),
        )
        await gateway.start()
        try:
            return await asyncio.gather(
                *(client(gateway, f"c{i}") for i in range(sessions_n))
            )
        finally:
            await gateway.close()

    try:
        for thread in threads:
            thread.start()
        started = time.perf_counter()
        results = asyncio.run(scenario())
        elapsed = time.perf_counter() - started
    finally:
        stop.set()
        for thread in threads:
            thread.join(timeout=5)
        system.close()
        shutil.rmtree(data_dir, ignore_errors=True)

    service = [s for per_session in results for s in per_session[0]]
    e2e = [s for per_session in results for s in per_session[1]]
    busy = sum(per_session[2] for per_session in results)
    completed = len(service)
    return {
        "backpressure": backpressure,
        "sessions": sessions_n,
        "requests_per_session": requests_n,
        "depth_limit": depth_limit,
        "servers": servers_n,
        "completed": completed,
        "busy_refusals": busy,
        "txn_per_sec": completed / elapsed if elapsed else 0.0,
        "p50_ms": _percentile(service, 0.50),
        "p95_ms": _percentile(service, 0.95),
        "p99_ms": _percentile(service, 0.99),
        "e2e_p99_ms": _percentile(e2e, 0.99),
        "elapsed_s": elapsed,
    }


def run_netdeploy(args: argparse.Namespace) -> dict:
    requests_n = 5 if args.quick else 15
    sweep = (2, 6) if args.quick else (4, 24)
    depth_limit = 2 if args.quick else 6
    scenarios = []
    for sessions_n in sweep:
        for backpressure in (False, True):
            label = "on" if backpressure else "off"
            print(f"running netdeploy/sessions={sessions_n} "
                  f"backpressure={label} "
                  f"({requests_n} requests/session)...", flush=True)
            row = run_netdeploy_scenario(
                backpressure, sessions_n, requests_n, depth_limit,
                servers_n=1,
            )
            print(f"  {row['txn_per_sec']:.0f} txn/s, "
                  f"p99 {row['p99_ms']:.1f} ms, "
                  f"{row['busy_refusals']} refusals")
            scenarios.append(row)
    return {
        "version": SCHEMA_VERSION,
        "benchmark": "netdeploy",
        "quick": bool(args.quick),
        "scenarios": scenarios,
    }


# -- schema check (CI smoke) -------------------------------------------------

_GROUPCOMMIT_FIELDS = {
    "disk": str,
    "group_commit": bool,
    "max_wait": (int, float),
    "max_batch": int,
    "threads": int,
    "txns_per_thread": int,
    "commits": int,
    "flushes": int,
    "flushes_per_commit": (int, float),
    "txn_per_sec": (int, float),
    "elapsed_s": (int, float),
}

_SHARDING_FIELDS = {
    "shards": int,
    "workload": str,
    "threads": int,
    "txns_per_thread": int,
    "commits": int,
    "single_shard_commits": int,
    "cross_shard_commits": int,
    "flushes": int,
    "flushes_per_commit": (int, float),
    "txn_per_sec": (int, float),
    "elapsed_s": (int, float),
}

_CHECKPOINT_FIELDS = {
    "checkpointing": bool,
    "interval_bytes": int,
    "threads": int,
    "txns_per_thread": int,
    "commits": int,
    "checkpoints": int,
    "live_wal_bytes": int,
    "restart_seconds": (int, float),
    "replayed_records": int,
    "recovery_lsn": int,
    "txn_per_sec": (int, float),
    "elapsed_s": (int, float),
}

_OBS_OVERHEAD_FIELDS = {
    **_GROUPCOMMIT_FIELDS,
    "obs_enabled": bool,
}

_HOTPATH_FIELDS = {
    "mode": str,
    "prefill": int,
    "threads": int,
    "txns_per_thread": int,
    "commits": int,
    "lock_conflicts": int,
    "skipped_locked": int,
    "flushes": int,
    "flushes_per_commit": (int, float),
    "wal_appends": int,
    "appends_per_commit": (int, float),
    "txn_per_sec": (int, float),
    "elapsed_s": (int, float),
}

_FAILOVER_FIELDS = {
    "phase": str,
    "threads": int,
    "txns_per_thread": int,
    "commits": int,
    "shipped_bytes": int,
    "lag_bytes": int,
    "failovers": int,
    "rto_seconds": (int, float),
    "commits_before_failover": int,
    "recovered_commits": int,
    "txn_per_sec": (int, float),
    "elapsed_s": (int, float),
}

_CODEC_FIELDS = {
    "op": str,
    "variant": str,
    "records": int,
    "bytes": int,
    "records_per_sec": (int, float),
    "mb_per_sec": (int, float),
    "elapsed_s": (int, float),
}

_DETLANE_FIELDS = {
    "cc": str,
    "threads": int,
    "hot_fraction": (int, float),
    "txns_per_thread": int,
    "ops": int,
    "conflicts": int,
    "det_batches": int,
    "det_batch_mean": (int, float),
    "flushes": int,
    "ops_per_sec": (int, float),
    "elapsed_s": (int, float),
}

_NETDEPLOY_FIELDS = {
    "backpressure": bool,
    "sessions": int,
    "requests_per_session": int,
    "depth_limit": int,
    "servers": int,
    "completed": int,
    "busy_refusals": int,
    "txn_per_sec": (int, float),
    "p50_ms": (int, float),
    "p95_ms": (int, float),
    "p99_ms": (int, float),
    "e2e_p99_ms": (int, float),
    "elapsed_s": (int, float),
}

#: per-benchmark scenario schemas; ``validate`` accepts any known one
_SCHEMAS = {
    "groupcommit": _GROUPCOMMIT_FIELDS,
    "sharding": _SHARDING_FIELDS,
    "checkpoint": _CHECKPOINT_FIELDS,
    "obs_overhead": _OBS_OVERHEAD_FIELDS,
    "hotpath": _HOTPATH_FIELDS,
    "codec": _CODEC_FIELDS,
    "failover": _FAILOVER_FIELDS,
    "detlane": _DETLANE_FIELDS,
    "netdeploy": _NETDEPLOY_FIELDS,
}


def _check_groupcommit_row(index: int, row: dict) -> list[str]:
    errors: list[str] = []
    batch = row.get("batch_size")
    if batch is not None and (
        not isinstance(batch, dict) or "buckets" not in batch
    ):
        errors.append(f"scenarios[{index}].batch_size malformed")
    if row.get("group_commit") and not row.get("batch_size"):
        errors.append(
            f"scenarios[{index}]: group-commit run has no batch histogram"
        )
    return errors


def _check_sharding_row(index: int, row: dict) -> list[str]:
    # The acceptance invariant: pinned single-shard work must never pay
    # for 2PC, and the cross workload (on >1 shard) always promotes.
    errors: list[str] = []
    if row.get("workload") == "single" and row.get("cross_shard_commits"):
        errors.append(
            f"scenarios[{index}]: single-shard workload reported "
            f"{row['cross_shard_commits']} cross-shard (2PC) commits"
        )
    if (
        row.get("workload") == "cross"
        and isinstance(row.get("shards"), int)
        and row["shards"] > 1
        and row.get("cross_shard_commits") != row.get("commits")
    ):
        errors.append(
            f"scenarios[{index}]: cross workload should promote every "
            "commit to 2PC"
        )
    return errors


def _check_checkpoint_row(index: int, row: dict) -> list[str]:
    # The acceptance invariant: a checkpointing run must actually have
    # checkpointed and must restart from a non-zero recovery LSN with a
    # replay proportional to the interval, not to the whole history.
    errors: list[str] = []
    if row.get("checkpointing"):
        if not row.get("checkpoints"):
            errors.append(
                f"scenarios[{index}]: checkpointing run took no checkpoints"
            )
        if not row.get("recovery_lsn"):
            errors.append(
                f"scenarios[{index}]: checkpointing restart replayed from "
                "LSN 0 (full-log replay)"
            )
        commits = row.get("commits")
        replayed = row.get("replayed_records")
        if (
            isinstance(commits, int) and isinstance(replayed, int)
            and commits > 0 and replayed >= 2 * commits
        ):
            errors.append(
                f"scenarios[{index}]: replayed {replayed} records — "
                "recovery is not bounded by the checkpoint"
            )
    else:
        if row.get("checkpoints") or row.get("recovery_lsn"):
            errors.append(
                f"scenarios[{index}]: baseline run reports checkpoint state"
            )
    return errors


def _check_obs_overhead_row(index: int, row: dict) -> list[str]:
    # Structure only: the overhead percentage itself is a measurement,
    # and CI machines are too noisy for a hard numeric gate here.
    return []


def _check_hotpath_row(index: int, row: dict) -> list[str]:
    errors: list[str] = []
    if row.get("mode") not in ("skip_locked", "strict"):
        errors.append(f"scenarios[{index}].mode must be skip_locked|strict")
    if row.get("mode") == "skip_locked" and row.get("lock_conflicts"):
        errors.append(
            f"scenarios[{index}]: skip-locked consumers reported "
            f"{row['lock_conflicts']} lock conflicts"
        )
    return errors


def _check_failover_row(index: int, row: dict) -> list[str]:
    # The acceptance invariants are deterministic (not perf numbers),
    # so they gate quick runs too: the baseline must not ship, a
    # replicated run must ship and end drained, and a failover must
    # recover every commit acknowledged before the kill — the
    # no-acknowledged-request-lost half of the promotion guarantee.
    errors: list[str] = []
    phase = row.get("phase")
    if phase not in ("baseline", "replicated", "failover"):
        errors.append(
            f"scenarios[{index}].phase must be baseline|replicated|failover"
        )
    if phase == "baseline":
        if row.get("shipped_bytes") or row.get("failovers"):
            errors.append(
                f"scenarios[{index}]: baseline run reports replication state"
            )
    elif phase == "replicated":
        if not row.get("shipped_bytes"):
            errors.append(
                f"scenarios[{index}]: replicated run shipped no WAL bytes"
            )
        if row.get("lag_bytes"):
            errors.append(
                f"scenarios[{index}]: standby still lags "
                f"{row['lag_bytes']} bytes after the workload drained"
            )
    elif phase == "failover":
        if row.get("failovers") != 1:
            errors.append(f"scenarios[{index}]: expected exactly one failover")
        if not row.get("rto_seconds"):
            errors.append(f"scenarios[{index}]: failover reports zero RTO")
        if row.get("recovered_commits") != row.get("commits_before_failover"):
            errors.append(
                f"scenarios[{index}]: promoted node recovered "
                f"{row.get('recovered_commits')} of "
                f"{row.get('commits_before_failover')} acknowledged commits"
            )
    return errors


def _check_codec_row(index: int, row: dict) -> list[str]:
    errors: list[str] = []
    if row.get("op") not in ("encode", "decode"):
        errors.append(f"scenarios[{index}].op must be encode|decode")
    return errors


def _check_codec_doc(doc: dict, scenarios: list) -> list[str]:
    """Cross-row check for a full codec run: the batched encode path
    (reused buffer, no per-record copy) must beat per-record
    ``encode`` — the claim the batched WAL append rests on.  Decode is
    not gated: per-index ``memoryview`` access is slower in pure
    Python, which is exactly why the WAL read path materializes
    per-record ``bytes`` after the one batch-CRC pass."""
    if doc.get("quick"):
        return []
    rates = {
        (row.get("op"), row.get("variant")): row.get("records_per_sec", 0)
        for row in scenarios if isinstance(row, dict)
    }
    single = rates.get(("encode", "single"))
    batched = rates.get(("encode", "batched"))
    if single is None or batched is None:
        return ["codec run missing encode single/batched scenarios"]
    if batched <= single:
        return [
            f"batched encode ({batched:.0f} rec/s) does not beat "
            f"per-record encode ({single:.0f} rec/s)"
        ]
    return []


def _check_hotpath_doc(doc: dict, scenarios: list) -> list[str]:
    """Cross-row acceptance checks for a full (non-quick) hotpath run:
    skip-locked throughput must be depth-insensitive (<= 20% drop at
    10x depth) while strict FIFO visibly collapses — the Section 10
    claim the benchmark exists to reproduce.  Quick (CI-smoke) runs are
    too noisy for numeric gates and only get the structural checks."""
    if doc.get("quick"):
        return []
    errors: list[str] = []
    by_mode: dict[str, list[dict]] = {}
    for row in scenarios:
        if isinstance(row, dict) and isinstance(row.get("prefill"), int):
            by_mode.setdefault(row.get("mode"), []).append(row)
    skip_rows = sorted(by_mode.get("skip_locked", ()),
                       key=lambda r: r["prefill"])
    if len(skip_rows) >= 2:
        shallow, deep = skip_rows[0], skip_rows[-1]
        if shallow["txn_per_sec"] > 0:
            drop = 1.0 - deep["txn_per_sec"] / shallow["txn_per_sec"]
            if drop > 0.20:
                errors.append(
                    f"skip_locked degrades {100 * drop:.0f}% from depth "
                    f"{shallow['prefill']} to {deep['prefill']} (> 20%)"
                )
    strict_rows = sorted(by_mode.get("strict", ()),
                         key=lambda r: r["prefill"])
    if skip_rows and strict_rows:
        deep_skip, deep_strict = skip_rows[-1], strict_rows[-1]
        if deep_strict["txn_per_sec"] >= 0.5 * deep_skip["txn_per_sec"]:
            errors.append(
                "strict mode did not collapse: "
                f"{deep_strict['txn_per_sec']:.0f} txn/s vs skip-locked "
                f"{deep_skip['txn_per_sec']:.0f} at depth "
                f"{deep_strict['prefill']}"
            )
    return errors


def _check_detlane_row(index: int, row: dict) -> list[str]:
    # Structural sanity: the lane must actually have run (planned at
    # least one batch) on deterministic rows and must never run on 2PL
    # rows — otherwise the sweep compared a lane against itself.
    errors: list[str] = []
    cc = row.get("cc")
    if cc not in ("2pl", "deterministic"):
        errors.append(f"scenarios[{index}].cc must be 2pl or "
                      f"deterministic, got {cc!r}")
    elif cc == "deterministic" and not row.get("det_batches"):
        errors.append(
            f"scenarios[{index}]: deterministic run planned no batches "
            "(lane routing did not engage)"
        )
    elif cc == "2pl" and row.get("det_batches"):
        errors.append(
            f"scenarios[{index}]: 2PL run reported "
            f"{row['det_batches']} deterministic plan batches"
        )
    return errors


def _check_detlane_doc(doc: dict, scenarios: list) -> list[str]:
    """Cross-row acceptance check for a full detlane run: at the
    highest-contention cell (max threads, max hot-queue fraction) the
    deterministic lane must out-run 2PL — the QueCC-style claim the
    sweep exists to reproduce.  Quick (CI-smoke) runs are too noisy
    for numeric gates and only get the structural row checks."""
    if doc.get("quick"):
        return []
    cells: dict[tuple, dict[str, float]] = {}
    for row in scenarios:
        if not isinstance(row, dict):
            continue
        key = (row.get("threads"), row.get("hot_fraction"))
        cells.setdefault(key, {})[row.get("cc")] = row.get("ops_per_sec", 0)
    keyed = [k for k in cells
             if isinstance(k[0], int) and isinstance(k[1], (int, float))]
    if not keyed:
        return ["detlane run has no (threads, hot_fraction) cells"]
    hottest = max(keyed)
    pair = cells[hottest]
    if "2pl" not in pair or "deterministic" not in pair:
        return [f"cell {hottest} missing a 2pl or deterministic row"]
    if pair["deterministic"] <= pair["2pl"]:
        return [
            f"deterministic lane ({pair['deterministic']:.0f} ops/s) does "
            f"not beat 2PL ({pair['2pl']:.0f} ops/s) at threads="
            f"{hottest[0]} hot_fraction={hottest[1]}"
        ]
    return []


def _check_netdeploy_row(index: int, row: dict) -> list[str]:
    # Structural invariants that hold at any scale: every requested
    # submission completes (Busy refusals delay, never drop), and a
    # backpressure-off run must not report refusals.
    errors: list[str] = []
    expected = row.get("sessions", 0) * row.get("requests_per_session", 0)
    if row.get("completed") != expected:
        errors.append(
            f"scenarios[{index}]: completed {row.get('completed')} of "
            f"{expected} submissions"
        )
    if not row.get("backpressure") and row.get("busy_refusals"):
        errors.append(
            f"scenarios[{index}]: backpressure-off run reported "
            f"{row['busy_refusals']} Busy refusals"
        )
    return errors


def _check_netdeploy_doc(doc: dict, scenarios: list) -> list[str]:
    """Cross-row acceptance gate for a full netdeploy run: at the
    most-overloaded cell (max sessions) backpressure must have engaged
    (refusals > 0) and must beat the backpressure-off run on p99 reply
    latency — bounded queue depth is the whole point of the watermark.
    Quick (CI-smoke) runs are too noisy for the numeric half and only
    get the structural row checks."""
    if doc.get("quick"):
        return []
    cells: dict[int, dict[bool, dict]] = {}
    for row in scenarios:
        if isinstance(row, dict) and isinstance(row.get("sessions"), int):
            cells.setdefault(row["sessions"], {})[
                bool(row.get("backpressure"))] = row
    if not cells:
        return ["netdeploy run has no session cells"]
    overloaded = cells[max(cells)]
    if True not in overloaded or False not in overloaded:
        return [f"cell sessions={max(cells)} missing a backpressure "
                "on or off row"]
    on, off = overloaded[True], overloaded[False]
    errors: list[str] = []
    if not on.get("busy_refusals"):
        errors.append(
            f"backpressure never engaged at sessions={max(cells)} "
            "(no Busy refusals)"
        )
    if on.get("p99_ms", 0) >= off.get("p99_ms", 0):
        errors.append(
            f"backpressure-on p99 ({on.get('p99_ms'):.1f} ms) does not "
            f"beat backpressure-off ({off.get('p99_ms'):.1f} ms) at "
            f"sessions={max(cells)}"
        )
    return errors


_ROW_CHECKS = {
    "groupcommit": _check_groupcommit_row,
    "sharding": _check_sharding_row,
    "checkpoint": _check_checkpoint_row,
    "obs_overhead": _check_obs_overhead_row,
    "hotpath": _check_hotpath_row,
    "codec": _check_codec_row,
    "failover": _check_failover_row,
    "detlane": _check_detlane_row,
    "netdeploy": _check_netdeploy_row,
}


def validate(doc: object) -> list[str]:
    """Schema errors in a benchmark JSON document (empty = valid)."""
    errors: list[str] = []
    if not isinstance(doc, dict):
        return ["document is not an object"]
    if doc.get("version") != SCHEMA_VERSION:
        errors.append(f"version must be {SCHEMA_VERSION}")
    benchmark = doc.get("benchmark")
    fields = _SCHEMAS.get(benchmark)
    if fields is None:
        return errors + [
            f"benchmark must be one of {sorted(_SCHEMAS)}, got {benchmark!r}"
        ]
    scenarios = doc.get("scenarios")
    if not isinstance(scenarios, list) or not scenarios:
        return errors + ["scenarios must be a non-empty list"]
    row_check = _ROW_CHECKS[benchmark]
    for index, row in enumerate(scenarios):
        if not isinstance(row, dict):
            errors.append(f"scenarios[{index}] is not an object")
            continue
        for field, kind in fields.items():
            if field not in row:
                errors.append(f"scenarios[{index}] missing {field!r}")
            elif not isinstance(row[field], kind) or isinstance(row[field], bool) != (kind is bool):
                errors.append(
                    f"scenarios[{index}].{field} has type "
                    f"{type(row[field]).__name__}"
                )
        errors.extend(row_check(index, row))
    if benchmark == "obs_overhead":
        if not isinstance(doc.get("overhead_pct"), (int, float)):
            errors.append("overhead_pct missing or not a number")
        if not isinstance(doc.get("attribution"), dict):
            errors.append("attribution missing or not an object")
        flags = [row.get("obs_enabled") for row in scenarios
                 if isinstance(row, dict)]
        if flags.count(False) != 1 or flags.count(True) != 1:
            errors.append("obs_overhead needs exactly one disabled and "
                          "one enabled scenario")
    if benchmark == "hotpath":
        errors.extend(_check_hotpath_doc(doc, scenarios))
    if benchmark == "codec":
        errors.extend(_check_codec_doc(doc, scenarios))
    if benchmark == "detlane":
        errors.extend(_check_detlane_doc(doc, scenarios))
    if benchmark == "netdeploy":
        errors.extend(_check_netdeploy_doc(doc, scenarios))
    return errors


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--threads", type=int, default=8)
    parser.add_argument("--txns", type=int, default=200,
                        help="transactions per thread")
    parser.add_argument("--max-wait", type=float, default=0.0005,
                        help="group-commit wait window (seconds)")
    parser.add_argument("--max-batch", type=int, default=64)
    parser.add_argument("--shards", type=int, default=0, metavar="N",
                        help="run the sharding benchmark over 1..N "
                             "file-backed repository shards instead of "
                             "the group-commit benchmark")
    parser.add_argument("--checkpoint-bytes", type=int, default=0, metavar="N",
                        help="run the checkpoint benchmark (restart latency "
                             "and live WAL bytes, checkpointing off vs on "
                             "at an N-byte interval) instead of the "
                             "group-commit benchmark")
    parser.add_argument("--profile", action="store_true",
                        help="run the observability-overhead benchmark "
                             "(obs disabled vs enabled) and write a "
                             "metrics snapshot for repro.obs.report")
    parser.add_argument("--dequeue-mode", default=None,
                        choices=("skip_locked", "strict", "both"),
                        help="run the contended-consumer dequeue (hotpath) "
                             "benchmark in the given mode(s) instead of the "
                             "group-commit benchmark")
    parser.add_argument("--prefill", type=int, default=100,
                        help="hotpath base queue depth; cells run at this "
                             "depth and at 10x it (default 100)")
    parser.add_argument("--codec", action="store_true",
                        help="run the codec microbenchmark (per-record vs "
                             "batched encode/decode)")
    parser.add_argument("--replicate", action="store_true",
                        help="run the replication/failover benchmark "
                             "(shipping overhead, RTO, steady vs "
                             "during-failover throughput)")
    parser.add_argument("--cc", action="store_true",
                        help="run the concurrency-control contention "
                             "sweep (2PL vs deterministic lane over "
                             "threads x hot-queue skew)")
    parser.add_argument("--deployment", default=None, choices=("tcp",),
                        help="run the netdeploy saturation benchmark "
                             "(asyncio gateway over real shard processes, "
                             "session sweep with queue-depth backpressure "
                             "on and off)")
    parser.add_argument("--metrics-out", default="BENCH_obs_metrics.json",
                        help="metrics-snapshot file for --profile "
                             "(default BENCH_obs_metrics.json)")
    parser.add_argument("--quick", action="store_true",
                        help="small run for CI smoke testing")
    parser.add_argument("--out", default=None,
                        help="result file (default BENCH_<benchmark>.json)")
    parser.add_argument("--check", metavar="PATH",
                        help="validate an existing result file and exit")
    args = parser.parse_args(argv)
    modes = (args.shards, args.checkpoint_bytes, args.profile,
             args.dequeue_mode, args.codec, args.replicate, args.cc,
             args.deployment)
    if sum(map(bool, modes)) > 1:
        parser.error("--shards, --checkpoint-bytes, --profile, "
                     "--dequeue-mode, --codec, --replicate, --cc and "
                     "--deployment are mutually exclusive")
    if args.out is None:
        if args.shards:
            args.out = "BENCH_sharding.json"
        elif args.checkpoint_bytes:
            args.out = "BENCH_checkpoint.json"
        elif args.profile:
            args.out = "BENCH_obs_overhead.json"
        elif args.dequeue_mode:
            args.out = "BENCH_hotpath.json"
            if args.metrics_out == parser.get_default("metrics_out"):
                args.metrics_out = "BENCH_hotpath_metrics.json"
        elif args.codec:
            args.out = "BENCH_codec.json"
        elif args.replicate:
            args.out = "BENCH_failover.json"
        elif args.cc:
            args.out = "BENCH_detlane.json"
        elif args.deployment:
            args.out = "BENCH_netdeploy.json"
        else:
            args.out = "BENCH_groupcommit.json"

    if args.check:
        with open(args.check) as f:
            doc = json.load(f)
        errors = validate(doc)
        if errors:
            for error in errors:
                print(f"schema error: {error}", file=sys.stderr)
            return 1
        print(f"{args.check}: schema ok ({len(doc['scenarios'])} scenarios)")
        return 0

    if args.shards:
        doc = run_sharding(args)
    elif args.checkpoint_bytes:
        doc = run_checkpoint(args)
    elif args.profile:
        doc = run_profile(args)
    elif args.dequeue_mode:
        doc = run_hotpath(args)
    elif args.codec:
        doc = run_codec(args)
    elif args.replicate:
        doc = run_failover(args)
    elif args.cc:
        doc = run_detlane(args)
    elif args.deployment:
        doc = run_netdeploy(args)
    else:
        doc = run(args)
    errors = validate(doc)
    if errors:  # pragma: no cover - a bug in this script
        for error in errors:
            print(f"schema error: {error}", file=sys.stderr)
        return 1
    with open(args.out, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
