"""X4 — extension: store-and-forward relay under partitions (Section 1).

"the server appears to provide a reliable service to the client even if
the client and server nodes are frequently partitioned by communication
failures."

Measured: client-side availability (fraction of submissions accepted
immediately) and end-to-end delivery across a duty cycle where the link
is down half the time — direct remote enqueue vs local capture + relay.
Predicted shape: direct submission fails whenever the link is down
(~50 % availability); the relayed design accepts 100 % and delivers
everything after healing, at the cost of extra delivery latency.
"""

from __future__ import annotations

from repro.queueing.relay import StableRelay
from repro.queueing.repository import QueueRepository
from repro.storage.disk import MemDisk

SUBMISSIONS = 40


def _link_schedule(i: int) -> bool:
    """Deterministic duty cycle: link up for 5 submissions, down for 5."""
    return (i // 5) % 2 == 0


def direct_submission() -> tuple[int, int]:
    """No local queue: submissions fail while partitioned."""
    remote = QueueRepository("hq", MemDisk())
    remote.create_queue("inbox")
    accepted = rejected = 0
    inbox = remote.get_queue("inbox")
    for i in range(SUBMISSIONS):
        if not _link_schedule(i):
            rejected += 1  # PartitionedError at submission time
            continue
        with remote.tm.transaction() as txn:
            inbox.enqueue(txn, i)
        accepted += 1
    return accepted, rejected


def relayed_submission() -> tuple[int, int, int]:
    """Local capture always succeeds; the relay drains when it can."""
    local = QueueRepository("branch", MemDisk())
    remote = QueueRepository("hq", MemDisk())
    local.create_queue("outbox")
    remote.create_queue("inbox")
    state = {"i": 0}
    relay = StableRelay(
        local, "outbox", remote, "inbox",
        link_up=lambda: _link_schedule(state["i"]),
    )
    outbox = local.get_queue("outbox")
    accepted = 0
    for i in range(SUBMISSIONS):
        state["i"] = i
        with local.tm.transaction() as txn:
            outbox.enqueue(txn, i)
        accepted += 1
        relay.pump()  # moves whatever it can while the link is up
    state["i"] = 0  # link heals for good
    relay.pump()
    delivered = remote.get_queue("inbox").depth()
    return accepted, delivered, relay.duplicates_suppressed


def test_x4_direct_submission(benchmark):
    accepted, rejected = benchmark.pedantic(direct_submission, rounds=3, iterations=1)
    benchmark.extra_info["design"] = "direct remote enqueue"
    benchmark.extra_info["availability_pct"] = round(100 * accepted / SUBMISSIONS, 1)
    benchmark.extra_info["rejected"] = rejected


def test_x4_relayed_submission(benchmark):
    accepted, delivered, dups = benchmark.pedantic(
        relayed_submission, rounds=3, iterations=1
    )
    assert accepted == delivered == SUBMISSIONS
    benchmark.extra_info["design"] = "local queue + store-and-forward relay"
    benchmark.extra_info["availability_pct"] = 100.0
    benchmark.extra_info["delivered"] = delivered
    benchmark.extra_info["duplicates_suppressed"] = dups


def test_x4_shape_relay_masks_partitions(benchmark):
    def compare():
        direct_accepted, _ = direct_submission()
        relay_accepted, delivered, _ = relayed_submission()
        return direct_accepted, relay_accepted, delivered

    direct_accepted, relay_accepted, delivered = benchmark.pedantic(
        compare, rounds=1, iterations=1
    )
    assert direct_accepted == SUBMISSIONS // 2  # 50% duty cycle
    assert relay_accepted == delivered == SUBMISSIONS
    benchmark.extra_info["direct_availability_pct"] = round(
        100 * direct_accepted / SUBMISSIONS, 1
    )
    benchmark.extra_info["relayed_availability_pct"] = 100.0
    benchmark.extra_info["relayed_delivery"] = f"{delivered}/{SUBMISSIONS}"
