"""X2 — extension: replicated queues (Section 10).

"queues are a good candidate for being stored as a replicated database
that guarantees one-copy serializability, **despite the cost of such
strong synchronization**."

Measured: the cost — enqueue+dequeue through the 2PC-replicated queue
vs a single stable queue — and the benefit — zero element loss across a
primary failure with failover + resync.
"""

from __future__ import annotations

import itertools

from repro.queueing.replicated import ReplicatedQueue
from repro.queueing.repository import QueueRepository
from repro.storage.disk import MemDisk
from repro.transaction.twophase import TwoPhaseCoordinator

_n = itertools.count()


def test_x2_single_queue_baseline(benchmark):
    repo = QueueRepository("x2", MemDisk())
    queue = repo.create_queue("q")

    def op():
        with repo.tm.transaction() as txn:
            queue.enqueue(txn, next(_n))
        with repo.tm.transaction() as txn:
            queue.dequeue(txn)

    benchmark(op)
    benchmark.extra_info["variant"] = "single stable queue"


def test_x2_replicated_queue(benchmark):
    repo_a = QueueRepository("xa", MemDisk())
    repo_b = QueueRepository("xb", MemDisk())
    rq = ReplicatedQueue("q", repo_a, repo_b, TwoPhaseCoordinator(repo_a.log))

    def op():
        rq.enqueue(next(_n))
        rq.dequeue()

    benchmark(op)
    assert rq.consistent()
    benchmark.extra_info["variant"] = "replicated (2 nodes, 2PC)"


def test_x2_shape_replication_cost_and_benefit(benchmark):
    import time

    def compare():
        rounds = 150
        repo = QueueRepository("x2s", MemDisk())
        queue = repo.create_queue("q")
        start = time.monotonic()
        for i in range(rounds):
            with repo.tm.transaction() as txn:
                queue.enqueue(txn, i)
            with repo.tm.transaction() as txn:
                queue.dequeue(txn)
        single = time.monotonic() - start

        disk_a = MemDisk()
        repo_a = QueueRepository("xa", disk_a)
        repo_b = QueueRepository("xb", MemDisk())
        rq = ReplicatedQueue("q", repo_a, repo_b, TwoPhaseCoordinator(repo_a.log))
        start = time.monotonic()
        for i in range(rounds):
            rq.enqueue(i)
            rq.dequeue()
        replicated = time.monotonic() - start

        # The benefit: primary dies with elements queued; failover loses
        # nothing.
        pending = 5
        for i in range(pending):
            rq.enqueue(f"survivor-{i}")
        disk_a.crash()
        rq.failover()
        survived = rq.depth()
        return single, replicated, pending, survived

    single, replicated, pending, survived = benchmark.pedantic(
        compare, rounds=1, iterations=1
    )
    assert replicated > single  # the paper's "cost of such strong synchronization"
    assert survived == pending  # and its payoff
    benchmark.extra_info["single_s_per_150"] = round(single, 4)
    benchmark.extra_info["replicated_s_per_150"] = round(replicated, 4)
    benchmark.extra_info["cost_factor"] = round(replicated / single, 2)
    benchmark.extra_info["elements_surviving_primary_loss"] = f"{survived}/{pending}"
