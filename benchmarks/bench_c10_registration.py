"""C10 — Section 4.3's persistent registration, ablated.

The paper's claimed-new feature: the queue manager keeps a stable
record of each registrant's last tagged operation, which is what makes
the Figure 2 resynchronization possible.  This benchmark ablates the
``stable_flag``:

* **stable registration** — after a crash-after-Send, the reconnecting
  client learns its Send happened and does NOT resend: zero duplicates.
* **no stable registration** (stable_flag=False) — the reconnecting
  client learns nothing; its only safe-looking choice, resending,
  creates a duplicate execution the checker catches.

Predicted shape: duplicates 0 vs >0; the cost of maintaining the
registration is a small constant per tagged operation (also measured).
"""

from __future__ import annotations

import itertools

from repro.core.request import Request
from repro.core.system import TPSystem
from repro.sim.trace import TraceRecorder

_ids = itertools.count()


def crash_after_send(stable: bool) -> tuple[int, int]:
    """Returns (executions of the request, duplicate executions)."""
    system = TPSystem(trace=TraceRecorder())
    table = system.table("effects")

    def handler(txn, request):
        table.update(txn, f"count/{request.rid}", lambda v: (v or 0) + 1, default=0)
        return "done"

    server = system.server("s", handler)
    # --- incarnation 1: register, send, crash ---
    qm = system.request_qm
    handle, tag, _eid = qm.register(system.request_queue, "c1", stable=stable)
    request = Request(
        rid="c1#1", body="pay", client_id="c1",
        reply_to=system.ensure_reply_queue("c1"),
    )
    qm.enqueue(handle, request.to_body(), tag="c1#1",
               headers={"rid": "c1#1", "reply_to": request.reply_to})
    # client crashes here; the server processes meanwhile
    server.process_one()
    # --- incarnation 2: reconnect ---
    handle2, last_tag, _ = qm.register(system.request_queue, "c1", stable=stable)
    if last_tag is None:
        # No memory of the Send: the client resends (the unsafe path the
        # paper's design exists to avoid).
        qm.enqueue(handle2, request.to_body(), tag="c1#1",
                   headers={"rid": "c1#1", "reply_to": request.reply_to})
        server.process_one()
    executions = table.peek("count/c1#1", 0)
    return executions, max(0, executions - 1)


def test_c10_with_persistent_registration(benchmark):
    executions, duplicates = benchmark.pedantic(
        lambda: crash_after_send(stable=True), rounds=3, iterations=1
    )
    assert executions == 1 and duplicates == 0
    benchmark.extra_info["stable_flag"] = True
    benchmark.extra_info["duplicate_executions"] = duplicates


def test_c10_without_persistent_registration(benchmark):
    executions, duplicates = benchmark.pedantic(
        lambda: crash_after_send(stable=False), rounds=3, iterations=1
    )
    assert duplicates > 0  # the ablation breaks exactly-once
    benchmark.extra_info["stable_flag"] = False
    benchmark.extra_info["duplicate_executions"] = duplicates


def test_c10_tag_maintenance_cost(benchmark):
    """Marginal cost of the stable registration copy per Enqueue."""
    system_stable = TPSystem()
    system_plain = TPSystem()
    h_stable, _, _ = system_stable.request_qm.register(
        system_stable.request_queue, "c", stable=True
    )
    h_plain, _, _ = system_plain.request_qm.register(
        system_plain.request_queue, "c", stable=False
    )

    import time

    def compare():
        rounds = 200
        start = time.monotonic()
        for i in range(rounds):
            system_stable.request_qm.enqueue(h_stable, i, tag=f"t{i}")
        stable_time = time.monotonic() - start
        start = time.monotonic()
        for i in range(rounds):
            system_plain.request_qm.enqueue(h_plain, i, tag=f"t{i}")
        plain_time = time.monotonic() - start
        return stable_time, plain_time

    stable_time, plain_time = benchmark.pedantic(compare, rounds=1, iterations=1)
    benchmark.extra_info["stable_s_per_200"] = round(stable_time, 4)
    benchmark.extra_info["unstable_s_per_200"] = round(plain_time, 4)
    benchmark.extra_info["overhead_pct"] = round(
        100 * (stable_time - plain_time) / max(plain_time, 1e-9), 1
    )
