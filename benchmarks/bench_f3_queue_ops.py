"""F3 — Figure 3: the queue operations.

Times every data-manipulation operation (Enqueue, Dequeue, Read,
Kill_element, Register) in both its transactional and auto-commit
forms, plus the abort path with the error-queue bound of Section 4.2.
"""

from __future__ import annotations

import itertools

from repro.queueing.manager import QueueManager
from repro.queueing.repository import QueueRepository
from repro.storage.disk import MemDisk

_counter = itertools.count()


def make_qm():
    repo = QueueRepository("bench", MemDisk())
    qm = QueueManager(repo)
    qm.create_queue("err")
    qm.create_queue("q", error_queue="err", max_aborts=3)
    return repo, qm


def test_f3_enqueue_autocommit(benchmark):
    repo, qm = make_qm()
    handle, _, _ = qm.register("q", "bench-client")

    def op():
        qm.enqueue(handle, {"n": next(_counter)}, tag="t")

    benchmark(op)
    benchmark.extra_info["op"] = "Enqueue (auto-commit, tagged)"


def test_f3_enqueue_dequeue_txn_pair(benchmark):
    repo, qm = make_qm()
    h_in, _, _ = qm.register("q", "producer")
    h_out, _, _ = qm.register("q", "consumer", stable=False)

    def op():
        with repo.tm.transaction() as txn:
            qm.enqueue(h_in, {"n": next(_counter)}, txn=txn)
        with repo.tm.transaction() as txn:
            qm.dequeue(h_out, txn=txn)

    benchmark(op)
    benchmark.extra_info["op"] = "Enqueue+Dequeue (transactional)"


def test_f3_read(benchmark):
    repo, qm = make_qm()
    handle, _, _ = qm.register("q", "reader")
    eid = qm.enqueue(handle, {"static": True})
    benchmark(lambda: qm.read(handle, eid))
    benchmark.extra_info["op"] = "Read"


def test_f3_kill_element(benchmark):
    repo, qm = make_qm()
    handle, _, _ = qm.register("q", "killer")

    def op():
        eid = qm.enqueue(handle, "victim")
        assert qm.kill_element(handle, eid)

    benchmark(op)
    benchmark.extra_info["op"] = "Enqueue+Kill_element"


def test_f3_register_reregister(benchmark):
    repo, qm = make_qm()
    names = itertools.count()

    def op():
        name = f"r{next(names)}"
        qm.register("q", name)
        qm.register("q", name)  # recovery-style re-register

    benchmark(op)
    benchmark.extra_info["op"] = "Register + re-Register"


def test_f3_abort_path_error_queue(benchmark):
    """The Section 4.2 termination path: max_aborts dequeue-aborts send
    the element to the error queue."""
    repo, qm = make_qm()
    h, _, _ = qm.register("q", "aborter", stable=False)

    def op():
        qm.enqueue(h, "poison")
        for _ in range(3):  # max_aborts=3
            txn = repo.tm.begin()
            qm.dequeue(h, txn=txn)
            repo.tm.abort(txn)

    benchmark(op)
    err_depth = repo.get_queue("err").depth()
    assert err_depth >= 1
    benchmark.extra_info["op"] = "3x dequeue-abort -> error queue"
    benchmark.extra_info["error_queue_depth"] = err_depth


def test_f3_recovery_replay(benchmark):
    """Restart recovery cost for a queue with 500 surviving elements."""
    disk = MemDisk()
    repo = QueueRepository("bench", disk)
    queue = repo.create_queue("q")
    with repo.tm.transaction() as txn:
        for i in range(500):
            queue.enqueue(txn, i)
    disk.crash()
    disk.recover()

    def op():
        repo2 = QueueRepository("bench", disk)
        assert repo2.get_queue("q").depth() == 500
        return repo2

    benchmark(op)
    benchmark.extra_info["op"] = "restart recovery, 500 elements"
