"""F7 — Figure 7 / Section 8: interactive requests.

Times the two implementations of a 3-phase order-entry conversation:

* pseudo-conversational (three transactions, Section 8.2), and
* single transaction with logged replay (Section 8.3), including the
  abort-and-replay path whose whole point is *not* re-asking the user.
"""

from __future__ import annotations

import itertools

from repro.apps.orders import OrderApp
from repro.core.interactive import (
    IntermediateIOLog,
    LoggedConversation,
    PseudoConversationalClient,
    conversational_handler,
    interactive_handler,
)
from repro.core.request import Request
from repro.core.system import TPSystem

_ids = itertools.count(1)


def _orders_system(stock=10_000_000):
    system = TPSystem()
    orders = OrderApp(system)
    orders.stock_items({"widget": (5, stock)})
    return system, orders


def test_f7_pseudo_conversational(benchmark):
    system, orders = _orders_system()
    server = system.server("conv", conversational_handler(orders.conversational_step))

    def conversation():
        client_id = f"pc{next(_ids)}"
        pc = PseudoConversationalClient(
            client_id,
            system.clerk(client_id),
            ["carol", {"item": "widget", "qty": 1}, {"confirm": True}],
            trace=system.trace,
        )
        phase = pc._resynchronize()
        while pc.final_reply is None:
            pc._send_phase(phase)
            server.process_one()
            reply = pc._receive_phase()
            phase = reply.body["phase"] + 1
        return pc.final_reply

    final = benchmark(conversation)
    assert final.body["kind"] == "final"
    benchmark.extra_info["style"] = "pseudo-conversational (3 transactions)"


def test_f7_single_transaction_clean(benchmark):
    system, orders = _orders_system()
    conversations: dict[str, LoggedConversation] = {}

    def body(txn, request, conversation):
        return orders.interactive_body(txn, request, conversation)

    server = system.server("one", interactive_handler(conversations, body))
    clerk = system.clerk("it")
    clerk.connect()

    def conversation():
        rid = f"it#{next(_ids)}"
        conversations[rid] = LoggedConversation(
            IntermediateIOLog(rid),
            lambda output: {"item": "widget", "qty": 1, "confirm": True},
        )
        clerk.send(
            Request(rid=rid, body={"customer": "dave"}, client_id="it",
                    reply_to=system.reply_queue_name("it")),
            rid,
        )
        server.process_one()
        return clerk.receive(timeout=2)

    reply = benchmark(conversation)
    assert reply.ok
    benchmark.extra_info["style"] = "single transaction (no failure)"


def test_f7_single_transaction_with_abort_replay(benchmark):
    """The Section 8.3 selling point: after an abort, the retry replays
    the logged inputs — the user is never re-asked."""
    system, orders = _orders_system()
    conversations: dict[str, LoggedConversation] = {}
    fail_next = {"flag": True}
    solicitations = {"n": 0}

    def body(txn, request, conversation):
        result = orders.interactive_body(txn, request, conversation)
        if fail_next["flag"]:
            fail_next["flag"] = False
            raise RuntimeError("first attempt aborts")
        return result

    server = system.server("one", interactive_handler(conversations, body))
    clerk = system.clerk("it2")
    clerk.connect()

    def source(output):
        solicitations["n"] += 1
        return {"item": "widget", "qty": 1, "confirm": True}

    def conversation():
        rid = f"it2#{next(_ids)}"
        fail_next["flag"] = True
        log = IntermediateIOLog(rid)
        conversations[rid] = LoggedConversation(log, source)
        clerk.send(
            Request(rid=rid, body={"customer": "eve"}, client_id="it2",
                    reply_to=system.reply_queue_name("it2")),
            rid,
        )
        try:
            server.process_one()
        except RuntimeError:
            pass
        server.process_one()  # retry, replayed from the I/O log
        reply = clerk.receive(timeout=2)
        return reply, log

    reply, log = benchmark(conversation)
    assert reply.ok
    assert log.replays == 2  # both answers replayed on the retry
    benchmark.extra_info["style"] = "single transaction, abort + replay"
    benchmark.extra_info["replayed_inputs_last_round"] = log.replays
