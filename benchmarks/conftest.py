"""Shared helpers for the benchmark suite.

Every benchmark corresponds to one experiment of DESIGN.md §4 (ids
F1–F7 for the paper's figures, C1–C10 for its quantitative prose
claims) and records its headline numbers in ``benchmark.extra_info`` so
the ``--benchmark-only`` run prints the same series EXPERIMENTS.md
reports.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.devices import DisplayWithUserIds
from repro.core.request import Request
from repro.core.system import TPSystem
from repro.obs import Observability, get_observability, set_observability
from repro.obs.export import write_metrics_json


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help=(
            "enable observability for the whole benchmark run and dump the "
            "final metrics snapshot to PATH as JSON"
        ),
    )


def pytest_configure(config: pytest.Config) -> None:
    path = config.getoption("--metrics-out")
    if path:
        # Fail on an unwritable path now, not after the whole run.
        try:
            with open(path, "w", encoding="utf-8"):
                pass
        except OSError as exc:
            raise pytest.UsageError(f"--metrics-out: {exc}") from exc
        # One process-global registry for the run; every TPSystem built
        # without an explicit ``obs=`` picks it up.
        set_observability(Observability())


def pytest_sessionfinish(session: pytest.Session, exitstatus: int) -> None:
    path = session.config.getoption("--metrics-out")
    if path:
        try:
            write_metrics_json(get_observability().metrics, path)
        finally:
            set_observability(None)


def send_request(system: TPSystem, client_id: str, seq: int, body) -> None:
    """Enqueue one request via a connected clerk (helper for workloads
    that bypass the full Client loop)."""
    clerk = system.clerk(client_id)
    if not clerk.connected:
        clerk.connect()
    request = Request(
        rid=f"{client_id}#{seq}",
        body=body,
        client_id=client_id,
        reply_to=system.reply_queue_name(client_id),
    )
    clerk.send(request, request.rid)


def run_client_with_servers(system, client, servers, poll=0.005):
    stop = threading.Event()
    threads = [
        threading.Thread(target=s.serve_until, args=(stop.is_set, poll), daemon=True)
        for s in servers
    ]
    for t in threads:
        t.start()
    try:
        return client.run()
    finally:
        stop.set()
        for t in threads:
            t.join(timeout=10)


def display_client(system, client_id, work, receive_timeout=30.0):
    display = DisplayWithUserIds(trace=system.trace)
    return system.client(client_id, work, display, receive_timeout=receive_timeout)


@pytest.fixture
def fresh_system():
    return TPSystem()
