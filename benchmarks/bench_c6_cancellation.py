"""C6 — Section 7: cancellation.

"the cancellation request fails once the first transaction in the
sequence has committed.  Later cancellation can still be arranged by
supporting compensating transactions and sagas."

Measured: for each progress point of the three-transaction transfer
(queued / 1 stage done / 2 stages done / complete), whether plain
Kill_element cancellation succeeds, whether saga compensation restores
the books, and what each costs.  Predicted shape: plain cancel works
only at progress 0; sagas extend cancellation to every point short of
completion; money is conserved throughout.
"""

from __future__ import annotations

import pytest

from repro.apps.banking import BankApp
from repro.core.devices import DisplayWithUserIds
from repro.core.system import TPSystem
from repro.errors import CancelFailed


def _scenario(stages_done: int):
    system = TPSystem()
    bank = BankApp(system)
    bank.open_accounts({"alice": 100, "bob": 50})
    pipeline = bank.transfer_pipeline()
    saga = bank.transfer_saga(pipeline)
    display = DisplayWithUserIds(trace=system.trace)
    client = system.client("c1", bank.transfer_work([("alice", "bob", 30)]), display)
    client.resynchronize()
    client.send_only(1)
    for index in range(stages_done):
        pipeline.stage_server(index).process_one()
    return system, bank, pipeline, saga


def _cancel_at(stages_done: int):
    system, bank, pipeline, saga = _scenario(stages_done)
    queue = system.request_repo.get_queue(system.request_queue)
    plain_kill_possible = any(
        queue.read(eid).headers.get("rid") == "c1#1" for eid in queue.eids()
    )
    try:
        outcome = saga.cancel("c1#1")
        cancelled = True
        compensated = outcome.compensated_stages
    except CancelFailed:
        cancelled = False
        compensated = []
    conserved = bank.total_money() == 150
    restored = bank.balance("alice") == 100 if cancelled else None
    return plain_kill_possible, cancelled, compensated, conserved, restored


@pytest.mark.parametrize("stages_done", [0, 1, 2])
def test_c6_cancel_before_completion(benchmark, stages_done):
    plain, cancelled, compensated, conserved, restored = benchmark.pedantic(
        lambda: _cancel_at(stages_done), rounds=3, iterations=1
    )
    assert cancelled and conserved and restored
    assert plain == (stages_done == 0) or stages_done > 0
    assert compensated == list(range(stages_done - 1, -1, -1))
    benchmark.extra_info["stages_done"] = stages_done
    benchmark.extra_info["plain_kill_enough"] = stages_done == 0
    benchmark.extra_info["compensated_stages"] = compensated


def test_c6_cancel_after_completion_fails(benchmark):
    plain, cancelled, compensated, conserved, _ = benchmark.pedantic(
        lambda: _cancel_at(3), rounds=3, iterations=1
    )
    assert not cancelled  # the reply is out; the model cannot claw it back
    assert conserved
    benchmark.extra_info["stages_done"] = 3
    benchmark.extra_info["cancel_possible"] = False
