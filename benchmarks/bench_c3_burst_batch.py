"""C3 — Section 1's burst-buffering and batch-input claims.

"Queues facilitate batch input of requests.  Requests can be captured
reliably in a queue, and processed later in a batch.  ...  Moreover,
queues provide a buffer that mitigates the effects of bursts."

Two measurements:

* **capture vs completion** — with a queue, a burst of B requests is
  durably captured almost immediately (the submitter is free to go);
  synchronous service makes the submitter wait for the whole batch.
* **burst absorption** — queue depth peaks at the burst size and drains
  at the server's service rate; nothing is refused or lost.
"""

from __future__ import annotations

import time

from repro.apps.inventory import InventoryApp
from repro.core.system import TPSystem

from conftest import send_request

BURST = 60
WORK_MS = 0.002


def queued_capture_then_batch() -> tuple[float, float, int, list[int]]:
    """Returns (capture time, total completion time, peak depth, and a
    depth-over-time series sampled after every 10th request — the
    burst-absorption curve)."""
    system = TPSystem()
    inventory = InventoryApp(system)
    inventory.stock({"sku": 0})
    work = InventoryApp.batch_file(BURST, ["sku"], seed=4)
    start = time.monotonic()
    for seq, item in enumerate(work, start=1):
        send_request(system, "burst", seq, item)
    captured = time.monotonic() - start
    queue = system.request_repo.get_queue(system.request_queue)
    peak_depth = queue.depth()
    depth_series = [peak_depth]

    def handler(txn, request):
        time.sleep(WORK_MS)
        return inventory.update_handler(txn, request)

    server = system.server("night", handler)
    processed = 0
    while server.process_one():
        processed += 1
        if processed % 10 == 0:
            depth_series.append(queue.depth())
    completed = time.monotonic() - start
    assert inventory.quantity("sku") == sum(i["delta"] for i in work)
    return captured, completed, peak_depth, depth_series


def synchronous_service() -> float:
    """No queue: the submitter performs each operation inline."""
    system = TPSystem()
    inventory = InventoryApp(system)
    inventory.stock({"sku": 0})
    work = InventoryApp.batch_file(BURST, ["sku"], seed=4)
    start = time.monotonic()
    for item in work:
        with system.request_repo.tm.transaction() as txn:
            time.sleep(WORK_MS)
            inventory.store.update(
                txn, f"sku/{item['sku']}", lambda v: (v or 0) + item["delta"], default=0
            )
    return time.monotonic() - start


def test_c3_queued_burst(benchmark):
    captured, completed, peak, depth_series = benchmark.pedantic(
        queued_capture_then_batch, rounds=3, iterations=1
    )
    benchmark.extra_info["capture_s"] = round(captured, 4)
    benchmark.extra_info["completion_s"] = round(completed, 4)
    benchmark.extra_info["peak_queue_depth"] = peak
    benchmark.extra_info["depth_over_time"] = depth_series
    assert peak == BURST  # the whole burst was absorbed
    # The buffer drains monotonically at the service rate.
    assert depth_series == sorted(depth_series, reverse=True)
    assert depth_series[-1] == 0


def test_c3_synchronous_baseline(benchmark):
    elapsed = benchmark.pedantic(synchronous_service, rounds=3, iterations=1)
    benchmark.extra_info["submitter_busy_s"] = round(elapsed, 4)


def test_c3_shape_capture_is_cheap(benchmark):
    def compare():
        captured, completed, _, _ = queued_capture_then_batch()
        synchronous = synchronous_service()
        return captured, completed, synchronous

    captured, completed, synchronous = benchmark.pedantic(
        compare, rounds=1, iterations=1
    )
    # The submitter's wait with a queue (capture) is a small fraction of
    # the synchronous submitter's wait (full service time).
    assert captured < synchronous / 2, (
        f"capture {captured:.3f}s should be far below synchronous "
        f"{synchronous:.3f}s"
    )
    benchmark.extra_info["capture_s"] = round(captured, 4)
    benchmark.extra_info["synchronous_wait_s"] = round(synchronous, 4)
    benchmark.extra_info["submitter_speedup"] = round(synchronous / captured, 1)
