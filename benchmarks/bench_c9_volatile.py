"""C9 — Section 10's volatile queues.

"A volatile queue is one whose contents is lost by a node failure.
Volatile queues have a useful role in some systems. ... The reliability
of the two volatile queues may be as high as that of a single stable
queue."

Measured: (a) raw enqueue+dequeue throughput, volatile vs stable — the
reason volatile queues exist; (b) the relayed volatile pair's exposure
window: elements lost to a crash are exactly the not-yet-relayed tail,
so frequent pumping approaches stable-queue reliability.
"""

from __future__ import annotations

import itertools

from repro.queueing.repository import QueueRepository
from repro.queueing.volatile import VolatileQueue, VolatileRelay
from repro.storage.disk import MemDisk

_n = itertools.count()


def test_c9_stable_queue_throughput(benchmark):
    repo = QueueRepository("c9", MemDisk())
    queue = repo.create_queue("q")

    def op():
        with repo.tm.transaction() as txn:
            queue.enqueue(txn, next(_n))
        with repo.tm.transaction() as txn:
            queue.dequeue(txn)

    benchmark(op)
    benchmark.extra_info["variant"] = "stable (logged, transactional)"


def test_c9_volatile_queue_throughput(benchmark):
    queue = VolatileQueue("v")

    def op():
        queue.enqueue(None, next(_n))
        queue.dequeue()

    benchmark(op)
    benchmark.extra_info["variant"] = "volatile (no logging)"


def test_c9_shape_volatile_faster_but_lossy(benchmark):
    import time

    def compare():
        rounds = 300
        repo = QueueRepository("c9b", MemDisk())
        stable = repo.create_queue("q")
        start = time.monotonic()
        for i in range(rounds):
            with repo.tm.transaction() as txn:
                stable.enqueue(txn, i)
            with repo.tm.transaction() as txn:
                stable.dequeue(txn)
        stable_time = time.monotonic() - start
        volatile = VolatileQueue("v")
        start = time.monotonic()
        for i in range(rounds):
            volatile.enqueue(None, i)
            volatile.dequeue()
        volatile_time = time.monotonic() - start
        # Loss semantics: a crash empties the volatile queue entirely.
        for i in range(5):
            volatile.enqueue(None, i)
        lost = volatile.crash()
        return stable_time, volatile_time, lost

    stable_time, volatile_time, lost = benchmark.pedantic(
        compare, rounds=1, iterations=1
    )
    assert volatile_time < stable_time
    assert lost == 5
    benchmark.extra_info["stable_s_per_300"] = round(stable_time, 4)
    benchmark.extra_info["volatile_s_per_300"] = round(volatile_time, 4)
    benchmark.extra_info["speedup"] = round(stable_time / volatile_time, 1)
    benchmark.extra_info["lost_at_crash"] = lost


def test_c9_relay_exposure_window(benchmark):
    """The volatile pair: loss is bounded by the relay interval."""

    def run(pump_every: int) -> tuple[int, int]:
        src, dst = VolatileQueue("s"), VolatileQueue("d")
        relay = VolatileRelay(src, dst)
        # 129 leaves a distinct exposed tail for each pump interval
        # (129 mod 10 = 9, 129 mod 50 = 29) when the producer crashes.
        produced = 129
        for i in range(produced):
            src.enqueue(None, i)
            if (i + 1) % pump_every == 0:
                relay.pump()
        lost = src.crash()  # producer node dies
        survived = dst.depth()
        assert survived + lost == produced
        return survived, lost

    def sweep():
        return {pump: run(pump) for pump in (1, 10, 50)}

    outcomes = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # Pumping every element -> nothing lost; rarely -> big exposure.
    assert outcomes[1][1] == 0
    assert outcomes[50][1] > outcomes[10][1] >= outcomes[1][1]
    for pump, (survived, lost) in outcomes.items():
        benchmark.extra_info[f"pump_every_{pump}"] = f"survived={survived} lost={lost}"
