"""C1 — Section 2's client-design comparison.

The paper: executing {send request, receive the reply, process the
reply} in ONE transaction means "processing the reply may be slow,
which creates contention for resources (e.g., locks) that the server
must hold until the transaction commits."  The queued three-transaction
design releases the server's locks before reply processing starts.

Setup: two workers repeatedly touch the SAME account.  In the
one-transaction design the account's X lock is held across a simulated
reply-processing delay; in the queued design the lock is released at
server commit and the delay happens outside.  The paper's predicted
shape: the queued design's throughput is far less sensitive to reply
latency; lock wait time exposes why.
"""

from __future__ import annotations

import threading
import time

from repro.core.system import TPSystem

REPLY_PROCESSING_DELAY = 0.005  # 5 ms "user looks at the screen"
REQUESTS_PER_WORKER = 10
WORKERS = 2


def one_transaction_design():
    """Client work inside one transaction: the hot lock is held across
    reply processing."""
    system = TPSystem()
    table = system.table("hot")
    with system.request_repo.tm.transaction() as txn:
        table.put(txn, "account", 0)

    def worker():
        for _ in range(REQUESTS_PER_WORKER):
            with system.request_repo.tm.transaction() as txn:
                table.update(txn, "account", lambda v: v + 1)
                time.sleep(REPLY_PROCESSING_DELAY)  # reply processed in-txn

    threads = [threading.Thread(target=worker) for _ in range(WORKERS)]
    start = time.monotonic()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.monotonic() - start
    return elapsed, system.request_repo.locks.stats.snapshot()


def three_transaction_design():
    """The paper's queued design: the server transaction holds the lock
    only while updating; reply processing happens after commit."""
    system = TPSystem()
    table = system.table("hot")
    with system.request_repo.tm.transaction() as txn:
        table.put(txn, "account", 0)

    def worker():
        for _ in range(REQUESTS_PER_WORKER):
            with system.request_repo.tm.transaction() as txn:
                table.update(txn, "account", lambda v: v + 1)
            time.sleep(REPLY_PROCESSING_DELAY)  # reply processed outside

    threads = [threading.Thread(target=worker) for _ in range(WORKERS)]
    start = time.monotonic()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.monotonic() - start
    return elapsed, system.request_repo.locks.stats.snapshot()


def test_c1_one_transaction_design(benchmark):
    elapsed, stats = benchmark.pedantic(one_transaction_design, rounds=3, iterations=1)
    benchmark.extra_info["design"] = "1-txn: lock held across reply processing"
    benchmark.extra_info["lock_wait_time_s"] = round(stats["wait_time"], 4)
    benchmark.extra_info["lock_waits"] = stats["waits"]


def test_c1_three_transaction_design(benchmark):
    elapsed, stats = benchmark.pedantic(three_transaction_design, rounds=3, iterations=1)
    benchmark.extra_info["design"] = "3-txn via queues: lock released at commit"
    benchmark.extra_info["lock_wait_time_s"] = round(stats["wait_time"], 4)
    benchmark.extra_info["lock_waits"] = stats["waits"]


def test_c1_shape_queued_design_wins(benchmark):
    """The headline comparison in one run: the queued design finishes
    faster and waits far less on locks."""

    def compare():
        slow, slow_stats = one_transaction_design()
        fast, fast_stats = three_transaction_design()
        return slow, fast, slow_stats, fast_stats

    slow, fast, slow_stats, fast_stats = benchmark.pedantic(
        compare, rounds=1, iterations=1
    )
    assert fast < slow, (
        f"queued design ({fast:.3f}s) must beat one-txn design ({slow:.3f}s)"
    )
    assert fast_stats["wait_time"] < slow_stats["wait_time"]
    benchmark.extra_info["one_txn_elapsed_s"] = round(slow, 4)
    benchmark.extra_info["queued_elapsed_s"] = round(fast, 4)
    benchmark.extra_info["speedup"] = round(slow / fast, 2)
