"""C4 — Section 6's motivation and its cost.

Motivation: "This approach may be chosen to avoid executing one long
transaction, which can lead to lock contention."  Cost: "One
disadvantage of multi-transaction requests is that the execution of
requests is not serializable."

Setup: transfers against a hot account where each stage includes a
simulated delay.  Compared designs:

* one LONG transaction per request (locks held across all three steps),
* three SHORT transactions per request (locks released between steps).

Measured: total time and lock wait time for a contending pair of
requests (the paper's predicted winner: short transactions), plus the
interleaving-anomaly count for the short design (the paper's predicted
price: > 0).
"""

from __future__ import annotations

import threading
import time

from repro.core.system import TPSystem

STEP_MS = 0.004
STEPS = 3
REQUESTS_PER_WORKER = 4
WORKERS = 2


def _setup():
    system = TPSystem()
    table = system.table("hot")
    with system.request_repo.tm.transaction() as txn:
        table.put(txn, "account", 1000)
    return system, table


def long_transactions() -> tuple[float, float]:
    system, table = _setup()

    def worker():
        for _ in range(REQUESTS_PER_WORKER):
            with system.request_repo.tm.transaction() as txn:
                for _step in range(STEPS):
                    table.update(txn, "account", lambda v: v - 1)
                    time.sleep(STEP_MS)

    threads = [threading.Thread(target=worker) for _ in range(WORKERS)]
    start = time.monotonic()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return time.monotonic() - start, system.request_repo.locks.stats.wait_time


def short_transactions() -> tuple[float, float, int]:
    """Three transactions per request; counts interleaving anomalies:
    another request's step observed the account mid-request."""
    system, table = _setup()
    anomalies = [0]
    lock = threading.Lock()
    in_progress: set[int] = set()

    def worker(worker_id: int):
        for _ in range(REQUESTS_PER_WORKER):
            for step in range(STEPS):
                with system.request_repo.tm.transaction() as txn:
                    table.update(txn, "account", lambda v: v - 1)
                    time.sleep(STEP_MS)
                with lock:
                    if step == 0:
                        in_progress.add(worker_id)
                    if step == STEPS - 1:
                        in_progress.discard(worker_id)
                    elif in_progress - {worker_id}:
                        # another request is mid-flight while this one
                        # runs a step: executions interleave.
                        anomalies[0] += 1

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(WORKERS)]
    start = time.monotonic()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return (
        time.monotonic() - start,
        system.request_repo.locks.stats.wait_time,
        anomalies[0],
    )


def test_c4_long_transactions(benchmark):
    elapsed, wait = benchmark.pedantic(long_transactions, rounds=3, iterations=1)
    benchmark.extra_info["design"] = "1 long transaction per request"
    benchmark.extra_info["lock_wait_s"] = round(wait, 4)


def test_c4_short_transactions(benchmark):
    elapsed, wait, anomalies = benchmark.pedantic(
        short_transactions, rounds=3, iterations=1
    )
    benchmark.extra_info["design"] = "3 short transactions per request"
    benchmark.extra_info["lock_wait_s"] = round(wait, 4)
    benchmark.extra_info["interleaving_anomalies"] = anomalies


def test_c4_shape_contention_vs_serializability(benchmark):
    def compare():
        long_time, long_wait = long_transactions()
        short_time, short_wait, anomalies = short_transactions()
        return long_time, long_wait, short_time, short_wait, anomalies

    long_time, long_wait, short_time, short_wait, anomalies = benchmark.pedantic(
        compare, rounds=1, iterations=1
    )
    # Contention: short transactions wait (much) less on the hot lock.
    assert short_wait < long_wait
    # Price: request executions interleave (not serializable).
    assert anomalies > 0
    benchmark.extra_info["long_txn_elapsed_s"] = round(long_time, 4)
    benchmark.extra_info["short_txn_elapsed_s"] = round(short_time, 4)
    benchmark.extra_info["long_lock_wait_s"] = round(long_wait, 4)
    benchmark.extra_info["short_lock_wait_s"] = round(short_wait, 4)
    benchmark.extra_info["interleaving_anomalies"] = anomalies
