"""X3 — extension: streaming requests and replies (Section 11).

"One could extend the Client Model to support streaming of requests
and replies, as in the Mercury system."

Measured: total completion time of a 24-request work list against a
server farm with per-request latency, for stream windows 1 (the base
one-at-a-time model), 2, and 4.  Predicted shape: completion time drops
as the window grows (requests overlap service latency) while
exactly-once and per-slot ordering hold throughout.
"""

from __future__ import annotations

import threading
import time

from repro.core.guarantees import GuaranteeChecker
from repro.core.streaming import StreamingClient
from repro.core.system import TPSystem

WORK = list(range(24))
SERVICE_MS = 0.002
SERVERS = 4


def run_stream(window: int) -> float:
    system = TPSystem()

    def handler(txn, request):
        time.sleep(SERVICE_MS)
        return {"echo": request.body}

    servers = [system.server(f"s{i}", handler) for i in range(SERVERS)]
    stop = threading.Event()
    threads = [
        threading.Thread(target=s.serve_until, args=(stop.is_set, 0.002), daemon=True)
        for s in servers
    ]
    for t in threads:
        t.start()
    stream = StreamingClient(system, "st", WORK, window=window, receive_timeout=10)
    start = time.monotonic()
    try:
        replies = stream.run()
    finally:
        stop.set()
        for t in threads:
            t.join(timeout=10)
    elapsed = time.monotonic() - start
    assert [r.body["echo"] for r in replies] == WORK
    GuaranteeChecker(system.trace).assert_ok()
    return elapsed


def test_x3_window_1_base_model(benchmark):
    elapsed = benchmark.pedantic(lambda: run_stream(1), rounds=3, iterations=1)
    benchmark.extra_info["window"] = 1
    benchmark.extra_info["elapsed_s"] = round(elapsed, 4)


def test_x3_window_2(benchmark):
    elapsed = benchmark.pedantic(lambda: run_stream(2), rounds=3, iterations=1)
    benchmark.extra_info["window"] = 2
    benchmark.extra_info["elapsed_s"] = round(elapsed, 4)


def test_x3_window_4(benchmark):
    elapsed = benchmark.pedantic(lambda: run_stream(4), rounds=3, iterations=1)
    benchmark.extra_info["window"] = 4
    benchmark.extra_info["elapsed_s"] = round(elapsed, 4)


def test_x3_shape_wider_window_finishes_sooner(benchmark):
    def compare():
        return run_stream(1), run_stream(4)

    t1, t4 = benchmark.pedantic(compare, rounds=1, iterations=1)
    assert t4 < t1, f"window 4 ({t4:.3f}s) must beat window 1 ({t1:.3f}s)"
    benchmark.extra_info["window_1_s"] = round(t1, 4)
    benchmark.extra_info["window_4_s"] = round(t4, 4)
    benchmark.extra_info["speedup"] = round(t1 / t4, 2)
