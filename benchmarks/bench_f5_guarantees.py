"""F5 — Figure 5: the clerk+server algorithm under exhaustive crash
injection.

Runs the crash-at-every-step sweep (every instrumented point of clerk,
queue manager, transaction manager, server, and device crashed once)
and reports how many crash locations were exercised with all three
Section 3 guarantees intact.  The timing number is the cost of the
whole sweep; the headline extra_info numbers are the coverage counts.
"""

from __future__ import annotations

import threading

from repro.core.client import UserCheckpoint
from repro.core.devices import TicketPrinter
from repro.core.guarantees import GuaranteeChecker
from repro.core.system import TPSystem
from repro.sim.harness import crash_every_step
from repro.sim.trace import TraceRecorder

WORK = ["a", "b"]


def _handler(txn, request):
    return {"echo": request.body}


def _scenario(injector):
    trace = TraceRecorder()
    system = TPSystem(injector=injector, trace=trace)
    device = TicketPrinter(trace=trace, injector=injector)
    user_log = UserCheckpoint()
    _scenario.state = {"system": system, "device": device, "log": user_log}
    client = system.client("c1", WORK, device, receive_timeout=None, user_log=user_log)
    server = system.server("s1", _handler)
    seq = client.resynchronize()
    while seq <= len(WORK):
        client.send_only(seq)
        server.process_one()
        reply = client.clerk.receive(ckpt=device.state(), timeout=1)
        device.process(reply.rid, reply.body)
        seq += 1
    user_log.mark_done()
    client.clerk.disconnect()
    return _scenario.state


def _recover(state):
    system2 = state["system"].reopen()
    client = system2.client(
        "c1", WORK, state["device"], receive_timeout=5, user_log=state["log"]
    )
    server = system2.server("r", _handler)
    done = threading.Event()
    thread = threading.Thread(
        target=lambda: server.serve_until(done.is_set, 0.02), daemon=True
    )
    thread.start()
    try:
        client.run()
    finally:
        done.set()
        thread.join(timeout=10)
    return system2


def _check(state, system2, plan):
    GuaranteeChecker(system2.trace).assert_ok()
    for seq in range(1, len(WORK) + 1):
        assert len(state["device"].tickets_for(f"c1#{seq}")) == 1
    return True


def test_f5_exhaustive_crash_sweep(benchmark):
    def sweep():
        return crash_every_step(_scenario, _recover, _check)

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    crashed = sum(1 for r in results if r.crashed)
    benchmark.extra_info["crash_points_exercised"] = crashed
    benchmark.extra_info["runs"] = len(results)
    benchmark.extra_info["guarantee_violations"] = 0
    assert crashed >= 40
    assert all(r.check_result for r in results)
