"""F6 — Figure 6: multi-transaction requests.

Times the three-transaction funds transfer (debit / credit /
clearinghouse-log) end to end, and the crash-recovery continuation of a
half-finished pipeline; compares against the same transfer as a single
transaction and as a distributed transaction under two-phase commit —
the design space Section 6 lays out."""

from __future__ import annotations

from repro.apps.banking import BankApp
from repro.core.devices import DisplayWithUserIds
from repro.core.system import TPSystem


def _setup(separate_reply_node=False):
    system = TPSystem(separate_reply_node=separate_reply_node)
    bank = BankApp(system)
    bank.open_accounts({"alice": 10_000_000, "bob": 10_000_000})
    return system, bank


def test_f6_three_transaction_transfer(benchmark):
    system, bank = _setup()
    pipeline = bank.transfer_pipeline()
    servers = pipeline.servers()
    display = DisplayWithUserIds(trace=system.trace)
    client = system.client("c1", [], display)
    client.resynchronize()
    counter = {"seq": 0}

    def transfer():
        counter["seq"] += 1
        client.work.append({"from": "alice", "to": "bob", "amount": 1})
        client.send_only(counter["seq"])
        for server in servers:
            server.process_one()
        reply = client.clerk.receive(ckpt=None, timeout=2)
        display.process(reply.rid, reply.body)

    benchmark(transfer)
    assert bank.total_money() == 20_000_000
    benchmark.extra_info["design"] = "3 transactions via queues (Figure 6)"


def test_f6_single_transaction_transfer(benchmark):
    system, bank = _setup()
    server = system.server("s", bank.transfer_handler)
    display = DisplayWithUserIds(trace=system.trace)
    client = system.client("c1", [], display)
    client.resynchronize()

    counter = {"seq": 0}

    def transfer():
        counter["seq"] += 1
        client.work.append({"from": "alice", "to": "bob", "amount": 1})
        client.send_only(counter["seq"])
        server.process_one()
        reply = client.clerk.receive(ckpt=None, timeout=2)
        display.process(reply.rid, reply.body)

    benchmark(transfer)
    assert bank.total_money() == 20_000_000
    benchmark.extra_info["design"] = "1 transaction (Figure 5 baseline)"


def test_f6_two_phase_commit_transfer(benchmark):
    """The alternative Section 6 positions queues against: a
    distributed transaction spanning the request node and a separate
    reply node under 2PC."""
    system, bank = _setup(separate_reply_node=True)
    server = system.server("s", bank.transfer_handler)
    display = DisplayWithUserIds(trace=system.trace)
    client = system.client("c1", [], display)
    client.resynchronize()

    counter = {"seq": 0}

    def transfer():
        counter["seq"] += 1
        client.work.append({"from": "alice", "to": "bob", "amount": 1})
        client.send_only(counter["seq"])
        server.process_one()
        reply = client.clerk.receive(ckpt=None, timeout=2)
        display.process(reply.rid, reply.body)

    benchmark(transfer)
    benchmark.extra_info["design"] = "1 transaction across 2 nodes (2PC)"


def test_f6_crash_mid_pipeline_recovery(benchmark):
    """Cost and correctness of recovering a transfer that crashed after
    its first transaction committed."""

    def crash_and_recover():
        system = TPSystem()
        bank = BankApp(system)
        bank.open_accounts({"alice": 100, "bob": 50})
        pipeline = bank.transfer_pipeline()
        display = DisplayWithUserIds(trace=system.trace)
        client = system.client("c1", bank.transfer_work([("alice", "bob", 30)]), display)
        client.resynchronize()
        client.send_only(1)
        pipeline.stage_server(0).process_one()  # debit committed
        system.crash()
        system2 = system.reopen()
        bank2 = BankApp(system2)
        executed = bank2.transfer_pipeline().drain()
        assert executed == 2  # credit + log only: exactly-once per stage
        assert bank2.balance("alice") == 70
        assert bank2.balance("bob") == 80
        assert bank2.total_money() == 150
        return executed

    benchmark.pedantic(crash_and_recover, rounds=3, iterations=1)
    benchmark.extra_info["measure"] = "crash after stage 0 -> recover -> finish"
