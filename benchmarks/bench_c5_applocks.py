"""C5 — Section 6's application-lock prediction.

"the application can mimic database system locking by creating a
persistent database of locks ...  Unfortunately, the performance of
this approach will be limited, due to the high overhead of setting
locks and the coarseness of lock granularity."

Measured: throughput of the three-transaction funds transfer with and
without the persistent application-lock table.  Predicted shape: the
app-lock variant is measurably slower per transfer (every stage adds
durable lock-table writes), and the final stage pays the release scan.
"""

from __future__ import annotations

from repro.apps.banking import BankApp
from repro.core.applocks import AppLockTable
from repro.core.devices import DisplayWithUserIds
from repro.core.system import TPSystem


def _make(lock_table: bool):
    system = TPSystem()
    bank = BankApp(system)
    bank.open_accounts({"alice": 10_000_000, "bob": 10_000_000})
    table = AppLockTable(system.table("applocks")) if lock_table else None
    pipeline = bank.transfer_pipeline("p", lock_table=table)
    servers = pipeline.servers()
    display = DisplayWithUserIds(trace=system.trace)
    client = system.client("c1", [], display)
    client.resynchronize()
    counter = {"seq": 0}

    def transfer():
        counter["seq"] += 1
        client.work.append({"from": "alice", "to": "bob", "amount": 1})
        client.send_only(counter["seq"])
        for server in servers:
            server.process_one()
        reply = client.clerk.receive(ckpt=None, timeout=2)
        display.process(reply.rid, reply.body)

    return transfer, table


def test_c5_without_app_locks(benchmark):
    transfer, _ = _make(lock_table=False)
    benchmark(transfer)
    benchmark.extra_info["variant"] = "raw multi-transaction (no request locks)"


def test_c5_with_app_locks(benchmark):
    transfer, table = _make(lock_table=True)
    benchmark(transfer)
    benchmark.extra_info["variant"] = "persistent application locks"
    benchmark.extra_info["lock_acquires"] = table.acquires
    benchmark.extra_info["lock_releases"] = table.releases


def test_c5_shape_app_locks_cost_more(benchmark):
    """Direct pairing: same work, warmed up, median of 3 interleaved
    trials (the overhead is tens of percent, so a single short trial is
    noise-sensitive)."""
    import statistics
    import time

    def compare():
        rounds = 80
        plain, _ = _make(lock_table=False)
        locked, table = _make(lock_table=True)
        for _ in range(10):  # warmup both paths
            plain()
            locked()
        plain_trials, locked_trials = [], []
        for _trial in range(3):
            start = time.monotonic()
            for _ in range(rounds):
                plain()
            plain_trials.append(time.monotonic() - start)
            start = time.monotonic()
            for _ in range(rounds):
                locked()
            locked_trials.append(time.monotonic() - start)
        plain_time = statistics.median(plain_trials)
        locked_time = statistics.median(locked_trials)
        return plain_time, locked_time, table

    plain_time, locked_time, table = benchmark.pedantic(compare, rounds=1, iterations=1)
    assert locked_time > plain_time, (
        f"app locks ({locked_time:.3f}s) must cost more than none "
        f"({plain_time:.3f}s)"
    )
    benchmark.extra_info["plain_s_per_80"] = round(plain_time, 4)
    benchmark.extra_info["app_locks_s_per_80"] = round(locked_time, 4)
    benchmark.extra_info["overhead_pct"] = round(
        100 * (locked_time - plain_time) / plain_time, 1
    )
