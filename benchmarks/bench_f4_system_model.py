"""F4 — Figure 4: the System Model end to end.

Times a full request round trip (client Send -> server transaction ->
client Receive + process) and the system's request throughput with a
single server."""

from __future__ import annotations

import itertools

from repro.core.devices import DisplayWithUserIds
from repro.core.request import Request
from repro.core.system import TPSystem

_seq = itertools.count(1)


def make_round_trip():
    system = TPSystem()
    display = DisplayWithUserIds(trace=system.trace)
    server = system.server("s", lambda txn, r: {"echo": r.body})
    clerk = system.clerk("c1")
    clerk.connect()

    def round_trip():
        seq = next(_seq)
        rid = f"c1#{seq}"
        clerk.send(
            Request(rid=rid, body=seq, client_id="c1",
                    reply_to=system.reply_queue_name("c1")),
            rid,
        )
        server.process_one()
        reply = clerk.receive(ckpt=display.state(), timeout=2)
        display.process(reply.rid, reply.body)
        return reply

    return round_trip


def test_f4_request_round_trip(benchmark):
    round_trip = make_round_trip()
    reply = benchmark(round_trip)
    assert reply.ok
    benchmark.extra_info["measure"] = "Send -> execute -> Receive -> process"


def test_f4_throughput_100_requests(benchmark):
    def run():
        system = TPSystem()
        display = DisplayWithUserIds(trace=system.trace)
        server = system.server("s", lambda txn, r: r.body)
        client = system.client("c1", list(range(100)), display, receive_timeout=10)
        client.resynchronize()
        seq = 1
        while seq <= 100:
            client.send_only(seq)
            server.process_one()
            reply = client.clerk.receive(ckpt=None, timeout=2)
            display.process(reply.rid, reply.body)
            seq += 1
        client.clerk.disconnect()
        system.checker().assert_ok(require_completion=False)
        return 100

    requests = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["requests_per_round"] = requests
