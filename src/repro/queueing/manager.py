"""The queue-manager facade: Figure 3's operations.

``Register``, ``Deregister``, ``Enqueue``, ``Dequeue``, ``Read``, and
(Section 7) ``Kill_element``, with the semantics of Section 4:

* every operation is all-or-nothing and serializable;
* invoked *within* a transaction it obeys transaction semantics;
  invoked *outside* one (the client side of the "gateway" between the
  non-transactional front-end world and the transactional back-end
  world, Section 2) it is wrapped in an internal auto-commit
  transaction, so its effect is durable and visible before it returns
  — "When Send returns, the client knows that the request was stably
  stored";
* a registrant-supplied *tag* rides every Enqueue/Dequeue atomically
  into the persistent registration record (Section 4.3).

When the facade is built with a deterministic lane (``cc="auto"`` or
``"deterministic"``), auto-commit single-queue enqueues and
non-waiting dequeues — the queue-shaped transaction class — are
routed to the lane's plan queues instead of opening a 2PL transaction;
see :mod:`repro.transaction.deterministic` for the routing rationale.
Everything else (caller-supplied transactions, blocking dequeues,
register/deregister) stays on the 2PL lane.
"""

from __future__ import annotations

import time as _time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Iterator

from repro.errors import NoSuchElementError, NotRegisteredError
from repro.obs import Observability
from repro.queueing.element import Element
from repro.queueing.registration import Registration
from repro.queueing.repository import QueueRepository
from repro.transaction.manager import Transaction


@dataclass(frozen=True)
class QueueHandle:
    """Opaque handle returned by Register (Figure 3's ``h``)."""

    repository: str
    queue: str
    registrant: str


class QueueManager:
    """Facade over one repository, exposing the paper's operations."""

    def __init__(
        self,
        repo: QueueRepository,
        obs: Observability | None = None,
        cc: str = "2pl",
        lane: Any = None,
    ):
        self.repo = repo
        #: concurrency-control policy: "2pl" (seed behavior), or
        #: "auto"/"deterministic", which route the queue-shaped
        #: transaction class through ``lane``
        self.cc = cc
        self.lane = lane if cc != "2pl" else None
        obs = obs if obs is not None else repo.obs
        self._obs_on = obs.enabled
        self._tracer = obs.tracer
        metrics = obs.metrics
        self._m_enq_latency = metrics.histogram(
            "queue_enqueue_latency_seconds",
            "Enqueue wall time incl. registration record", ("queue",),
        )
        self._m_deq_latency = metrics.histogram(
            "queue_dequeue_latency_seconds",
            "Dequeue wall time incl. blocking wait", ("queue",),
        )

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------

    @contextmanager
    def _txn_scope(self, txn: Transaction | None) -> Iterator[Transaction]:
        """Use the caller's transaction, or an internal auto-commit one."""
        if txn is not None:
            txn.require_active()
            yield txn
        else:
            with self.repo.tm.transaction() as inner:
                yield inner

    def _queue(self, handle: QueueHandle):
        return self.repo.get_queue(handle.queue)

    def _check_registered(self, handle: QueueHandle) -> None:
        if not self.repo.registration.is_registered(handle.queue, handle.registrant):
            raise NotRegisteredError(
                f"{handle.registrant!r} is not registered with {handle.queue!r}"
            )

    # ------------------------------------------------------------------
    # Register / Deregister (Section 4.3)
    # ------------------------------------------------------------------

    def register(
        self,
        qname: str,
        registrant: str,
        stable: bool = True,
        txn: Transaction | None = None,
    ) -> tuple[QueueHandle, Any, int | None]:
        """Figure 3: ``h, t, e = Register(qname, client, stable_flag)``.

        Returns the handle plus the tag and eid of the registrant's
        most recent tagged operation (both ``None`` for a first-time
        registration) — the resynchronization data of Figure 2.
        """
        self.repo.get_queue(qname)  # must exist
        with self._txn_scope(txn) as t:
            reg = self.repo.registration.register(t, qname, registrant, stable)
        handle = QueueHandle(self.repo.name, qname, registrant)
        return handle, reg.last_tag, reg.last_eid

    def registration_info(self, handle: QueueHandle) -> Registration | None:
        """Full last-operation record, including the operation *type*
        (the generalization the end of Section 4.3 recommends) and the
        stable element copy."""
        return self.repo.registration.lookup(handle.queue, handle.registrant)

    def deregister(self, handle: QueueHandle, txn: Transaction | None = None) -> None:
        """Figure 3: ``Deregister(h, client)``."""
        with self._txn_scope(txn) as t:
            self.repo.registration.deregister(t, handle.queue, handle.registrant)

    # ------------------------------------------------------------------
    # Enqueue / Dequeue / Read / Kill_element
    # ------------------------------------------------------------------

    def enqueue(
        self,
        handle: QueueHandle,
        body: Any,
        tag: Any = None,
        *,
        txn: Transaction | None = None,
        priority: int = 0,
        headers: dict[str, Any] | None = None,
    ) -> int:
        """Figure 3: ``e = Enqueue(h, element, t)``.

        The tag (and a stable copy of the element) is recorded in the
        registration atomically with the enqueue, when the registration
        is stable.

        Tagged enqueues are **idempotent** for stable registrants: if
        the registrant's last recorded operation is an enqueue with the
        same tag, this call is a duplicate (e.g. an at-least-once RPC
        retry whose first attempt's acknowledgement was lost) and the
        original eid is returned without enqueuing again.  Rids are
        unique per request (Section 3), so equal tags always mean the
        same logical Send."""
        if not self._obs_on:
            return self._enqueue(
                handle, body, tag, txn=txn, priority=priority, headers=headers
            )
        t0 = _time.perf_counter()
        with self._tracer.start_span("queue.enqueue", queue=handle.queue) as span:
            eid = self._enqueue(
                handle, body, tag, txn=txn, priority=priority, headers=headers
            )
            span.set_attr("eid", eid)
        self._m_enq_latency.labels(queue=handle.queue).observe(
            _time.perf_counter() - t0
        )
        return eid

    def _enqueue(
        self,
        handle: QueueHandle,
        body: Any,
        tag: Any = None,
        *,
        txn: Transaction | None = None,
        priority: int = 0,
        headers: dict[str, Any] | None = None,
    ) -> int:
        self._check_registered(handle)
        if tag is not None:
            previous = self.repo.registration.lookup(handle.queue, handle.registrant)
            if (
                previous is not None
                and previous.stable
                and previous.last_op == "enq"
                and previous.last_tag == tag
                and previous.last_eid is not None
            ):
                return previous.last_eid
        queue = self._queue(handle)
        if txn is None and self.lane is not None:
            return self._lane_enqueue(handle, body, tag, priority, headers)
        with self._txn_scope(txn) as t:
            eid = queue.enqueue(t, body, priority=priority, headers=headers)
            element = queue_element_record(body, eid, priority, headers)
            self.repo.registration.record_op(
                t, handle.queue, handle.registrant, "enq", tag, eid, element
            )
        return eid

    def _lane_enqueue(
        self,
        handle: QueueHandle,
        body: Any,
        tag: Any,
        priority: int,
        headers: dict[str, Any] | None,
    ) -> int:
        """Plan an auto-commit enqueue on the deterministic lane."""

        def op(shard, t: Transaction) -> int:
            eid = shard.get_queue(handle.queue).enqueue(
                t, body, priority=priority, headers=headers
            )
            element = queue_element_record(body, eid, priority, headers)
            shard.registration.record_op(
                t, handle.queue, handle.registrant, "enq", tag, eid, element
            )
            return eid

        return self.lane.submit(handle.queue, "enq", op)

    def dequeue(
        self,
        handle: QueueHandle,
        tag: Any = None,
        error_queue: str | None = None,
        *,
        txn: Transaction | None = None,
        block: bool = False,
        timeout: float | None = None,
        selector: Callable[[Element], bool] | None = None,
    ) -> Element:
        """Figure 3: ``element = Dequeue(h, t, eh)``.

        ``error_queue`` mirrors the ``eh`` parameter: where the element
        goes after its ``max_aborts``-th dequeue-abort."""
        if not self._obs_on:
            return self._dequeue(
                handle, tag, error_queue,
                txn=txn, block=block, timeout=timeout, selector=selector,
            )
        t0 = _time.perf_counter()
        wall0 = _time.time()
        element = self._dequeue(
            handle, tag, error_queue,
            txn=txn, block=block, timeout=timeout, selector=selector,
        )
        # The span is created only once an element arrives (empty polls
        # would flood the tracer) and re-parented onto the element's
        # wire context, stitching the consumer to the producer's Send.
        span = self._tracer.start_span(
            "queue.dequeue",
            parent=element.headers.get("trace"),
            start=wall0,
            queue=handle.queue,
            eid=element.eid,
            registrant=handle.registrant,
        )
        span.end()
        self._m_deq_latency.labels(queue=handle.queue).observe(
            _time.perf_counter() - t0
        )
        return element

    def _dequeue(
        self,
        handle: QueueHandle,
        tag: Any = None,
        error_queue: str | None = None,
        *,
        txn: Transaction | None = None,
        block: bool = False,
        timeout: float | None = None,
        selector: Callable[[Element], bool] | None = None,
    ) -> Element:
        self._check_registered(handle)
        queue = self._queue(handle)
        # Waiting dequeues must not be planned: an executor sleeping on
        # a queue condition would stall every intent behind it, so only
        # immediate polls (non-blocking, or a zero timeout) ride the
        # deterministic lane.
        waits = block and (timeout is None or timeout > 0)
        if txn is None and self.lane is not None and not waits:
            return self._lane_dequeue(
                handle, tag, error_queue, block, timeout, selector
            )
        with self._txn_scope(txn) as t:
            element = queue.dequeue(
                t,
                selector=selector,
                block=block,
                timeout=timeout,
                error_queue=error_queue,
            )
            self.repo.registration.record_op(
                t,
                handle.queue,
                handle.registrant,
                "deq",
                tag,
                element.eid,
                element.to_record(),
            )
        return element

    def _lane_dequeue(
        self,
        handle: QueueHandle,
        tag: Any,
        error_queue: str | None,
        block: bool,
        timeout: float | None,
        selector: Callable[[Element], bool] | None,
    ) -> Element:
        """Plan an auto-commit non-waiting dequeue on the lane."""

        def op(shard, t: Transaction) -> Element:
            element = shard.get_queue(handle.queue).dequeue(
                t,
                selector=selector,
                block=block,
                timeout=timeout,
                error_queue=error_queue,
            )
            shard.registration.record_op(
                t,
                handle.queue,
                handle.registrant,
                "deq",
                tag,
                element.eid,
                element.to_record(),
            )
            return element

        return self.lane.submit(handle.queue, "deq", op)

    def read(self, handle: QueueHandle, eid: int) -> Element:
        """Figure 3: ``element = Read(h, e)``.

        Falls back to the registrant's stable registration copy, so a
        recovered registrant can re-read its last element "even if ...
        the enqueued element was dequeued by another registrant"
        (Section 4.3)."""
        queue = self._queue(handle)
        try:
            return queue.read(eid)
        except NoSuchElementError:
            reg = self.repo.registration.lookup(handle.queue, handle.registrant)
            if reg is not None and reg.last_eid == eid and reg.last_element:
                return Element.from_record(reg.last_element)
            raise

    def kill_element(self, handle: QueueHandle, eid: int) -> bool:
        """Section 7's Kill_element; True iff the element was deleted."""
        return self._queue(handle).kill_element(eid)

    # ------------------------------------------------------------------
    # Data definition passthrough
    # ------------------------------------------------------------------

    def create_queue(self, qname: str, **config: Any):
        return self.repo.create_queue(qname, **config)

    def destroy_queue(self, qname: str) -> None:
        self.repo.destroy_queue(qname)

    def start_queue(self, qname: str) -> None:
        self.repo.start_queue(qname)

    def stop_queue(self, qname: str) -> None:
        self.repo.stop_queue(qname)

    def depth(self, qname: str) -> int:
        return self.repo.get_queue(qname).depth()


def queue_element_record(
    body: Any, eid: int, priority: int, headers: dict[str, Any] | None
) -> dict[str, Any]:
    """Element record for registration copies of a just-enqueued element."""
    return {
        "eid": eid,
        "body": body,
        "prio": priority,
        "seq": 0,
        "aborts": 0,
        "hdrs": dict(headers or {}),
    }
