"""Persistent registration with operation tags (Section 4.3).

This is the feature the paper claims as new: the queue manager keeps,
per (queue, registrant), a *stable* record of the last tagged operation
— its type, its registrant-supplied tag, the eid it touched, and a full
copy of the element.  Registration survives registrant failure
("the failure of a registrant does not implicitly deregister it"), so a
recovering client can call Register again and learn exactly where it
left off; that is what makes the clerk's connect-time
resynchronization (Figure 2, lines 2–11) possible.

Durability rules:

* Register / Deregister are immediately durable ("information about a
  registration is guaranteed to be stable when the Register operation
  completes").
* A tagged operation's registration update is atomic with the
  operation: inside a transaction it rides the same commit; outside
  (the client side of the queue "gateway", Section 2) the queue manager
  wraps both in one internal auto-commit transaction.
* ``stable_flag=False`` (Figure 5's servers) registers without tag
  maintenance — benchmark C10 ablates exactly this flag.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any

from repro.errors import NotRegisteredError
from repro.transaction.manager import Transaction


@dataclass
class Registration:
    """Stable per-(queue, registrant) state."""

    registrant: str
    queue: str
    stable: bool
    #: type of the last tagged operation: "enq" | "deq" | None
    last_op: str | None = None
    #: the registrant-supplied tag of that operation
    last_tag: Any = None
    #: eid of the element operated upon
    last_eid: int | None = None
    #: full stable copy of that element (lets Read succeed "even if ...
    #: the enqueued element was dequeued by another registrant")
    last_element: dict[str, Any] | None = None

    def to_record(self) -> dict[str, Any]:
        return {
            "registrant": self.registrant,
            "queue": self.queue,
            "stable": self.stable,
            "last_op": self.last_op,
            "last_tag": self.last_tag,
            "last_eid": self.last_eid,
            "last_element": self.last_element,
        }

    @classmethod
    def from_record(cls, record: dict[str, Any]) -> "Registration":
        return cls(**record)


class RegistrationTable:
    """Resource manager holding every registration of a repository."""

    rm_name = "qreg"

    def __init__(self) -> None:
        self._regs: dict[tuple[str, str], Registration] = {}
        self._mutex = threading.Lock()
        #: pre-image of the first uncommitted write per key (None = the
        #: key did not exist); reverted by snapshot() so fuzzy
        #: checkpoints capture only committed registrations
        self._dirty: dict[tuple[str, str], Registration | None] = {}
        self._dirty_txns: dict[int, set[tuple[str, str]]] = {}

    @staticmethod
    def _key(queue: str, registrant: str) -> tuple[str, str]:
        return (queue, registrant)

    # ------------------------------------------------------------------
    # Register / Deregister (immediately durable: caller logs via
    # an auto record — see QueueManager)
    # ------------------------------------------------------------------

    def register(
        self, txn: Transaction, queue: str, registrant: str, stable: bool
    ) -> Registration:
        """Create or return the registration.

        Re-registering (recovery) returns the existing record with its
        last-operation info intact — that is the whole point.
        A re-register may flip ``stable``; the tag history is kept.
        """
        with self._mutex:
            existing = self._regs.get(self._key(queue, registrant))
        if existing is not None:
            if existing.stable != stable:
                updated = Registration.from_record(existing.to_record())
                updated.stable = stable
                self._apply(txn, updated)
                return updated
            return Registration.from_record(existing.to_record())
        reg = Registration(registrant=registrant, queue=queue, stable=stable)
        self._apply(txn, reg)
        return reg

    def deregister(self, txn: Transaction, queue: str, registrant: str) -> None:
        """Destroy all registration information (Section 4.3's
        Deregister)."""
        key = self._key(queue, registrant)
        with self._mutex:
            existed = key in self._regs
        if not existed:
            raise NotRegisteredError(f"{registrant!r} is not registered with {queue!r}")
        txn.log_update(self.rm_name, {"op": "dereg", "q": queue, "r": registrant})
        with self._mutex:
            old = self._regs.pop(key)
            self._note_dirty(txn, key, old)
        txn.add_undo(lambda: self._restore_reg(old))

    def _restore_reg(self, reg: Registration) -> None:
        with self._mutex:
            self._regs[self._key(reg.queue, reg.registrant)] = reg

    # ------------------------------------------------------------------
    # Tagged-operation updates
    # ------------------------------------------------------------------

    def record_op(
        self,
        txn: Transaction,
        queue: str,
        registrant: str,
        op: str,
        tag: Any,
        eid: int,
        element_record: dict[str, Any],
    ) -> None:
        """Atomically (with ``txn``) remember the last tagged operation.
        No-op for ``stable=False`` registrations."""
        key = self._key(queue, registrant)
        with self._mutex:
            reg = self._regs.get(key)
        if reg is None:
            raise NotRegisteredError(f"{registrant!r} is not registered with {queue!r}")
        if not reg.stable:
            return
        updated = Registration(
            registrant=registrant,
            queue=queue,
            stable=True,
            last_op=op,
            last_tag=tag,
            last_eid=eid,
            last_element=dict(element_record),
        )
        self._apply(txn, updated)

    def _apply(self, txn: Transaction, reg: Registration) -> None:
        key = self._key(reg.queue, reg.registrant)
        with self._mutex:
            old = self._regs.get(key)
        txn.log_update(self.rm_name, {"op": "set", "reg": reg.to_record()})
        with self._mutex:
            self._regs[key] = reg
            self._note_dirty(txn, key, old)
        if old is None:
            txn.add_undo(lambda: self._drop_reg(key))
        else:
            txn.add_undo(lambda: self._restore_reg(old))

    def _drop_reg(self, key: tuple[str, str]) -> None:
        with self._mutex:
            self._regs.pop(key, None)

    def _note_dirty(
        self, txn: Transaction, key: tuple[str, str], old: Registration | None
    ) -> None:
        """Remember ``key``'s committed pre-image (caller holds
        ``self._mutex``); cleared by the transaction's commit/abort
        hooks, which run before its locks are released."""
        if key in self._dirty:
            return
        self._dirty[key] = old
        keys = self._dirty_txns.get(txn.id)
        if keys is None:
            keys = self._dirty_txns[txn.id] = set()
            txn_id = txn.id
            txn.on_commit(lambda: self._clear_dirty(txn_id))
            txn.on_abort(lambda: self._clear_dirty(txn_id))
        keys.add(key)

    def _clear_dirty(self, txn_id: int) -> None:
        with self._mutex:
            for key in self._dirty_txns.pop(txn_id, ()):
                self._dirty.pop(key, None)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def lookup(self, queue: str, registrant: str) -> Registration | None:
        with self._mutex:
            reg = self._regs.get(self._key(queue, registrant))
            return Registration.from_record(reg.to_record()) if reg else None

    def is_registered(self, queue: str, registrant: str) -> bool:
        with self._mutex:
            return self._key(queue, registrant) in self._regs

    def registrants(self, queue: str) -> list[str]:
        with self._mutex:
            return sorted(r for (q, r) in self._regs if q == queue)

    # ------------------------------------------------------------------
    # Resource-manager protocol
    # ------------------------------------------------------------------

    def redo(self, data: dict[str, Any]) -> None:
        with self._mutex:
            if data["op"] == "set":
                reg = Registration.from_record(data["reg"])
                self._regs[self._key(reg.queue, reg.registrant)] = reg
            elif data["op"] == "dereg":
                self._regs.pop(self._key(data["q"], data["r"]), None)
            else:  # pragma: no cover - log corruption guard
                raise ValueError(f"unknown registration redo op {data['op']!r}")

    def snapshot(self) -> Any:
        """Committed view: uncommitted writes reverted to their
        pre-images (fuzzy-checkpoint safe)."""
        with self._mutex:
            regs = dict(self._regs)
            for key, old in self._dirty.items():
                if old is None:
                    regs.pop(key, None)
                else:
                    regs[key] = old
            return [reg.to_record() for reg in regs.values()]

    def restore(self, state: Any) -> None:
        with self._mutex:
            self._regs = {}
            self._dirty.clear()
            self._dirty_txns.clear()
            for record in state:
                reg = Registration.from_record(record)
                self._regs[self._key(reg.queue, reg.registrant)] = reg
