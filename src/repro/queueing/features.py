"""Commercial-product queue features (Section 9).

The related-work section catalogs what DECintact, IMS/DC, and CICS
offered; these features are implemented here so the comparisons are
runnable and so the fork/join workflow of Section 6 has its trigger
mechanism:

* :class:`QueueSet` — DECintact's "queue sets (a view of a set of
  queues)": dequeue from whichever member has work.
* :class:`AlertThreshold` — DECintact's "alert thresholds": a callback
  when a queue's committed depth crosses a bound.
* :class:`Redirection` — DECintact's "queue redirection (to
  automatically forward elements from one queue to another)".
* :class:`StartOnArrival` — CICS's transaction-start-on-arrival: spawn
  a worker callback when elements arrive, up to a task limit.
* :class:`JoinTrigger` — Section 6: "A trigger is set to send a request
  when all of the replies to earlier concurrent requests have been
  received" (the join half of fork/join multi-transaction requests).
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from repro.errors import QueueEmpty
from repro.queueing.element import Element
from repro.queueing.queue import RecoverableQueue
from repro.transaction.manager import Transaction


class QueueSet:
    """A dequeue view over several queues of one repository.

    Selection walks members round-robin starting after the last served
    member, so no member starves."""

    def __init__(self, queues: list[RecoverableQueue]):
        if not queues:
            raise ValueError("a queue set needs at least one member queue")
        self.queues = list(queues)
        self._next = 0
        self._mutex = threading.Lock()

    def depth(self) -> int:
        return sum(q.depth() for q in self.queues)

    def dequeue(
        self,
        txn: Transaction,
        *,
        selector: Callable[[Element], bool] | None = None,
    ) -> tuple[RecoverableQueue, Element]:
        """Dequeue from the first member (round-robin) with an eligible
        element.  Returns (member, element)."""
        with self._mutex:
            start = self._next
            order = [
                self.queues[(start + i) % len(self.queues)]
                for i in range(len(self.queues))
            ]
        for queue in order:
            try:
                element = queue.dequeue(txn, selector=selector)
            except QueueEmpty:
                continue
            with self._mutex:
                self._next = (self.queues.index(queue) + 1) % len(self.queues)
            return queue, element
        raise QueueEmpty("no eligible element in any member of the queue set")


class AlertThreshold:
    """Fire ``callback(queue, depth)`` when committed depth crosses
    ``threshold`` upward.  Re-arms when depth falls below."""

    def __init__(
        self,
        queue: RecoverableQueue,
        threshold: int,
        callback: Callable[[RecoverableQueue, int], None],
    ):
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.queue = queue
        self.threshold = threshold
        self.callback = callback
        self._armed = True
        self._mutex = threading.Lock()
        queue.subscribe_visible(self._on_visible)

    def _on_visible(self, queue: RecoverableQueue, _element: Element) -> None:
        depth = queue.depth()
        with self._mutex:
            if depth < self.threshold:
                self._armed = True
                return
            if not self._armed:
                return
            self._armed = False
        self.callback(queue, depth)


class Redirection:
    """Automatically forward every element that becomes visible in
    ``source`` to ``target`` (same repository — the element keeps its
    eid, Section 10's identity guarantee).

    The forward runs as its own transaction; a crash between the commit
    making the element visible and the forward leaves the element in
    ``source``, where a restarted redirection's :meth:`catch_up` finds
    it — at-least-once forwarding, idempotent because the eid travels.
    """

    def __init__(self, source: RecoverableQueue, target: RecoverableQueue):
        self.source = source
        self.target = target
        self.forwarded = 0
        source.subscribe_visible(self._on_visible)

    def _on_visible(self, _queue: RecoverableQueue, element: Element) -> None:
        self._forward(element.eid)

    def _forward(self, eid: int) -> None:
        repo = self.source.repo
        try:
            with repo.tm.transaction() as txn:
                element = self.source.dequeue(
                    txn, selector=lambda e: e.eid == eid
                )
                self.target.enqueue(
                    txn,
                    element.body,
                    priority=element.priority,
                    headers=element.headers,
                    eid=element.eid,
                )
        except QueueEmpty:
            return  # someone else consumed it; nothing to forward
        self.forwarded += 1

    def catch_up(self) -> int:
        """Forward everything currently visible (post-crash recovery)."""
        moved = 0
        for eid in self.source.eids():
            before = self.forwarded
            self._forward(eid)
            moved += self.forwarded - before
        return moved


class StartOnArrival:
    """CICS-style start-on-arrival: run ``worker(element)`` in a new
    thread when elements become visible, at most ``max_tasks``
    concurrently.  The worker receives the *queue* and is expected to
    dequeue transactionally itself (so crashes keep exactly-once)."""

    def __init__(
        self,
        queue: RecoverableQueue,
        worker: Callable[[RecoverableQueue], None],
        max_tasks: int = 1,
    ):
        self.queue = queue
        self.worker = worker
        self.max_tasks = max_tasks
        self._active = 0
        self._mutex = threading.Lock()
        self.started_tasks = 0
        queue.subscribe_visible(self._on_visible)

    def _on_visible(self, queue: RecoverableQueue, _element: Element) -> None:
        with self._mutex:
            if self._active >= self.max_tasks:
                return
            self._active += 1
            self.started_tasks += 1
        thread = threading.Thread(target=self._run, daemon=True)
        thread.start()

    def _run(self) -> None:
        try:
            self.worker(self.queue)
        finally:
            with self._mutex:
                self._active -= 1


class JoinTrigger:
    """Section 6's join trigger for concurrent multi-transaction
    requests.

    Watches ``reply_queue`` for elements whose ``corr`` header matches
    ``correlation``; when ``expected`` of them have been *observed*,
    fires ``action(replies)`` exactly once per trigger instance.
    Observation is non-destructive — the action itself usually dequeues
    the replies transactionally.
    """

    def __init__(
        self,
        reply_queue: RecoverableQueue,
        correlation: Any,
        expected: int,
        action: Callable[[list[Element]], None],
    ):
        if expected < 1:
            raise ValueError("expected must be >= 1")
        self.reply_queue = reply_queue
        self.correlation = correlation
        self.expected = expected
        self.action = action
        self._seen: dict[int, Element] = {}
        self._fired = False
        self._mutex = threading.Lock()
        reply_queue.subscribe_visible(self._on_visible)
        # Catch up with replies that arrived before the trigger was set
        # (a recovering coordinator re-creates its triggers).
        for eid in reply_queue.eids():
            try:
                element = reply_queue.read(eid)
            except Exception:
                continue
            self._observe(element)

    def _on_visible(self, _queue: RecoverableQueue, element: Element) -> None:
        self._observe(element)

    def _observe(self, element: Element) -> None:
        if element.headers.get("corr") != self.correlation:
            return
        with self._mutex:
            if self._fired:
                return
            self._seen[element.eid] = element
            if len(self._seen) < self.expected:
                return
            self._fired = True
            replies = sorted(self._seen.values(), key=lambda e: e.eid)
        # An action may decline (return False) — e.g. a join that found
        # it could not yet consume every reply — in which case the
        # trigger re-arms and fires again on the next observation.
        if self.action(replies) is False:
            with self._mutex:
                self._fired = False

    @property
    def fired(self) -> bool:
        with self._mutex:
            return self._fired
