"""Background checkpointing: bounded-time recovery without quiescence.

A :class:`Checkpointer` watches one repository's log and takes a fuzzy
checkpoint (:meth:`QueueRepository.checkpoint`) whenever
``interval_bytes`` of new log have accumulated since the last
checkpoint began.  That bounds both restart-recovery work (replay never
starts below the latest checkpoint's recovery LSN) and live WAL size
(segment GC reclaims everything below it), at the cost of one snapshot
write per interval.

Threading: with no fault injector attached, the checkpointer runs a
daemon thread that polls the byte trigger.  Under fault injection a
thread would destroy schedule determinism, so the checkpointer stays
passive and the harness (the chaos engine, tests) drives it
synchronously via :meth:`poll`.
"""

from __future__ import annotations

import logging
import threading

from repro.errors import DiskCrashedError, StorageError, WalPanicError

logger = logging.getLogger(__name__)


class Checkpointer:
    """Byte-triggered checkpoint driver for one repository (or shard)."""

    def __init__(
        self,
        repo,
        interval_bytes: int,
        *,
        poll_seconds: float = 0.02,
        threaded: bool = True,
    ):
        if interval_bytes < 1:
            raise ValueError(f"interval_bytes must be >= 1, got {interval_bytes}")
        self.repo = repo
        self.interval_bytes = interval_bytes
        self.poll_seconds = poll_seconds
        #: checkpoints this driver completed (monitoring/tests)
        self.checkpoints_taken = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        if threaded:
            self._thread = threading.Thread(
                target=self._run, name=f"checkpointer-{repo.name}", daemon=True
            )
            self._thread.start()

    @property
    def threaded(self) -> bool:
        """Whether a background polling thread is running."""
        return self._thread is not None

    def should_checkpoint(self) -> bool:
        return self.repo.log.bytes_since_checkpoint() >= self.interval_bytes

    def poll(self) -> bool:
        """Take a checkpoint if the byte trigger is due.  Returns
        whether one ran.  Synchronous driver for deterministic
        harnesses; also the body of the background thread."""
        if not self.should_checkpoint():
            return False
        self.repo.checkpoint()
        self.checkpoints_taken += 1
        return True

    def _run(self) -> None:
        while not self._stop.wait(self.poll_seconds):
            try:
                self.poll()
            except (WalPanicError, DiskCrashedError):
                # The node is going down; the restarted repository
                # builds a fresh checkpointer.
                return
            except StorageError:
                # Transient: the old checkpoint still governs recovery
                # (install is atomic), so just try again next interval.
                logger.exception(
                    "checkpoint of %r failed; retrying next poll", self.repo.name
                )

    def stop(self) -> None:
        """Stop the background thread (if any) and wait for it."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
