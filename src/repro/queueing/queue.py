"""One recoverable queue.

Transactional behaviour is an element state machine (Section 10's
"readers scan the queue and ignore write-locked elements"):

* ``Enqueue`` inside transaction T creates a slot in ``ENQ_PENDING``;
  T's commit makes it ``AVAILABLE`` (and wakes blocked dequeuers); T's
  abort deletes it.
* ``Dequeue`` inside T picks the first eligible slot and marks it
  ``DEQ_PENDING``; T's commit removes it (into a bounded archive that
  serves ``Read`` after removal — the "retain the reply until the
  client says to delete it" idea of Section 2); T's abort returns it to
  ``AVAILABLE`` and durably increments its abort count; the
  ``max_aborts``-th abort moves it to the error queue instead
  (Section 4.2's termination guarantee).
* In ``SKIP_LOCKED`` mode a dequeue passes over ``DEQ_PENDING`` slots
  (tolerating the non-FIFO anomaly Section 10 calls "tolerable"); in
  ``STRICT`` mode it refuses (``ElementLockedError``) when the head is
  uncommitted, which benchmark C7 shows is the performance price of
  exact FIFO.
* ``Kill_element`` (Section 7) deletes a named element, aborting the
  uncommitted dequeuer if there is one.

Durability: redo records through the repository's shared log (``enq`` /
``deq`` keyed by eid — idempotent), abort counts as auto-committed
records so they survive crashes independently of the aborting
transaction.
"""

from __future__ import annotations

import bisect
import enum
import heapq
import logging
import threading
import time as _time
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import (
    ElementLockedError,
    KillFailedError,
    NoSuchElementError,
    QueueEmpty,
    QueueStoppedError,
    StorageError,
)
from repro.queueing.element import Element, ElementState
from repro.transaction.manager import Transaction

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.queueing.repository import QueueRepository

logger = logging.getLogger(__name__)

#: the fallback scan path compacts its stale ``_order`` entries with a
#: single-pass rebuild once this many accumulate; below it, per-index
#: deletion is cheaper than copying the whole list
_STALE_COMPACT_THRESHOLD = 32


class DequeueMode(enum.Enum):
    """Section 10's ordering/concurrency trade-off."""

    #: pass over uncommitted (DEQ_PENDING) elements — high concurrency,
    #: occasionally non-FIFO completion order
    SKIP_LOCKED = "skip_locked"
    #: refuse to pass an uncommitted head — exact FIFO, low concurrency
    STRICT = "strict"


@dataclass
class QueueConfig:
    """Per-queue attributes (set by data-definition operations)."""

    name: str
    #: the "n" of Section 4.2: the n-th dequeue-abort moves the element
    #: to the error queue instead of back here
    max_aborts: int = 3
    #: name of the error queue in the same repository (None disables the
    #: error-queue move; elements then retry forever)
    error_queue: str | None = None
    mode: DequeueMode = DequeueMode.SKIP_LOCKED
    #: how many removed elements to retain for Read/Rereceive
    archive_limit: int = 1024
    #: count dequeue *attempts* durably so that even crash-aborts are
    #: bounded (extension beyond the paper's explicit-abort counting)
    count_crash_attempts: bool = False
    #: header names to hash-index for O(1) content-based retrieval
    #: (Section 10); e.g. ["rid"] lets cancellation find a request
    #: without scanning the queue
    index_headers: tuple[str, ...] = ()

    def to_record(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "max_aborts": self.max_aborts,
            "error_queue": self.error_queue,
            "mode": self.mode.value,
            "archive_limit": self.archive_limit,
            "count_crash_attempts": self.count_crash_attempts,
            "index_headers": list(self.index_headers),
        }

    @classmethod
    def from_record(cls, record: dict[str, Any]) -> "QueueConfig":
        return cls(
            name=record["name"],
            max_aborts=record["max_aborts"],
            error_queue=record["error_queue"],
            mode=DequeueMode(record["mode"]),
            archive_limit=record["archive_limit"],
            count_crash_attempts=record["count_crash_attempts"],
            index_headers=tuple(record.get("index_headers", ())),
        )


@dataclass
class _Slot:
    element: Element
    state: ElementState
    pending_txn: int | None = None
    #: monotonic time the element became visible (enqueue committed);
    #: volatile only — recovered slots have no stamp, so their age is
    #: unknown rather than measured from the restart
    visible_at: float | None = None


class RecoverableQueue:
    """A recoverable queue; a resource manager of its repository."""

    def __init__(self, config: QueueConfig, repo: "QueueRepository"):
        self.config = config
        self.repo = repo
        self.rm_name = f"q:{config.name}"
        self._slots: OrderedDict[int, _Slot] = OrderedDict()
        #: removed elements retained for Read after dequeue (bounded)
        self._archive: OrderedDict[int, Element] = OrderedDict()
        #: (sort_key, eid) kept sorted; stale entries skipped lazily.
        #: Only the fallback scan path (STRICT mode, content selectors)
        #: reads it.
        self._order: list[tuple[tuple[int, int], int]] = []
        #: ready index: a (sort_key, eid) heap holding exactly the
        #: AVAILABLE slots (plus lazily-deleted stale entries), pushed
        #: on every transition *into* AVAILABLE — enqueue-commit,
        #: dequeue-abort return, recovery redo/restore — so the
        #: skip-locked no-selector dequeue selects in O(log n) no
        #: matter how many elements are pending
        self._ready: list[tuple[tuple[int, int], int]] = []
        self._mutex = threading.RLock()
        self._cond = threading.Condition(self._mutex)
        self._next_seq = 1
        self.stopped = False
        #: maintained counts by slot state — ``depth()``/``pending()``
        #: back per-op gauges, so they must stay O(1), not scans
        self._n_available = 0
        self._n_pending = 0
        #: hash index: header name -> header value -> set of eids.
        #: Section 10: content-based scheduling "usually requires a QM
        #: with content-based retrieval capability" — this provides it
        #: in O(1) for the headers named in ``config.index_headers``.
        self._header_index: dict[str, dict[Any, set[int]]] = {
            h: {} for h in config.index_headers
        }
        #: callbacks fired (outside the mutex) when an enqueue commits:
        #: used by alert thresholds, redirection, and triggers
        self._on_visible: list[Callable[["RecoverableQueue", Element], None]] = []
        #: benchmark counters
        self.enqueues = 0
        self.dequeues = 0
        self.dequeue_aborts = 0
        self.skipped_locked = 0
        # -- observability (cached children; no-ops when disabled) -----
        obs = repo.obs
        self._obs_on = obs.enabled
        metrics = obs.metrics
        labels = {"queue": config.name}
        self._m_enqueues = metrics.counter(
            "queue_enqueues_total", "elements enqueued", ("queue",)
        ).labels(**labels)
        self._m_dequeues = metrics.counter(
            "queue_dequeues_total", "elements dequeued", ("queue",)
        ).labels(**labels)
        self._m_deq_aborts = metrics.counter(
            "queue_dequeue_aborts_total",
            "dequeues undone by transaction abort (retries)", ("queue",)
        ).labels(**labels)
        self._m_skip_locked = metrics.counter(
            "queue_skip_locked_total",
            "elements passed over because another dequeue holds them", ("queue",)
        ).labels(**labels)
        self._m_error_moves = metrics.counter(
            "queue_error_moves_total",
            "elements moved to the error queue (Section 4.2 bound)", ("queue",)
        ).labels(**labels)
        self._m_kills = metrics.counter(
            "queue_kills_total", "elements deleted by Kill_element", ("queue",)
        ).labels(**labels)
        self._m_age = metrics.histogram(
            "queue_age_seconds",
            "end-to-end element age: enqueue visibility to dequeue "
            "selection (the paper's request-latency figure)", ("queue",),
            buckets=(0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
                     0.1, 0.25, 0.5, 1.0, 5.0, 15.0, 60.0, 300.0),
        ).labels(**labels)
        self._m_select = metrics.histogram(
            "queue_select_seconds",
            "time spent choosing the next eligible element inside "
            "dequeue (the hot-path scan this queue's ready index "
            "replaces)", ("queue",),
            buckets=(0.000001, 0.000005, 0.00001, 0.00005, 0.0001,
                     0.0005, 0.001, 0.005, 0.01, 0.05, 0.1),
        ).labels(**labels)
        depth_gauge = metrics.gauge(
            "queue_depth", "committed, eligible elements", ("queue",)
        ).labels(**labels)
        pending_gauge = metrics.gauge(
            "queue_pending", "elements held by uncommitted transactions", ("queue",)
        ).labels(**labels)
        if self._obs_on:
            # Sampled lazily at snapshot time: the hot path pays nothing.
            depth_gauge.set_function(self.depth)
            pending_gauge.set_function(self.pending)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def name(self) -> str:
        return self.config.name

    def depth(self) -> int:
        """Number of committed, eligible elements.  O(1)."""
        with self._mutex:
            return self._n_available

    def pending(self) -> int:
        """Number of elements held by uncommitted transactions.  O(1)."""
        with self._mutex:
            return self._n_pending

    def _count(self, state: ElementState, delta: int) -> None:
        """Adjust the maintained counters for a slot entering (+1) or
        leaving (-1) ``state``.  Callers hold ``_mutex``."""
        if state is ElementState.AVAILABLE:
            self._n_available += delta
        else:
            self._n_pending += delta

    def eids(self) -> list[int]:
        with self._mutex:
            return list(self._slots.keys())

    def subscribe_visible(
        self, callback: Callable[["RecoverableQueue", Element], None]
    ) -> None:
        """Register a callback fired whenever an element becomes visible
        (enqueue committed).  Powers Section 9's alert thresholds /
        redirection / start-on-arrival triggers."""
        self._on_visible.append(callback)

    # ------------------------------------------------------------------
    # Data definition
    # ------------------------------------------------------------------

    def stop(self) -> None:
        """Stop the queue: operations raise until started again.
        Blocked dequeuers wake promptly and raise."""
        with self._cond:
            self.stopped = True
            self._cond.notify_all()

    def start(self) -> None:
        with self._cond:
            self.stopped = False
            self._cond.notify_all()

    def _check_started(self) -> None:
        if self.stopped:
            raise QueueStoppedError(f"queue {self.name!r} is stopped")

    # ------------------------------------------------------------------
    # Header index (content-based retrieval, Section 10)
    # ------------------------------------------------------------------

    def _index_add(self, element: Element) -> None:
        for header, buckets in self._header_index.items():
            value = element.headers.get(header)
            if value is not None:
                try:
                    buckets.setdefault(value, set()).add(element.eid)
                except TypeError:  # unhashable header value: not indexed
                    continue

    def _index_remove(self, element: Element) -> None:
        for header, buckets in self._header_index.items():
            value = element.headers.get(header)
            if value is None:
                continue
            try:
                bucket = buckets.get(value)
            except TypeError:
                continue
            if bucket is not None:
                bucket.discard(element.eid)
                if not bucket:
                    buckets.pop(value, None)

    def find_by_header(self, header: str, value: Any) -> list[int]:
        """Eids of committed-or-pending elements whose ``header`` equals
        ``value``.  O(1) when ``header`` is in ``config.index_headers``,
        otherwise a scan."""
        with self._mutex:
            buckets = self._header_index.get(header)
            if buckets is not None:
                return sorted(buckets.get(value, ()))
            return sorted(
                eid
                for eid, slot in self._slots.items()
                if slot.element.headers.get(header) == value
            )

    def browse(self) -> list[Element]:
        """Snapshot of committed elements in dequeue order without
        consuming them (IMS-style browse / Get-Next)."""
        with self._mutex:
            ordered = sorted(
                (s.element for s in self._slots.values()
                 if s.state is ElementState.AVAILABLE),
                key=Element.sort_key,
            )
            return [e.copy() for e in ordered]

    # ------------------------------------------------------------------
    # Enqueue
    # ------------------------------------------------------------------

    def enqueue(
        self,
        txn: Transaction,
        body: Any,
        *,
        priority: int = 0,
        headers: dict[str, Any] | None = None,
        eid: int | None = None,
    ) -> int:
        """Enqueue ``body``; visible when ``txn`` commits.

        ``eid`` is normally allocated by the repository; passing one
        explicitly preserves element identity across queue moves
        (error-queue moves, redirection — Section 10)."""
        self._check_started()
        txn.require_active()
        if eid is None:
            eid = self.repo.alloc_eid()
        self.repo.injector.reach(f"queue.{self.name}.enqueue.before_log")
        with self._mutex:
            element = Element(
                eid=eid,
                body=body,
                priority=priority,
                enqueue_seq=self._next_seq,
                headers=dict(headers or {}),
            )
            self._next_seq += 1
            txn.log_update(self.rm_name, {"op": "enq", "el": element.to_record()})
            self._slots[eid] = _Slot(element, ElementState.ENQ_PENDING, txn.id)
            self._count(ElementState.ENQ_PENDING, +1)
            self._index_add(element)
            bisect.insort(self._order, (element.sort_key(), eid))
        txn.add_undo(lambda: self._discard_slot(eid))
        txn.on_commit(lambda: self._commit_enqueue(eid))
        self.repo.injector.reach(f"queue.{self.name}.enqueue.after_log")
        self.enqueues += 1
        self._m_enqueues.inc()
        return eid

    def _discard_slot(self, eid: int) -> None:
        with self._mutex:
            slot = self._slots.pop(eid, None)
            if slot is not None:
                self._count(slot.state, -1)
                self._index_remove(slot.element)

    def _commit_enqueue(self, eid: int) -> None:
        with self._cond:
            slot = self._slots.get(eid)
            if slot is None:  # killed before the hook ran
                return
            self._count(slot.state, -1)
            slot.state = ElementState.AVAILABLE
            self._count(ElementState.AVAILABLE, +1)
            slot.pending_txn = None
            heapq.heappush(self._ready, (slot.element.sort_key(), eid))
            if self._obs_on:
                slot.visible_at = _time.monotonic()
            element = slot.element.copy()
            self._cond.notify_all()
        for callback in self._on_visible:
            callback(self, element)

    # ------------------------------------------------------------------
    # Dequeue
    # ------------------------------------------------------------------

    def dequeue(
        self,
        txn: Transaction,
        *,
        selector: Callable[[Element], bool] | None = None,
        block: bool = False,
        timeout: float | None = None,
        error_queue: str | None = None,
    ) -> Element:
        """Remove and return the next eligible element within ``txn``.

        Eligibility order: priority desc, then FIFO; ``selector``
        restricts by content (Section 10's content-based retrieval).
        ``block=True`` waits for an element (the "notify lock" of
        Section 10) up to ``timeout`` seconds.

        On abort the element returns to the queue; its ``max_aborts``-th
        abort moves it to ``error_queue`` (argument overrides the queue
        config, mirroring the ``eh`` parameter of Figure 3's Dequeue).
        """
        self._check_started()
        txn.require_active()
        deadline = None if timeout is None else _time.monotonic() + timeout
        with self._cond:
            while True:
                if self._obs_on:
                    select_started = _time.perf_counter()
                    slot = self._select_slot(txn, selector)
                    self._m_select.observe(
                        _time.perf_counter() - select_started
                    )
                else:
                    slot = self._select_slot(txn, selector)
                if slot is not None:
                    break
                if not block:
                    raise QueueEmpty(f"queue {self.name!r} has no eligible element")
                remaining = None if deadline is None else deadline - _time.monotonic()
                if remaining is not None and remaining <= 0:
                    raise QueueEmpty(
                        f"queue {self.name!r}: no element within {timeout}s"
                    )
                # Wait for a notify: element visible (_commit_enqueue),
                # element returned (_return_slot), start(), or stop().
                # No polling — waiters wake promptly and idle CPU is nil.
                self._cond.wait(timeout=remaining)
                self._check_started()
            eid = slot.element.eid
            if self._obs_on and slot.visible_at is not None:
                # Age since first visibility: a dequeue-abort round trip
                # keeps the original stamp, so retries age the element.
                self._m_age.observe(_time.monotonic() - slot.visible_at)
            self.repo.injector.reach(f"queue.{self.name}.dequeue.before_log")
            txn.log_update(self.rm_name, {"op": "deq", "eid": eid})
            self._count(slot.state, -1)
            slot.state = ElementState.DEQ_PENDING
            self._count(ElementState.DEQ_PENDING, +1)
            slot.pending_txn = txn.id
            element = slot.element.copy()
        if self.config.count_crash_attempts:
            self._bump_abort_count(eid, crash_attempt=True)
        txn.add_undo(lambda: self._return_slot(eid))
        txn.on_commit(lambda: self._commit_dequeue(eid))
        txn.on_abort(lambda: self._after_dequeue_abort(eid, error_queue))
        self.repo.injector.reach(f"queue.{self.name}.dequeue.after_log")
        self.dequeues += 1
        self._m_dequeues.inc()
        return element

    def _select_slot(
        self, txn: Transaction, selector: Callable[[Element], bool] | None
    ) -> _Slot | None:
        """First eligible slot in order.

        Routing: the skip-locked no-selector hot path reads the ready
        index in O(log n); skip-locked equality selectors over an
        indexed header read the O(1) ``_header_index`` bucket; STRICT
        mode and content selectors keep the correct full scan.  All
        paths choose the same element for the same queue state — the
        property test in ``tests/queueing/test_ready_index.py`` pins
        that equivalence.

        STRICT mode raises :class:`ElementLockedError` if the first
        committed element is pending in another transaction and a later
        one would otherwise be taken."""
        if self.config.mode is DequeueMode.SKIP_LOCKED:
            if selector is None:
                return self._select_ready()
            indexed = getattr(selector, "header_equals", None)
            if indexed is not None and indexed[0] in self._header_index:
                return self._select_indexed(selector, *indexed)
        return self._select_scan(txn, selector)

    def _select_ready(self) -> _Slot | None:
        """Skip-locked fast path: peek the best valid ready-index entry.

        The chosen entry is deliberately *not* popped — the caller's
        ``log_update`` may still fail, and the entry only goes stale
        once the slot actually leaves AVAILABLE.  Stale entries (slot
        gone, re-keyed, or no longer AVAILABLE) are popped lazily;
        passing over an uncommitted dequeue's entry is exactly the
        Section 10 skip, so it is counted as one."""
        ready = self._ready
        slots = self._slots
        while ready:
            key, eid = ready[0]
            slot = slots.get(eid)
            if slot is not None and slot.element.sort_key() == key:
                if slot.state is ElementState.AVAILABLE:
                    return slot
                if slot.state is ElementState.DEQ_PENDING:
                    self.skipped_locked += 1
                    self._m_skip_locked.inc()
            heapq.heappop(ready)
        return None

    def _select_indexed(
        self,
        selector: Callable[[Element], bool],
        header: str,
        value: Any,
    ) -> _Slot | None:
        """Skip-locked equality selector over an indexed header: pick
        the best AVAILABLE element of the O(1) hash bucket instead of
        scanning the whole queue.  Pass-overs are counted for the
        bucket's own pending elements that sort before the choice (the
        scan would also have skipped pending non-matching elements;
        the bucket cannot see those)."""
        try:
            bucket = self._header_index[header].get(value)
        except TypeError:  # unhashable selector value: nothing indexed
            return None
        if not bucket:
            return None
        chosen: _Slot | None = None
        chosen_key: tuple[int, int] | None = None
        pending_keys: list[tuple[int, int]] = []
        for eid in bucket:
            slot = self._slots.get(eid)
            if slot is None:
                continue
            if slot.state is ElementState.ENQ_PENDING:
                continue  # uncommitted enqueue: invisible
            key = slot.element.sort_key()
            if slot.state is ElementState.DEQ_PENDING:
                pending_keys.append(key)
                continue
            if not selector(slot.element):
                continue
            if chosen_key is None or key < chosen_key:
                chosen, chosen_key = slot, key
        skipped = sum(
            1 for key in pending_keys
            if chosen_key is None or key < chosen_key
        )
        if skipped:
            self.skipped_locked += skipped
            self._m_skip_locked.inc(skipped)
        return chosen

    def _select_scan(
        self, txn: Transaction, selector: Callable[[Element], bool] | None
    ) -> _Slot | None:
        """The fallback full scan (STRICT mode, content selectors);
        prunes stale order entries as it goes."""
        stale: list[int] = []
        chosen: _Slot | None = None
        for index, (key, eid) in enumerate(self._order):
            slot = self._slots.get(eid)
            if slot is None or slot.element.sort_key() != key:
                stale.append(index)
                continue
            if slot.state is ElementState.ENQ_PENDING:
                continue  # uncommitted enqueue: invisible
            if slot.state is ElementState.DEQ_PENDING:
                if self.config.mode is DequeueMode.STRICT:
                    raise ElementLockedError(
                        f"queue {self.name!r}: head element {eid} is held by "
                        f"uncommitted transaction {slot.pending_txn}"
                    )
                self.skipped_locked += 1
                self._m_skip_locked.inc()
                continue
            if selector is not None and not selector(slot.element):
                continue
            chosen = slot
            break
        if len(stale) >= _STALE_COMPACT_THRESHOLD:
            # Single-pass filtered rebuild: deleting k entries in place
            # is O(k * n); one copy is O(n).
            dead = set(stale)
            self._order = [
                entry for index, entry in enumerate(self._order)
                if index not in dead
            ]
        else:
            for index in reversed(stale):
                del self._order[index]
        return chosen

    def _return_slot(self, eid: int) -> None:
        """Undo of a dequeue: the element becomes available again."""
        with self._cond:
            slot = self._slots.get(eid)
            if slot is not None and slot.state is ElementState.DEQ_PENDING:
                self._count(ElementState.DEQ_PENDING, -1)
                slot.state = ElementState.AVAILABLE
                self._count(ElementState.AVAILABLE, +1)
                slot.pending_txn = None
                heapq.heappush(self._ready, (slot.element.sort_key(), eid))
                self._cond.notify_all()

    def _commit_dequeue(self, eid: int) -> None:
        with self._mutex:
            slot = self._slots.pop(eid, None)
            if slot is not None:
                self._count(slot.state, -1)
                self._index_remove(slot.element)
                self._archive_element(slot.element)

    def _after_dequeue_abort(self, eid: int, error_queue: str | None) -> None:
        """Abort hook: durably count the abort; on the n-th, move the
        element to the error queue (Section 4.2)."""
        self.dequeue_aborts += 1
        self._m_deq_aborts.inc()
        if self.config.count_crash_attempts:
            # The attempt was already counted durably at dequeue time.
            with self._mutex:
                slot = self._slots.get(eid)
                count = slot.element.abort_count if slot is not None else None
        else:
            count = self._bump_abort_count(eid)
        if count is None:
            return
        target_name = error_queue or self.config.error_queue
        if target_name is not None and count >= self.config.max_aborts:
            try:
                self._move_to_error(eid, target_name, count)
            except StorageError:
                # The move runs its own transaction; if storage is
                # failing (the very thing that may have aborted us) the
                # element simply stays in the queue and the move retries
                # after the next abort.  Raising here would propagate
                # out of an abort hook and wedge the aborting caller.
                logger.warning(
                    "queue %r: error-queue move of element %d failed; "
                    "element stays queued", self.name, eid,
                )

    def _bump_abort_count(self, eid: int, crash_attempt: bool = False) -> int | None:
        with self._mutex:
            slot = self._slots.get(eid)
            if slot is None:
                return None
            slot.element.abort_count += 1
            count = slot.element.abort_count
        # Durable independently of any transaction: a retry loop must not
        # reset its own counter by aborting.
        try:
            self.repo.log.log_auto(
                self.rm_name,
                {"op": "abortcount", "eid": eid, "n": count, "crash": crash_attempt},
            )
        except StorageError:
            # Run from abort hooks: must not re-raise (see
            # _after_dequeue_abort).  The volatile count still advanced,
            # so the Section 4.2 bound holds until the next restart; it
            # merely restarts from the last durable value afterwards.
            logger.warning(
                "queue %r: abort-count force for element %d failed",
                self.name, eid,
            )
        return count

    def _move_to_error(self, eid: int, target_name: str, count: int) -> None:
        """Move the element (same eid — identity preserved) to the error
        queue in a fresh internal transaction."""
        target = self.repo.get_queue(target_name)
        with self._mutex:
            slot = self._slots.get(eid)
            if slot is None or slot.state is not ElementState.AVAILABLE:
                return
            element = slot.element.copy()
        with self.repo.tm.transaction() as txn:
            txn.log_update(self.rm_name, {"op": "deq", "eid": eid})
            headers = dict(element.headers)
            headers["abort_code"] = f"aborted {count} times"
            headers["origin_queue"] = self.name
            target.enqueue(
                txn,
                element.body,
                priority=element.priority,
                headers=headers,
                eid=eid,
            )
        with self._mutex:
            slot = self._slots.pop(eid, None)
            if slot is not None:
                self._count(slot.state, -1)
                self._archive_element(slot.element)
        self._m_error_moves.inc()
        logger.warning(
            "queue %r: element %d moved to error queue %r after %d aborts",
            self.name, eid, target_name, count,
        )
        if self._obs_on:
            self.repo.obs.tracer.event(
                "queue.error_move",
                parent=element.headers.get("trace"),
                queue=self.name,
                error_queue=target_name,
                eid=eid,
                aborts=count,
            )

    def sweep_poisoned(self) -> int:
        """Move every available element whose abort count already meets
        ``max_aborts`` to the error queue.  Called by the repository
        after recovery so that crash-attempt counting
        (``count_crash_attempts``) bounds even always-crashing requests.
        Returns the number of elements moved."""
        if self.config.error_queue is None:
            return 0
        with self._mutex:
            poisoned = [
                (s.element.eid, s.element.abort_count)
                for s in self._slots.values()
                if s.state is ElementState.AVAILABLE
                and s.element.abort_count >= self.config.max_aborts
            ]
        for eid, count in poisoned:
            self._move_to_error(eid, self.config.error_queue, count)
        return len(poisoned)

    # ------------------------------------------------------------------
    # Read / Kill_element
    # ------------------------------------------------------------------

    def read(self, eid: int) -> Element:
        """Return the element with ``eid`` without modifying it
        (Figure 3's Read).  Finds committed slots, uncommitted-dequeue
        slots, and recently removed (archived) elements — Section 4.3
        requires Read to work "even if the last operation was a Dequeue"."""
        with self._mutex:
            slot = self._slots.get(eid)
            if slot is not None and slot.state is not ElementState.ENQ_PENDING:
                return slot.element.copy()
            archived = self._archive.get(eid)
            if archived is not None:
                return archived.copy()
        raise NoSuchElementError(f"queue {self.name!r} has no element {eid}")

    def kill_element(self, eid: int) -> bool:
        """Section 7's Kill_element: delete the element if possible.

        * not yet dequeued → durably deleted, returns True;
        * dequeued by an uncommitted transaction → that transaction is
          aborted and the element deleted, returns True;
        * unknown / already consumed → returns False (the request can
          no longer be cancelled this way; see :mod:`repro.core.saga`).
        """
        self._check_started()
        with self._mutex:
            slot = self._slots.get(eid)
            if slot is None:
                return False
            if slot.state is ElementState.ENQ_PENDING:
                raise KillFailedError(
                    f"element {eid} is an uncommitted enqueue; abort its "
                    "transaction instead"
                )
            holder = slot.pending_txn if slot.state is ElementState.DEQ_PENDING else None
        if holder is not None:
            self.repo.tm.abort_by_id(holder, reason=f"kill_element({eid})")
        with self.repo.tm.transaction() as txn:
            with self._mutex:
                slot = self._slots.get(eid)
                if slot is None or slot.state is not ElementState.AVAILABLE:
                    return False
                txn.log_update(self.rm_name, {"op": "deq", "eid": eid})
                removed = self._slots.pop(eid)
                self._count(removed.state, -1)
                self._index_remove(removed.element)
                self._archive_element(removed.element)
        self._m_kills.inc()
        return True

    # ------------------------------------------------------------------
    # Archive
    # ------------------------------------------------------------------

    def _archive_element(self, element: Element) -> None:
        self._archive[element.eid] = element
        self._archive.move_to_end(element.eid)
        while len(self._archive) > self.config.archive_limit:
            self._archive.popitem(last=False)

    # ------------------------------------------------------------------
    # Resource-manager protocol
    # ------------------------------------------------------------------

    def redo(self, data: dict[str, Any]) -> None:
        op = data["op"]
        with self._mutex:
            if op == "enq":
                element = Element.from_record(data["el"])
                previous = self._slots.get(element.eid)
                if previous is not None:
                    self._count(previous.state, -1)
                self._slots[element.eid] = _Slot(element, ElementState.AVAILABLE)
                self._count(ElementState.AVAILABLE, +1)
                self._index_add(element)
                if previous is None:
                    bisect.insort(self._order, (element.sort_key(), element.eid))
                    heapq.heappush(
                        self._ready, (element.sort_key(), element.eid)
                    )
                self._next_seq = max(self._next_seq, element.enqueue_seq + 1)
            elif op == "deq":
                slot = self._slots.pop(data["eid"], None)
                if slot is not None:
                    self._count(slot.state, -1)
                    self._index_remove(slot.element)
                    self._archive_element(slot.element)
            elif op == "abortcount":
                slot = self._slots.get(data["eid"])
                if slot is not None:
                    slot.element.abort_count = max(
                        slot.element.abort_count, data["n"]
                    )
            else:  # pragma: no cover - log corruption guard
                raise ValueError(f"unknown queue redo op {op!r}")

    def snapshot(self) -> Any:
        with self._mutex:
            return {
                "slots": [
                    s.element.to_record()
                    for s in self._slots.values()
                    # Committed view: an uncommitted enqueue is invisible
                    # (if it commits, its `enq` record is above the fuzzy
                    # checkpoint's recovery LSN and gets replayed); an
                    # uncommitted dequeue leaves the element committed-
                    # present, and a later `deq` replay removes it.
                    if s.state is not ElementState.ENQ_PENDING
                ],
                "archive": [e.to_record() for e in self._archive.values()],
                "next_seq": self._next_seq,
            }

    def restore(self, state: Any) -> None:
        with self._mutex:
            self._slots.clear()
            self._order = []
            self._ready = []
            self._archive.clear()
            self._n_available = 0
            self._n_pending = 0
            for buckets in self._header_index.values():
                buckets.clear()
            for record in state["slots"]:
                element = Element.from_record(record)
                self._slots[element.eid] = _Slot(element, ElementState.AVAILABLE)
                self._count(ElementState.AVAILABLE, +1)
                self._index_add(element)
                bisect.insort(self._order, (element.sort_key(), element.eid))
                heapq.heappush(self._ready, (element.sort_key(), element.eid))
            for record in state["archive"]:
                element = Element.from_record(record)
                self._archive[element.eid] = element
            self._next_seq = state["next_seq"]

    def max_eid(self) -> int:
        """Largest eid this queue knows about (repository eid recovery)."""
        with self._mutex:
            eids = list(self._slots.keys()) + list(self._archive.keys())
            return max(eids, default=0)
