"""Volatile queues and the volatile-relay pattern (Section 10).

"A volatile queue is one whose contents is lost by a node failure.
Volatile queues have a useful role in some systems.  For example,
suppose a client redirects its volatile output queue to the volatile
input queue of a server at a different node.  The reliability of the
two volatile queues may be as high as that of a single stable queue."

A :class:`VolatileQueue` supports the same enqueue/dequeue shape as a
recoverable queue but performs no logging; transactional callers still
get abort-undo (in-memory), but a crash empties it.  Benchmark C9
compares throughput and loss against stable queues.
"""

from __future__ import annotations

import threading
import time as _time
from typing import Any, Callable

from repro.errors import QueueEmpty
from repro.queueing.element import Element
from repro.transaction.manager import Transaction


class VolatileQueue:
    """An in-memory queue with transactional visibility but no
    durability."""

    def __init__(self, name: str):
        self.name = name
        self._mutex = threading.RLock()
        self._cond = threading.Condition(self._mutex)
        #: committed elements, FIFO within priority
        self._elements: list[Element] = []
        self._next_seq = 1
        self._next_eid = 1
        self.enqueues = 0
        self.dequeues = 0

    def depth(self) -> int:
        with self._mutex:
            return len(self._elements)

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------

    def enqueue(
        self,
        txn: Transaction | None,
        body: Any,
        *,
        priority: int = 0,
        headers: dict[str, Any] | None = None,
    ) -> int:
        """Visible at commit (or immediately when ``txn`` is None)."""
        with self._mutex:
            element = Element(
                eid=self._next_eid,
                body=body,
                priority=priority,
                enqueue_seq=self._next_seq,
                headers=dict(headers or {}),
            )
            self._next_eid += 1
            self._next_seq += 1
        self.enqueues += 1
        if txn is None:
            self._insert(element)
        else:
            txn.on_commit(lambda: self._insert(element))
        return element.eid

    def _insert(self, element: Element) -> None:
        with self._cond:
            self._elements.append(element)
            self._elements.sort(key=Element.sort_key)
            self._cond.notify_all()

    def dequeue(
        self,
        txn: Transaction | None = None,
        *,
        selector: Callable[[Element], bool] | None = None,
        block: bool = False,
        timeout: float | None = None,
    ) -> Element:
        """Remove the next element; an aborting transaction puts it
        back (in-memory undo only)."""
        deadline = None if timeout is None else _time.monotonic() + timeout
        with self._cond:
            while True:
                index = self._find(selector)
                if index is not None:
                    element = self._elements.pop(index)
                    break
                if not block:
                    raise QueueEmpty(f"volatile queue {self.name!r} is empty")
                remaining = None if deadline is None else deadline - _time.monotonic()
                if remaining is not None and remaining <= 0:
                    raise QueueEmpty(
                        f"volatile queue {self.name!r}: no element within {timeout}s"
                    )
                self._cond.wait(timeout=0.05 if remaining is None else min(remaining, 0.05))
        self.dequeues += 1
        if txn is not None:
            txn.add_undo(lambda: self._insert(element))
        return element

    def _find(self, selector: Callable[[Element], bool] | None) -> int | None:
        for index, element in enumerate(self._elements):
            if selector is None or selector(element):
                return index
        return None

    def drain(self) -> list[Element]:
        """Remove and return everything (relay transfer)."""
        with self._mutex:
            elements, self._elements = self._elements, []
            return elements

    # ------------------------------------------------------------------
    # Crash semantics
    # ------------------------------------------------------------------

    def crash(self) -> int:
        """Simulate node failure: contents are lost.  Returns how many
        elements vanished (benchmark C9 counts them)."""
        with self._mutex:
            lost = len(self._elements)
            self._elements.clear()
            return lost


class VolatileRelay:
    """Section 10's volatile-to-volatile relay.

    Moves elements from a client-side volatile output queue to a
    server-side volatile input queue.  An element survives iff it is
    relayed before either side crashes; the *pair* behaves like one
    queue whose reliability window is the relay interval.
    """

    def __init__(self, source: VolatileQueue, target: VolatileQueue):
        self.source = source
        self.target = target
        self.relayed = 0

    def pump(self, limit: int | None = None) -> int:
        """Move up to ``limit`` elements (all, when None); returns the
        number moved."""
        moved = 0
        while limit is None or moved < limit:
            try:
                element = self.source.dequeue()
            except QueueEmpty:
                break
            self.target.enqueue(
                None,
                element.body,
                priority=element.priority,
                headers=element.headers,
            )
            moved += 1
        self.relayed += moved
        return moved
