"""Replicated queues — Section 10.

"Queue replication can be made explicit.  Indeed, given the importance
of reliably managing requests in a distributed system, queues are a
good candidate for being stored as a replicated database that
guarantees one-copy serializability, despite the cost of such strong
synchronization."

:class:`ReplicatedQueue` keeps one logical queue on two repositories
(nodes).  Every write — enqueue, dequeue, kill — runs as a global
transaction over both replicas under two-phase commit, which is exactly
the "strong synchronization" whose cost the paper warns about (the
extension benchmark X2 measures it).  Reads are served by the primary.

Cross-replica element identity: eids are per-repository, so the
logical identity is a *replication key* carried in the element headers
(``"rkey"``); the secondary's dequeue selects by the key the primary's
dequeue chose, keeping the replicas element-for-element identical.

Failure handling:

* a crash of either node mid-commit leaves an in-doubt branch that
  restart recovery resolves through the coordinator's durable decision
  (presumed abort) — after resolution the replicas are identical again;
* :meth:`failover` swaps the roles, so a surviving replica serves reads
  and writes alone (in degraded, unreplicated mode) until the peer is
  reattached via :meth:`resync`.

This is the *per-queue, strong-sync* end of the replication spectrum:
every write pays a 2PC round (two log forces plus the coordinator's
decision record — X2's measured cost) to keep both replicas
transactionally identical at all times.  The other end is
:mod:`repro.replication` — *per-shard primary/backup via WAL log
shipping* — where the primary commits locally (one force) and the
shipped record stream keeps a warm standby ready to promote, at the
cost of a failover step (epoch-fenced promotion plus client resync)
instead of an always-consistent peer.  Use :class:`ReplicatedQueue`
when a single queue must survive a node loss with zero promotion
window; use log shipping when whole-node redundancy should not tax
every commit (``BENCH_failover.json`` holds the shipping overhead and
RTO numbers next to X2's 2PC cost).
"""

from __future__ import annotations

import itertools
import threading
from typing import Any, Callable

from repro.queueing.element import Element
from repro.queueing.queue import RecoverableQueue
from repro.queueing.repository import QueueRepository
from repro.transaction.twophase import TwoPhaseCoordinator


class ReplicatedQueue:
    """A logical queue mirrored on two repositories."""

    def __init__(
        self,
        name: str,
        primary: QueueRepository,
        secondary: QueueRepository,
        coordinator: TwoPhaseCoordinator,
    ):
        self.name = name
        self.primary = primary
        self.secondary = secondary
        self.coordinator = coordinator
        for repo in (primary, secondary):
            if name not in repo.queues:
                repo.create_queue(name)
        self._rkey = itertools.count(1)
        self._mutex = threading.Lock()
        #: True while the secondary is detached (degraded mode)
        self.degraded = False
        self.writes = 0

    # -- replica access -----------------------------------------------------

    def _queues(self) -> tuple[RecoverableQueue, RecoverableQueue | None]:
        primary = self.primary.get_queue(self.name)
        secondary = None if self.degraded else self.secondary.get_queue(self.name)
        return primary, secondary

    def depth(self) -> int:
        return self.primary.get_queue(self.name).depth()

    def replica_depths(self) -> tuple[int, int]:
        return (
            self.primary.get_queue(self.name).depth(),
            self.secondary.get_queue(self.name).depth(),
        )

    # -- writes (2PC over both replicas) --------------------------------------

    def _two_phase(self, apply: Callable[..., Any]) -> Any:
        """Run ``apply(txn_primary, txn_secondary)`` under 2PC (or a
        single local transaction in degraded mode)."""
        self.writes += 1
        if self.degraded:
            with self.primary.tm.transaction() as txn:
                return apply(txn, None)
        txn_p = self.primary.tm.begin()
        txn_s = self.secondary.tm.begin()
        try:
            result = apply(txn_p, txn_s)
        except BaseException as exc:
            from repro.errors import SimulatedCrash

            if not isinstance(exc, SimulatedCrash):
                for tm, txn in ((self.primary.tm, txn_p), (self.secondary.tm, txn_s)):
                    if not txn.status.terminal:
                        tm.abort(txn, "replicated write failed")
            raise
        decision = self.coordinator.commit(
            [(self.primary.tm, txn_p), (self.secondary.tm, txn_s)]
        )
        if decision != "commit":  # pragma: no cover - veto path is exceptional
            from repro.errors import TwoPhaseCommitError

            raise TwoPhaseCommitError(f"replicated write to {self.name!r} aborted")
        return result

    def enqueue(
        self,
        body: Any,
        *,
        priority: int = 0,
        headers: dict[str, Any] | None = None,
    ) -> int:
        """Enqueue on both replicas; returns the replication key."""
        with self._mutex:
            rkey = next(self._rkey)
        stamped = dict(headers or {})
        stamped["rkey"] = rkey

        def apply(txn_p, txn_s):
            primary, secondary = self._queues()
            primary.enqueue(txn_p, body, priority=priority, headers=stamped)
            if secondary is not None:
                secondary.enqueue(txn_s, body, priority=priority, headers=stamped)
            return rkey

        return self._two_phase(apply)

    def dequeue(self, selector: Callable[[Element], bool] | None = None) -> Element:
        """Dequeue the same logical element from both replicas."""

        def apply(txn_p, txn_s):
            primary, secondary = self._queues()
            element = primary.dequeue(txn_p, selector=selector)
            if secondary is not None:
                rkey = element.headers["rkey"]
                secondary.dequeue(
                    txn_s, selector=lambda e: e.headers.get("rkey") == rkey
                )
            return element

        return self._two_phase(apply)

    # -- failover ---------------------------------------------------------------

    def failover(self) -> None:
        """The primary is gone: promote the secondary and run degraded."""
        self.primary, self.secondary = self.secondary, self.primary
        self.degraded = True

    def resync(self, recovered: QueueRepository) -> int:
        """Reattach a recovered peer as the new secondary, copying any
        elements it missed while we ran degraded.  Returns the number of
        elements copied."""
        self.secondary = recovered
        if self.name not in recovered.queues:
            recovered.create_queue(self.name)
        primary_queue = self.primary.get_queue(self.name)
        secondary_queue = recovered.get_queue(self.name)
        have = set()
        for eid in secondary_queue.eids():
            try:
                have.add(secondary_queue.read(eid).headers.get("rkey"))
            except Exception:
                continue
        copied = 0
        for eid in primary_queue.eids():
            element = primary_queue.read(eid)
            rkey = element.headers.get("rkey")
            if rkey in have:
                continue
            with recovered.tm.transaction() as txn:
                secondary_queue.enqueue(
                    txn,
                    element.body,
                    priority=element.priority,
                    headers=element.headers,
                )
            copied += 1
        # Remove elements the secondary has that the primary consumed
        # while degraded.
        want = set()
        for eid in primary_queue.eids():
            want.add(primary_queue.read(eid).headers.get("rkey"))
        for eid in list(secondary_queue.eids()):
            element = secondary_queue.read(eid)
            if element.headers.get("rkey") not in want:
                secondary_queue.kill_element(eid)
        self.degraded = False
        return copied

    def consistent(self) -> bool:
        """True iff both replicas hold exactly the same logical
        elements (by replication key)."""
        primary = self.primary.get_queue(self.name)
        secondary = self.secondary.get_queue(self.name)

        def keys(queue):
            out = []
            for eid in queue.eids():
                out.append(queue.read(eid).headers.get("rkey"))
            return sorted(out)

        return keys(primary) == keys(secondary)
