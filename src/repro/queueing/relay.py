"""Store-and-forward relay between repositories — Section 1.

"If a client enqueues its requests to a local queue, and periodically
moves its local requests to the remote input queue of a server process,
then the server appears to provide a reliable service to the client
even if the client and server nodes are frequently partitioned by
communication failures."

:class:`StableRelay` moves elements from a queue on one repository
(the client's node) to a queue on another (the server's node).  The
two nodes fail independently and the link between them may be
partitioned, so the transfer cannot be a single transaction; instead
the relay is **at-least-once with remote deduplication**:

1. read (not dequeue) the next local element;
2. enqueue it remotely, tagged with a *relay key*, inside a remote
   transaction that also records the key in a durable dedup table —
   a duplicate key makes the enqueue a no-op;
3. only then dequeue the local element (its own local transaction).

A crash or partition between steps re-sends the element later; the
dedup table makes the retry harmless, so the end-to-end effect is
exactly-once — the same argument as the paper's request protocol, one
level down.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import PartitionedError, QueueEmpty
from repro.queueing.repository import QueueRepository


class StableRelay:
    """Exactly-once element transfer between two repositories."""

    def __init__(
        self,
        source_repo: QueueRepository,
        source_queue: str,
        target_repo: QueueRepository,
        target_queue: str,
        *,
        link_up: Callable[[], bool] | None = None,
    ):
        self.source_repo = source_repo
        self.source_queue = source_queue
        self.target_repo = target_repo
        self.target_queue = target_queue
        #: connectivity probe; None means always connected
        self.link_up = link_up
        #: durable dedup table on the TARGET node
        self.seen = target_repo.create_table(f"{target_queue}.relay_dedup")
        self.forwarded = 0
        self.duplicates_suppressed = 0

    def _relay_key(self, eid: int) -> str:
        return f"{self.source_repo.name}/{self.source_queue}/{eid}"

    def pump_one(self) -> bool:
        """Move one element; returns False when the local queue is
        empty.  Raises :class:`PartitionedError` when the link is down
        (the caller retries after the partition heals)."""
        if self.link_up is not None and not self.link_up():
            raise PartitionedError(
                f"link {self.source_repo.name} -> {self.target_repo.name} is down"
            )
        source = self.source_repo.get_queue(self.source_queue)
        eids = source.eids()
        element = None
        for eid in eids:
            try:
                candidate = source.read(eid)
            except Exception:
                continue
            element = candidate
            break
        if element is None:
            return False

        key = self._relay_key(element.eid)
        # Step 2: remote enqueue + dedup mark, one remote transaction.
        target = self.target_repo.get_queue(self.target_queue)
        with self.target_repo.tm.transaction() as txn:
            if self.seen.get(txn, key):
                self.duplicates_suppressed += 1
            else:
                headers = dict(element.headers)
                headers["relay_key"] = key
                target.enqueue(
                    txn, element.body, priority=element.priority, headers=headers
                )
                self.seen.put(txn, key, True)
        # Step 3: local dequeue (safe to crash before this — the dedup
        # table absorbs the re-send).
        with self.source_repo.tm.transaction() as txn:
            source.dequeue(txn, selector=lambda e: e.eid == element.eid)
        self.forwarded += 1
        return True

    def pump(self, limit: int | None = None) -> int:
        """Move up to ``limit`` elements (all when None); returns how
        many moved.  Stops silently at a partition."""
        moved = 0
        while limit is None or moved < limit:
            try:
                if not self.pump_one():
                    break
            except PartitionedError:
                break
            except QueueEmpty:  # pragma: no cover - raced with a consumer
                break
            moved += 1
        return moved

    def backlog(self) -> int:
        """Elements still waiting on the client's node."""
        return self.source_repo.get_queue(self.source_queue).depth()
