"""Sharded queue repositories: N units of failure behind one facade.

The paper's repository (Section 4.1) is the unit of failure and
recovery — one disk, one shared log, one lock manager.  That unit is
also a throughput ceiling: every queue in the system serializes behind
one WAL force.  :class:`ShardedRepository` multiplies the unit instead
of stretching it: it owns **N independent** :class:`QueueRepository`
shards — each with its own disk, WAL, lock manager, transaction
manager, registration table and group committer — and routes every
named object (queue, table) to one owning shard via a pluggable
:class:`~repro.queueing.placement.PlacementPolicy`.

Layering (see ``docs/architecture.md``)::

    QueueManager / Server / Clerk
        │  names (queue, table) + transactions
        ▼
    ShardedRepository ── PlacementPolicy: name -> shard
        │  shard-bound views resolve RoutedTransaction -> branch
        ▼
    QueueRepository × N ── per-shard WAL, locks, TM, group commit

Transactions come from a
:class:`~repro.transaction.routing.ShardedTransactionManager`: they
open a branch on a shard the first time an operation touches it.  A
transaction that stays on one shard commits with that shard's ordinary
single log force; one that spans shards is automatically promoted to
presumed-abort two-phase commit, with the first-touched shard's
coordinator logging the decision.  Coordinator global-ids embed a
durable per-shard *epoch* (an auto record under the pseudo-RM
``"_shards"``) so ids never collide with decision records from before
a restart.

**Placement is volatile; location is durable.**  Each shard's log fully
describes the queues it owns, so restart recovery is shard-local (and
runs in parallel when no fault injector is attached — determinism under
injection requires sequential recovery).  Routing consults actual
location first and the placement policy only for names that do not
exist anywhere yet; co-location pins (an error queue must live on its
source queue's shard, because dead-letter moves happen inside one shard
transaction) therefore survive restarts for free.

With ``N=1`` the facade is a pure passthrough: same repository name,
same log layout, same plain :class:`TransactionManager` — behaviour-
and byte-compatible with using :class:`QueueRepository` directly.
"""

from __future__ import annotations

import threading
from collections.abc import Mapping
from time import perf_counter as _perf_counter
from typing import Any, Iterator

from repro.errors import NoSuchQueueError, QueueExistsError
from repro.obs import Observability, get_observability
from repro.queueing.placement import ConsistentHashPlacement, PlacementPolicy
from repro.queueing.queue import RecoverableQueue
from repro.queueing.repository import QueueRepository
from repro.sim.crash import NULL_INJECTOR, FaultInjector
from repro.storage.disk import Disk, MemDisk
from repro.storage.groupcommit import GroupCommitConfig
from repro.storage.kvstore import KVStore
from repro.transaction.log import LogManager
from repro.transaction.routing import RoutedTransaction, ShardedTransactionManager
from repro.transaction.twophase import TwoPhaseCoordinator

#: pseudo-RM of the durable coordinator-epoch records (tracked by each
#: shard's :class:`~repro.queueing.repository._EpochRM`, so checkpoints
#: preserve the high-water mark across segment GC)
EPOCH_RM = "_shards"


def shard_txn(txn: Any, shard: int) -> Any:
    """Resolve ``txn`` to its branch on ``shard``.

    Routed transactions open (or reuse) their branch on the shard's
    transaction manager; plain shard-level transactions pass through
    untouched, so callers holding a branch can use the views directly.
    """
    if isinstance(txn, RoutedTransaction):
        return txn.branch_for(shard)
    return txn


class ShardQueueView:
    """A queue as seen through the facade: transactional operations
    resolve the caller's routed transaction to this shard's branch;
    everything else passes straight through to the real queue."""

    _TXN_METHODS = frozenset({"enqueue", "dequeue"})

    def __init__(self, queue: RecoverableQueue, shard: int):
        self._queue = queue
        self.shard_index = shard

    def __getattr__(self, attr: str) -> Any:
        target = getattr(self._queue, attr)
        if attr in self._TXN_METHODS:
            shard = self.shard_index

            def routed(txn: Any, *args: Any, **kwargs: Any) -> Any:
                return target(shard_txn(txn, shard), *args, **kwargs)

            return routed
        return target

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ShardQueueView({self._queue.name!r}, shard={self.shard_index})"


class ShardTableView:
    """A KV table view; same branch-resolution contract as
    :class:`ShardQueueView` (``peek``/``size`` stay non-transactional)."""

    _TXN_METHODS = frozenset(
        {"get", "exists", "put", "delete", "update", "scan", "count"}
    )

    def __init__(self, table: KVStore, shard: int):
        self._table = table
        self.shard_index = shard

    def __getattr__(self, attr: str) -> Any:
        target = getattr(self._table, attr)
        if attr in self._TXN_METHODS:
            shard = self.shard_index

            def routed(txn: Any, *args: Any, **kwargs: Any) -> Any:
                return target(shard_txn(txn, shard), *args, **kwargs)

            return routed
        return target


class _RegistrationRouter:
    """Registration facade routing by queue name.

    Registrations live on the shard that owns their queue, so a tagged
    operation's registration update rides the same branch — and the
    same single log force — as the queue operation it describes.
    """

    rm_name = "qreg"

    def __init__(self, repo: "ShardedRepository"):
        self._repo = repo

    def _target(self, queue: str) -> tuple[Any, int]:
        shard = self._repo.shard_of(queue)
        return self._repo.shards[shard].registration, shard

    def register(self, txn: Any, queue: str, registrant: str, stable: bool):
        table, shard = self._target(queue)
        return table.register(shard_txn(txn, shard), queue, registrant, stable)

    def deregister(self, txn: Any, queue: str, registrant: str) -> None:
        table, shard = self._target(queue)
        table.deregister(shard_txn(txn, shard), queue, registrant)

    def record_op(
        self,
        txn: Any,
        queue: str,
        registrant: str,
        op: str,
        tag: Any,
        eid: int,
        element_record: dict[str, Any],
    ) -> None:
        table, shard = self._target(queue)
        table.record_op(
            shard_txn(txn, shard), queue, registrant, op, tag, eid, element_record
        )

    def lookup(self, queue: str, registrant: str):
        return self._target(queue)[0].lookup(queue, registrant)

    def is_registered(self, queue: str, registrant: str) -> bool:
        return self._target(queue)[0].is_registered(queue, registrant)

    def registrants(self, queue: str) -> list[str]:
        return self._target(queue)[0].registrants(queue)


class _CombinedQueues(Mapping):
    """Read-only name → queue-view mapping over every shard.

    Queue names are unique across shards (creation goes through the
    facade), so the union is well-defined.
    """

    def __init__(self, repo: "ShardedRepository"):
        self._repo = repo

    def __getitem__(self, name: str) -> Any:
        located = self._repo._locate_queue(name)
        if located is None:
            raise KeyError(name)
        return self._repo._queue_view(name, located)

    def __iter__(self) -> Iterator[str]:
        for shard in self._repo.shards:
            yield from shard.queues

    def __len__(self) -> int:
        return sum(len(shard.queues) for shard in self._repo.shards)


class _CombinedTables(Mapping):
    """Read-only name → table-view mapping over every shard."""

    def __init__(self, repo: "ShardedRepository"):
        self._repo = repo

    def __getitem__(self, name: str) -> Any:
        for index, shard in enumerate(self._repo.shards):
            if name in shard.tables:
                return ShardTableView(shard.tables[name], index)
        raise KeyError(name)

    def __iter__(self) -> Iterator[str]:
        for shard in self._repo.shards:
            yield from shard.tables

    def __len__(self) -> int:
        return sum(len(shard.tables) for shard in self._repo.shards)


class ShardedRepository:
    """N independent queue repositories behind one repository surface.

    Exposes the :class:`QueueRepository` interface that the queue
    manager, servers and tests program against (``tm``, ``queues``,
    ``registration``, ``get_queue``, ``create_queue``...), backed by
    ``len(disks)`` shards.  Constructing it over non-empty disks *is*
    restart recovery, shard by shard (in parallel unless a fault
    injector demands determinism); unresolved two-phase branches are
    then settled by scanning every shard's log for the coordinator's
    decision — presumed abort if none is found.
    """

    def __init__(
        self,
        name: str,
        disks: list[Disk] | None = None,
        injector: FaultInjector | None = None,
        obs: Observability | None = None,
        group_commit: GroupCommitConfig | None = None,
        placement: PlacementPolicy | None = None,
        checkpoint_interval_bytes: int | None = None,
    ):
        self.name = name
        self.injector = injector if injector is not None else NULL_INJECTOR
        self.obs = obs if obs is not None else get_observability()
        self.placement = (
            placement if placement is not None else ConsistentHashPlacement()
        )
        if not disks:
            disks = [MemDisk()]
        self.shard_count = len(disks)
        #: name -> shard co-location pins taken at creation time
        #: (volatile; routing consults durable location first)
        self._pins: dict[str, int] = {}
        self._views: dict[str, ShardQueueView] = {}
        self.checkpoint_interval_bytes = checkpoint_interval_bytes
        # Wall time for the whole (possibly parallel) recovery pass.
        # Per-shard durations land in recovery_duration_seconds{repo=
        # "<name>.sN"}; this facade series is what shows the win of
        # recovering shards in parallel (wall << sum of per-shard).
        recovery_started = _perf_counter()
        self.shards = self._recover_shards(
            disks, group_commit, checkpoint_interval_bytes
        )
        self.obs.metrics.histogram(
            "sharded_recovery_wall_seconds",
            "wall-clock time to recover all shards of one facade "
            "(parallel recovery makes this less than the per-shard sum)",
            ("node",),
        ).labels(node=name).observe(_perf_counter() - recovery_started)

        if self.shard_count == 1:
            # Pure passthrough: same objects, same log layout, same
            # metric labels as an unsharded QueueRepository.
            shard = self.shards[0]
            self.tm: Any = shard.tm
            self.log = shard.log
            self.locks = shard.locks
            self.disk = shard.disk
            self.eids = shard.eids
            self.registration: Any = shard.registration
            self.queues: Any = shard.queues
            self.tables: Any = shard.tables
            self.coordinators: list[TwoPhaseCoordinator] = []
        else:
            self.coordinators = []
            for index, shard in enumerate(self.shards):
                # The epoch tracker was rebuilt by recovery (checkpoint
                # image + replay), so the log scan of old is redundant.
                # note() runs under the WAL lock at append time: a
                # concurrent checkpoint either snapshots the new epoch
                # or replays its record — never loses it to segment GC.
                epoch = shard.epochs.epoch + 1
                shard.log.log_auto(
                    EPOCH_RM, {"epoch": epoch},
                    on_lsn=lambda _lsn, s=shard, e=epoch: s.epochs.note(e),
                )
                self.coordinators.append(
                    TwoPhaseCoordinator(
                        shard.log,
                        name=f"{name}.s{index}.e{epoch}",
                        injector=self.injector,
                        tracker=shard.decisions,
                        obs=self.obs,
                    )
                )
            self.tm = ShardedTransactionManager(
                [shard.tm for shard in self.shards],
                self.coordinators,
                obs=self.obs,
                node=name,
            )
            self.registration = _RegistrationRouter(self)
            self.queues = _CombinedQueues(self)
            self.tables = _CombinedTables(self)
            self._resolve_in_doubt()

        self.recoveries = [shard.last_recovery for shard in self.shards]
        #: shard 0's report, for single-shard compatibility; sharded
        #: callers should read :attr:`recoveries`
        self.last_recovery = self.recoveries[0]

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    def _recover_shards(
        self, disks: list[Disk], group_commit: GroupCommitConfig | None,
        checkpoint_interval_bytes: int | None,
    ) -> list[QueueRepository]:
        def build(index: int, disk: Disk) -> QueueRepository:
            # N=1 keeps the facade's own name so logs and metric labels
            # are indistinguishable from an unsharded repository.
            shard_name = self.name if len(disks) == 1 else f"{self.name}.s{index}"
            return QueueRepository(
                shard_name, disk, self.injector, obs=self.obs,
                group_commit=group_commit,
                checkpoint_interval_bytes=checkpoint_interval_bytes,
            )

        if len(disks) == 1 or self.injector is not NULL_INJECTOR:
            # Sequential: injected faults (and their on_crash hooks)
            # must fire in a deterministic order.
            return [build(i, disk) for i, disk in enumerate(disks)]

        shards: list[QueueRepository | None] = [None] * len(disks)
        errors: list[BaseException] = []

        def worker(index: int, disk: Disk) -> None:
            try:
                shards[index] = build(index, disk)
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i, disk), daemon=True)
            for i, disk in enumerate(disks)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]
        return [shard for shard in shards if shard is not None]

    def _resolve_in_doubt(self) -> None:
        """Settle prepared-but-undecided 2PC branches left by a crash.

        The coordinator's decision lives on whichever shard coordinated
        that transaction; ask every shard's decision tracker (rebuilt
        from its checkpoint image plus log replay, so it covers records
        segment GC has already reclaimed).  Presumed abort: no decision
        anywhere means abort.
        """
        for shard in self.shards:
            for branch in shard.last_recovery.in_doubt:
                if branch.resolved is not None:
                    continue
                decision = "abort"
                for other in self.shards:
                    found = other.decisions.get(branch.global_id)
                    if found is not None:
                        decision = found
                        break
                branch.resolve(decision)

    # ------------------------------------------------------------------
    # Placement and location
    # ------------------------------------------------------------------

    def _locate_queue(self, qname: str) -> int | None:
        for index, shard in enumerate(self.shards):
            if qname in shard.queues:
                return index
        return None

    def _locate_table(self, tname: str) -> int | None:
        for index, shard in enumerate(self.shards):
            if tname in shard.tables:
                return index
        return None

    def shard_of(self, name: str) -> int:
        """The shard owning ``name``: where it actually lives if it
        exists, else its co-location pin, else the placement policy."""
        located = self._locate_queue(name)
        if located is None:
            located = self._locate_table(name)
        if located is not None:
            return located
        pinned = self._pins.get(name)
        if pinned is not None:
            return pinned
        return self.placement.shard_for(name, self.shard_count)

    def _queue_view(self, qname: str, shard: int) -> ShardQueueView:
        view = self._views.get(qname)
        if view is None or view.shard_index != shard:
            view = ShardQueueView(self.shards[shard].queues[qname], shard)
            self._views[qname] = view
        return view

    # ------------------------------------------------------------------
    # Data definition
    # ------------------------------------------------------------------

    def create_queue(self, qname: str, **config: Any) -> Any:
        if self.shard_count == 1:
            return self.shards[0].create_queue(qname, **config)
        if self._locate_queue(qname) is not None:
            raise QueueExistsError(
                f"queue {qname!r} already exists in {self.name!r}"
            )
        error_queue = config.get("error_queue")
        shard: int | None = None
        if error_queue is not None:
            # Dead-letter moves happen inside one shard transaction, so
            # a queue must share its error queue's shard.
            shard = self._locate_queue(error_queue)
        if shard is None:
            shard = self.shard_of(qname)
        self.shards[shard].create_queue(qname, **config)
        if error_queue is not None:
            self._pins[error_queue] = shard
        return self._queue_view(qname, shard)

    def destroy_queue(self, qname: str) -> None:
        if self.shard_count == 1:
            self.shards[0].destroy_queue(qname)
            return
        located = self._locate_queue(qname)
        if located is None:
            raise NoSuchQueueError(f"no queue {qname!r} in {self.name!r}")
        self.shards[located].destroy_queue(qname)
        self._views.pop(qname, None)

    def stop_queue(self, qname: str) -> None:
        self.shards[self._require_queue_shard(qname)].stop_queue(qname)

    def start_queue(self, qname: str) -> None:
        self.shards[self._require_queue_shard(qname)].start_queue(qname)

    def create_table(self, tname: str) -> Any:
        if self.shard_count == 1:
            return self.shards[0].create_table(tname)
        located = self._locate_table(tname)
        if located is None:
            located = self.shard_of(tname)
        table = self.shards[located].create_table(tname)
        return ShardTableView(table, located)

    def _require_queue_shard(self, qname: str) -> int:
        located = self._locate_queue(qname)
        if located is None:
            raise NoSuchQueueError(f"no queue {qname!r} in {self.name!r}")
        return located

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def get_queue(self, qname: str) -> Any:
        if self.shard_count == 1:
            return self.shards[0].get_queue(qname)
        return self._queue_view(qname, self._require_queue_shard(qname))

    def get_table(self, tname: str) -> Any:
        if self.shard_count == 1:
            return self.shards[0].get_table(tname)
        located = self._locate_table(tname)
        if located is None:
            raise NoSuchQueueError(f"no table {tname!r} in {self.name!r}")
        return ShardTableView(self.shards[located].tables[tname], located)

    def queue_names(self) -> list[str]:
        return sorted(self.queues)

    def alloc_eid(self) -> int:
        """Facade-level allocation draws from shard 0; shard-local
        operations allocate from their own shard (element identity is
        per (queue, eid), so per-shard uniqueness suffices)."""
        return self.shards[0].alloc_eid()

    # ------------------------------------------------------------------
    # Durability plumbing used by TPSystem / chaos
    # ------------------------------------------------------------------

    @property
    def disks(self) -> list[Disk]:
        return [shard.disk for shard in self.shards]

    @property
    def logs(self) -> list[LogManager]:
        return [shard.log for shard in self.shards]

    @property
    def wal_panicked(self) -> bool:
        return any(shard.log.wal.panicked for shard in self.shards)

    def checkpoint(self) -> None:
        """Fuzzy-checkpoint every shard.

        No quiescence and no cross-shard barrier needed: each shard's
        checkpoint is consistent with its own log, and that is the only
        pair recovery ever reads together — cross-shard atomicity is
        2PC's job (decision trackers are snapshotted per shard), not
        the checkpoint's.  So shards checkpoint in parallel, like they
        recover, except under fault injection where determinism demands
        a fixed order.
        """
        if self.shard_count == 1 or self.injector is not NULL_INJECTOR:
            for shard in self.shards:
                shard.checkpoint()
            return
        errors: list[BaseException] = []

        def worker(shard: QueueRepository) -> None:
            try:
                shard.checkpoint()
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(shard,), daemon=True)
            for shard in self.shards
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]

    def close(self) -> None:
        """Stop every shard's background machinery."""
        for shard in self.shards:
            shard.close()

    def depths_by_shard(self) -> dict[int, dict[str, int]]:
        """Per-shard queue depths (monitoring/tests)."""
        return {
            index: {name: q.depth() for name, q in shard.queues.items()}
            for index, shard in enumerate(self.shards)
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ShardedRepository({self.name!r}, shards={self.shard_count})"
