"""The recoverable queue manager (Sections 4, 9, 10 of the paper).

This package implements the queue abstraction of Figure 3 plus the
features the paper attributes to commercial products:

* :mod:`repro.queueing.element` — elements with repository-unique eids,
  priorities, and headers (the scratch pad of Section 9's IMS/DC).
* :mod:`repro.queueing.queue` — one recoverable queue: a transactional
  element state machine with skip-locked or strict ordering
  (Section 10), blocking dequeue, error-queue bounds (Section 4.2),
  and Kill_element (Section 7).
* :mod:`repro.queueing.registration` — persistent registration with
  operation tags (Section 4.3, the paper's claimed-new feature).
* :mod:`repro.queueing.repository` — a named repository of queues on
  one node: shared log, lock manager, transaction manager, durable
  data-definition operations, checkpointing, crash/recovery.
* :mod:`repro.queueing.manager` — the :class:`QueueManager` facade
  exposing exactly the operations of Figure 3.
* :mod:`repro.queueing.selectors` — content-based retrieval and
  scheduling policies (Section 10: "highest dollar amount first").
* :mod:`repro.queueing.features` — queue sets, alert thresholds,
  queue redirection (Section 9's DECintact features), and
  start-on-arrival triggers (Section 9's CICS feature, used by the
  fork/join workflow of Section 6).
* :mod:`repro.queueing.volatile` — volatile queues and the
  volatile-relay pattern (Section 10).
* :mod:`repro.queueing.placement` / :mod:`repro.queueing.sharded` —
  repository sharding: a pluggable placement policy maps queue and
  table names onto N independent repositories behind one facade, with
  cross-shard transactions promoted to two-phase commit.
"""

from repro.queueing.element import Element, ElementState
from repro.queueing.queue import RecoverableQueue, QueueConfig, DequeueMode
from repro.queueing.registration import RegistrationTable, Registration
from repro.queueing.repository import QueueRepository
from repro.queueing.manager import QueueManager, QueueHandle
from repro.queueing.placement import (
    ConsistentHashPlacement,
    PinnedPlacement,
    PlacementPolicy,
)
from repro.queueing.sharded import ShardedRepository
from repro.queueing.volatile import VolatileQueue

__all__ = [
    "Element",
    "ElementState",
    "RecoverableQueue",
    "QueueConfig",
    "DequeueMode",
    "RegistrationTable",
    "Registration",
    "QueueRepository",
    "QueueManager",
    "QueueHandle",
    "PlacementPolicy",
    "ConsistentHashPlacement",
    "PinnedPlacement",
    "ShardedRepository",
    "VolatileQueue",
]
