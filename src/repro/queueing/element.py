"""Queue elements.

An element (Section 4.1) is a stable record with a repository-unique
*element identifier* (eid).  Eids are integers allocated by the
repository; an element keeps its eid as it moves between queues of the
repository (the DECintact identity guarantee discussed in Section 10).

``headers`` is an open string-keyed dict used by the higher layers:

* ``"reply_to"`` — the client's private reply queue (Section 5's
  multiple-clients extension),
* ``"rid"`` — the request id the element carries,
* ``"scratch"`` — the IMS/DC scratch pad (Section 9) carrying request
  state between the transactions of a multi-transaction request
  (Section 6),
* ``"abort_code"`` — set when the error-queue machinery moves the
  element (Section 4.2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any


class ElementState(enum.Enum):
    """Visibility state of an element slot inside a queue.

    The transactional behaviour of Figure 3's operations is implemented
    as a state machine per element rather than long read/write lock
    queues — exactly the "readers scan the queue and ignore write-locked
    elements" design of Section 10.
    """

    #: enqueued by a transaction that has not committed yet — invisible
    ENQ_PENDING = "enq_pending"
    #: committed and eligible for dequeue
    AVAILABLE = "available"
    #: dequeued by a transaction that has not committed yet
    DEQ_PENDING = "deq_pending"


@dataclass
class Element:
    """One queue element.

    ``body`` may be any codec-encodable value.  ``priority`` orders
    dequeues (higher first, FIFO within a priority — Section 9's
    "priority-based Enqueue and Dequeue").  ``abort_count`` counts
    dequeue-aborts for the error-queue bound of Section 4.2.
    """

    eid: int
    body: Any
    priority: int = 0
    enqueue_seq: int = 0
    abort_count: int = 0
    headers: dict[str, Any] = field(default_factory=dict)

    def to_record(self) -> dict[str, Any]:
        """Codec-encodable representation (log records, snapshots,
        registration copies)."""
        return {
            "eid": self.eid,
            "body": self.body,
            "prio": self.priority,
            "seq": self.enqueue_seq,
            "aborts": self.abort_count,
            "hdrs": dict(self.headers),
        }

    @classmethod
    def from_record(cls, record: dict[str, Any]) -> "Element":
        return cls(
            eid=record["eid"],
            body=record["body"],
            priority=record["prio"],
            enqueue_seq=record["seq"],
            abort_count=record["aborts"],
            headers=dict(record["hdrs"]),
        )

    def copy(self) -> "Element":
        return Element.from_record(self.to_record())

    def sort_key(self) -> tuple[int, int]:
        """Dequeue order: highest priority first, then FIFO."""
        return (-self.priority, self.enqueue_seq)
