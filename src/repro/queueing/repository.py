"""Queue repositories (Section 4.1).

A repository is the unit of failure and recovery: one disk, one shared
log, one lock manager, one transaction manager, a set of recoverable
queues, a registration table, and any application KV tables attached to
the same node (so a server transaction spanning ``Dequeue; update
database; Enqueue`` — Figure 5 — commits atomically with a single log
force).

Data-definition operations (create/destroy/start/stop queue, create
table) are durable: each writes an auto-committed ``_dd`` record, so a
restarted repository rebuilds its catalog before replaying queue
contents.  Constructing :class:`QueueRepository` over a non-empty disk
*is* restart recovery.
"""

from __future__ import annotations

import logging
import threading
import time as _time
from dataclasses import dataclass
from typing import Any

from repro.errors import NoSuchQueueError, QueueExistsError
from repro.obs import Observability, get_observability
from repro.queueing.checkpointer import Checkpointer
from repro.queueing.queue import QueueConfig, RecoverableQueue
from repro.queueing.registration import RegistrationTable
from repro.sim.crash import NULL_INJECTOR, FaultInjector
from repro.storage.disk import Disk, MemDisk
from repro.storage.groupcommit import GroupCommitConfig
from repro.storage.kvstore import KVStore
from repro.transaction.locks import LockManager
from repro.transaction.log import LogManager
from repro.transaction.manager import TransactionManager
from repro.transaction.recovery import RecoveryReport, recover

logger = logging.getLogger(__name__)

#: Buckets for the checkpoint-duration histogram (seconds).
CHECKPOINT_BUCKETS: tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0
)


class _EidAllocator:
    """Repository-wide element-id allocator.

    Reserves ids in durable batches (one auto record per ``batch``
    allocations) so a crash can skip at most one batch of ids and an
    eid is never reused — element identity (Section 10) depends on it.
    """

    rm_name = "eid"

    def __init__(self, log: LogManager, batch: int = 64):
        self._log = log
        self._batch = batch
        self._next = 1
        self._limit = 1
        self._mutex = threading.Lock()

    def alloc(self) -> int:
        with self._mutex:
            if self._next >= self._limit:
                new_limit = self._next + self._batch
                self._log.log_auto(self.rm_name, {"reserve": new_limit})
                self._limit = new_limit
            eid = self._next
            self._next += 1
            return eid

    # -- resource-manager protocol ------------------------------------

    def redo(self, data: dict[str, Any]) -> None:
        with self._mutex:
            self._limit = max(self._limit, data["reserve"])
            self._next = max(self._next, self._limit)

    def snapshot(self) -> Any:
        with self._mutex:
            return {"next": self._next, "limit": self._limit}

    def restore(self, state: Any) -> None:
        with self._mutex:
            self._limit = state["limit"]
            # ``next`` in the image is a fuzzy mid-batch value:
            # allocations after the snapshot stay volatile until the
            # *next* reserve record, so resuming there could reissue
            # live eids.  Resume at the reserved limit instead — a
            # restart skips at most one batch, exactly the replay rule.
            self._next = state["limit"]


class _EpochRM:
    """Durable high-water mark of 2PC-coordinator epochs.

    The epoch itself is logged as an auto record under the pseudo-RM
    ``"_shards"`` (see :mod:`repro.queueing.sharded`).  Registering this
    tracker as a real resource manager lets fuzzy checkpoints capture
    the mark, so segment GC may reclaim the records that carried it
    without a restarted facade ever reissuing an old epoch.
    """

    rm_name = "_shards"

    def __init__(self) -> None:
        self._epoch = 0
        self._mutex = threading.Lock()

    def note(self, epoch: int) -> None:
        with self._mutex:
            self._epoch = max(self._epoch, epoch)

    @property
    def epoch(self) -> int:
        with self._mutex:
            return self._epoch

    def redo(self, data: dict[str, Any]) -> None:
        self.note(data.get("epoch", 0))

    def snapshot(self) -> Any:
        return {"epoch": self.epoch}

    def restore(self, state: Any) -> None:
        self.note(state.get("epoch", 0))


class _DecisionRM:
    """Two-phase-commit decisions by global id (pseudo-RM ``"_2pc"``).

    Decision records must outlive segment GC: an in-doubt branch on one
    shard may need a decision whose record lived on another shard's
    log.  Checkpoints snapshot this tracker, so the decision survives
    even after its auto record's segment is reclaimed.  (Presumed
    abort keeps the absence of an entry meaningful: no decision
    anywhere still means abort.)
    """

    rm_name = "_2pc"

    def __init__(self) -> None:
        self._decisions: dict[str, str] = {}
        self._mutex = threading.Lock()

    def note(self, gid: str, decision: str) -> None:
        with self._mutex:
            self._decisions[gid] = decision

    def get(self, gid: str) -> str | None:
        with self._mutex:
            return self._decisions.get(gid)

    def redo(self, data: dict[str, Any]) -> None:
        self.note(data["gid"], data["decision"])

    def snapshot(self) -> Any:
        with self._mutex:
            return dict(self._decisions)

    def restore(self, state: Any) -> None:
        with self._mutex:
            self._decisions = dict(state)


@dataclass(frozen=True)
class CheckpointStats:
    """What one fuzzy checkpoint did."""

    begin_lsn: int
    recovery_lsn: int
    #: transactions active while the snapshot was taken
    active_txns: int
    #: sealed WAL segments reclaimed by the trailing GC
    segments_removed: int


class QueueRepository:
    """One named repository of recoverable queues on one node.

    Constructing the repository over a disk that already holds a log
    (and possibly a checkpoint) performs restart recovery; over an
    empty disk it starts fresh.
    """

    rm_name = "_dd"  # the repository is itself the data-definition RM

    def __init__(
        self,
        name: str,
        disk: Disk | None = None,
        injector: FaultInjector | None = None,
        lock_manager: LockManager | None = None,
        obs: Observability | None = None,
        group_commit: GroupCommitConfig | None = None,
        checkpoint_interval_bytes: int | None = None,
    ):
        self.name = name
        self.disk = disk if disk is not None else MemDisk()
        self.injector = injector if injector is not None else NULL_INJECTOR
        self.obs = obs if obs is not None else get_observability()
        self.checkpoint_interval_bytes = checkpoint_interval_bytes
        # Size segments well below the checkpoint interval so the
        # trailing GC always has sealed segments to reclaim.
        segment_bytes = (
            None if checkpoint_interval_bytes is None
            else max(4096, checkpoint_interval_bytes // 4)
        )
        self.log = LogManager(
            self.disk, area=f"{name}.log", obs=self.obs,
            injector=self.injector, group_commit=group_commit,
            segment_bytes=segment_bytes,
        )
        self.locks = (
            lock_manager if lock_manager is not None else LockManager()
        )
        self.tm = TransactionManager(
            self.log, self.locks, self.injector, obs=self.obs, node=name
        )
        self.registration = RegistrationTable()
        self.eids = _EidAllocator(self.log)
        self.epochs = _EpochRM()
        self.decisions = _DecisionRM()
        self.queues: dict[str, RecoverableQueue] = {}
        self.tables: dict[str, KVStore] = {}
        #: name -> resource manager; mutated by _dd redo during replay
        self.rms: dict[str, Any] = {
            self.rm_name: self,
            RegistrationTable.rm_name: self.registration,
            _EidAllocator.rm_name: self.eids,
            _EpochRM.rm_name: self.epochs,
            _DecisionRM.rm_name: self.decisions,
        }
        self._dd_mutex = threading.Lock()
        #: serializes fuzzy checkpoints (manual + background driver)
        self._ckpt_mutex = threading.Lock()
        if self.injector is not NULL_INJECTOR and hasattr(self.disk, "crash"):
            # A simulated crash must freeze the disk at exactly the
            # injection point, before any harness code runs.
            self.injector.on_crash.append(lambda _point: self.disk.crash())
        recovery_started = _time.perf_counter()
        with self.obs.tracer.start_span(
            "recovery", trace_id=f"recovery-{name}", repo=name
        ) as recovery_span:
            self.last_recovery: RecoveryReport = recover(
                self.log, self.rms, self.tm, self.locks
            )
        report = self.last_recovery
        recovery_seconds = _time.perf_counter() - recovery_started
        # LSNs are record-stream byte offsets, so the replayed byte span
        # is simply append-point minus replay-start.
        replayed_bytes = max(0, self.log.wal.next_lsn - report.recovery_lsn)
        if report.checkpoint_loaded:
            # Replay covered only the log suffix above the checkpoint.
            recovery_mode = "checkpoint-suffix"
        elif report.replayed_records or report.committed:
            recovery_mode = "full-replay"
        else:
            recovery_mode = "fresh"
        recovery_span.set_attr("mode", recovery_mode)
        recovery_span.set_attr("replayed_records", report.replayed_records)
        recovery_span.set_attr("replayed_bytes", replayed_bytes)
        recovery_span.set_attr("in_doubt", len(report.in_doubt))
        self.obs.metrics.counter(
            "recovery_runs_total", "restart recoveries performed", ("repo",)
        ).labels(repo=name).inc()
        self.obs.metrics.counter(
            "recovery_replayed_records_total",
            "log records replayed by restart recoveries", ("repo",)
        ).labels(repo=name).inc(self.last_recovery.replayed_records)
        self.obs.metrics.counter(
            "recovery_replayed_bytes_total",
            "log bytes scanned above the replay start by restart "
            "recoveries", ("repo",)
        ).labels(repo=name).inc(replayed_bytes)
        self.obs.metrics.histogram(
            "recovery_duration_seconds",
            "wall time of one restart recovery (checkpoint load + "
            "replay + lock re-acquisition)", ("repo",),
            buckets=CHECKPOINT_BUCKETS,
        ).labels(repo=name).observe(recovery_seconds)
        self.obs.metrics.counter(
            "recovery_mode_total",
            "restart recoveries by replay classification", ("repo", "mode"),
        ).labels(repo=name, mode=recovery_mode).inc()
        self.obs.flight.record(
            "recovery.complete", repo=name, mode=recovery_mode,
            records=report.replayed_records, bytes=replayed_bytes,
            in_doubt=len(report.in_doubt),
        )
        self._m_checkpoints = self.obs.metrics.counter(
            "checkpoints_total", "fuzzy checkpoints completed", ("repo",)
        ).labels(repo=name)
        self._m_ckpt_duration = self.obs.metrics.histogram(
            "checkpoint_duration_seconds",
            "wall time of one fuzzy checkpoint", ("repo",),
            buckets=CHECKPOINT_BUCKETS,
        ).labels(repo=name)
        self._m_ckpt_stall = self.obs.metrics.histogram(
            "checkpoint_stall_seconds",
            "checkpoint phase that can stall writers: RM snapshots "
            "under their mutexes plus the forced end-checkpoint record",
            ("repo",),
            buckets=CHECKPOINT_BUCKETS,
        ).labels(repo=name)
        logger.debug(
            "repository %r recovered: %s", name, self.last_recovery
        )
        for queue in self.queues.values():
            queue.sweep_poisoned()
        #: background byte-triggered checkpoint driver; passive (polled
        #: by the harness) under fault injection for determinism
        self.checkpointer: Checkpointer | None = None
        if checkpoint_interval_bytes is not None:
            self.checkpointer = Checkpointer(
                self, checkpoint_interval_bytes,
                threaded=self.injector is NULL_INJECTOR,
            )

    def close(self) -> None:
        """Stop background machinery (the checkpointer thread).  The
        durable state stays ready for a future restart recovery."""
        if self.checkpointer is not None:
            self.checkpointer.stop()

    # ------------------------------------------------------------------
    # Data definition (Section 4.1: create, destroy, start, stop)
    # ------------------------------------------------------------------

    def create_queue(self, qname: str, **config: Any) -> RecoverableQueue:
        """Create a recoverable queue; durable immediately."""
        with self._dd_mutex:
            if qname in self.queues:
                raise QueueExistsError(f"queue {qname!r} already exists in {self.name!r}")
            cfg = QueueConfig(name=qname, **config)
            self.log.log_auto(self.rm_name, {"op": "mkq", "cfg": cfg.to_record()})
            queue = self._attach_queue(cfg)
        return queue

    def _attach_queue(self, cfg: QueueConfig) -> RecoverableQueue:
        queue = RecoverableQueue(cfg, self)
        self.queues[cfg.name] = queue
        self.rms[queue.rm_name] = queue
        return queue

    def destroy_queue(self, qname: str) -> None:
        """Destroy a queue and its contents; durable immediately."""
        with self._dd_mutex:
            if qname not in self.queues:
                raise NoSuchQueueError(f"no queue {qname!r} in {self.name!r}")
            self.log.log_auto(self.rm_name, {"op": "rmq", "q": qname})
            queue = self.queues.pop(qname)
            self.rms.pop(queue.rm_name, None)

    def stop_queue(self, qname: str) -> None:
        """Stop a queue, durably: a restarted repository keeps it
        stopped (Section 4.1's start/stop are data-definition ops)."""
        with self._dd_mutex:
            queue = self.get_queue(qname)
            self.log.log_auto(self.rm_name, {"op": "stopq", "q": qname})
            queue.stop()

    def start_queue(self, qname: str) -> None:
        """Restart a stopped queue, durably."""
        with self._dd_mutex:
            queue = self.get_queue(qname)
            self.log.log_auto(self.rm_name, {"op": "startq", "q": qname})
            queue.start()

    def create_table(self, tname: str) -> KVStore:
        """Attach an application KV table to this node (shares the log
        and the transaction manager, so server transactions spanning
        queue + database commit atomically)."""
        with self._dd_mutex:
            if tname in self.tables:
                return self.tables[tname]
            self.log.log_auto(self.rm_name, {"op": "mktable", "t": tname})
            return self._attach_table(tname)

    def _attach_table(self, tname: str) -> KVStore:
        table = KVStore(tname)
        self.tables[tname] = table
        self.rms[table.rm_name] = table
        return table

    def get_queue(self, qname: str) -> RecoverableQueue:
        queue = self.queues.get(qname)
        if queue is None:
            raise NoSuchQueueError(f"no queue {qname!r} in {self.name!r}")
        return queue

    def get_table(self, tname: str) -> KVStore:
        table = self.tables.get(tname)
        if table is None:
            raise NoSuchQueueError(f"no table {tname!r} in {self.name!r}")
        return table

    def queue_names(self) -> list[str]:
        return sorted(self.queues)

    # ------------------------------------------------------------------
    # Allocation / checkpointing
    # ------------------------------------------------------------------

    def alloc_eid(self) -> int:
        return self.eids.alloc()

    def checkpoint(self) -> CheckpointStats:
        """Online fuzzy checkpoint: snapshot every RM *without
        quiescence*, install the image, and GC dead log segments.

        The protocol (see ``docs/architecture.md``):

        1. roll the log and append the ``bck`` marker (LSN *B*);
        2. read the recovery floor — min of *B*, the first LSN of every
           transaction with live records, and every GC pin — **before**
           taking snapshots, so a transaction the floor has passed is
           guaranteed to have its effects already final in them;
        3. take committed-view snapshots under each RM's own mutex
           (``_dd`` first so restore rebuilds the catalog before queue
           and table images are applied) while transactions keep
           running;
        4. force the ``eck`` marker carrying the active table;
        5. atomically install the checkpoint blob (the commit point);
        6. reclaim sealed segments wholly below the recovery floor.

        Safe concurrently with commits because RM redo is idempotent:
        replay from the floor may re-apply work the snapshot already
        captured, never the reverse.
        """
        injector = self.injector
        with self._ckpt_mutex:
            started = _time.perf_counter()
            injector.reach("ckpt.begin.before")
            begin_lsn = self.log.begin_checkpoint()
            injector.reach("ckpt.begin.after")
            recovery_lsn = self.log.recovery_floor(begin_lsn)
            first = self.log.txn_first_lsns()
            active = {
                tid: first.get(tid, begin_lsn) for tid in self.tm.active_txns()
            }
            injector.reach("ckpt.snapshot.before")
            with self._m_ckpt_stall.time():
                snapshots: dict[str, Any] = {self.rm_name: self.snapshot()}
                for rm_name, rm in list(self.rms.items()):
                    if rm_name != self.rm_name:
                        snapshots[rm_name] = rm.snapshot()
                injector.reach("ckpt.snapshot.after")
                self.log.end_checkpoint(begin_lsn, active, recovery_lsn)
            injector.reach("ckpt.install.before")
            self.log.install_checkpoint(
                snapshots, begin_lsn=begin_lsn, recovery_lsn=recovery_lsn,
                next_txn_id=self.tm.next_txn_id(),
            )
            injector.reach("ckpt.install.after")
            injector.reach("ckpt.gc.before")
            removed = self.log.gc(recovery_lsn)
            injector.reach("ckpt.gc.after")
            self._m_checkpoints.inc()
            self._m_ckpt_duration.observe(_time.perf_counter() - started)
            return CheckpointStats(
                begin_lsn=begin_lsn,
                recovery_lsn=recovery_lsn,
                active_txns=len(active),
                segments_removed=removed,
            )

    # ------------------------------------------------------------------
    # Resource-manager protocol for data definition
    # ------------------------------------------------------------------

    def redo(self, data: dict[str, Any]) -> None:
        op = data["op"]
        if op == "mkq":
            cfg = QueueConfig.from_record(data["cfg"])
            if cfg.name not in self.queues:
                self._attach_queue(cfg)
        elif op == "rmq":
            queue = self.queues.pop(data["q"], None)
            if queue is not None:
                self.rms.pop(queue.rm_name, None)
        elif op == "mktable":
            if data["t"] not in self.tables:
                self._attach_table(data["t"])
        elif op == "stopq":
            queue = self.queues.get(data["q"])
            if queue is not None:
                queue.stop()
        elif op == "startq":
            queue = self.queues.get(data["q"])
            if queue is not None:
                queue.start()
        else:  # pragma: no cover - log corruption guard
            raise ValueError(f"unknown data-definition redo op {op!r}")

    def snapshot(self) -> Any:
        return {
            "queues": [q.config.to_record() for q in self.queues.values()],
            "tables": sorted(self.tables),
            "stopped": sorted(n for n, q in self.queues.items() if q.stopped),
        }

    def restore(self, state: Any) -> None:
        for record in state["queues"]:
            cfg = QueueConfig.from_record(record)
            if cfg.name not in self.queues:
                self._attach_queue(cfg)
        for tname in state["tables"]:
            if tname not in self.tables:
                self._attach_table(tname)
        for qname in state.get("stopped", []):
            queue = self.queues.get(qname)
            if queue is not None:
                queue.stop()
