"""Queue repositories (Section 4.1).

A repository is the unit of failure and recovery: one disk, one shared
log, one lock manager, one transaction manager, a set of recoverable
queues, a registration table, and any application KV tables attached to
the same node (so a server transaction spanning ``Dequeue; update
database; Enqueue`` — Figure 5 — commits atomically with a single log
force).

Data-definition operations (create/destroy/start/stop queue, create
table) are durable: each writes an auto-committed ``_dd`` record, so a
restarted repository rebuilds its catalog before replaying queue
contents.  Constructing :class:`QueueRepository` over a non-empty disk
*is* restart recovery.
"""

from __future__ import annotations

import logging
import threading
from typing import Any

from repro.errors import NoSuchQueueError, QueueExistsError
from repro.obs import Observability, get_observability
from repro.queueing.queue import QueueConfig, RecoverableQueue
from repro.queueing.registration import RegistrationTable
from repro.sim.crash import NULL_INJECTOR, FaultInjector
from repro.storage.disk import Disk, MemDisk
from repro.storage.groupcommit import GroupCommitConfig
from repro.storage.kvstore import KVStore
from repro.transaction.locks import LockManager
from repro.transaction.log import LogManager
from repro.transaction.manager import TransactionManager
from repro.transaction.recovery import RecoveryReport, recover

logger = logging.getLogger(__name__)


class _EidAllocator:
    """Repository-wide element-id allocator.

    Reserves ids in durable batches (one auto record per ``batch``
    allocations) so a crash can skip at most one batch of ids and an
    eid is never reused — element identity (Section 10) depends on it.
    """

    rm_name = "eid"

    def __init__(self, log: LogManager, batch: int = 64):
        self._log = log
        self._batch = batch
        self._next = 1
        self._limit = 1
        self._mutex = threading.Lock()

    def alloc(self) -> int:
        with self._mutex:
            if self._next >= self._limit:
                new_limit = self._next + self._batch
                self._log.log_auto(self.rm_name, {"reserve": new_limit})
                self._limit = new_limit
            eid = self._next
            self._next += 1
            return eid

    # -- resource-manager protocol ------------------------------------

    def redo(self, data: dict[str, Any]) -> None:
        with self._mutex:
            self._limit = max(self._limit, data["reserve"])
            self._next = max(self._next, self._limit)

    def snapshot(self) -> Any:
        with self._mutex:
            return {"next": self._next, "limit": self._limit}

    def restore(self, state: Any) -> None:
        with self._mutex:
            self._next = state["next"]
            self._limit = state["limit"]


class QueueRepository:
    """One named repository of recoverable queues on one node.

    Constructing the repository over a disk that already holds a log
    (and possibly a checkpoint) performs restart recovery; over an
    empty disk it starts fresh.
    """

    rm_name = "_dd"  # the repository is itself the data-definition RM

    def __init__(
        self,
        name: str,
        disk: Disk | None = None,
        injector: FaultInjector | None = None,
        lock_manager: LockManager | None = None,
        obs: Observability | None = None,
        group_commit: GroupCommitConfig | None = None,
    ):
        self.name = name
        self.disk = disk if disk is not None else MemDisk()
        self.injector = injector if injector is not None else NULL_INJECTOR
        self.obs = obs if obs is not None else get_observability()
        self.log = LogManager(
            self.disk, area=f"{name}.log", obs=self.obs,
            injector=self.injector, group_commit=group_commit,
        )
        self.locks = (
            lock_manager if lock_manager is not None else LockManager(obs=self.obs)
        )
        self.tm = TransactionManager(
            self.log, self.locks, self.injector, obs=self.obs, node=name
        )
        self.registration = RegistrationTable()
        self.eids = _EidAllocator(self.log)
        self.queues: dict[str, RecoverableQueue] = {}
        self.tables: dict[str, KVStore] = {}
        #: name -> resource manager; mutated by _dd redo during replay
        self.rms: dict[str, Any] = {
            self.rm_name: self,
            RegistrationTable.rm_name: self.registration,
            _EidAllocator.rm_name: self.eids,
        }
        self._dd_mutex = threading.Lock()
        if self.injector is not NULL_INJECTOR and hasattr(self.disk, "crash"):
            # A simulated crash must freeze the disk at exactly the
            # injection point, before any harness code runs.
            self.injector.on_crash.append(lambda _point: self.disk.crash())
        self.last_recovery: RecoveryReport = recover(
            self.log, self.rms, self.tm, self.locks
        )
        self.obs.metrics.counter(
            "recovery_runs_total", "restart recoveries performed", ("repo",)
        ).labels(repo=name).inc()
        logger.debug(
            "repository %r recovered: %s", name, self.last_recovery
        )
        for queue in self.queues.values():
            queue.sweep_poisoned()

    # ------------------------------------------------------------------
    # Data definition (Section 4.1: create, destroy, start, stop)
    # ------------------------------------------------------------------

    def create_queue(self, qname: str, **config: Any) -> RecoverableQueue:
        """Create a recoverable queue; durable immediately."""
        with self._dd_mutex:
            if qname in self.queues:
                raise QueueExistsError(f"queue {qname!r} already exists in {self.name!r}")
            cfg = QueueConfig(name=qname, **config)
            self.log.log_auto(self.rm_name, {"op": "mkq", "cfg": cfg.to_record()})
            queue = self._attach_queue(cfg)
        return queue

    def _attach_queue(self, cfg: QueueConfig) -> RecoverableQueue:
        queue = RecoverableQueue(cfg, self)
        self.queues[cfg.name] = queue
        self.rms[queue.rm_name] = queue
        return queue

    def destroy_queue(self, qname: str) -> None:
        """Destroy a queue and its contents; durable immediately."""
        with self._dd_mutex:
            if qname not in self.queues:
                raise NoSuchQueueError(f"no queue {qname!r} in {self.name!r}")
            self.log.log_auto(self.rm_name, {"op": "rmq", "q": qname})
            queue = self.queues.pop(qname)
            self.rms.pop(queue.rm_name, None)

    def stop_queue(self, qname: str) -> None:
        """Stop a queue, durably: a restarted repository keeps it
        stopped (Section 4.1's start/stop are data-definition ops)."""
        with self._dd_mutex:
            queue = self.get_queue(qname)
            self.log.log_auto(self.rm_name, {"op": "stopq", "q": qname})
            queue.stop()

    def start_queue(self, qname: str) -> None:
        """Restart a stopped queue, durably."""
        with self._dd_mutex:
            queue = self.get_queue(qname)
            self.log.log_auto(self.rm_name, {"op": "startq", "q": qname})
            queue.start()

    def create_table(self, tname: str) -> KVStore:
        """Attach an application KV table to this node (shares the log
        and the transaction manager, so server transactions spanning
        queue + database commit atomically)."""
        with self._dd_mutex:
            if tname in self.tables:
                return self.tables[tname]
            self.log.log_auto(self.rm_name, {"op": "mktable", "t": tname})
            return self._attach_table(tname)

    def _attach_table(self, tname: str) -> KVStore:
        table = KVStore(tname)
        self.tables[tname] = table
        self.rms[table.rm_name] = table
        return table

    def get_queue(self, qname: str) -> RecoverableQueue:
        queue = self.queues.get(qname)
        if queue is None:
            raise NoSuchQueueError(f"no queue {qname!r} in {self.name!r}")
        return queue

    def get_table(self, tname: str) -> KVStore:
        table = self.tables.get(tname)
        if table is None:
            raise NoSuchQueueError(f"no table {tname!r} in {self.name!r}")
        return table

    def queue_names(self) -> list[str]:
        return sorted(self.queues)

    # ------------------------------------------------------------------
    # Allocation / checkpointing
    # ------------------------------------------------------------------

    def alloc_eid(self) -> int:
        return self.eids.alloc()

    def checkpoint(self) -> None:
        """Snapshot every RM and truncate the log.

        Must run at quiescence (no active transactions): queue
        snapshots capture only committed state.  The ``_dd`` snapshot is
        written first so restore can rebuild the catalog before queue
        and table snapshots are applied.
        """
        snapshots: dict[str, Any] = {self.rm_name: self.snapshot()}
        for rm_name, rm in self.rms.items():
            if rm_name != self.rm_name:
                snapshots[rm_name] = rm.snapshot()
        self.log.write_checkpoint(snapshots)

    # ------------------------------------------------------------------
    # Resource-manager protocol for data definition
    # ------------------------------------------------------------------

    def redo(self, data: dict[str, Any]) -> None:
        op = data["op"]
        if op == "mkq":
            cfg = QueueConfig.from_record(data["cfg"])
            if cfg.name not in self.queues:
                self._attach_queue(cfg)
        elif op == "rmq":
            queue = self.queues.pop(data["q"], None)
            if queue is not None:
                self.rms.pop(queue.rm_name, None)
        elif op == "mktable":
            if data["t"] not in self.tables:
                self._attach_table(data["t"])
        elif op == "stopq":
            queue = self.queues.get(data["q"])
            if queue is not None:
                queue.stop()
        elif op == "startq":
            queue = self.queues.get(data["q"])
            if queue is not None:
                queue.start()
        else:  # pragma: no cover - log corruption guard
            raise ValueError(f"unknown data-definition redo op {op!r}")

    def snapshot(self) -> Any:
        return {
            "queues": [q.config.to_record() for q in self.queues.values()],
            "tables": sorted(self.tables),
            "stopped": sorted(n for n, q in self.queues.items() if q.stopped),
        }

    def restore(self, state: Any) -> None:
        for record in state["queues"]:
            cfg = QueueConfig.from_record(record)
            if cfg.name not in self.queues:
                self._attach_queue(cfg)
        for tname in state["tables"]:
            if tname not in self.tables:
                self._attach_table(tname)
        for qname in state.get("stopped", []):
            queue = self.queues.get(qname)
            if queue is not None:
                queue.stop()
