"""Content-based retrieval and scheduling selectors.

Section 10: "Requests may be scheduled for the server by priority,
request contents (highest dollar amount first), submission time, etc.
... usually requires a QM with content-based retrieval capability."

Selectors are predicates over :class:`~repro.queueing.element.Element`
passed to ``Dequeue``; combinators below build the common policies.
Priority and submission-time ordering are intrinsic (the queue's sort
key), so a "highest dollar amount first" policy enqueues with
``priority=amount`` — :func:`priority_from` helps — while predicate
selectors restrict *which* elements are eligible at all.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.queueing.element import Element

Selector = Callable[[Element], bool]


def by_header(name: str, value: Any) -> Selector:
    """Match elements whose header ``name`` equals ``value``
    (e.g. route by request type).

    The returned selector carries a ``header_equals`` tag; when
    ``name`` is in the queue's ``config.index_headers``, skip-locked
    dequeue resolves it through the O(1) header hash index instead of
    scanning."""

    def select(element: Element) -> bool:
        return element.headers.get(name) == value

    select.header_equals = (name, value)  # type: ignore[attr-defined]
    return select


def by_body(predicate: Callable[[Any], bool]) -> Selector:
    """Match elements whose body satisfies ``predicate``."""

    def select(element: Element) -> bool:
        return predicate(element.body)

    return select


def by_field(field: str, predicate: Callable[[Any], bool]) -> Selector:
    """Match dict bodies where ``predicate(body[field])`` holds; bodies
    without the field never match."""

    def select(element: Element) -> bool:
        body = element.body
        return isinstance(body, dict) and field in body and predicate(body[field])

    return select


def min_amount(field: str, threshold: float) -> Selector:
    """Match dict bodies whose numeric ``field`` is at least
    ``threshold`` (a big-transfers-first scheduling policy)."""
    return by_field(field, lambda v: isinstance(v, (int, float)) and v >= threshold)


def all_of(*selectors: Selector) -> Selector:
    def select(element: Element) -> bool:
        return all(s(element) for s in selectors)

    return select


def any_of(*selectors: Selector) -> Selector:
    def select(element: Element) -> bool:
        return any(s(element) for s in selectors)

    return select


def negate(selector: Selector) -> Selector:
    def select(element: Element) -> bool:
        return not selector(element)

    return select


def priority_from(body: dict[str, Any], field: str, scale: float = 1.0) -> int:
    """Derive an enqueue priority from a body field ("highest dollar
    amount first"): ``priority_from(req, "amount")``."""
    value = body.get(field, 0)
    if not isinstance(value, (int, float)):
        return 0
    return int(value * scale)
