"""Placement policies: which repository shard owns a queue or table.

The paper's repository is the unit of failure and recovery — one disk,
one log, one lock manager.  Sharding multiplies that unit; placement
decides which shard each *named object* (queue, table) lives on.  The
contract that makes recovery stay local is simple: **placement is a
pure function of the name**, stable across restarts, so a recovering
shard can rebuild exactly the queues its own log describes without
consulting the others.

Two policies ship:

* :class:`ConsistentHashPlacement` — the default.  Each shard gets a
  ring of virtual points keyed by ``shard:{i}:{replica}``; a name maps
  to the first point clockwise of its hash.  Adding a shard moves only
  ~1/N of the names, so operators can grow a deployment without
  re-homing everything.
* :class:`PinnedPlacement` — explicit ``name -> shard`` pins over a
  fallback policy.  Used for co-location (an error queue must live on
  its source queue's shard — dead-letter moves happen inside one shard
  transaction) and by tests that need a queue on a known shard.

Policies are deliberately tiny: ``shard_for(name, shard_count)`` is the
whole interface, so applications can drop in their own (e.g. range
partitioning by tenant prefix).
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Protocol, runtime_checkable


@runtime_checkable
class PlacementPolicy(Protocol):
    """Maps an object name to the index of its owning shard."""

    def shard_for(self, name: str, shard_count: int) -> int:
        """The owning shard of ``name``, in ``range(shard_count)``.

        Must be deterministic and stable across process restarts for a
        given ``(name, shard_count)`` — recovery depends on it.
        """
        ...  # pragma: no cover - protocol


def _stable_hash(key: str) -> int:
    """A hash stable across processes (``hash()`` is salted per run)."""
    return int.from_bytes(hashlib.md5(key.encode("utf-8")).digest()[:8], "big")


class ConsistentHashPlacement:
    """Consistent hashing over a ring of virtual shard points."""

    def __init__(self, replicas: int = 64):
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = replicas
        self._rings: dict[int, tuple[list[int], list[int]]] = {}

    def _ring(self, shard_count: int) -> tuple[list[int], list[int]]:
        ring = self._rings.get(shard_count)
        if ring is None:
            points: list[tuple[int, int]] = []
            for shard in range(shard_count):
                for replica in range(self.replicas):
                    points.append((_stable_hash(f"shard:{shard}:{replica}"), shard))
            points.sort()
            ring = ([h for h, _ in points], [s for _, s in points])
            self._rings[shard_count] = ring
        return ring

    def shard_for(self, name: str, shard_count: int) -> int:
        if shard_count < 1:
            raise ValueError("shard_count must be >= 1")
        if shard_count == 1:
            return 0
        hashes, shards = self._ring(shard_count)
        index = bisect.bisect_right(hashes, _stable_hash(name))
        if index == len(hashes):  # wrap around the ring
            index = 0
        return shards[index]


class PinnedPlacement:
    """Explicit pins over a fallback policy.

    ``pins`` wins for names it covers; everything else falls through to
    ``fallback`` (consistent hashing by default).  Pins added after
    construction via :meth:`pin` apply to subsequent lookups only, so
    pin *before* creating the object.
    """

    def __init__(
        self,
        pins: dict[str, int] | None = None,
        fallback: PlacementPolicy | None = None,
    ):
        self.pins = dict(pins) if pins else {}
        self.fallback = fallback if fallback is not None else ConsistentHashPlacement()

    def pin(self, name: str, shard: int) -> "PinnedPlacement":
        self.pins[name] = shard
        return self

    def shard_for(self, name: str, shard_count: int) -> int:
        pinned = self.pins.get(name)
        if pinned is not None:
            if not 0 <= pinned < shard_count:
                raise ValueError(
                    f"{name!r} is pinned to shard {pinned}, outside "
                    f"range(0, {shard_count})"
                )
            return pinned
        return self.fallback.shard_for(name, shard_count)
