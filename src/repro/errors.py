"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch the whole family with one handler.  The hierarchy
mirrors the subsystem layering described in DESIGN.md:

* storage errors (stable storage, write-ahead log, KV store),
* transaction errors (aborts, deadlocks, commit-protocol failures),
* queueing errors (Figure 3's operations and their failure modes),
* simulation errors (injected crashes — these deliberately do *not*
  derive from :class:`ReproError` so that protocol code cannot
  accidentally swallow them with a broad ``except ReproError``),
* client/protocol errors (the Client Model of Section 3).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the library."""


# ---------------------------------------------------------------------------
# Storage
# ---------------------------------------------------------------------------


class StorageError(ReproError):
    """Base class for stable-storage and log errors."""


class DiskCrashedError(StorageError):
    """An operation was attempted on a disk whose node has crashed."""


class DiskIOError(StorageError):
    """A disk operation failed with an I/O error.

    Raised by :class:`~repro.storage.faults.FaultyDisk` (and usable by
    real backends) for transient and permanent device errors.  The
    failed operation had **no effect**: an append that raised appended
    nothing, a flush that raised made nothing durable.
    """


class DiskFullError(DiskIOError):
    """A write failed because the device is out of space."""


class WalPanicError(StorageError):
    """The write-ahead log is unusable after a failed flush.

    Once an ``fsync`` fails, the durability of everything buffered is
    unknowable (the kernel may have dropped the dirty pages), so
    retrying the flush could silently promote a commit record whose
    transaction was already reported as failed.  The WAL therefore
    *panics*: every subsequent append/flush raises this error until the
    node restarts and recovers from the durable prefix — the same
    policy PostgreSQL adopted after "fsyncgate".  The original flush
    failure is chained as ``__cause__``.
    """


class WalFencedError(StorageError):
    """The write-ahead log has been fenced by a failover.

    After a standby is promoted, the old primary's log is *fenced*: any
    late append or flush from the deposed node raises this error rather
    than landing bytes that the new primary's history does not contain.
    Fencing is the storage-level half of epoch fencing — the epoch
    machinery rejects a zombie coordinator's protocol messages, and the
    fence rejects its disk writes.  Deriving from :class:`StorageError`
    means existing handlers treat a fenced write exactly like a failed
    one: the transaction aborts and the node restarts (or retires).
    """


class CorruptRecordError(StorageError):
    """A log record failed its CRC or framing check.

    During recovery a corrupt record at the *tail* of the log is expected
    (a torn write at crash time) and is silently treated as end-of-log;
    a corrupt record in the *middle* of the log raises this error.
    """


class CheckpointError(StorageError):
    """A checkpoint could not be written or loaded."""


# ---------------------------------------------------------------------------
# Transactions
# ---------------------------------------------------------------------------


class TransactionError(ReproError):
    """Base class for transaction-manager errors."""


class TransactionAborted(TransactionError):
    """The transaction was aborted; all of its effects have been undone.

    Carries a ``reason`` string so the caller (and the error-queue
    machinery of Section 4.2) can distinguish deadlock aborts from
    application aborts from injected-failure aborts.
    """

    def __init__(self, txn_id: object, reason: str = "aborted"):
        super().__init__(f"transaction {txn_id} aborted: {reason}")
        self.txn_id = txn_id
        self.reason = reason


class DeadlockError(TransactionError):
    """A lock request would create a cycle in the waits-for graph.

    The requesting transaction is chosen as the victim and must abort.
    """


class LockTimeoutError(TransactionError):
    """A lock request timed out before being granted."""


class InvalidTransactionState(TransactionError):
    """An operation was invoked on a transaction in the wrong state,
    e.g. writing through a committed transaction."""


class TwoPhaseCommitError(TransactionError):
    """The two-phase commit protocol could not reach a decision."""


class TwoPhaseInDoubtError(TwoPhaseCommitError):
    """A durably-decided transaction could not apply its decision to a
    prepared branch (phase 2 kept failing).

    The branch is in doubt *on a live node*: it still holds its locks,
    and only restart recovery — which replays the durable decision —
    can resolve it.  Callers should treat this as node-fatal, exactly
    like a WAL panic."""


# ---------------------------------------------------------------------------
# Queueing (Figure 3 operations)
# ---------------------------------------------------------------------------


class QueueError(ReproError):
    """Base class for queue-manager errors."""


class NoSuchQueueError(QueueError):
    """The named queue does not exist in the repository."""


class NoSuchRepositoryError(QueueError):
    """The named repository is not known to the queue manager."""


class QueueExistsError(QueueError):
    """A queue with this name already exists in the repository."""


class QueueStoppedError(QueueError):
    """The queue exists but has been stopped by data-definition ops."""


class QueueEmpty(QueueError):
    """Dequeue found no eligible element (and was not asked to block)."""


class NoSuchElementError(QueueError):
    """No element with the given eid exists (Read / Kill_element)."""


class ElementLockedError(QueueError):
    """Strict-order dequeue hit an element held by an uncommitted
    transaction (Section 10's FIFO-vs-concurrency discussion)."""


class NotRegisteredError(QueueError):
    """A tagged operation or handle was used without a registration."""


class RegistrationExistsError(QueueError):
    """Attempt to register a registrant name that is already active
    with ``fail_if_registered=True``."""


class KillFailedError(QueueError):
    """Kill_element could not delete the element (already consumed by a
    committed transaction — Section 7)."""


# ---------------------------------------------------------------------------
# Client model (Section 3)
# ---------------------------------------------------------------------------


class ClientError(ReproError):
    """Base class for Client Model protocol violations."""


class NotConnectedError(ClientError):
    """A client operation other than Connect was invoked while
    disconnected."""


class ProtocolViolation(ClientError):
    """The client violated the one-request-at-a-time protocol of
    Section 3 (e.g. Send while a reply is outstanding)."""


class CancelFailed(ClientError):
    """Cancel-last-request could not cancel (Section 7): the request was
    already consumed by a committed transaction."""


# ---------------------------------------------------------------------------
# Communication
# ---------------------------------------------------------------------------


class CommError(ReproError):
    """Base class for communication-substrate errors."""


class MessageLost(CommError):
    """The simulated network dropped the message."""


class PartitionedError(CommError):
    """Source and destination are in different partitions."""


class RpcTimeout(CommError):
    """A remote procedure call did not receive a response in time."""


class Busy(CommError):
    """Admission control pushed the request back: the target shard has
    too many calls in flight (queue-depth backpressure).  Retryable —
    the client should back off and resubmit, exactly like a lost
    message; the request was *not* accepted, so nothing needs undoing.
    """


# ---------------------------------------------------------------------------
# Simulation (crash injection)
# ---------------------------------------------------------------------------


class SimulatedCrash(BaseException):
    """An injected crash.

    Deliberately derives from :class:`BaseException` so that protocol
    code which catches :class:`ReproError` (or even ``Exception``) does
    not accidentally absorb an injected crash — exactly as a real power
    failure cannot be caught.  Only the simulation harness catches it.
    """

    def __init__(self, point: str = ""):
        super().__init__(f"simulated crash at {point!r}" if point else "simulated crash")
        self.point = point
