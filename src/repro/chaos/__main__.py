"""Chaos-campaign CLI: ``python -m repro.chaos``.

Runs ``--episodes`` seeded episodes starting at ``--base-seed``; every
failing episode is replayed to confirm determinism and shrunk to a
minimal counterexample, which is printed and included in the JSON
report (``--out``).  Exit status is non-zero iff any episode failed.

Examples::

    python -m repro.chaos --episodes 200 --base-seed 0
    python -m repro.chaos --seed 1234                  # replay one seed
    python -m repro.chaos --episodes 50 --planted-bug ack-no-force
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace
from typing import Any

from repro.chaos.engine import run_episode
from repro.chaos.schedule import ChaosConfig
from repro.chaos.shrink import shrink


def _build_config(args: argparse.Namespace) -> ChaosConfig:
    return ChaosConfig(
        clients=args.clients,
        requests_per_client=args.requests,
        servers=args.servers,
        max_faults=args.max_faults,
        planted_bug=args.planted_bug,
        shards=args.shards,
        checkpoint_interval_bytes=args.checkpoint_bytes,
        flight_dir=args.flight_dir,
        replicate=args.replicate,
        cc=args.cc,
    )


def _parse_args(argv: list[str] | None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos",
        description="Deterministic chaos campaigns over the recoverable-queue stack.",
    )
    parser.add_argument("--episodes", type=int, default=200,
                        help="number of episodes to run (default 200)")
    parser.add_argument("--base-seed", type=int, default=0,
                        help="first seed; episode i uses base+i (default 0)")
    parser.add_argument("--seed", type=int, default=None,
                        help="replay a single seed (ignores --episodes)")
    parser.add_argument("--clients", type=int, default=3,
                        help="concurrent clients per episode (default 3)")
    parser.add_argument("--requests", type=int, default=3,
                        help="requests each client sends (default 3)")
    parser.add_argument("--servers", type=int, default=2,
                        help="servers on the request queue (default 2)")
    parser.add_argument("--max-faults", type=int, default=6,
                        help="max faults sampled per episode (default 6)")
    parser.add_argument("--shards", type=int, default=1,
                        help="repository shards under the queue node; >1 "
                             "targets disk faults at individual shards and "
                             "adds 2PC crash points (default 1)")
    parser.add_argument("--checkpoint-bytes", type=int, default=None,
                        help="run a byte-triggered fuzzy checkpointer during "
                             "each episode (polled every step) and add the "
                             "ckpt.* crash points to the sampler (default off)")
    parser.add_argument("--replicate", action="store_true", default=False,
                        help="attach a warm standby + log shipper to every "
                             "shard and add the node.kill / failover / "
                             "standby.lag fault family to the sampler "
                             "(default off)")
    parser.add_argument("--cc", choices=("2pl", "deterministic", "auto"),
                        default="2pl",
                        help="concurrency-control policy under test: "
                             "'deterministic'/'auto' route queue-shaped "
                             "transactions through the plan-queue lane and "
                             "add the det.plan.* crash points to the "
                             "sampler (default 2pl)")
    parser.add_argument("--flight-dir", default=None,
                        help="write flight-recorder JSONL dumps for failing "
                             "episodes into this directory (default off)")
    parser.add_argument("--planted-bug", default=None,
                        help="enable a known test-only bug (e.g. 'ack-no-force') "
                             "to demo failure finding and shrinking")
    parser.add_argument("--shrink", dest="shrink", action="store_true",
                        default=True, help="shrink failing schedules (default)")
    parser.add_argument("--no-shrink", dest="shrink", action="store_false",
                        help="skip shrinking failing schedules")
    parser.add_argument("--out", default=None,
                        help="write the JSON campaign report to this file")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="only print failures and the summary")
    return parser.parse_args(argv)


def main(argv: list[str] | None = None) -> int:
    args = _parse_args(argv)
    config = _build_config(args)
    seeds = (
        [args.seed]
        if args.seed is not None
        else [args.base_seed + i for i in range(args.episodes)]
    )

    outcomes: dict[str, int] = {}
    failures: list[dict[str, Any]] = []
    results: list[dict[str, Any]] = []
    for seed in seeds:
        result = run_episode(seed, config)
        outcomes[result.outcome] = outcomes.get(result.outcome, 0) + 1
        results.append(result.to_record())
        if not args.quiet or result.failed:
            print(
                f"seed {seed}: {result.outcome}  "
                f"(steps={result.steps} restarts={result.restarts} "
                f"faults={result.faults_injected})  "
                f"[{result.schedule.describe()}]"
            )
        if not result.failed:
            continue

        failure: dict[str, Any] = {"seed": seed, "result": result.to_record()}
        if result.flight_dump is not None:
            failure["flight_dump"] = result.flight_dump
            print(f"  flight recorder dump: {result.flight_dump}")
        # Replay + shrinking re-run the episode many times; keep only
        # the original failure's flight dump instead of rewriting it on
        # every failing replay.
        quiet_config = replace(config, flight_dir=None)
        replay = run_episode(seed, quiet_config)
        failure["deterministic"] = replay.fingerprint == result.fingerprint
        if not failure["deterministic"]:
            print(f"seed {seed}: WARNING — replay fingerprint differs "
                  "(non-deterministic episode, shrinking skipped)")
        elif args.shrink:
            shrunk = shrink(result.schedule, quiet_config, failed=result)
            failure["shrink"] = shrunk.to_record()
            print(f"seed {seed}: shrunk {len(result.schedule.faults)} -> "
                  f"{len(shrunk.minimal.faults)} faults "
                  f"in {shrunk.replays} replays")
            print(f"  minimal schedule: {shrunk.minimal.describe()}")
            for violation in shrunk.result.violations:
                print(f"  {violation}")
            print("  minimal schedule (JSON): "
                  + json.dumps(shrunk.minimal.to_record(), sort_keys=True))
        for violation in result.violations:
            print(f"  {violation}")
        if result.error:
            print(f"  error: {result.error}")
        failures.append(failure)

    total = len(seeds)
    summary = ", ".join(f"{k}={v}" for k, v in sorted(outcomes.items()))
    print(f"\n{total} episodes: {summary}")
    if failures:
        print(f"{len(failures)} FAILING seed(s): "
              + ", ".join(str(f["seed"]) for f in failures))

    if args.out:
        report = {
            "episodes": total,
            "base_seed": args.base_seed if args.seed is None else args.seed,
            "config": {
                "clients": config.clients,
                "requests_per_client": config.requests_per_client,
                "servers": config.servers,
                "max_faults": config.max_faults,
                "planted_bug": config.planted_bug,
                "shards": config.shards,
                "checkpoint_interval_bytes": config.checkpoint_interval_bytes,
                "flight_dir": config.flight_dir,
                "replicate": config.replicate,
                "cc": config.cc,
            },
            "outcomes": outcomes,
            "failures": failures,
            "results": results,
        }
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
        print(f"report written to {args.out}")

    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
