"""The chaos-campaign engine: one seeded, reproducible episode.

One episode runs a concurrent-by-interleaving client/server workload —
multiple clerks talking RPC over a
:class:`~repro.comm.network.SimNetwork` to a shared queue node,
multiple servers plus the error-queue replier processing requests under
transactions, application state in a recoverable KV table — while the
sampled :class:`~repro.chaos.schedule.ChaosSchedule` injects crashes,
disk I/O faults, partitions, poisoned handlers and client crashes.  The
scheduler is single-threaded and seeded: "concurrency" is a random but
reproducible interleaving of actor steps, so the same seed replays the
identical execution bit for bit (the trace fingerprint proves it).

Whenever a node failure surfaces (an injected :class:`SimulatedCrash`,
a WAL panic after a failed flush, or a dead disk) the engine performs
the paper's full restart protocol: crash the disks, revive the device,
rebuild the repositories from the durable prefix (restart recovery),
rewire the remote queue-manager proxies, and let every client
resynchronize via Figure 2.  After the workload finishes (or the fault
budget is exhausted and a clean drain completes it), the episode closes
with :class:`~repro.core.guarantees.GuaranteeChecker` plus structural
checks: the WAL re-scans cleanly, the work queues drained, and the KV
counters match the committed executions in the trace.

Outcomes:

* ``ok`` — workload completed, zero violations, all invariants hold;
* ``violation`` — a guarantee or invariant was violated (a real bug);
* ``stalled`` — the workload could not complete even after a clean
  drain (wedged state — also a bug);
* ``corruption_detected`` — an injected bit-flip made recovery raise
  :class:`~repro.errors.CorruptRecordError` /
  :class:`~repro.errors.CheckpointError`; detecting (rather than
  silently absorbing) media corruption is the correct behaviour, so
  the episode passes;
* ``corruption_data_loss`` — a bit-flip landed where the CRC framing
  reads as a torn tail, so committed state was silently truncated and
  the guarantees failed *because durable storage lied*.  Expected for
  corruption faults (redo-only logging cannot distinguish this from a
  torn write without end-to-end checksummed checkpoints); reported
  separately, not as a protocol bug;
* ``error`` — the engine itself failed (always a bug: file an issue
  with the seed).
"""

from __future__ import annotations

import hashlib
import json
import logging
import random
from dataclasses import dataclass, field
from typing import Any

from repro.chaos.schedule import (
    KIND_CLIENT_CRASH,
    KIND_CRASH,
    KIND_DISK,
    KIND_FAILOVER,
    KIND_NODE_KILL,
    KIND_PARTITION,
    KIND_POISON,
    KIND_STANDBY_LAG,
    ChaosConfig,
    ChaosSchedule,
    sample_schedule,
)
from repro.comm.network import SimNetwork
from repro.comm.remote import QueueManagerService, RemoteQueueManager
from repro.comm.transport import InProcListener, InProcTransport
from repro.core.clerk import Clerk
from repro.core.guarantees import GuaranteeChecker
from repro.core.request import REPLY_OK, Request, make_rid, rid_sequence
from repro.core.system import TPSystem
from repro.errors import (
    CheckpointError,
    CommError,
    CorruptRecordError,
    DeadlockError,
    DiskCrashedError,
    QueueEmpty,
    SimulatedCrash,
    StorageError,
    TransactionAborted,
    TwoPhaseInDoubtError,
    WalPanicError,
)
from repro.obs import FlightRecorder, Observability, get_observability
from repro.sim.crash import FaultInjector
from repro.sim.trace import TraceRecorder
from repro.storage.disk import MemDisk
from repro.storage.faults import CORRUPT, FaultyDisk
from repro.transaction.log import KIND_COMMIT

logger = logging.getLogger(__name__)

_QM_ENDPOINT = "qm"
_COUNTS_TABLE = "chaos.counts"
_RESTART_ATTEMPTS = 10

OUTCOME_OK = "ok"
OUTCOME_VIOLATION = "violation"
OUTCOME_STALLED = "stalled"
OUTCOME_CORRUPTION_DETECTED = "corruption_detected"
OUTCOME_CORRUPTION_DATA_LOSS = "corruption_data_loss"
OUTCOME_ERROR = "error"

#: outcomes the campaign counts as failures (replayed and shrunk)
FAILING_OUTCOMES = (OUTCOME_VIOLATION, OUTCOME_STALLED, OUTCOME_ERROR)


class ChaosPoison(Exception):
    """Raised by the poisoned handler; aborts the processing attempt."""


class _RestartWedged(Exception):
    """Recovery could not complete within the retry budget."""


class _CountingDevice:
    """A testable output device (Section 3): its state is the number of
    replies processed, so the ckpt comparison of Figure 2 detects an
    unprocessed reply."""

    def __init__(self, trace: TraceRecorder, client_id: str):
        self.trace = trace
        self.client_id = client_id
        self.processed: list[tuple[str, Any]] = []

    def state(self) -> int:
        return len(self.processed)

    def process(self, reply: Any) -> None:
        self.processed.append((reply.rid, reply.body))
        # The status rides along as durable-side evidence: a crash
        # between commit force and the server's on-commit trace hook
        # loses the volatile ``request.executed`` event, but the reply
        # the client eventually processes still proves the execution.
        self.trace.record(
            "reply.processed", reply.rid, client=self.client_id,
            status=reply.status,
        )


class _ClientActor:
    """One client as an explicit Figure-2 state machine.

    The blocking loop of :class:`~repro.core.client.Client` is unrolled
    into single-step transitions so the seeded scheduler can interleave
    many clients (and crash them) deterministically.  States:
    ``connect`` (register + resynchronize), ``send``, ``receive``
    (non-blocking poll; stays there until the reply arrives), ``done``.
    """

    def __init__(self, engine: "ChaosEngine", index: int):
        self.engine = engine
        self.index = index
        self.id = f"c{index}"
        self.device = _CountingDevice(engine.trace, self.id)
        self.work = [
            {"client": self.id, "n": n}
            for n in range(1, engine.config.requests_per_client + 1)
        ]
        self.clerk: Clerk | None = None
        self.state = "connect"
        self.seq = 1
        self.done = False

    def reset(self) -> None:
        """Client (or node) crash: volatile clerk state is gone; the
        next step reconnects and resynchronizes."""
        if not self.done:
            self.clerk = None
            self.state = "connect"

    # -- one scheduler step ------------------------------------------------

    def step(self) -> None:
        if self.done:
            return
        try:
            if self.state == "connect":
                self._connect()
            elif self.state == "send":
                self._send()
            else:
                self._receive()
        except (WalPanicError, DiskCrashedError):
            raise  # node-fatal: the engine restarts the node
        except (CommError, QueueEmpty, TransactionAborted, DeadlockError,
                StorageError):
            # Lost/partitioned RPC, reply not there yet, or the queue
            # operation's internal transaction aborted (e.g. a transient
            # injected I/O error).  The state machine retries the same
            # state on a later step — rid-tagged operations make the
            # retry idempotent.
            return

    def _connect(self) -> None:
        engine = self.engine
        self.clerk = Clerk(
            self.id,
            engine.rqms[self.index],
            engine.config.request_queue,
            engine.rqms[self.index],
            f"reply.{self.id}",
            trace=engine.trace,
            injector=engine.injector,
        )
        s_rid, r_rid, ckpt = self.clerk.connect()
        if s_rid is None:
            self.seq = 1
            self.state = "send"
            return
        # Figure 2 lines 2-11 (mirrors Client.resynchronize).
        engine.trace.record("request.sent", s_rid, client=self.id, resync=True)
        if s_rid != r_rid:
            engine.trace.record("client.resync_receive", s_rid, client=self.id)
            self.seq = rid_sequence(s_rid)
            self.state = "receive"
            return
        if ckpt is None or self.device.state() == ckpt:
            # Reply received but never consumed by the device.
            engine.trace.record("client.resync_rereceive", s_rid, client=self.id)
            self.device.process(self.clerk.rereceive())
        self._advance(rid_sequence(s_rid))

    def _send(self) -> None:
        rid = make_rid(self.id, self.seq)
        request = Request(
            rid=rid,
            body=self.work[self.seq - 1],
            client_id=self.id,
            reply_to=f"reply.{self.id}",
        )
        # A retried Send after a lost RPC response reuses the rid; the
        # tagged enqueue deduplicates it at the queue manager.
        self.clerk.send(request, rid)
        self.state = "receive"

    def _receive(self) -> None:
        reply = self.clerk.receive(ckpt=self.device.state(), timeout=0)
        self.device.process(reply)
        self._advance(rid_sequence(reply.rid))

    def _advance(self, completed_seq: int) -> None:
        self.seq = completed_seq + 1
        if self.seq > len(self.work):
            self.done = True
            self.state = "done"
        else:
            self.state = "send"


@dataclass
class EpisodeResult:
    """What one episode did and how it ended."""

    seed: int
    outcome: str
    schedule: ChaosSchedule
    violations: list[str] = field(default_factory=list)
    steps: int = 0
    restarts: int = 0
    faults_injected: int = 0
    fingerprint: str = ""
    error: str | None = None
    #: path of the flight-recorder dump written for a failing episode
    #: (``None`` when the episode passed or no flight_dir was set)
    flight_dump: str | None = None

    @property
    def failed(self) -> bool:
        return self.outcome in FAILING_OUTCOMES

    def to_record(self) -> dict[str, Any]:
        record: dict[str, Any] = {
            "seed": self.seed,
            "outcome": self.outcome,
            "steps": self.steps,
            "restarts": self.restarts,
            "faults_injected": self.faults_injected,
            "fingerprint": self.fingerprint,
            "schedule": self.schedule.to_record(),
        }
        if self.violations:
            record["violations"] = list(self.violations)
        if self.error is not None:
            record["error"] = self.error
        if self.flight_dump is not None:
            record["flight_dump"] = self.flight_dump
        return record


class ChaosEngine:
    """Runs one episode for a given schedule.  Single-use."""

    def __init__(self, schedule: ChaosSchedule, config: ChaosConfig | None = None):
        self.schedule = schedule
        self.config = config if config is not None else ChaosConfig()
        self.seed = schedule.seed
        self._rng = random.Random(f"chaos:{self.seed}:sched")
        self.trace = TraceRecorder()
        self.injector = FaultInjector(record=False)
        for fault in schedule.of_kind(KIND_CRASH):
            self.injector.arm(fault.point, fault.hit)
        # Black-box flight recorder: always real (even when ambient
        # observability is disabled) so a failing episode can dump the
        # last events leading up to the failure.  The episode's obs
        # keeps the ambient metrics/tracing behaviour but substitutes
        # this ring, so component failure-path events (wal.panic,
        # 2pc.in_doubt, disk.fault) land here too.
        ambient = get_observability()
        self.flight = FlightRecorder(
            name=f"chaos-{self.seed}", auto_dump_dir=self.config.flight_dir
        )
        self.obs = Observability(
            enabled=ambient.enabled,
            metrics=ambient.metrics if ambient.enabled else None,
            tracer=ambient.tracer if ambient.enabled else None,
            flight=self.flight,
        )
        self.injector.on_crash.append(
            lambda point: self.flight.record("crash.point", point=point)
        )
        # One faulty device per repository shard; each disk fault is
        # routed to its sampled target shard.  With shards=1 every fault
        # lands on the single disk, matching the unsharded engine
        # exactly.
        shards = max(1, self.config.shards)
        self.faulty_disks = [
            FaultyDisk(
                MemDisk(torn_tail_bytes=schedule.torn_tail),
                faults=[
                    f.to_disk_fault()
                    for f in schedule.of_kind(KIND_DISK)
                    if f.target % shards == i
                ],
                seed=self.seed + i,
                obs=self.obs,
            )
            for i in range(shards)
        ]
        self.faulty = self.faulty_disks[0]
        self.network = SimNetwork(
            seed=self.seed,
            loss_rate=schedule.loss_rate,
            dup_rate=schedule.dup_rate,
        )
        self._poison_hits = {f.hit for f in schedule.of_kind(KIND_POISON)}
        self._handler_calls = 0
        self._partition_heal_at: int | None = None
        #: pending standby.lag heals: (heal_step, shard index)
        self._lag_heal: list[tuple[int, int]] = []
        #: standby disks / controller carried across failover rebuilds
        self._standby_carry: list | None = None
        self._controller_carry = None
        #: injected-fault counts of disks retired by failovers
        self._retired_faults = 0
        self.restarts = 0
        self.steps = 0
        metrics = get_observability().metrics
        self._m_steps = metrics.counter(
            "chaos_steps_total", "scheduler steps taken by chaos episodes"
        ).labels()
        self._m_restarts = metrics.counter(
            "chaos_restarts_total", "full restart recoveries performed"
        ).labels()

        self.clients = [_ClientActor(self, i) for i in range(self.config.clients)]
        # Clerk-side RPC plumbing: each client endpoint talks to the
        # queue node's endpoint; the service is re-pointed at the fresh
        # queue manager after every restart.
        self.qm_service = QueueManagerService(None)
        InProcListener(self.network, _QM_ENDPOINT, self.qm_service.handle)
        self.rqms: list[RemoteQueueManager] = []
        for i in range(self.config.clients):
            channel = InProcTransport(
                self.network, f"c{i}", _QM_ENDPOINT,
                max_retries=2, backoff_base=0.0, seed=self.seed + i,
            )
            self.rqms.append(RemoteQueueManager(channel))
        self.system: TPSystem | None = None
        self.servers: list = []

    # ------------------------------------------------------------------
    # Workload pieces
    # ------------------------------------------------------------------

    def _handler(self, txn, request):
        self._handler_calls += 1
        if self._handler_calls in self._poison_hits:
            raise ChaosPoison(f"poisoned handler invocation #{self._handler_calls}")
        body = request.body
        total = self.table.update(
            txn, f"count:{body['client']}", lambda v: (v or 0) + 1
        )
        return {"client": body["client"], "count": total}

    def _wire(self, system: TPSystem) -> None:
        """(Re)build everything volatile on top of a (re)opened system."""
        self.system = system
        self.table = system.table(_COUNTS_TABLE)
        for actor in self.clients:
            system.ensure_reply_queue(actor.id)
        self.qm_service.qm = system.request_qm
        self.servers = [
            system.server(f"s{i}", self._handler)
            for i in range(self.config.servers)
        ]
        self.servers.append(system.error_reply_server("err-replier"))
        if system.replicas is not None:
            # Keep the carry fresh: a later rebuild (restart or another
            # failover) must re-attach the same standby images and the
            # same durable promotion ledger.
            self._standby_carry = system.replicas.standby_disks()
            self._controller_carry = system.failover_controller
        if self.config.planted_bug:
            self._apply_planted_bug(system)
        for actor in self.clients:
            actor.reset()

    def _apply_planted_bug(self, system: TPSystem) -> None:
        """Test-only bug for the shrinking demo.  ``ack-no-force``
        re-introduces the classic recovery bug the WAL exists to
        prevent: commit acknowledges before its record is forced, so a
        crash in the ack-to-next-force window silently loses an
        acknowledged transaction and the request is executed again at
        recovery."""
        if self.config.planted_bug != "ack-no-force":
            raise ValueError(f"unknown planted bug {self.config.planted_bug!r}")
        for log in system.request_repo.logs:

            def bad_log_commit(txn_id: int, _log=log) -> int:
                return _log._append(KIND_COMMIT, txn_id, None, {}, flush=False)

            log.log_commit = bad_log_commit

    # ------------------------------------------------------------------
    # Crash / restart protocol
    # ------------------------------------------------------------------

    def _boot(self) -> None:
        """(Re)build the queue node from its disk and wire the workload
        onto it, surviving faults injected into recovery and boot-time
        registration themselves.  Each failed attempt advances the
        injectors' hit counters, so retrying makes progress — exactly
        like an operator restarting a node that crashed during
        recovery."""
        for _ in range(_RESTART_ATTEMPTS):
            try:
                if self.system is None:
                    if len(self.faulty_disks) > 1:
                        system = TPSystem(
                            shard_disks=self.faulty_disks,
                            injector=self.injector,
                            trace=self.trace,
                            obs=self.obs,
                            request_queue=self.config.request_queue,
                            max_aborts=self.config.max_aborts,
                            checkpoint_interval_bytes=(
                                self.config.checkpoint_interval_bytes
                            ),
                            replicate=self.config.replicate,
                            standby_disks=self._standby_carry,
                            replica_controller=self._controller_carry,
                            cc=self.config.cc,
                        )
                    else:
                        system = TPSystem(
                            request_disk=self.faulty,
                            injector=self.injector,
                            trace=self.trace,
                            obs=self.obs,
                            request_queue=self.config.request_queue,
                            max_aborts=self.config.max_aborts,
                            checkpoint_interval_bytes=(
                                self.config.checkpoint_interval_bytes
                            ),
                            replicate=self.config.replicate,
                            standby_disks=self._standby_carry,
                            replica_controller=self._controller_carry,
                            cc=self.config.cc,
                        )
                else:
                    system = self.system.reopen(injector=self.injector)
                self._wire(system)
                return
            except SimulatedCrash:
                self._crash_disk()
            except (CorruptRecordError, CheckpointError):
                raise
            except StorageError:
                self._crash_disk()
        raise _RestartWedged(
            f"recovery did not complete within {_RESTART_ATTEMPTS} attempts"
        )

    def _crash_disk(self) -> None:
        """Power-cycle the devices between recovery attempts."""
        for faulty in self.faulty_disks:
            if faulty.crashed is False:
                faulty.crash()
            faulty.revive()
            faulty.recover()

    def _restart(self) -> None:
        """Full node failure + restart recovery + client resync."""
        self.restarts += 1
        self._m_restarts.inc()
        self.flight.record("node.restart", n=self.restarts, step=self.steps)
        self.system.crash()
        # A permanently-failed device is replaced at restart; planned
        # (not-yet-fired) faults survive, as does the injected history.
        for faulty in self.faulty_disks:
            faulty.revive()
        self._boot()

    def _fail_over(self, target: int, planned: bool) -> None:
        """Depose one shard's primary and boot its standby's image.

        ``node.kill`` crashes the primary's device *first* — promotion
        then proceeds from whatever the standby last acknowledged (the
        tee buffer needs no primary reads).  A planned ``failover``
        fences and drains the live primary before retiring it, so the
        standby is level at the hand-off.  Either way the old device is
        permanently retired, the promoted image is wrapped in a fresh
        fault-free device, and the node is rebuilt through the retrying
        boot protocol with the surviving standbys and the durable
        promotion ledger carried across.
        """
        system = self.system
        if system is None or system.replicas is None:
            return
        index = target % len(self.faulty_disks)
        reason = "failover" if planned else "node.kill"
        self.flight.record("node.failover", shard=index, planned=planned,
                           step=self.steps, reason=reason)
        deposed = self.faulty_disks[index]
        if not planned and deposed.crashed is False:
            deposed.crash()
        promoted = system.replicas.fail_over(index, reason=reason)
        carry = list(system.replicas.standby_disks())
        carry[index] = None  # its image is now the primary
        system.replicas.detach()
        self._standby_carry = carry
        self._controller_carry = system.failover_controller
        # The promotion is the epoch boundary the guarantees must
        # survive; promotion_safety() keys off this trace event.
        self.trace.record("node.failover", f"s{index}", shard=index,
                          planned=planned)
        if deposed.crashed is False:
            deposed.crash()  # a planned switchover still retires the node
        self._retired_faults += len(deposed.injected)
        self.faulty_disks[index] = FaultyDisk(
            promoted, faults=[], seed=self.seed + 1000 + index, obs=self.obs,
        )
        self.faulty = self.faulty_disks[0]
        self.restarts += 1
        self._m_restarts.inc()
        self.system = None  # the next boot is a fresh build over the
        for faulty in self.faulty_disks:  # new disk set
            faulty.revive()
        self._boot()

    def _start_lag(self, target: int, heal_step: int) -> None:
        """standby.lag fault: shipping to one standby pauses (flushed
        chunks pile up in the tee buffer) until the heal step."""
        if self.system is None or self.system.replicas is None:
            return
        shard = target % len(self.faulty_disks)
        self.system.replicas.pause(shard)
        self._lag_heal.append((heal_step, shard))
        self.flight.record("standby.lag", shard=shard, until=heal_step)

    def _end_lag(self, shard: int) -> None:
        if self.system is None or self.system.replicas is None:
            return
        shipper = self.system.replicas.shippers[shard]
        # A restart or failover in the window replaced the shipper (a
        # fresh one is never paused), so only resume a live pause.
        if shipper.paused:
            shipper.resume()

    # ------------------------------------------------------------------
    # Scheduler
    # ------------------------------------------------------------------

    def _apply_step_faults(self, step: int) -> None:
        if self._partition_heal_at is not None and step >= self._partition_heal_at:
            self.network.heal()
            self._partition_heal_at = None
        for heal in [h for h in self._lag_heal if h[0] <= step]:
            self._lag_heal.remove(heal)
            self._end_lag(heal[1])
        for fault in self.schedule.faults:
            if fault.kind == KIND_PARTITION and fault.step == step:
                # Unlisted endpoints stay in group 0, so the victim must
                # be the sole member of a non-zero group.
                victim = f"c{fault.target % self.config.clients}"
                self.network.partition([[], [victim]])
                self._partition_heal_at = step + fault.duration
            elif fault.kind == KIND_CLIENT_CRASH and fault.step == step:
                self.clients[fault.target % self.config.clients].reset()
            elif fault.kind == KIND_NODE_KILL and fault.step == step:
                self._fail_over(fault.target, planned=False)
            elif fault.kind == KIND_FAILOVER and fault.step == step:
                self._fail_over(fault.target, planned=True)
            elif fault.kind == KIND_STANDBY_LAG and fault.step == step:
                self._start_lag(fault.target, step + fault.duration)

    def _server_step(self, server) -> None:
        try:
            server.process_one(block=False)
        except QueueEmpty:
            pass
        except (ChaosPoison, TransactionAborted, DeadlockError):
            pass  # attempt aborted; the request went back to its queue
        except (WalPanicError, DiskCrashedError):
            raise  # node-fatal: the engine restarts the node
        except StorageError:
            pass  # transient I/O error surfaced as an abort; keep going

    def _workload_finished(self) -> bool:
        if not all(actor.done for actor in self.clients):
            return False
        repo = self.system.request_repo
        return all(
            repo.queues[name].depth() == 0
            for name in (self.config.request_queue, self.system.error_queue)
            if name in repo.queues
        )

    def _run_steps(self, budget: int) -> bool:
        """Interleave actors for up to ``budget`` steps; True when the
        workload finished."""
        for _ in range(budget):
            if self._workload_finished():
                return True
            self.steps += 1
            self._m_steps.inc()
            self._apply_step_faults(self.steps)
            pick = self._rng.randrange(len(self.clients) + len(self.servers))
            try:
                if pick < len(self.clients):
                    self.clients[pick].step()
                else:
                    self._server_step(self.servers[pick - len(self.clients)])
                self._poll_checkpointers()
                self._poll_replication()
            except SimulatedCrash:
                self._restart()
            except (WalPanicError, DiskCrashedError, TwoPhaseInDoubtError):
                # Node-fatal conditions: a panicked WAL, a dead disk, or
                # a cross-shard branch stuck in doubt with its locks —
                # restart recovery resolves all three.
                self._restart()
        return self._workload_finished()

    def _poll_checkpointers(self) -> None:
        """Drive the byte-triggered checkpointers synchronously.

        Under fault injection the repository creates them passive (no
        thread), so the engine polls once per scheduler step — the
        checkpoint runs inline, deterministically placed in the
        interleaving, and injected ``ckpt.*`` crash points fire here.
        Node-fatal errors propagate to the step loop's restart handling;
        a transient I/O failure just leaves the old checkpoint governing
        recovery until the next poll.
        """
        if self.config.checkpoint_interval_bytes is None:
            return
        for shard in self.system.request_repo.shards:
            if shard.checkpointer is None:
                continue
            try:
                shard.checkpointer.poll()
            except (SimulatedCrash, WalPanicError, DiskCrashedError):
                raise
            except StorageError:
                pass

    def _poll_replication(self) -> None:
        """One shipping housekeeping pass per scheduler step:
        checkpoint-blob mirroring, post-lag/post-restart resync and
        standby warm replay.  Primary-side faults are absorbed inside
        :meth:`LogShipper.poll` — a killed primary just stops feeding
        its standby."""
        if self.system is not None and self.system.replicas is not None:
            self.system.replicas.pump()

    # ------------------------------------------------------------------
    # Episode
    # ------------------------------------------------------------------

    def run(self) -> EpisodeResult:
        corrupted = any(
            f.mode == CORRUPT for f in self.schedule.of_kind(KIND_DISK)
        )
        try:
            self._boot()
            finished = self._run_steps(self.config.max_steps)
            if not finished:
                # Fault budget spent: quiesce and drain cleanly.  If the
                # workload *still* cannot finish, the stack wedged.
                self._quiesce()
                self._restart()
                finished = self._run_steps(self.config.drain_steps)
            # The verdict is about the *recoverable* state: stop
            # injecting, and if the storage stack was left unusable
            # (panicked WAL, crashed disk) restart once more so the
            # checks read the durable truth.
            self._quiesce()
            if self.system.request_repo.wal_panicked or any(
                getattr(faulty, "crashed", False)
                for faulty in self.faulty_disks
            ):
                self._restart()
        except (CorruptRecordError, CheckpointError) as exc:
            if corrupted:
                return self._result(OUTCOME_CORRUPTION_DETECTED, error=str(exc))
            return self._result(OUTCOME_ERROR, error=f"{type(exc).__name__}: {exc}")
        except _RestartWedged as exc:
            return self._result(OUTCOME_STALLED, error=str(exc))
        except Exception as exc:  # engine bug or unhardened protocol path
            logger.exception("chaos episode %d failed", self.seed)
            return self._result(OUTCOME_ERROR, error=f"{type(exc).__name__}: {exc}")

        violations = self._check(finished)
        if violations:
            if corrupted:
                return self._result(
                    OUTCOME_CORRUPTION_DATA_LOSS, violations=violations
                )
            return self._result(OUTCOME_VIOLATION, violations=violations)
        if not finished:
            return self._result(OUTCOME_STALLED)
        return self._result(OUTCOME_OK)

    def _quiesce(self) -> None:
        """Disarm every fault source for the drain phase."""
        self.injector.disarm()
        for faulty in self.faulty_disks:
            faulty.heal()
        self.network.heal()
        self.network.loss_rate = 0.0
        self.network.dup_rate = 0.0
        self._poison_hits = set()
        self._partition_heal_at = None
        self._lag_heal.clear()
        if self.system is not None and self.system.replicas is not None:
            for shipper in self.system.replicas.shippers:
                while shipper.paused:
                    shipper.resume()
            self.system.replicas.pump()

    def _check(self, finished: bool) -> list[str]:
        # An unfinished (stalled) workload still must not violate the
        # guarantees over what *did* happen; completion is only
        # required when the episode claims to have completed.
        violations = [
            str(v)
            for v in GuaranteeChecker(self.trace).check_all(
                require_completion=finished
            )
        ]
        # WAL structural invariant: every shard's surviving log must
        # re-scan cleanly end to end.
        for index, log in enumerate(self.system.request_repo.logs):
            try:
                log.records()
            except StorageError as exc:
                violations.append(
                    f"[wal-structure] shard {index} log re-scan failed: {exc}"
                )
        if finished:
            violations.extend(self._check_counters())
        return violations

    def _check_counters(self) -> list[str]:
        """Application invariant: each client's durable counter equals
        its distinct successfully-executed requests — lost updates and
        double-redo both break this equality.  Execution evidence is the
        committed ``request.executed`` event or, when a crash destroyed
        that volatile record after the commit forced, the ok reply the
        client processed."""
        violations: list[str] = []
        ok_rids = {
            str(e.rid)
            for kind in ("request.executed", "reply.processed")
            for e in self.trace.events(kind)
            if e.detail.get("status") == REPLY_OK
        }
        try:
            with self.system.request_repo.tm.transaction() as txn:
                for actor in self.clients:
                    expected = sum(
                        1 for rid in ok_rids if rid.startswith(f"{actor.id}#")
                    )
                    actual = self.table.get(txn, f"count:{actor.id}", 0)
                    if actual != expected:
                        violations.append(
                            f"[app-invariant] client {actor.id}: counter is "
                            f"{actual}, trace shows {expected} successful "
                            "executions"
                        )
        except StorageError as exc:
            violations.append(f"[app-invariant] counter table unreadable: {exc}")
        return violations

    def _result(
        self,
        outcome: str,
        violations: list[str] | None = None,
        error: str | None = None,
    ) -> EpisodeResult:
        get_observability().metrics.counter(
            "chaos_episodes_total", "chaos episodes by outcome", ("outcome",)
        ).labels(outcome=outcome).inc()
        for violation in violations or []:
            self.flight.record("guarantee.violation", detail=violation)
        self.flight.record(
            "episode.end", outcome=outcome, steps=self.steps,
            restarts=self.restarts, error=error,
        )
        flight_dump: str | None = None
        if outcome in FAILING_OUTCOMES:
            flight_dump = self.flight.auto_dump(outcome)
        return EpisodeResult(
            seed=self.seed,
            outcome=outcome,
            schedule=self.schedule,
            violations=violations or [],
            steps=self.steps,
            restarts=self.restarts,
            faults_injected=(self._retired_faults
                             + sum(len(f.injected) for f in self.faulty_disks)),
            fingerprint=self.fingerprint(),
            error=error,
            flight_dump=flight_dump,
        )

    def fingerprint(self) -> str:
        """SHA-256 over the serialized trace: bit-for-bit replay proof."""
        payload = json.dumps(
            [
                [
                    e.seq,
                    e.kind,
                    str(e.rid),
                    sorted((k, str(v)) for k, v in e.detail.items()),
                ]
                for e in self.trace.events()
            ],
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode()).hexdigest()


def run_episode(
    seed: int,
    config: ChaosConfig | None = None,
    schedule: ChaosSchedule | None = None,
) -> EpisodeResult:
    """Sample (or accept) a schedule and run one full episode."""
    config = config if config is not None else ChaosConfig()
    if schedule is None:
        schedule = sample_schedule(seed, config)
    return ChaosEngine(schedule, config).run()
