"""Fault schedules: what a chaos episode injects, sampled from a seed.

A :class:`ChaosSchedule` is a pure value — a tuple of
:class:`ChaosFault` entries plus network rates and the torn-tail width
— fully determined by ``(seed, config)``.  The engine replays a
schedule exactly; the shrinker produces smaller schedules by dropping
entries.  Everything serialises to/from plain JSON so a failing
schedule can be committed as a regression artifact.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Any

from repro.storage.faults import CORRUPT, DISK_FULL, IO_ERROR, PERMANENT, DiskFault
from repro.transaction.deterministic import DET_PLAN_CRASH_POINTS

#: Crash points the sampler draws from.  These are the instrumented
#: ``injector.reach`` points of the single-node Figure-5 path; the
#: queue-level points are formatted with the request-queue name at
#: sampling time.  (``docs/fault-injection.md`` catalogues all points.)
CRASH_POINTS = (
    "clerk.connect.before_register",
    "clerk.connect.after_register",
    "clerk.send.before_enqueue",
    "clerk.send.after_enqueue",
    "clerk.receive.before_dequeue",
    "clerk.receive.after_dequeue",
    "server.after_dequeue",
    "server.after_process",
    "server.before_commit",
    "tm.commit.before_log",
    "tm.commit.after_log",
    "tm.abort.before_undo",
    "tm.abort.after_undo",
    "queue.{rq}.enqueue.before_log",
    "queue.{rq}.enqueue.after_log",
    "queue.{rq}.dequeue.before_log",
    "queue.{rq}.dequeue.after_log",
    "wal.log.group_flush.before",
    "wal.log.group_flush.after",
)

#: Extra crash points sampled only for sharded campaigns
#: (``config.shards > 1``): the cross-shard two-phase-commit promotion
#: path of :mod:`repro.transaction.routing`.
SHARDED_CRASH_POINTS = CRASH_POINTS + (
    "2pc.before_prepare",
    "2pc.after_prepare",
    "2pc.after_decision",
    "2pc.after_branch_commit",
)

#: Extra crash points sampled only when ``config.batch_crash_points``
#: is set: the per-transaction batched-append publish of
#: :class:`~repro.transaction.log.LogManager` (buffered updates +
#: commit/prepare landing as one WAL batch).  ``before`` crashes with
#: everything still volatile; ``after`` crashes with the batch appended
#: and forced.  The names carry the request node's real WAL area
#: (``reqnode.log`` for the chaos system) because the injector matches
#: reach points by exact string.
BATCH_APPEND_CRASH_POINTS = (
    "wal.reqnode.log.batch_append.before",
    "wal.reqnode.log.batch_append.after",
)

#: Extra crash points sampled only when the campaign runs a byte-
#: triggered checkpointer (``config.checkpoint_interval_bytes``): the
#: fuzzy-checkpoint protocol of
#: :meth:`~repro.queueing.repository.QueueRepository.checkpoint`.
CHECKPOINT_CRASH_POINTS = (
    "ckpt.begin.before",
    "ckpt.begin.after",
    "ckpt.snapshot.before",
    "ckpt.snapshot.after",
    "ckpt.install.before",
    "ckpt.install.after",
    "ckpt.gc.before",
    "ckpt.gc.after",
)

#: Disk operations the sampler targets, weighted towards the hot write
#: path (append/flush run orders of magnitude more often than replace).
_DISK_OPS = ("append", "append", "flush", "flush", "flush", "read", "replace")
_DISK_KINDS = (
    IO_ERROR, IO_ERROR, IO_ERROR, IO_ERROR, IO_ERROR,
    DISK_FULL, DISK_FULL,
    PERMANENT,
    CORRUPT,
)

#: fault kinds of :class:`ChaosFault`
KIND_CRASH = "crash"          # SimulatedCrash at (point, hit)
KIND_DISK = "disk"            # FaultyDisk fault at (op, hit)
KIND_PARTITION = "partition"  # isolate one client for `duration` steps
KIND_POISON = "poison"        # handler raises on its `hit`-th invocation
KIND_CLIENT_CRASH = "client_crash"  # reset one client actor at `step`
# Replication fault family (sampled only when ``config.replicate``):
KIND_NODE_KILL = "node_kill"  # kill shard `target`'s primary at `step`
KIND_FAILOVER = "failover"    # planned switchover of shard `target`
KIND_STANDBY_LAG = "standby_lag"  # defer shipping for `duration` steps

#: extra weights merged into the sampler's mix when ``replicate`` is
#: on; kept out of ``ChaosConfig.weights`` so the default mix — and
#: therefore every historic seed's schedule — stays byte-identical
REPLICATION_WEIGHTS = {
    KIND_NODE_KILL: 3,
    KIND_FAILOVER: 2,
    KIND_STANDBY_LAG: 2,
}


@dataclass(frozen=True)
class ChaosFault:
    """One injected fault.  Which fields matter depends on ``kind``:

    * ``crash`` — ``point`` + ``hit``;
    * ``disk`` — ``op`` + ``hit`` + ``mode`` (a FaultyDisk kind) +
      ``duration``;
    * ``partition`` — ``step`` + ``duration`` + ``target`` (client
      index);
    * ``poison`` — ``hit`` (nth handler invocation overall);
    * ``client_crash`` — ``step`` + ``target`` (client index);
    * ``node_kill`` / ``failover`` — ``step`` + ``target`` (**shard**
      index: the primary to kill/depose);
    * ``standby_lag`` — ``step`` + ``duration`` + ``target`` (shard
      index whose shipping is deferred).
    """

    kind: str
    point: str | None = None
    op: str | None = None
    mode: str | None = None
    hit: int = 1
    step: int = 0
    duration: int = 1
    target: int = 0

    def to_record(self) -> dict[str, Any]:
        record: dict[str, Any] = {"kind": self.kind}
        for key in ("point", "op", "mode"):
            value = getattr(self, key)
            if value is not None:
                record[key] = value
        for key, default in (("hit", 1), ("step", 0), ("duration", 1), ("target", 0)):
            value = getattr(self, key)
            if value != default:
                record[key] = value
        return record

    @classmethod
    def from_record(cls, record: dict[str, Any]) -> "ChaosFault":
        return cls(
            kind=record["kind"],
            point=record.get("point"),
            op=record.get("op"),
            mode=record.get("mode"),
            hit=record.get("hit", 1),
            step=record.get("step", 0),
            duration=record.get("duration", 1),
            target=record.get("target", 0),
        )

    def to_disk_fault(self) -> DiskFault:
        assert self.kind == KIND_DISK
        return DiskFault(
            op=self.op, hit=self.hit, kind=self.mode or IO_ERROR,
            duration=self.duration,
        )

    def __str__(self) -> str:
        if self.kind == KIND_CRASH:
            return f"crash@{self.point}#{self.hit}"
        if self.kind == KIND_DISK:
            return f"disk:{self.mode}@{self.op}#{self.hit}"
        if self.kind == KIND_PARTITION:
            return f"partition:c{self.target}@{self.step}+{self.duration}"
        if self.kind == KIND_POISON:
            return f"poison@handler#{self.hit}"
        if self.kind == KIND_NODE_KILL:
            return f"node_kill:s{self.target}@{self.step}"
        if self.kind == KIND_FAILOVER:
            return f"failover:s{self.target}@{self.step}"
        if self.kind == KIND_STANDBY_LAG:
            return f"standby_lag:s{self.target}@{self.step}+{self.duration}"
        return f"client_crash:c{self.target}@{self.step}"


@dataclass(frozen=True)
class ChaosConfig:
    """Workload shape and fault-mix knobs for a campaign."""

    clients: int = 3
    requests_per_client: int = 3
    servers: int = 2
    max_steps: int = 500
    drain_steps: int = 400
    #: how many faults one episode samples (inclusive range)
    min_faults: int = 1
    max_faults: int = 6
    #: relative weights of the fault kinds
    weights: dict[str, int] = field(default_factory=lambda: {
        KIND_CRASH: 5,
        KIND_DISK: 4,
        KIND_PARTITION: 2,
        KIND_POISON: 2,
        KIND_CLIENT_CRASH: 2,
    })
    #: per-episode network rates are drawn from these choices
    loss_choices: tuple[float, ...] = (0.0, 0.0, 0.05, 0.15)
    dup_choices: tuple[float, ...] = (0.0, 0.0, 0.05, 0.1)
    #: per-episode torn-tail widths (bytes of unflushed data surviving
    #: a crash) are drawn from these choices
    torn_tail_choices: tuple[int, ...] = (0, 0, 3, 17)
    #: upper bound for sampled crash-point / disk-op hit counters
    max_hits: int = 30
    max_aborts: int = 3
    #: patch the request-node log so commit does not force (test-only
    #: bug for the shrinking demo)
    planted_bug: str | None = None
    request_queue: str = "req.q"
    #: repository shards under the queue node; with more than one,
    #: disk faults target individual shards and the sampler also draws
    #: crash points from the cross-shard 2PC path
    shards: int = 1
    #: run a byte-triggered fuzzy checkpointer during the episode (the
    #: engine polls it synchronously at every step); the sampler then
    #: also draws crash points from the checkpoint protocol.  ``None``
    #: keeps existing seeds byte-identical.
    checkpoint_interval_bytes: int | None = None
    #: also draw crash points from the batched commit-publish path
    #: (``BATCH_APPEND_CRASH_POINTS``).  Off by default so schedules
    #: sampled by historic seeds keep their exact shape.
    batch_crash_points: bool = False
    #: run every shard with a warm standby (``repro.replication``) and
    #: let the sampler draw ``node_kill``/``failover``/``standby_lag``
    #: faults (``REPLICATION_WEIGHTS`` merged into the mix).  Off by
    #: default so historic seeds keep their exact schedules.
    replicate: bool = False
    #: concurrency-control policy for the system under test: "2pl"
    #: (seed behavior), or "deterministic"/"auto", which route the
    #: queue-shaped transaction class through the deterministic lane
    #: and let the sampler draw crash points at the plan-batch
    #: boundaries (``DET_PLAN_CRASH_POINTS``).  "2pl" keeps historic
    #: seeds byte-identical.
    cc: str = "2pl"
    #: directory for flight-recorder dumps of failing episodes
    #: (``None`` keeps the ring in memory only — no files are written)
    flight_dir: str | None = None

    @property
    def total_requests(self) -> int:
        return self.clients * self.requests_per_client


@dataclass(frozen=True)
class ChaosSchedule:
    """Everything an episode injects, as a replayable value."""

    seed: int
    faults: tuple[ChaosFault, ...]
    loss_rate: float = 0.0
    dup_rate: float = 0.0
    torn_tail: int = 0

    def of_kind(self, kind: str) -> list[ChaosFault]:
        return [f for f in self.faults if f.kind == kind]

    def without(self, index: int) -> "ChaosSchedule":
        """The same schedule minus the fault at ``index`` (shrinking)."""
        faults = tuple(f for i, f in enumerate(self.faults) if i != index)
        return replace(self, faults=faults)

    def calmed(self) -> "ChaosSchedule":
        """The same faults with a quiet network and clean crash tails
        (shrinking step for the environment knobs)."""
        return replace(self, loss_rate=0.0, dup_rate=0.0, torn_tail=0)

    def to_record(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "loss_rate": self.loss_rate,
            "dup_rate": self.dup_rate,
            "torn_tail": self.torn_tail,
            "faults": [f.to_record() for f in self.faults],
        }

    @classmethod
    def from_record(cls, record: dict[str, Any]) -> "ChaosSchedule":
        return cls(
            seed=record.get("seed", 0),
            faults=tuple(ChaosFault.from_record(f) for f in record.get("faults", [])),
            loss_rate=record.get("loss_rate", 0.0),
            dup_rate=record.get("dup_rate", 0.0),
            torn_tail=record.get("torn_tail", 0),
        )

    def describe(self) -> str:
        parts = [str(f) for f in self.faults]
        if self.loss_rate:
            parts.append(f"loss={self.loss_rate}")
        if self.dup_rate:
            parts.append(f"dup={self.dup_rate}")
        if self.torn_tail:
            parts.append(f"torn_tail={self.torn_tail}")
        return ", ".join(parts) if parts else "(no faults)"


def _weighted_choice(rng: random.Random, weights: dict[str, int]) -> str:
    kinds = sorted(weights)
    total = sum(weights[k] for k in kinds)
    pick = rng.randrange(total)
    for kind in kinds:
        pick -= weights[kind]
        if pick < 0:
            return kind
    return kinds[-1]  # pragma: no cover - unreachable


def sample_schedule(seed: int, config: ChaosConfig | None = None) -> ChaosSchedule:
    """Deterministically sample one episode's fault schedule.

    The same ``(seed, config)`` always yields the identical schedule —
    this, plus the engine's deterministic scheduler, is what makes
    every campaign failure replayable from its seed alone.
    """
    config = config if config is not None else ChaosConfig()
    rng = random.Random(f"chaos:{seed}:schedule")
    # Sharded campaigns draw two extra values (2PC crash points, disk
    # fault targets); at shards=1 the draw sequence — and therefore
    # every sampled schedule — is byte-identical to the unsharded one.
    crash_points = SHARDED_CRASH_POINTS if config.shards > 1 else CRASH_POINTS
    if config.checkpoint_interval_bytes is not None:
        # Gated on the knob, like the sharded extension, so schedules
        # sampled without a checkpointer keep their exact historic shape.
        crash_points = crash_points + CHECKPOINT_CRASH_POINTS
    if config.batch_crash_points:
        crash_points = crash_points + BATCH_APPEND_CRASH_POINTS
    if config.cc != "2pl":
        crash_points = crash_points + DET_PLAN_CRASH_POINTS
    # The replication family joins the mix only when the campaign runs
    # standbys; merging here (not in the ChaosConfig default) keeps the
    # weighted draw — and every historic seed — byte-identical when off.
    weights = config.weights
    if config.replicate:
        weights = {**config.weights, **REPLICATION_WEIGHTS}
    faults: list[ChaosFault] = []
    n = rng.randint(config.min_faults, config.max_faults)
    for _ in range(n):
        kind = _weighted_choice(rng, weights)
        if kind == KIND_CRASH:
            point = rng.choice(crash_points).format(rq=config.request_queue)
            faults.append(ChaosFault(
                kind=kind, point=point, hit=rng.randint(1, config.max_hits),
            ))
        elif kind == KIND_DISK:
            mode = rng.choice(_DISK_KINDS)
            op = rng.choice(_DISK_OPS)
            duration = rng.choice((1, 1, 1, 2, 3)) if mode == IO_ERROR else 1
            target = rng.randrange(config.shards) if config.shards > 1 else 0
            faults.append(ChaosFault(
                kind=kind, op=op, mode=mode,
                hit=rng.randint(1, config.max_hits * 4), duration=duration,
                target=target,
            ))
        elif kind == KIND_PARTITION:
            faults.append(ChaosFault(
                kind=kind,
                step=rng.randint(1, config.max_steps // 2),
                duration=rng.randint(3, 40),
                target=rng.randrange(config.clients),
            ))
        elif kind == KIND_POISON:
            faults.append(ChaosFault(
                kind=kind, hit=rng.randint(1, config.total_requests * 2),
            ))
        elif kind in (KIND_NODE_KILL, KIND_FAILOVER):
            faults.append(ChaosFault(
                kind=kind,
                step=rng.randint(1, config.max_steps // 2),
                target=rng.randrange(config.shards),
            ))
        elif kind == KIND_STANDBY_LAG:
            faults.append(ChaosFault(
                kind=kind,
                step=rng.randint(1, config.max_steps // 2),
                duration=rng.randint(5, 60),
                target=rng.randrange(config.shards),
            ))
        else:  # KIND_CLIENT_CRASH
            faults.append(ChaosFault(
                kind=kind,
                step=rng.randint(1, config.max_steps // 2),
                target=rng.randrange(config.clients),
            ))
    return ChaosSchedule(
        seed=seed,
        faults=tuple(faults),
        loss_rate=rng.choice(config.loss_choices),
        dup_rate=rng.choice(config.dup_choices),
        torn_tail=rng.choice(config.torn_tail_choices),
    )
