"""Deterministic chaos campaigns over the queued-transaction stack.

The paper's guarantees are claims about behaviour *under failure*;
one-fault-at-a-time tests (a single crash point, a lossy network, a
torn tail) never exercise the combinations that break recovery
protocols in practice.  This package runs a concurrent client/server
workload while injecting a per-seed sampled fault schedule across every
layer — process crashes at :class:`~repro.sim.crash.FaultInjector`
points, disk I/O errors and corruption via
:class:`~repro.storage.faults.FaultyDisk`, network loss/duplication/
partitions via :class:`~repro.comm.network.SimNetwork`, poisoned
handlers and client crashes — then performs full restart recovery and
client resynchronization and asserts the three guarantees plus
structural invariants.  Failing seeds replay exactly and are shrunk to
a minimal counterexample.

Run campaigns from the command line::

    python -m repro.chaos --episodes 200 --base-seed 0

See ``docs/fault-injection.md`` for the full catalogue of fault kinds
and knobs.
"""

from repro.chaos.engine import ChaosEngine, EpisodeResult, run_episode
from repro.chaos.schedule import (
    ChaosConfig,
    ChaosFault,
    ChaosSchedule,
    sample_schedule,
)
from repro.chaos.shrink import ShrinkResult, shrink

__all__ = [
    "ChaosConfig",
    "ChaosEngine",
    "ChaosFault",
    "ChaosSchedule",
    "EpisodeResult",
    "ShrinkResult",
    "run_episode",
    "sample_schedule",
    "shrink",
]
